#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the pieces of `rand` it uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`], [`Rng::gen`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! splitmix64 — high quality and fully deterministic, which is all the
//! workloads and tests require (nothing asserts byte-compatibility with
//! upstream `rand`'s stream).

/// Core trait: a source of random `u64`s plus derived sampling helpers.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample(self, lo, hi_inclusive)
    }

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

/// Types constructible from raw random bits (the `Standard` distribution).
pub trait Standard {
    /// Draw one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types that support uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    /// Sample uniformly from `lo..=hi`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 128-bit span cannot happen for <=64-bit
                    // types except the complete u64/i64 range.
                    return rng.next_u64() as $t;
                }
                // Widening multiply avoids modulo bias well below 2^64 spans.
                let wide = (rng.next_u64() as u128).wrapping_mul(span) >> 64;
                (lo as u128).wrapping_add(wide) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Lower bound and *inclusive* upper bound.
    fn bounds(&self) -> (T, T);
}

impl<T: UniformInt + SteppedDown> SampleRange<T> for std::ops::Range<T> {
    fn bounds(&self) -> (T, T) {
        (self.start, self.end.step_down())
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(&self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait SteppedDown {
    /// `self - 1`, panicking on underflow (empty range).
    fn step_down(self) -> Self;
}

macro_rules! impl_stepped_down {
    ($($t:ty),*) => {$(
        impl SteppedDown for $t {
            fn step_down(self) -> Self {
                self.checked_sub(1).expect("gen_range: empty range")
            }
        }
    )*};
}
impl_stepped_down!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the standard xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the one `SliceRandom` method the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Convenience re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let s: i64 = rng.gen_range(-7..8);
            assert!((-7..8).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
