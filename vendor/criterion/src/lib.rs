#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of criterion's registration API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — mean wall time over the configured
//! sample count, printed per benchmark — because this repo's quantitative
//! results come from the `repro` binary's simulated cost model, not from
//! criterion statistics. The benches remain useful as relative-speed smoke
//! checks and as compile coverage for the hot paths.

use std::time::{Duration, Instant};

/// How batched iterations recreate their setup value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// Small batches (treated like `PerIteration` here).
    SmallInput,
    /// Large batches (treated like `PerIteration` here).
    LargeInput,
}

/// Measurement marker types.
pub mod measurement {
    /// Wall-clock time (the only measurement this stand-in offers).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Per-group/bench timing configuration.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    #[allow(dead_code)] // accepted, not consulted: samples are count-bounded
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_secs(1),
        }
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            settings: Settings::default(),
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Register and run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(&name, Settings::default(), &mut f);
        self
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    /// Total measurement budget (advisory; this stand-in times
    /// `sample_size` iterations regardless).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Register and run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.settings, &mut f);
        self
    }

    /// End the group (no-op; printing happens per benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, f: &mut F) {
    let mut bencher = Bencher {
        settings,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.total / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {name}: mean {mean:?} over {} iterations",
        bencher.iters
    );
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    settings: Settings,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` with no per-iteration setup.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.settings.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` with a fresh untimed `setup` value per iteration.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // One untimed warm-up pass (setup dominates these benches; a timed
        // warm-up loop would multiply table builds).
        black_box(routine(setup()));
        for _ in 0..self.settings.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function that runs each registered bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(10));
        let mut count = 0u32;
        g.bench_function("iter_batched", |b| {
            b.iter_batched(|| 2u64, |x| x * x, BatchSize::PerIteration)
        });
        g.finish();
        c.bench_function("iter", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        assert!(count > 0);
    }
}
