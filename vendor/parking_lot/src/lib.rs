#![warn(missing_docs)]

//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *subset* of `parking_lot`'s API it actually uses, implemented on
//! top of `std::sync` primitives:
//!
//! - [`Mutex`] / [`MutexGuard`] — non-poisoning `lock()`.
//! - [`Condvar`] with `wait` / `wait_until` / `notify_*`.
//! - [`RwLock`] with plain guards plus the `arc_lock`-style
//!   [`RwLock::read_arc`] / [`RwLock::write_arc`] returning owned
//!   (`'static`) guards that keep the lock alive via an [`Arc`].
//! - A [`lock_api`] module exposing the Arc guard type names.
//!
//! Semantics match `parking_lot` where the workspace depends on them:
//! lock acquisition never returns poison errors (a panicked holder simply
//! releases), and the Arc guards are `'static` so they can be stored in
//! structs such as the buffer pool's page pins.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Instant;

/// Strip a poison error: the protected data stays accessible, matching
/// parking_lot's non-poisoning behaviour.
fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Non-poisoning mutex over [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `t`.
    pub fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(unpoison(self.inner.lock())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]. The `Option` lets [`Condvar::wait`] take the
/// underlying std guard and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with this module's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    cv: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Condvar {
            cv: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(unpoison(self.cv.wait(inner)));
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = self
            .cv
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.cv.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// RwLock with owned Arc guards
// ---------------------------------------------------------------------------

/// Raw readers-writer lock: state < 0 means an exclusive holder, state > 0
/// counts shared holders. Writers take priority only by contention (no
/// fairness guarantee, same as this workspace needs).
pub struct RawRwLock {
    state: std::sync::Mutex<i64>,
    cv: std::sync::Condvar,
}

impl Default for RawRwLock {
    fn default() -> Self {
        RawRwLock {
            state: std::sync::Mutex::new(0),
            cv: std::sync::Condvar::new(),
        }
    }
}

impl RawRwLock {
    fn lock_shared(&self) {
        let mut s = unpoison(self.state.lock());
        while *s < 0 {
            s = unpoison(self.cv.wait(s));
        }
        *s += 1;
    }

    fn unlock_shared(&self) {
        let mut s = unpoison(self.state.lock());
        *s -= 1;
        if *s == 0 {
            self.cv.notify_all();
        }
    }

    fn lock_exclusive(&self) {
        let mut s = unpoison(self.state.lock());
        while *s != 0 {
            s = unpoison(self.cv.wait(s));
        }
        *s = -1;
    }

    fn unlock_exclusive(&self) {
        let mut s = unpoison(self.state.lock());
        *s = 0;
        self.cv.notify_all();
    }
}

/// Readers-writer lock whose guards can either borrow (`read`/`write`) or
/// own the lock through an `Arc` (`read_arc`/`write_arc`).
pub struct RwLock<T: ?Sized> {
    raw: RawRwLock,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is serialized by `raw` exactly like a std RwLock.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Create a lock holding `t`.
    pub fn new(t: T) -> Self {
        RwLock {
            raw: RawRwLock::default(),
            data: UnsafeCell::new(t),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared borrow-based guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.raw.lock_shared();
        RwLockReadGuard { lock: self }
    }

    /// Acquire an exclusive borrow-based guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.raw.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Acquire a shared guard that owns an `Arc` of the lock (parking_lot's
    /// `arc_lock` feature).
    pub fn read_arc(self: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T> {
        self.raw.lock_shared();
        lock_api::ArcRwLockReadGuard {
            lock: Arc::clone(self),
            _raw: PhantomData,
        }
    }

    /// Acquire an exclusive guard that owns an `Arc` of the lock.
    pub fn write_arc(self: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T> {
        self.raw.lock_exclusive();
        lock_api::ArcRwLockWriteGuard {
            lock: Arc::clone(self),
            _raw: PhantomData,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Shared guard borrowing the lock.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: shared lock held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_shared();
    }
}

/// Exclusive guard borrowing the lock.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: exclusive lock held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive lock held.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_exclusive();
    }
}

/// Guard types matching `parking_lot::lock_api`'s Arc-owning guards.
pub mod lock_api {
    use super::*;

    /// Shared guard owning an `Arc` of the lock; `'static` when `T` is.
    pub struct ArcRwLockReadGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<R, T: ?Sized> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // Safety: shared lock held for the guard's lifetime.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw.unlock_shared();
        }
    }

    /// Exclusive guard owning an `Arc` of the lock; `'static` when `T` is.
    pub struct ArcRwLockWriteGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<R, T: ?Sized> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // Safety: exclusive lock held for the guard's lifetime.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            // Safety: exclusive lock held for the guard's lifetime.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw.unlock_exclusive();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g == 0 {
            cv.wait(&mut g);
        }
        assert_eq!(*g, 7);
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(
            &mut g,
            Instant::now() + std::time::Duration::from_millis(10),
        );
        assert!(res.timed_out());
    }

    #[test]
    fn arc_guards_outlive_borrow() {
        let lock = Arc::new(RwLock::new(5u8));
        let guard = {
            let l = lock.clone();
            l.read_arc()
        };
        assert_eq!(*guard, 5);
        drop(guard);
        let mut w = lock.write_arc();
        *w = 9;
        drop(w);
        assert_eq!(*lock.read(), 9);
    }

    #[test]
    fn rwlock_allows_concurrent_readers_excludes_writer() {
        let lock = Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = lock.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let mut w = lock.write_arc();
                        *w += 1;
                        drop(w);
                        let r = lock.read_arc();
                        assert!(*r <= 400);
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 400);
    }
}
