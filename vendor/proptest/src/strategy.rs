//! Strategies: composable random value generators.
//!
//! Upstream proptest separates value *trees* (for shrinking) from
//! strategies; this stand-in has no shrinking, so a strategy is simply a
//! deterministic function from a [`TestRng`] to a value.

use crate::collection::SizeRange;
use crate::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value and sample it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-valued strategies (from
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// `any::<T>()`: the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw a uniform value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128 - *self.start() as u128 + 1) as u64;
                if span == 0 {
                    // Whole u64 domain.
                    return rng.next_u64() as $t;
                }
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// See [`collection::vec`](crate::collection::vec).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
