#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small deterministic property-testing engine exposing the subset of the
//! proptest 1.x API its tests use:
//!
//! - [`strategy::Strategy`] with `prop_map`, `prop_flat_map`, `boxed`;
//! - strategies for integer/bool `any`, integer ranges (half-open and
//!   inclusive), [`strategy::Just`], tuples up to arity 4, and
//!   [`collection::vec`] with exact or ranged lengths;
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`];
//! - [`test_runner::Config`] aliased as `ProptestConfig` in the prelude.
//!
//! Differences from upstream: failing cases are *not* shrunk — the failure
//! message instead reports the case number and seed, and every run is fully
//! deterministic (seed derived from the case number), so a failure
//! reproduces by re-running the same test.

use std::fmt;

pub mod strategy;

/// Error type carried by `prop_assert*` early returns.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed property with explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Test-runner configuration (upstream `proptest::test_runner::Config`).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// RNG for one test case, derived from the case number so failures
    /// reproduce exactly on re-run.
    pub fn for_case(case: u64) -> Self {
        use rand::SeedableRng;
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(
                0xB01D_FACE_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::Rng;
        self.inner.next_u64()
    }

    /// Uniform integer in `lo..=hi`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works from the prelude.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Lengths a generated `Vec` may take.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        /// Exclusive upper bound.
        pub(crate) hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the upstream `prop` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Run the cases of one property; used by the [`proptest!`] macro.
pub fn run_cases(
    config: test_runner::Config,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for i in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(i);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest: property failed at case {i} of {}: {e}",
                config.cases
            );
        }
    }
}

/// Define property tests. Mirrors upstream's macro for the supported
/// grammar: an optional `#![proptest_config(expr)]` header followed by
/// functions whose arguments are `pat in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal: expand each `fn` in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    // The caller writes `#[test]` on each fn (real-proptest idiom); pass
    // the attributes through rather than stacking a duplicate `#[test]`.
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, |__rng| {
                $crate::__proptest_bindings!(__rng, $($args)*);
                let __out: ::std::result::Result<(), $crate::TestCaseError> = {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __out
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Internal: expand `pat in strategy` argument bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $arg:ident in $strat:expr $(, $($rest:tt)*)?) => {
        $crate::__proptest_one_binding!($rng, $arg, $strat);
        $crate::__proptest_bindings!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $arg:ident in $strat:expr $(, $($rest:tt)*)?) => {
        $crate::__proptest_one_binding!($rng, $arg, $strat);
        $crate::__proptest_bindings!($rng $(, $($rest)*)?);
    };
}

/// Internal: one generated binding (always `mut` so `mut pat` callers work).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one_binding {
    ($rng:ident, $arg:ident, $strat:expr) => {
        #[allow(unused_mut)]
        let mut $arg = $crate::strategy::Strategy::generate(&$strat, $rng);
    };
}

/// Assert a boolean property, failing the current case on `false`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality, failing the current case with both values on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), __l, __r,
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r,
            )));
        }
    }};
}

/// Assert inequality, failing the current case when the values match.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                __l,
            )));
        }
    }};
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            v in prop::collection::vec((0u8..3, 10usize..20), 1..50),
            exact in prop::collection::vec(any::<bool>(), 7),
            x in 0u64..=5,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (a, b) in v {
                prop_assert!(a < 3, "a out of range: {}", a);
                prop_assert!((10..20).contains(&b));
            }
            prop_assert_eq!(exact.len(), 7);
            prop_assert!(x <= 5);
        }

        #[test]
        fn mut_bindings_and_maps(
            mut keys in prop::collection::vec(0u32..100, 1..40),
            tagged in (1usize..4).prop_map(|n| n * 2),
        ) {
            keys.sort_unstable();
            prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(tagged % 2 == 0 && (2..8).contains(&tagged));
        }

        #[test]
        fn oneof_hits_every_arm(picks in prop::collection::vec(
            prop_oneof![Just(0u8), Just(1u8), 2u8..4], 64,
        )) {
            prop_assert!(picks.iter().all(|&p| p < 4));
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let a = strat.generate(&mut crate::TestRng::for_case(3));
        let b = strat.generate(&mut crate::TestRng::for_case(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_number() {
        crate::run_cases(ProptestConfig::with_cases(4), |rng| {
            let v = rng.below(10);
            prop_assert!(v > 100, "v was {}", v);
            Ok(())
        });
    }
}
