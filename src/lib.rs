#![warn(missing_docs)]

//! **bulk-delete** — a Rust reproduction of *"Efficient Bulk Deletes in
//! Relational Databases"* (A. Gärtner, A. Kemper, D. Kossmann, B. Zeller;
//! ICDE 2001).
//!
//! Most relational systems execute `DELETE FROM R WHERE R.A IN (SELECT …)`
//! *horizontally*: one record at a time, removing each record from every
//! index individually, each removal a root-to-leaf B-tree traversal. The
//! paper proposes *vertical* execution — delete from one storage structure
//! at a time with a set-oriented **bulk delete operator** (`⋈̄`) that is
//! planned like a join (sort/merge, classic hash, or partitioned hash; with
//! a chosen order and primary predicate) — and shows roughly an order of
//! magnitude improvement.
//!
//! This crate is the facade over the full reproduction:
//!
//! | module | contents |
//! |--------|----------|
//! | [`storage`] | simulated disk (1999-era seek/rotation/transfer cost model), buffer pool, slotted pages, heap files |
//! | [`btree`] | B-link trees: traditional record-at-a-time deletes, leaf-level bulk deletes, bulk loading, reorganization policies |
//! | [`exec`] | bounded-memory external sort, budget-accounted hash sets, range partitioner |
//! | [`core`] | catalog, the `⋈̄` operator plans, the four delete strategies, the plan optimizer |
//! | [`txn`] | §3.1 concurrency: table locks, offline indices, side-files, direct propagation |
//! | [`wal`] | §3.2 recovery: checkpoints, crash injection, roll-forward completion |
//! | [`workload`] | the paper's synthetic benchmark table and delete sets |
//!
//! # Quickstart
//!
//! ```
//! use bulk_delete::prelude::*;
//!
//! // A database with 1 MB of (simulated) memory.
//! let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
//! let tid = db.create_table("orders", Schema::new(3, 64));
//! db.create_index(tid, IndexDef::secondary(0).unique()).unwrap(); // order id
//! db.create_index(tid, IndexDef::secondary(1)).unwrap();          // ship date
//!
//! for i in 0..5_000u64 {
//!     db.insert(tid, &Tuple::new(vec![i, i / 50, i % 17])).unwrap();
//! }
//!
//! // DELETE FROM orders WHERE id IN (0, 2, 4, ...): plan + execute.
//! let d: Vec<u64> = (0..5_000).step_by(2).collect();
//! let (plan, outcome) =
//!     strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1).unwrap();
//! println!("{}", plan.render(db.table(tid).unwrap()));
//! assert_eq!(outcome.deleted.len(), 2_500);
//! db.check_consistency(tid).unwrap();
//! ```

pub use bd_btree as btree;
pub use bd_core as core;
pub use bd_exec as exec;
pub use bd_lsm as lsm;
pub use bd_storage as storage;
pub use bd_txn as txn;
pub use bd_wal as wal;
pub use bd_workload as workload;

/// Common imports.
pub mod prelude {
    pub use bd_btree::{BTreeConfig, Key, ReorgPolicy};
    pub use bd_core::engine::{audit_engine_equivalence, BtreeEngine, TableEngine};
    pub use bd_core::{
        audit_equivalence, audit_table, strategy, AuditFinding, AuditReport, Database,
        DatabaseConfig, DbError, DbResult, DeletePlan, IndexDef, RebuildMode, Schema, ShadowDb,
        TableId, Tuple,
    };
    pub use bd_lsm::{LsmConfig, LsmTable};
    pub use bd_storage::{CostModel, DiskStats, Rid};
    pub use bd_txn::{PropagationMode, TxnDb};
    pub use bd_wal::{recover, run_bulk_delete, CrashInjector, CrashSite, LogManager};
    pub use bd_workload::{TableSpec, Workload};
}
