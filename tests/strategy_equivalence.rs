//! Every delete strategy must leave the table and all indices in exactly
//! the same logical state — the core correctness property of the paper's
//! claim that vertical bulk deletion is a drop-in replacement.

use bulk_delete::prelude::*;

use bd_workload::TableSpec;

fn build(n_rows: usize, n_secondary: usize, seed: u64) -> (Database, bd_workload::Workload) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let w = TableSpec::tiny(n_rows)
        .with_seed(seed)
        .build(&mut db)
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    for attr in 1..=n_secondary {
        w.attach_index(&mut db, IndexDef::secondary(attr)).unwrap();
    }
    (db, w)
}

/// Canonical logical state: sorted rows (all attributes).
fn state(db: &Database, tid: TableId) -> Vec<Vec<u64>> {
    let table = db.table(tid).unwrap();
    let mut rows: Vec<Vec<u64>> = table
        .heap
        .scan()
        .map(|(_, bytes)| table.schema.decode(&bytes).attrs)
        .collect();
    rows.sort_unstable();
    rows
}

fn run_all_strategies(n_rows: usize, frac: f64, seed: u64) {
    // The reference database stays alive: every other strategy's physical
    // state is diffed against it with `audit_equivalence`.
    let (reference_db, reference, ref_tid) = {
        let (mut db, w) = build(n_rows, 2, seed);
        let d = w.delete_set(frac, seed + 1);
        let out = strategy::horizontal(&mut db, w.tid, 0, &d, true).unwrap();
        assert_eq!(out.deleted.len(), d.len());
        db.check_consistency(w.tid).unwrap();
        let s = state(&db, w.tid);
        (db, s, w.tid)
    };

    type Runner = Box<dyn Fn(&mut Database, TableId, &[Key]) -> usize>;
    let runners: Vec<(&str, Runner)> = vec![
        (
            "not-sorted/trad",
            Box::new(|db, tid, d| {
                strategy::horizontal(db, tid, 0, d, false)
                    .unwrap()
                    .deleted
                    .len()
            }),
        ),
        (
            "drop&create/bulkload",
            Box::new(|db, tid, d| {
                strategy::drop_create(db, tid, 0, d, RebuildMode::BulkLoad, 1)
                    .unwrap()
                    .deleted
                    .len()
            }),
        ),
        (
            "drop&create/inserts",
            Box::new(|db, tid, d| {
                strategy::drop_create(db, tid, 0, d, RebuildMode::InsertEach, 1)
                    .unwrap()
                    .deleted
                    .len()
            }),
        ),
        (
            "vertical/sort-merge",
            Box::new(|db, tid, d| {
                strategy::vertical_sort_merge(db, tid, 0, d, 1)
                    .unwrap()
                    .deleted
                    .len()
            }),
        ),
        (
            "vertical/auto",
            Box::new(|db, tid, d| {
                strategy::vertical_auto(db, tid, 0, d, ReorgPolicy::FreeAtEmpty, 1)
                    .unwrap()
                    .1
                    .deleted
                    .len()
            }),
        ),
        (
            "vertical/compact",
            Box::new(|db, tid, d| {
                let plan = bd_core::plan_sort_merge(db.table(tid).unwrap(), 0).unwrap();
                strategy::vertical(db, tid, d, &plan, ReorgPolicy::CompactLeaves, 1)
                    .unwrap()
                    .deleted
                    .len()
            }),
        ),
    ];

    for (name, run) in runners {
        let (mut db, w) = build(n_rows, 2, seed);
        let mut shadow = ShadowDb::mirror_of(&db, w.tid).unwrap();
        let d = w.delete_set(frac, seed + 1);
        let n = run(&mut db, w.tid, &d);
        assert_eq!(n, d.len(), "{name}: wrong delete count");
        shadow.delete_in(w.tid, 0, &d);
        db.check_consistency(w.tid).unwrap();
        assert_eq!(
            state(&db, w.tid),
            reference,
            "{name}: diverged from reference"
        );
        // Differential physical-state audit against the reference execution.
        let eq = audit_equivalence(&db, &reference_db, ref_tid).unwrap();
        assert!(eq.is_clean(), "{name}: {eq}");
        // Model-based audit: the engine matches the shadow database.
        let diff = shadow.diff(&db, w.tid).unwrap();
        assert!(diff.is_clean(), "{name}: shadow diff: {diff}");
    }
}

#[test]
fn all_strategies_equivalent_small() {
    run_all_strategies(800, 0.15, 11);
}

#[test]
fn all_strategies_equivalent_heavy_delete() {
    run_all_strategies(600, 0.8, 23);
}

#[test]
fn all_strategies_equivalent_light_delete() {
    run_all_strategies(1200, 0.01, 5);
}

#[test]
fn all_strategies_equivalent_delete_everything() {
    run_all_strategies(400, 1.0, 31);
}

#[test]
fn empty_delete_set_is_noop_everywhere() {
    let (mut db, w) = build(300, 2, 3);
    let before = state(&db, w.tid);
    for out in [
        strategy::horizontal(&mut db, w.tid, 0, &[], true).unwrap(),
        strategy::horizontal(&mut db, w.tid, 0, &[], false).unwrap(),
        strategy::vertical_sort_merge(&mut db, w.tid, 0, &[], 1).unwrap(),
    ] {
        assert_eq!(out.deleted.len(), 0);
    }
    assert_eq!(state(&db, w.tid), before);
    db.check_consistency(w.tid).unwrap();
}

#[test]
fn missing_keys_delete_nothing() {
    let (mut db, w) = build(500, 1, 7);
    let before = state(&db, w.tid);
    let ghosts = w.missing_keys(100, 9);
    let out = strategy::vertical_sort_merge(&mut db, w.tid, 0, &ghosts, 1).unwrap();
    assert_eq!(out.deleted.len(), 0);
    let out = strategy::horizontal(&mut db, w.tid, 0, &ghosts, true).unwrap();
    assert_eq!(out.deleted.len(), 0);
    assert_eq!(state(&db, w.tid), before);
}

#[test]
fn deleted_rows_are_returned_for_archiving() {
    let (mut db, w) = build(500, 2, 13);
    let d = w.delete_set(0.2, 17);
    let expect: std::collections::HashSet<u64> = d.iter().copied().collect();
    let out = strategy::vertical_sort_merge(&mut db, w.tid, 0, &d, 1).unwrap();
    assert_eq!(out.deleted.len(), d.len());
    for (_, tuple) in &out.deleted {
        assert!(expect.contains(&tuple.attr(0)));
    }
    // RID order (the order the heap pass removes them).
    assert!(out.deleted.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn repeated_bulk_deletes_compose() {
    let (mut db, w) = build(1000, 2, 19);
    let all: Vec<u64> = w.a_values.clone();
    let first: Vec<u64> = all.iter().copied().step_by(3).collect();
    let second: Vec<u64> = all.iter().copied().skip(1).step_by(3).collect();
    strategy::vertical_sort_merge(&mut db, w.tid, 0, &first, 1).unwrap();
    db.check_consistency(w.tid).unwrap();
    strategy::vertical_sort_merge(&mut db, w.tid, 0, &second, 1).unwrap();
    db.check_consistency(w.tid).unwrap();
    let remaining = db.table(w.tid).unwrap().heap.len();
    assert_eq!(remaining, 1000 - first.len() - second.len());
    // Deleting already-deleted keys again is a no-op.
    let again = strategy::vertical_sort_merge(&mut db, w.tid, 0, &first, 1).unwrap();
    assert_eq!(again.deleted.len(), 0);
}

#[test]
fn lsm_engine_matches_btree_engine_on_the_paper_workload() {
    // The same design-space workload the strategies above run, replayed
    // through the engine seam: a B-tree engine using the vertical
    // sort-merge plan and the delete-aware LSM engine must agree on
    // every surviving row after each delete round.
    let spec = TableSpec::tiny(900).with_seed(41);
    let rows = spec.generate_rows();
    let mut btree = BtreeEngine::new(spec.schema(), 2 << 20, 1).unwrap();
    let mut lsm = LsmTable::new(spec.schema(), 2 << 20, LsmConfig::tiny());
    btree.bulk_load(&rows).unwrap();
    lsm.bulk_load(&rows).unwrap();

    for (frac, seed) in [(0.1, 43), (0.4, 47), (0.25, 53)] {
        let keys: Vec<Key> = {
            let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
            let w = spec.build(&mut db).unwrap();
            w.delete_set(frac, seed)
        };
        let a = btree.bulk_delete(&keys).unwrap();
        let b = lsm.bulk_delete(&keys).unwrap();
        assert_eq!(a.deleted, b.deleted, "delete counts diverged at {frac}");
        let eq = audit_engine_equivalence(&mut btree, &mut lsm).unwrap();
        assert!(eq.is_clean(), "after {frac}: {}", eq.render());
        assert!(lsm.audit_pages().is_clean(), "after {frac}");
    }
    assert!(lsm.lsm_stats().compactions > 0, "workload must compact");
}
