//! The three `⋈̄` methods (sort/merge, classic hash, partitioned hash) and
//! both table methods must produce identical states, and the optimizer must
//! pick sensibly across workloads.

use bulk_delete::prelude::*;

use bd_core::{plan_delete, IndexMethod, IndexStep, TableMethod};
use bd_workload::TableSpec;

fn build(n_rows: usize, mem: usize, clustered: bool) -> (Database, bd_workload::Workload) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(mem));
    let mut spec = TableSpec::tiny(n_rows).with_seed(99);
    if clustered {
        spec = spec.clustered_by(0);
    }
    let w = spec.build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    (db, w)
}

fn state(db: &Database, tid: TableId) -> Vec<Vec<u64>> {
    let table = db.table(tid).unwrap();
    let mut rows: Vec<Vec<u64>> = table
        .heap
        .scan()
        .map(|(_, bytes)| table.schema.decode(&bytes).attrs)
        .collect();
    rows.sort_unstable();
    rows
}

fn plan_with(method: IndexMethod, table: TableMethod) -> DeletePlan {
    DeletePlan {
        probe_attr: 0,
        table,
        index_steps: vec![IndexStep { attr: 1, method }, IndexStep { attr: 2, method }],
    }
}

#[test]
fn every_method_combination_is_equivalent() {
    let reference = {
        let (mut db, w) = build(900, 2 << 20, false);
        let d = w.delete_set(0.25, 1);
        strategy::vertical_sort_merge(&mut db, w.tid, 0, &d, 1).unwrap();
        db.check_consistency(w.tid).unwrap();
        state(&db, w.tid)
    };
    let methods = [
        IndexMethod::SortMerge { presort: true },
        IndexMethod::ClassicHash,
        IndexMethod::PartitionedHash { partitions: 4 },
    ];
    let tables = [TableMethod::Merge { presort: true }, TableMethod::HashProbe];
    for m in methods {
        for t in tables {
            let (mut db, w) = build(900, 2 << 20, false);
            let d = w.delete_set(0.25, 1);
            let plan = plan_with(m, t);
            let out =
                strategy::vertical(&mut db, w.tid, &d, &plan, ReorgPolicy::FreeAtEmpty, 1).unwrap();
            assert_eq!(out.deleted.len(), d.len(), "{m:?}/{t:?}");
            db.check_consistency(w.tid).unwrap();
            assert_eq!(state(&db, w.tid), reference, "{m:?}/{t:?} diverged");
        }
    }
}

#[test]
fn partitioned_hash_with_tiny_workspace_still_correct() {
    // Workspace so small that the RID set must split into many partitions.
    let (mut db, w) = build(800, 1 << 20, false);
    let d = w.delete_set(0.5, 2);
    let plan = plan_with(
        IndexMethod::PartitionedHash { partitions: 16 },
        TableMethod::Merge { presort: true },
    );
    let out = strategy::vertical(&mut db, w.tid, &d, &plan, ReorgPolicy::FreeAtEmpty, 1).unwrap();
    assert_eq!(out.deleted.len(), d.len());
    db.check_consistency(w.tid).unwrap();
}

#[test]
fn clustered_probe_plan_elides_rid_sort_and_is_correct() {
    let (mut db, w) = build(700, 2 << 20, true);
    let d = w.delete_set(0.3, 3);
    let table = db.table(w.tid).unwrap();
    let plan = plan_delete(table, 0, d.len(), db.workspace().capacity()).unwrap();
    assert_eq!(plan.table, TableMethod::Merge { presort: false });
    let out = strategy::vertical(&mut db, w.tid, &d, &plan, ReorgPolicy::FreeAtEmpty, 1).unwrap();
    assert_eq!(out.deleted.len(), d.len());
    db.check_consistency(w.tid).unwrap();
}

#[test]
fn planner_adapts_to_workspace_size() {
    let (db, _) = build(500, 16 << 20, false);
    let table = db.table(0).unwrap();
    // Huge workspace: classic hash everywhere.
    let plan = plan_delete(table, 0, 10_000, 16 << 20).unwrap();
    assert!(plan
        .index_steps
        .iter()
        .all(|s| s.method == IndexMethod::ClassicHash));
    // Medium: partitioned.
    let plan = plan_delete(table, 0, 100_000, 512 * 1024).unwrap();
    assert!(matches!(
        plan.index_steps[0].method,
        IndexMethod::PartitionedHash { .. }
    ));
    // Tiny: sort/merge fallback.
    let plan = plan_delete(table, 0, 1_000_000, 16 * 1024).unwrap();
    assert!(matches!(
        plan.index_steps[0].method,
        IndexMethod::SortMerge { .. }
    ));
}

#[test]
fn explain_renders_plan_dag() {
    let (db, _) = build(300, 2 << 20, false);
    let table = db.table(0).unwrap();
    let plan = plan_delete(table, 0, 50, 2 << 20).unwrap();
    let text = plan.render(table);
    assert!(text.contains("bd["), "{text}");
    assert!(text.contains("I_A"));
    assert!(text.contains("I_B"));
    assert!(text.contains("I_C"));
}
