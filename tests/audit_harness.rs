//! Self-tests for the differential audit harness: a clean database audits
//! clean, and a single planted corruption in any structure produces a
//! report naming that structure.

use bulk_delete::prelude::*;

use bd_workload::TableSpec;

fn build(n_rows: usize, seed: u64) -> (Database, bd_workload::Workload) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let w = TableSpec::tiny(n_rows)
        .with_seed(seed)
        .build(&mut db)
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    db.create_hash_index(w.tid, 2).unwrap();
    (db, w)
}

fn structures(report: &AuditReport) -> Vec<&str> {
    report
        .findings
        .iter()
        .map(|f| f.structure.as_str())
        .collect()
}

#[test]
fn clean_database_audits_clean() {
    let (mut db, w) = build(400, 41);
    let d = w.delete_set(0.3, 42);
    db.delete_in(w.tid, 0, &d).unwrap();
    let report = audit_table(&db, w.tid).unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.render(), "audit clean: no divergence");
    // A database is always equivalent to itself.
    let eq = audit_equivalence(&db, &db, w.tid).unwrap();
    assert!(eq.is_clean(), "{eq}");
}

#[test]
fn heap_delete_behind_indices_is_caught() {
    let (mut db, w) = build(300, 43);
    // Remove one record from the heap without maintaining any index.
    let victim = db.table(w.tid).unwrap().heap.dump().unwrap()[7].0;
    db.table_mut(w.tid).unwrap().heap.delete(victim).unwrap();

    let report = audit_table(&db, w.tid).unwrap();
    assert!(!report.is_clean());
    let hit = structures(&report);
    // Every index still holds an entry for the vanished record.
    assert!(hit.contains(&"btree I_A"), "structures: {hit:?}");
    assert!(hit.contains(&"btree I_B"), "structures: {hit:?}");
    assert!(hit.contains(&"hash H_C"), "structures: {hit:?}");
    let detail = &report.findings[0].detail;
    assert!(detail.contains("only in index"), "detail: {detail}");
}

#[test]
fn phantom_btree_entry_is_caught() {
    let (mut db, w) = build(300, 47);
    // Plant a single entry in I_B that no heap record backs.
    db.table_mut(w.tid).unwrap().indices[1]
        .tree
        .insert(999_999, Rid::new(0, 0))
        .unwrap();

    let report = audit_table(&db, w.tid).unwrap();
    assert_eq!(structures(&report), vec!["btree I_B"], "{report}");
    let detail = &report.findings[0].detail;
    assert!(detail.contains("only in index"), "detail: {detail}");
    assert!(detail.contains("999999"), "detail: {detail}");
}

#[test]
fn phantom_hash_entry_is_caught() {
    let (mut db, w) = build(300, 53);
    db.table_mut(w.tid).unwrap().hash_indices[0]
        .index
        .insert(888_888, Rid::new(0, 0))
        .unwrap();

    let report = audit_table(&db, w.tid).unwrap();
    assert_eq!(structures(&report), vec!["hash H_C"], "{report}");
    assert!(report.findings[0].detail.contains("only in index"));
}

#[test]
fn audit_equivalence_detects_single_entry_divergence() {
    let (mut db_a, w_a) = build(500, 59);
    let (mut db_b, w_b) = build(500, 59);
    let d = w_a.delete_set(0.2, 60);
    assert_eq!(d, w_b.delete_set(0.2, 60), "same seed, same delete set");
    strategy::horizontal(&mut db_a, w_a.tid, 0, &d, true).unwrap();
    strategy::vertical_sort_merge(&mut db_b, w_b.tid, 0, &d, 1).unwrap();
    let eq = audit_equivalence(&db_a, &db_b, w_a.tid).unwrap();
    assert!(eq.is_clean(), "different strategies must agree: {eq}");

    // Remove exactly one B-tree entry from side B, consistently with B's
    // own heap left alone — a divergence only the differential check sees.
    let (key, rid) = {
        let table = db_b.table(w_b.tid).unwrap();
        let (rid, bytes) = table.heap.dump().unwrap().swap_remove(11);
        (table.schema.decode(&bytes).attr(0), rid)
    };
    assert!(db_b.table_mut(w_b.tid).unwrap().indices[0]
        .tree
        .delete_one(key, rid)
        .unwrap());

    let eq = audit_equivalence(&db_a, &db_b, w_a.tid).unwrap();
    assert!(!eq.is_clean());
    assert!(
        structures(&eq).contains(&"btree I_A"),
        "must name the corrupted tree: {eq}"
    );
    assert!(eq.render().contains("divergence"));
    // The report converts into a test-friendly error.
    assert!(eq.into_result().is_err());
}

#[test]
fn physical_shape_mode_separates_layout_from_logic() {
    use bd_core::{audit_equivalence_with, AuditOptions, RebuildMode};

    // Same workload under the same strategy twice: deterministic layout,
    // clean even in shape mode.
    let (mut db_a, w) = build(1200, 71);
    let (mut db_b, _) = build(1200, 71);
    let d = w.delete_set(0.25, 72);
    strategy::vertical_sort_merge(&mut db_a, w.tid, 0, &d, 1).unwrap();
    strategy::vertical_sort_merge(&mut db_b, w.tid, 0, &d, 1).unwrap();
    let eq =
        audit_equivalence_with(&db_a, &db_b, w.tid, AuditOptions::with_physical_shape()).unwrap();
    assert!(eq.is_clean(), "same strategy must be deterministic: {eq}");

    // Vertical (in-place leaf edits) vs drop&create (packed bulk-load
    // rebuild): logically equivalent, physically different layouts.
    let (mut db_c, _) = build(1200, 71);
    strategy::drop_create(&mut db_c, w.tid, 0, &d, RebuildMode::BulkLoad, 1).unwrap();
    let logical = audit_equivalence(&db_a, &db_c, w.tid).unwrap();
    assert!(logical.is_clean(), "strategies agree logically: {logical}");
    let shaped =
        audit_equivalence_with(&db_a, &db_c, w.tid, AuditOptions::with_physical_shape()).unwrap();
    assert!(!shaped.is_clean(), "rebuild must repack the leaves");
    assert!(
        structures(&shaped).iter().all(|s| s.ends_with("(shape)")),
        "only shape findings expected: {shaped}"
    );
}

#[test]
fn shadow_detects_unmirrored_mutations() {
    let (mut db, w) = build(250, 61);
    let shadow = ShadowDb::mirror_of(&db, w.tid).unwrap();
    assert!(shadow.diff(&db, w.tid).unwrap().is_clean());
    assert_eq!(shadow.len(w.tid), 250);

    // Engine-side delete the model never hears about.
    let d = w.delete_set(0.1, 62);
    db.delete_in(w.tid, 0, &d).unwrap();
    let report = shadow.diff(&db, w.tid).unwrap();
    assert!(!report.is_clean());
    let hit = structures(&report);
    assert!(hit.contains(&"heap"), "structures: {hit:?}");
    assert!(report.render().contains("model"));
}

#[test]
fn shadow_mirrors_full_workload() {
    let (mut db, w) = build(250, 67);
    let mut shadow = ShadowDb::mirror_of(&db, w.tid).unwrap();
    // Mirrored deletes and inserts keep the diff clean throughout.
    let d = w.delete_set(0.4, 68);
    db.delete_in(w.tid, 0, &d).unwrap();
    shadow.delete_in(w.tid, 0, &d);
    assert!(shadow.diff(&db, w.tid).unwrap().is_clean());

    for i in 0..50u64 {
        let t = Tuple::new(vec![5_000_000 + i, i % 13, i % 5, i]);
        let rid = db.insert(w.tid, &t).unwrap();
        shadow.insert(w.tid, rid, t);
    }
    let report = shadow.diff(&db, w.tid).unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(shadow.len(w.tid), db.table(w.tid).unwrap().heap.len());
}
