//! Referential-integrity tests: constraints are checked vertically and
//! *early* — a RESTRICT violation aborts before any destructive work, and
//! CASCADE bulk-deletes the child tables first.

use bulk_delete::prelude::*;

use bd_core::ForeignKey;

/// customers(id, region) ← orders(id, customer_id) ← lineitems(id, order_id)
fn shop() -> (Database, TableId, TableId, TableId) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let customers = db.create_table("customers", Schema::new(2, 32));
    db.create_index(customers, IndexDef::secondary(0).unique())
        .unwrap();
    let orders = db.create_table("orders", Schema::new(2, 32));
    db.create_index(orders, IndexDef::secondary(0).unique())
        .unwrap();
    db.create_index(orders, IndexDef::secondary(1)).unwrap(); // customer_id
    let lineitems = db.create_table("lineitems", Schema::new(2, 32));
    db.create_index(lineitems, IndexDef::secondary(0).unique())
        .unwrap();
    db.create_index(lineitems, IndexDef::secondary(1)).unwrap(); // order_id

    for c in 0..100u64 {
        db.insert(customers, &Tuple::new(vec![c, c % 7])).unwrap();
    }
    let mut order_id = 0u64;
    let mut line_id = 0u64;
    for c in 0..100u64 {
        // Customers 0..50 have orders; each order has 2 line items.
        if c < 50 {
            for _ in 0..3 {
                db.insert(orders, &Tuple::new(vec![order_id, c])).unwrap();
                for _ in 0..2 {
                    db.insert(lineitems, &Tuple::new(vec![line_id, order_id]))
                        .unwrap();
                    line_id += 1;
                }
                order_id += 1;
            }
        }
    }
    (db, customers, orders, lineitems)
}

fn state(db: &Database, tid: TableId) -> Vec<Vec<u64>> {
    let t = db.table(tid).unwrap();
    let mut rows: Vec<Vec<u64>> = t
        .heap
        .scan()
        .map(|(_, b)| t.schema.decode(&b).attrs)
        .collect();
    rows.sort_unstable();
    rows
}

#[test]
fn restrict_aborts_before_any_work() {
    let (mut db, customers, orders, _) = shop();
    db.add_foreign_key(ForeignKey::restrict("fk_orders", customers, 0, orders, 1));
    let before_customers = state(&db, customers);
    let before_orders = state(&db, orders);

    // Customers 10..20 have orders: RESTRICT must fire.
    let d: Vec<u64> = (10..20).collect();
    let err =
        strategy::vertical_with_constraints(&mut db, customers, 0, &d, ReorgPolicy::FreeAtEmpty)
            .unwrap_err();
    match err {
        DbError::ForeignKeyViolation {
            referencing_rows, ..
        } => {
            assert_eq!(referencing_rows, 10 * 3)
        }
        e => panic!("expected FK violation, got {e}"),
    }
    // Nothing changed anywhere — the check ran before the deletes.
    assert_eq!(state(&db, customers), before_customers);
    assert_eq!(state(&db, orders), before_orders);
    db.check_consistency(customers).unwrap();
}

#[test]
fn restrict_allows_unreferenced_keys() {
    let (mut db, customers, orders, _) = shop();
    db.add_foreign_key(ForeignKey::restrict("fk_orders", customers, 0, orders, 1));
    // Customers 80..90 have no orders.
    let d: Vec<u64> = (80..90).collect();
    let out =
        strategy::vertical_with_constraints(&mut db, customers, 0, &d, ReorgPolicy::FreeAtEmpty)
            .unwrap();
    assert_eq!(out.deleted.len(), 10);
    db.check_consistency(customers).unwrap();
}

#[test]
fn cascade_deletes_children_first_transitively() {
    let (mut db, customers, orders, lineitems) = shop();
    db.add_foreign_key(ForeignKey::cascade("fk_orders", customers, 0, orders, 1));
    db.add_foreign_key(ForeignKey::cascade("fk_lines", orders, 0, lineitems, 1));

    let d: Vec<u64> = (0..10).collect(); // 10 customers, 30 orders, 60 items
    let out =
        strategy::vertical_with_constraints(&mut db, customers, 0, &d, ReorgPolicy::FreeAtEmpty)
            .unwrap();
    assert_eq!(out.deleted.len(), 10);
    assert_eq!(db.table(customers).unwrap().heap.len(), 90);
    assert_eq!(db.table(orders).unwrap().heap.len(), 150 - 30);
    assert_eq!(db.table(lineitems).unwrap().heap.len(), 300 - 60);
    for t in [customers, orders, lineitems] {
        db.check_consistency(t).unwrap();
    }
    // No dangling references remain.
    let orders_t = db.table(orders).unwrap();
    for (_, bytes) in orders_t.heap.scan() {
        let cust = orders_t.schema.attr_of(&bytes, 1);
        assert!(!db.lookup(customers, 0, cust).unwrap().is_empty());
    }
}

#[test]
fn cascade_then_restrict_deeper_aborts_everything_upfront() {
    let (mut db, customers, orders, lineitems) = shop();
    db.add_foreign_key(ForeignKey::cascade("fk_orders", customers, 0, orders, 1));
    db.add_foreign_key(ForeignKey::restrict("fk_lines", orders, 0, lineitems, 1));

    let before = (
        state(&db, customers),
        state(&db, orders),
        state(&db, lineitems),
    );
    let d: Vec<u64> = (0..5).collect();
    let err =
        strategy::vertical_with_constraints(&mut db, customers, 0, &d, ReorgPolicy::FreeAtEmpty)
            .unwrap_err();
    assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
    // Early checking: neither parent nor intermediate child was touched.
    assert_eq!(state(&db, customers), before.0);
    assert_eq!(state(&db, orders), before.1);
    assert_eq!(state(&db, lineitems), before.2);
}

#[test]
fn constraints_on_other_parent_attrs_use_victim_row_values() {
    let (mut db, customers, orders, _) = shop();
    // Constraint hangs off attribute 1 (region) of customers; the delete is
    // on attr 0, but the victims' region values (c % 7 in 0..7) are
    // referenced by orders.customer_id (0..50), so RESTRICT fires.
    db.add_foreign_key(ForeignKey::restrict("fk_region", customers, 1, orders, 1));
    let d: Vec<u64> = (10..20).collect();
    let err =
        strategy::vertical_with_constraints(&mut db, customers, 0, &d, ReorgPolicy::FreeAtEmpty)
            .unwrap_err();
    assert!(matches!(err, DbError::ForeignKeyViolation { .. }));

    // With victims whose region values nothing references, it passes:
    // rebuild with regions >= 1000 for customers 90..100.
    let (mut db, customers, orders, _) = shop();
    db.add_foreign_key(ForeignKey::restrict("fk_region", customers, 1, orders, 1));
    let _ = orders;
    // Give customers 90..100 unreferenced region values via delete+insert.
    for c in 90..100u64 {
        let rid = db.lookup(customers, 0, c).unwrap()[0];
        let mut t = db.get(customers, rid).unwrap();
        strategy::horizontal(&mut db, customers, 0, &[c], true).unwrap();
        t.attrs[1] = 1000 + c;
        db.insert(customers, &t).unwrap();
    }
    let d: Vec<u64> = (90..100).collect();
    let out =
        strategy::vertical_with_constraints(&mut db, customers, 0, &d, ReorgPolicy::FreeAtEmpty)
            .unwrap();
    assert_eq!(out.deleted.len(), 10);
}

#[test]
fn self_referencing_cascade_terminates() {
    // employees(id, manager_id) with manager_id -> id CASCADE.
    let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
    let emp = db.create_table("emp", Schema::new(2, 32));
    db.create_index(emp, IndexDef::secondary(0).unique())
        .unwrap();
    db.create_index(emp, IndexDef::secondary(1)).unwrap();
    // Chain: 0 manages 1 manages 2 ... (manager of 0 is 999 = nobody).
    for i in 0..50u64 {
        let mgr = if i == 0 { 999 } else { i - 1 };
        db.insert(emp, &Tuple::new(vec![i, mgr])).unwrap();
    }
    db.add_foreign_key(ForeignKey::cascade("fk_mgr", emp, 0, emp, 1));
    // Deleting employee 0 cascades to 1 (whose manager is 0)… but the
    // cycle guard bounds each edge to one cascade per statement.
    let out = strategy::vertical_with_constraints(&mut db, emp, 0, &[0], ReorgPolicy::FreeAtEmpty)
        .unwrap();
    assert!(!out.deleted.is_empty());
    db.check_consistency(emp).unwrap();
}
