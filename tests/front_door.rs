//! Tests of the front-door API: `Database::delete_in` (plan + constraints +
//! vertical execution in one call).

use bulk_delete::prelude::*;

use bd_core::ForeignKey;
use bd_workload::TableSpec;

#[test]
fn delete_in_plans_and_executes() {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let w = TableSpec::tiny(1000).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    let d = w.delete_set(0.3, 1);
    let out = db.delete_in(w.tid, 0, &d).unwrap();
    assert_eq!(out.deleted.len(), d.len());
    assert_eq!(out.report.strategy, "bulk delete");
    db.check_consistency(w.tid).unwrap();
}

#[test]
fn delete_in_enforces_registered_constraints() {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let parent = db.create_table("p", Schema::new(2, 32));
    db.create_index(parent, IndexDef::secondary(0).unique())
        .unwrap();
    let child = db.create_table("c", Schema::new(2, 32));
    db.create_index(child, IndexDef::secondary(0).unique())
        .unwrap();
    db.create_index(child, IndexDef::secondary(1)).unwrap();
    for i in 0..50u64 {
        db.insert(parent, &Tuple::new(vec![i, i])).unwrap();
        if i < 25 {
            db.insert(child, &Tuple::new(vec![1000 + i, i])).unwrap();
        }
    }
    db.add_foreign_key(ForeignKey::restrict("fk", parent, 0, child, 1));
    // Referenced keys: blocked.
    assert!(matches!(
        db.delete_in(parent, 0, &[3, 4]),
        Err(DbError::ForeignKeyViolation { .. })
    ));
    // Unreferenced keys: fine.
    let out = db.delete_in(parent, 0, &[40, 41]).unwrap();
    assert_eq!(out.deleted.len(), 2);
    db.check_consistency(parent).unwrap();
    db.check_consistency(child).unwrap();
}

#[test]
fn delete_in_without_probe_index_fails() {
    let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
    let w = TableSpec::tiny(100).build(&mut db).unwrap();
    assert!(matches!(
        db.delete_in(w.tid, 0, &[10]),
        Err(DbError::NoProbeIndex { attr: 0 })
    ));
}

#[test]
fn delete_in_dedups_its_key_list() {
    let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
    let w = TableSpec::tiny(200).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    let k = w.a_values[0];
    let out = db.delete_in(w.tid, 0, &[k, k, k]).unwrap();
    assert_eq!(out.deleted.len(), 1);
    db.check_consistency(w.tid).unwrap();
}
