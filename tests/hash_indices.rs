//! Hash indices through every code path — "in our prototype, other kinds
//! of indices are updated in the traditional way" (§5): the vertical bulk
//! delete must leave hash indices exactly as consistent as B-tree indices,
//! at traditional (per-record) cost.

use bulk_delete::prelude::*;

use bd_core::bulk_update;
use bd_workload::TableSpec;

fn build(n: usize) -> (Database, bd_workload::Workload) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let w = TableSpec::tiny(n).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    db.create_hash_index(w.tid, 2).unwrap(); // H_C
    db.create_hash_index(w.tid, 3).unwrap(); // H_D
    (db, w)
}

#[test]
fn hash_index_lookup_after_build() {
    let (db, w) = build(500);
    let table = db.table(w.tid).unwrap();
    let h = table.hash_index_on(2).unwrap();
    assert_eq!(h.index.len(), 500);
    // Spot-check a few rows.
    for (rid, bytes) in table.heap.scan().take(20) {
        let key = table.schema.attr_of(&bytes, 2);
        assert!(h.index.search(key).unwrap().contains(&rid));
    }
}

#[test]
fn every_strategy_maintains_hash_indices() {
    type Runner = Box<dyn Fn(&mut Database, TableId, &[Key])>;
    let runners: Vec<(&str, Runner)> = vec![
        (
            "horizontal",
            Box::new(|db, tid, d| {
                strategy::horizontal(db, tid, 0, d, true).unwrap();
            }),
        ),
        (
            "drop&create",
            Box::new(|db, tid, d| {
                strategy::drop_create(db, tid, 0, d, RebuildMode::BulkLoad, 1).unwrap();
            }),
        ),
        (
            "vertical",
            Box::new(|db, tid, d| {
                strategy::vertical_sort_merge(db, tid, 0, d, 1).unwrap();
            }),
        ),
    ];
    for (name, run) in runners {
        let (mut db, w) = build(800);
        let d = w.delete_set(0.25, 3);
        run(&mut db, w.tid, &d);
        db.check_consistency(w.tid).unwrap();
        let table = db.table(w.tid).unwrap();
        assert_eq!(
            table.hash_index_on(2).unwrap().index.len(),
            800 - d.len(),
            "{name}: hash index count wrong"
        );
    }
}

#[test]
fn vertical_report_shows_traditional_hash_phase() {
    let (mut db, w) = build(600);
    let d = w.delete_set(0.2, 7);
    let out = strategy::vertical_sort_merge(&mut db, w.tid, 0, &d, 1).unwrap();
    let phases: Vec<&str> = out.report.phases.iter().map(|p| p.name.as_str()).collect();
    assert!(
        phases
            .iter()
            .any(|p| p.contains("H_C") && p.contains("traditional")),
        "phases: {phases:?}"
    );
}

#[test]
fn bulk_update_maintains_hash_indices() {
    let (mut db, w) = build(400);
    let keys: Vec<u64> = w.a_values.iter().copied().take(100).collect();
    let out = bulk_update(&mut db, w.tid, 0, &keys, |t| t.attrs[2] += 777_000_000).unwrap();
    assert_eq!(out.updated, 100);
    db.check_consistency(w.tid).unwrap();
    let table = db.table(w.tid).unwrap();
    let h = table.hash_index_on(2).unwrap();
    // Every updated row is findable under its new C value.
    for &k in keys.iter().take(10) {
        let rid = db.lookup(w.tid, 0, k).unwrap()[0];
        let c = db.get(w.tid, rid).unwrap().attr(2);
        assert!(c >= 777_000_000);
        assert!(h.index.search(c).unwrap().contains(&rid));
    }
}

#[test]
fn concurrent_bulk_delete_keeps_hash_indices_consistent() {
    let (db, w) = build(2000);
    let victims: Vec<u64> = w.a_values.iter().copied().step_by(3).collect();
    let tid = w.tid;
    let tdb = bd_txn::TxnDb::new(db);
    std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let v = victims.clone();
            s.spawn(move || {
                tdb.bulk_delete(tid, 0, &v, bd_txn::PropagationMode::SideFile)
                    .unwrap()
            })
        };
        let upd = {
            let tdb = tdb.clone();
            s.spawn(move || {
                for i in 0..40u64 {
                    let txn = tdb.begin();
                    tdb.insert(
                        txn,
                        tid,
                        &Tuple::new(vec![5_000_001 + i * 2, 6_000_001 + i * 2, i, i]),
                    )
                    .unwrap();
                    tdb.commit(txn);
                }
            })
        };
        bulk.join().unwrap();
        upd.join().unwrap();
    });
    tdb.with(|db| db.check_consistency(tid).unwrap());
}

#[test]
fn recovery_keeps_hash_indices_consistent() {
    use bd_wal::{recover, run_bulk_delete, CrashInjector, CrashSite, LogManager};
    let (mut db, w) = build(1500);
    let victims: Vec<u64> = w.a_values.iter().copied().step_by(4).collect();
    let log = LogManager::new();
    let err = run_bulk_delete(
        &mut db,
        w.tid,
        0,
        &victims,
        &log,
        CrashInjector::at(CrashSite::MidStructure(1)),
    )
    .unwrap_err();
    assert!(matches!(err, bd_wal::WalError::Crashed(_)));
    db.pool().crash();
    // Restore the in-memory hash-index counters from disk (the catalog's
    // recount step, analogous to heap/tree recount).
    let n = recover(&mut db, w.tid, &log, &[]).unwrap();
    assert_eq!(n, victims.len());
    db.check_consistency(w.tid).unwrap();
}
