//! The phase-task executor under parallelism: serial and parallel runs of
//! the vertical bulk delete must produce the identical physical state, the
//! phase breakdown must be deterministic, a failing arm must abort the run
//! cleanly, and §3.1's unique-first sequencing must survive the fan-out.

use bulk_delete::prelude::*;

use bd_storage::{FaultPlan, FaultSpec, StorageError};

fn build(n_rows: usize, seed: u64) -> (Database, Workload) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
    let w = TableSpec::tiny(n_rows)
        .with_seed(seed)
        .build(&mut db)
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    db.create_hash_index(w.tid, 3).unwrap();
    (db, w)
}

#[test]
fn parallel_run_matches_serial_physical_state() {
    let (mut db_serial, w) = build(3_000, 11);
    let (mut db_parallel, _) = build(3_000, 11);
    let d = w.delete_set(0.2, 12);

    let serial = strategy::vertical_sort_merge(&mut db_serial, w.tid, 0, &d, 1).unwrap();
    let parallel = strategy::vertical_sort_merge(&mut db_parallel, w.tid, 0, &d, 3).unwrap();

    assert_eq!(serial.deleted.len(), parallel.deleted.len());
    assert_eq!(serial.deleted, parallel.deleted, "same rows, same order");
    db_parallel.check_consistency(w.tid).unwrap();

    let eq = audit_equivalence(&db_serial, &db_parallel, w.tid).unwrap();
    assert!(eq.is_clean(), "serial vs parallel diverged: {eq}");

    // Clock semantics: the parallel report carries both clocks, and with
    // two secondary-index arms plus a hash arm overlapping, the critical
    // path is strictly below the serial clock.
    assert_eq!(serial.report.workers, 1);
    assert_eq!(parallel.report.workers, 3);
    assert!(
        (serial.report.critical_path_ms() - serial.report.sim_ms()).abs() < 1e-9,
        "serial run: both clocks agree"
    );
    assert!(
        parallel.report.critical_path_ms() < parallel.report.sim_ms(),
        "critical path {} must be strictly below serial clock {}",
        parallel.report.critical_path_ms(),
        parallel.report.sim_ms(),
    );
}

#[test]
fn phase_breakdown_order_is_deterministic() {
    let names = |workers: usize| -> (Vec<String>, Vec<Option<u32>>) {
        let (mut db, w) = build(2_000, 21);
        let d = w.delete_set(0.25, 22);
        let out = strategy::vertical_sort_merge(&mut db, w.tid, 0, &d, workers).unwrap();
        (
            out.report.phases.iter().map(|p| p.name.clone()).collect(),
            out.report.phases.iter().map(|p| p.group).collect(),
        )
    };
    let (serial_names, serial_groups) = names(1);
    let (a_names, a_groups) = names(3);
    let (b_names, b_groups) = names(3);
    // Same plan → same rows in the same order, regardless of worker count
    // or which arm happens to finish first.
    assert_eq!(serial_names, a_names);
    assert_eq!(a_names, b_names);
    assert_eq!(serial_groups, a_groups);
    assert_eq!(a_groups, b_groups);
    // The serial prefix is ungrouped; the fan-out arms share one group.
    assert!(a_names[0].contains("sort(D)"));
    assert_eq!(a_groups[0], None);
    let arm_groups: Vec<Option<u32>> = a_groups.iter().copied().filter(|g| g.is_some()).collect();
    assert_eq!(arm_groups.len(), 3, "two index arms + one hash arm");
    assert!(arm_groups.iter().all(|g| *g == arm_groups[0]));
}

#[test]
fn unique_arms_run_serially_before_the_fan_out() {
    let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
    let tid = db.create_table("R", Schema::new(3, 64));
    db.create_index(tid, IndexDef::secondary(0).unique())
        .unwrap();
    db.create_index(tid, IndexDef::secondary(1).unique())
        .unwrap();
    db.create_index(tid, IndexDef::secondary(2)).unwrap();
    for i in 0..2_000u64 {
        db.insert(tid, &Tuple::new(vec![i, 1_000_000 + i, i % 97]))
            .unwrap();
    }
    let d: Vec<u64> = (0..2_000).step_by(4).collect();
    let (_, out) =
        strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 2).unwrap();
    db.check_consistency(tid).unwrap();

    let phases = &out.report.phases;
    let pos_of = |needle: &str| {
        phases
            .iter()
            .position(|p| p.name.contains(needle))
            .unwrap_or_else(|| panic!("phase {needle} missing"))
    };
    // I_B is unique: §3.1 sequences its arm before the concurrent group,
    // and it runs on the caller's thread (no group tag). I_C is the only
    // remaining arm, so it forms the fan-out group.
    let unique_arm = pos_of("bd I_B");
    let fan_arm = pos_of("bd I_C");
    assert!(phases[unique_arm].group.is_none(), "unique arm is serial");
    assert!(phases[fan_arm].group.is_some(), "non-unique arm fans out");
    assert!(unique_arm < fan_arm, "unique arm precedes the fan-out");
}

#[test]
fn transient_fault_degrades_but_completes_bit_identical() {
    let (mut db_ref, w) = build(3_000, 41);
    let (mut db_faulty, _) = build(3_000, 41);
    let d = w.delete_set(0.3, 42);

    let clean = strategy::vertical_sort_merge(&mut db_ref, w.tid, 0, &d, 3).unwrap();

    // A transient fault at a leaf of I_B, sized to outlast the buffer
    // pool's bounded retry (4 attempts per pin): the arm dies concurrently,
    // its siblings are cancelled, and the executor's serial re-run absorbs
    // the remaining failures — the statement must still complete.
    let bad = db_faulty
        .table(w.tid)
        .unwrap()
        .index_on(1)
        .unwrap()
        .tree
        .first_leaf()
        .unwrap();
    db_faulty.pool().with_disk(|disk| {
        disk.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(bad).transient(6)))
    });

    let faulty = strategy::vertical_sort_merge(&mut db_faulty, w.tid, 0, &d, 3)
        .expect("transient fault must not abort the statement");

    assert_eq!(clean.deleted, faulty.deleted, "same rows deleted");
    assert!(faulty.report.io.retries > 0, "backoff retries recorded");
    assert_eq!(faulty.report.events.len(), 1, "degradation surfaced");
    assert!(faulty.report.events[0].recovered, "serial re-run recovered");
    assert!(
        faulty.report.summary().contains("DEGRADED"),
        "summary flags the degraded run: {}",
        faulty.report.summary()
    );
    db_faulty.check_consistency(w.tid).unwrap();
    let eq = audit_equivalence(&db_ref, &db_faulty, w.tid).unwrap();
    assert!(
        eq.is_clean(),
        "faulty run diverged from fault-free run: {eq}"
    );
}

#[test]
fn failing_arm_aborts_run_without_poisoning_the_pool() {
    let (mut db, w) = build(3_000, 31);
    let d = w.delete_set(0.3, 32);

    // Inject the fault at a leaf of I_B — read only by that fan-out arm.
    let bad = db
        .table(w.tid)
        .unwrap()
        .index_on(1)
        .unwrap()
        .tree
        .first_leaf()
        .unwrap();
    db.pool()
        .with_disk(|disk| disk.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(bad))));
    db.pool().set_retry_policy(bd_storage::RetryPolicy::none());

    let err = strategy::vertical_sort_merge(&mut db, w.tid, 0, &d, 3).unwrap_err();
    assert_eq!(
        err,
        DbError::Storage(StorageError::InjectedFault(bad)),
        "the injected error surfaces, not the siblings' Cancelled"
    );
    assert_eq!(db.pool().pinned_frames(), 0, "no pins survive the abort");

    // The pool keeps working once the fault is cleared, and the audit can
    // inspect the survivor state (heap and probe index are past their
    // passes; the failed arm's index still holds the dead entries, which
    // the audit reports as findings rather than crashing).
    db.pool().with_disk(|disk| disk.clear_fault_plan());
    let report = audit_table(&db, w.tid).unwrap();
    assert!(
        !report.is_clean(),
        "interrupted run must leave an auditable divergence"
    );
}

/// The historical serial/parallel entry-point pairs survive as deprecated
/// shims over the collapsed `workers: usize` API; a shim run must be
/// physically identical to the base-name run.
#[test]
#[allow(deprecated)]
fn deprecated_parallel_shims_match_the_collapsed_entry_points() {
    let (mut db_base, w) = build(2_000, 31);
    let (mut db_shim, _) = build(2_000, 31);
    let d = w.delete_set(0.2, 32);

    let base = strategy::vertical_sort_merge(&mut db_base, w.tid, 0, &d, 2).unwrap();
    let shim = strategy::vertical_sort_merge_parallel(&mut db_shim, w.tid, 0, &d, 2).unwrap();
    assert_eq!(base.deleted, shim.deleted);
    let eq = audit_equivalence(&db_base, &db_shim, w.tid).unwrap();
    assert!(eq.is_clean(), "shim diverged from base entry point: {eq}");

    let (mut db_base, _) = build(2_000, 31);
    let (mut db_shim, _) = build(2_000, 31);
    let base = strategy::drop_create(&mut db_base, w.tid, 0, &d, RebuildMode::BulkLoad, 2).unwrap();
    let shim = strategy::drop_create_parallel(&mut db_shim, w.tid, 0, &d, RebuildMode::BulkLoad, 2)
        .unwrap();
    assert_eq!(base.deleted, shim.deleted);
    let eq = audit_equivalence(&db_base, &db_shim, w.tid).unwrap();
    assert!(eq.is_clean(), "drop_create shim diverged: {eq}");

    let (mut db_base, _) = build(2_000, 31);
    let (mut db_shim, _) = build(2_000, 31);
    let (_, base) =
        strategy::vertical_auto(&mut db_base, w.tid, 0, &d, ReorgPolicy::FreeAtEmpty, 2).unwrap();
    let (_, shim) =
        strategy::vertical_auto_parallel(&mut db_shim, w.tid, 0, &d, ReorgPolicy::FreeAtEmpty, 2)
            .unwrap();
    assert_eq!(base.deleted, shim.deleted);
    let eq = audit_equivalence(&db_base, &db_shim, w.tid).unwrap();
    assert!(eq.is_clean(), "vertical_auto shim diverged: {eq}");
}
