//! Bulk UPDATE tests: delete + insert on exactly the changed indices,
//! in-place heap rewrites, early unique validation.

use bulk_delete::prelude::*;

use bd_core::bulk_update;
use bd_workload::TableSpec;

fn build(n: usize) -> (Database, bd_workload::Workload) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let w = TableSpec::tiny(n).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    (db, w)
}

#[test]
fn update_matches_per_row_loop() {
    let (mut db, w) = build(1000);
    let keys: Vec<u64> = w.a_values.iter().copied().step_by(3).collect();

    // Reference: per-row delete + re-insert through the engine.
    let reference = {
        let (mut db2, w2) = build(1000);
        for &k in &keys {
            let rid = db2.lookup(w2.tid, 0, k).unwrap()[0];
            let mut t = db2.get(w2.tid, rid).unwrap();
            bd_core::strategy::horizontal(&mut db2, w2.tid, 0, &[k], true).unwrap();
            t.attrs[1] += 1_000_000;
            db2.insert(w2.tid, &t).unwrap();
        }
        db2.check_consistency(w2.tid).unwrap();
        let table = db2.table(w2.tid).unwrap();
        let mut rows: Vec<Vec<u64>> = table
            .heap
            .scan()
            .map(|(_, b)| table.schema.decode(&b).attrs)
            .collect();
        rows.sort_unstable();
        rows
    };

    let out = bulk_update(&mut db, w.tid, 0, &keys, |t| t.attrs[1] += 1_000_000).unwrap();
    assert_eq!(out.updated, keys.len());
    assert_eq!(out.index_entries_moved, keys.len()); // only index B changed
    db.check_consistency(w.tid).unwrap();
    let table = db.table(w.tid).unwrap();
    let mut rows: Vec<Vec<u64>> = table
        .heap
        .scan()
        .map(|(_, b)| table.schema.decode(&b).attrs)
        .collect();
    rows.sort_unstable();
    assert_eq!(rows, reference);
}

#[test]
fn rids_survive_updates() {
    let (mut db, w) = build(300);
    let k = w.a_values[42];
    let rid_before = db.lookup(w.tid, 0, k).unwrap()[0];
    bulk_update(&mut db, w.tid, 0, &[k], |t| t.attrs[2] = 999_999_999).unwrap();
    let rid_after = db.lookup(w.tid, 0, k).unwrap()[0];
    assert_eq!(rid_before, rid_after, "in-place update must keep the RID");
    assert_eq!(db.get(w.tid, rid_after).unwrap().attr(2), 999_999_999);
}

#[test]
fn unchanged_indices_are_untouched() {
    let (mut db, w) = build(500);
    let keys: Vec<u64> = w.a_values.iter().copied().take(100).collect();
    let out = bulk_update(&mut db, w.tid, 0, &keys, |t| t.attrs[3] += 7).unwrap();
    // Attribute 3 has no index: zero index maintenance.
    assert_eq!(out.index_entries_moved, 0);
    db.check_consistency(w.tid).unwrap();
}

#[test]
fn updating_the_probe_key_itself_works() {
    let (mut db, w) = build(400);
    let keys: Vec<u64> = w.a_values.iter().copied().take(50).collect();
    let out = bulk_update(&mut db, w.tid, 0, &keys, |t| t.attrs[0] += 100_000_000).unwrap();
    assert_eq!(out.updated, 50);
    db.check_consistency(w.tid).unwrap();
    for &k in &keys {
        assert!(db.lookup(w.tid, 0, k).unwrap().is_empty());
        assert_eq!(db.lookup(w.tid, 0, k + 100_000_000).unwrap().len(), 1);
    }
}

#[test]
fn unique_violation_against_untouched_row_aborts_cleanly() {
    let (mut db, w) = build(300);
    let victim = w.a_values[0];
    let existing = w.a_values[1];
    let before: Vec<Vec<u64>> = {
        let t = db.table(w.tid).unwrap();
        let mut r: Vec<Vec<u64>> = t
            .heap
            .scan()
            .map(|(_, b)| t.schema.decode(&b).attrs)
            .collect();
        r.sort_unstable();
        r
    };
    // Rewriting victim's A to an existing (untouched) A value must fail.
    let err = bulk_update(&mut db, w.tid, 0, &[victim], |t| t.attrs[0] = existing).unwrap_err();
    assert!(matches!(err, DbError::DuplicateKey { attr: 0, .. }));
    // Nothing changed.
    let after: Vec<Vec<u64>> = {
        let t = db.table(w.tid).unwrap();
        let mut r: Vec<Vec<u64>> = t
            .heap
            .scan()
            .map(|(_, b)| t.schema.decode(&b).attrs)
            .collect();
        r.sort_unstable();
        r
    };
    assert_eq!(before, after);
    db.check_consistency(w.tid).unwrap();
}

#[test]
fn swap_within_update_set_is_allowed() {
    let (mut db, w) = build(300);
    let a = w.a_values[0];
    let b = w.a_values[1];
    // Swap the two unique keys in one statement.
    let out = bulk_update(&mut db, w.tid, 0, &[a, b], |t| {
        if t.attr(0) == a {
            t.attrs[0] = b;
        } else {
            t.attrs[0] = a;
        }
    })
    .unwrap();
    assert_eq!(out.updated, 2);
    db.check_consistency(w.tid).unwrap();
}

#[test]
fn duplicate_new_keys_within_set_rejected() {
    let (mut db, w) = build(300);
    let keys: Vec<u64> = w.a_values.iter().copied().take(2).collect();
    let err = bulk_update(&mut db, w.tid, 0, &keys, |t| t.attrs[0] = 424242).unwrap_err();
    assert!(matches!(
        err,
        DbError::DuplicateKey {
            attr: 0,
            key: 424242
        }
    ));
    db.check_consistency(w.tid).unwrap();
}

#[test]
fn noop_update_moves_nothing() {
    let (mut db, w) = build(200);
    let keys: Vec<u64> = w.a_values.iter().copied().take(30).collect();
    let out = bulk_update(&mut db, w.tid, 0, &keys, |_| {}).unwrap();
    assert_eq!(out.updated, 30);
    assert_eq!(out.index_entries_moved, 0);
    db.check_consistency(w.tid).unwrap();
}

#[test]
fn shadow_mirrors_bulk_update() {
    let (mut db, w) = build(800);
    let mut shadow = ShadowDb::mirror_of(&db, w.tid).unwrap();
    assert!(shadow.diff(&db, w.tid).unwrap().is_clean());

    // A non-probe update (only I_B maintenance) and a probe-key rewrite,
    // both mirrored into the model with the same transforms.
    let keys: Vec<u64> = w.a_values.iter().copied().step_by(5).collect();
    let out = bulk_update(&mut db, w.tid, 0, &keys, |t| t.attrs[1] += 2_000_000).unwrap();
    let n = shadow.bulk_update(w.tid, 0, &keys, |t| t.attrs[1] += 2_000_000);
    assert_eq!(out.updated, n, "engine and model update the same rows");
    let report = shadow.diff(&db, w.tid).unwrap();
    assert!(report.is_clean(), "{report}");

    let probe_keys: Vec<u64> = w.a_values.iter().copied().skip(1).step_by(7).collect();
    bulk_update(&mut db, w.tid, 0, &probe_keys, |t| {
        t.attrs[0] += 300_000_000
    })
    .unwrap();
    shadow.bulk_update(w.tid, 0, &probe_keys, |t| t.attrs[0] += 300_000_000);
    let report = shadow.diff(&db, w.tid).unwrap();
    assert!(report.is_clean(), "{report}");

    // An unmirrored update is caught: the model's index derivation and heap
    // rows both disagree with the engine.
    bulk_update(&mut db, w.tid, 0, &[w.a_values[2]], |t| t.attrs[2] = 1).unwrap();
    assert!(!shadow.diff(&db, w.tid).unwrap().is_clean());
}

#[test]
fn update_of_missing_keys_is_noop() {
    let (mut db, w) = build(200);
    let ghosts = w.missing_keys(20, 5);
    let out = bulk_update(&mut db, w.tid, 0, &ghosts, |t| t.attrs[1] = 1).unwrap();
    assert_eq!(out.updated, 0);
    db.check_consistency(w.tid).unwrap();
}
