//! Cost-model accuracy tests: the optimizer's estimates must track the
//! measured simulated time closely enough to rank plans correctly.

use bulk_delete::prelude::*;

use bd_core::{horizontal_cost, plan_cost, plan_delete_costed, plan_sort_merge, CostEnv};
use bd_workload::TableSpec;

fn build(n: usize, n_secondary: usize, mem: usize) -> (Database, bd_workload::Workload) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(mem));
    let w = TableSpec::paper_scaled()
        .with_rows(n)
        .with_seed(5)
        .build(&mut db)
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    for a in 1..=n_secondary {
        w.attach_index(&mut db, IndexDef::secondary(a)).unwrap();
    }
    (db, w)
}

fn env(db: &Database, tid: TableId, n_delete: usize) -> CostEnv {
    CostEnv::of(
        db.table(tid).unwrap(),
        n_delete,
        db.workspace().capacity(),
        db.pool().capacity() * 4096,
    )
}

/// |log2(estimate / measured)| <= log2(limit)
fn within_factor(estimate: f64, measured: f64, limit: f64) -> bool {
    estimate <= measured * limit && measured <= estimate * limit
}

#[test]
fn vertical_estimate_tracks_measurement() {
    for frac in [0.05, 0.20] {
        let (mut db, w) = build(20_000, 2, 1 << 20);
        let d = w.delete_set(frac, 9);
        let plan = plan_sort_merge(db.table(w.tid).unwrap(), 0).unwrap();
        let est = plan_cost(db.table(w.tid).unwrap(), &plan, &env(&db, w.tid, d.len()))
            .unwrap()
            .sim_ms(&CostModel::default());
        let out =
            bd_core::strategy::vertical(&mut db, w.tid, &d, &plan, ReorgPolicy::FreeAtEmpty, 1)
                .unwrap();
        let measured = out.report.sim_ms();
        assert!(
            within_factor(est, measured, 3.0),
            "frac {frac}: estimated {est:.0} ms vs measured {measured:.0} ms"
        );
    }
}

#[test]
fn horizontal_estimate_tracks_measurement() {
    for presort in [false, true] {
        let (mut db, w) = build(20_000, 1, 1 << 20);
        let d = w.delete_set(0.15, 9);
        let est = horizontal_cost(db.table(w.tid).unwrap(), presort, &env(&db, w.tid, d.len()))
            .sim_ms(&CostModel::default());
        let out = bd_core::strategy::horizontal(&mut db, w.tid, 0, &d, presort).unwrap();
        let measured = out.report.sim_ms();
        assert!(
            within_factor(est, measured, 3.0),
            "presort {presort}: estimated {est:.0} ms vs measured {measured:.0} ms"
        );
    }
}

#[test]
fn estimates_rank_vertical_far_below_horizontal() {
    let (db, w) = build(20_000, 2, 1 << 20);
    let d_len = 3_000;
    let e = env(&db, w.tid, d_len);
    let cm = CostModel::default();
    let plan = plan_sort_merge(db.table(w.tid).unwrap(), 0).unwrap();
    let vertical = plan_cost(db.table(w.tid).unwrap(), &plan, &e)
        .unwrap()
        .sim_ms(&cm);
    let horizontal = horizontal_cost(db.table(w.tid).unwrap(), false, &e).sim_ms(&cm);
    assert!(
        vertical * 3.0 < horizontal,
        "optimizer must see the order-of-magnitude gap: {vertical:.0} vs {horizontal:.0}"
    );
}

#[test]
fn costed_planner_returns_executable_cheapest_plan() {
    let (mut db, w) = build(10_000, 2, 1 << 20);
    let d = w.delete_set(0.10, 3);
    let (plan, estimate) = plan_delete_costed(
        db.table(w.tid).unwrap(),
        0,
        d.len(),
        db.workspace().capacity(),
        db.pool().capacity() * 4096,
    )
    .unwrap();
    assert!(estimate.pages_read > 0.0);
    let out = bd_core::strategy::vertical(&mut db, w.tid, &d, &plan, ReorgPolicy::FreeAtEmpty, 1)
        .unwrap();
    assert_eq!(out.deleted.len(), d.len());
    db.check_consistency(w.tid).unwrap();
    // The cost-based choice is at least as cheap (by its own estimate) as
    // forced sort/merge.
    let e = env(&db, w.tid, d.len());
    let cm = CostModel::default();
    let sm = plan_sort_merge(db.table(w.tid).unwrap(), 0).unwrap();
    let sm_cost = plan_cost(db.table(w.tid).unwrap(), &sm, &e)
        .unwrap()
        .sim_ms(&cm);
    let chosen_cost = plan_cost(db.table(w.tid).unwrap(), &plan, &e)
        .unwrap()
        .sim_ms(&cm);
    assert!(chosen_cost <= sm_cost * 1.0001);
}

#[test]
fn estimates_scale_with_delete_fraction_for_horizontal() {
    let (db, w) = build(10_000, 1, 1 << 20);
    let cm = CostModel::default();
    let small = horizontal_cost(db.table(w.tid).unwrap(), false, &env(&db, w.tid, 500)).sim_ms(&cm);
    let large =
        horizontal_cost(db.table(w.tid).unwrap(), false, &env(&db, w.tid, 2_000)).sim_ms(&cm);
    assert!(large > 2.0 * small, "horizontal cost must grow ~linearly");
}
