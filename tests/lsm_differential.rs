//! Differential audit of the LSM engine against the B-tree engine.
//!
//! Both engines implement [`TableEngine`] over the same keyed-table
//! contract, so any workload — random builds, bulk deletes, range
//! deletes, re-inserts — must leave them logically identical. The
//! property tests drive both through the same operation sequence and
//! call [`audit_engine_equivalence`] (sorted-dump diff + each engine's
//! structural self-audit) after every step that can trigger a flush or
//! compaction, plus a clean page-catalog audit on the LSM side.

use std::collections::HashSet;

use proptest::prelude::*;

use bulk_delete::prelude::*;

const RECORD_LEN: usize = 32;

fn engines(memory: usize) -> (BtreeEngine, LsmTable) {
    let schema = Schema::new(3, RECORD_LEN);
    let btree = BtreeEngine::new(schema, memory, 1).unwrap();
    let lsm = LsmTable::new(schema, memory, LsmConfig::tiny());
    (btree, lsm)
}

/// One workload step, applied to both engines.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    BulkDelete(Vec<u64>),
    DeleteRange(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof is unweighted; repeated arms skew the mix
    // toward inserts and point deletes.
    prop_oneof![
        (0u64..400, 0u64..50).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..400, 0u64..50).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..400, 0u64..50).prop_map(|(k, v)| Op::Insert(k, v)),
        prop::collection::vec(0u64..400, 1..40).prop_map(Op::BulkDelete),
        prop::collection::vec(0u64..400, 1..40).prop_map(Op::BulkDelete),
        (0u64..400, 0u64..80).prop_map(|(lo, span)| Op::DeleteRange(lo, lo + span)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random build, delete, and re-insert sequences leave the two
    /// engines logically identical, with clean structural audits.
    #[test]
    fn lsm_and_btree_stay_equivalent(
        initial in prop::collection::vec((0u64..400, 0u64..50), 0..150),
        ops in prop::collection::vec(op_strategy(), 1..25),
    ) {
        let (mut btree, mut lsm) = engines(1 << 20);

        // Seed both with the same deduplicated rows via bulk_load.
        let mut seen = HashSet::new();
        let rows: Vec<Tuple> = initial
            .into_iter()
            .filter(|(k, _)| seen.insert(*k))
            .map(|(k, v)| Tuple::new(vec![k, v, k % 7]))
            .collect();
        btree.bulk_load(&rows).unwrap();
        lsm.bulk_load(&rows).unwrap();

        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let t = Tuple::new(vec![*k, *v, *k % 7]);
                    let a = btree.insert(&t);
                    let b = lsm.insert(&t);
                    prop_assert_eq!(
                        a.is_ok(), b.is_ok(),
                        "insert({}) disagreed: btree {:?}, lsm {:?}", k, a, b
                    );
                }
                Op::BulkDelete(keys) => {
                    let a = btree.bulk_delete(keys).unwrap();
                    let b = lsm.bulk_delete(keys).unwrap();
                    prop_assert_eq!(a.deleted, b.deleted, "bulk_delete count diverged");
                }
                Op::DeleteRange(lo, hi) => {
                    let a = btree.delete_range(*lo, *hi).unwrap();
                    let b = lsm.delete_range(*lo, *hi).unwrap();
                    prop_assert_eq!(a.deleted, b.deleted, "delete_range count diverged");
                }
            }
            // Every step can flush/compact the LSM side: the engines and
            // the LSM page catalog must stay clean throughout.
            let eq = audit_engine_equivalence(&mut btree, &mut lsm).unwrap();
            prop_assert!(eq.is_clean(), "after {:?}: {}", op, eq.render());
            let pages = lsm.audit_pages();
            prop_assert!(pages.is_clean(), "after {:?}: {}", op, pages.render());
        }
    }

    /// Point and range lookups agree on random probes, including keys
    /// that were deleted, re-inserted, or never present.
    #[test]
    fn lookups_agree_on_random_probes(
        rows in prop::collection::vec(0u64..300, 1..120),
        doomed in prop::collection::vec(0u64..300, 0..60),
        probes in prop::collection::vec(0u64..350, 1..40),
        ranges in prop::collection::vec((0u64..300, 0u64..60), 0..6),
    ) {
        let (mut btree, mut lsm) = engines(1 << 20);
        let mut seen = HashSet::new();
        let rows: Vec<Tuple> = rows
            .into_iter()
            .filter(|k| seen.insert(*k))
            .map(|k| Tuple::new(vec![k, k % 13, k % 7]))
            .collect();
        btree.bulk_load(&rows).unwrap();
        lsm.bulk_load(&rows).unwrap();
        btree.bulk_delete(&doomed).unwrap();
        lsm.bulk_delete(&doomed).unwrap();

        for &k in &probes {
            prop_assert_eq!(
                btree.lookup(k).unwrap(),
                lsm.lookup(k).unwrap(),
                "lookup({}) diverged", k
            );
        }
        for &(lo, span) in &ranges {
            prop_assert_eq!(
                btree.range_lookup(lo, lo + span).unwrap(),
                lsm.range_lookup(lo, lo + span).unwrap(),
                "range_lookup({}, {}) diverged", lo, lo + span
            );
        }
    }
}

/// Deterministic heavy-churn case: enough volume to force multi-level
/// compaction on the tiny config, checked step by step.
#[test]
fn heavy_churn_compacts_and_stays_equivalent() {
    let (mut btree, mut lsm) = engines(2 << 20);
    let rows: Vec<Tuple> = (0..1500)
        .map(|i| Tuple::new(vec![i * 2, i % 13, i % 7]))
        .collect();
    btree.bulk_load(&rows).unwrap();
    lsm.bulk_load(&rows).unwrap();

    for round in 0u64..6 {
        let doomed: Vec<Key> = (0..120).map(|i| (round * 120 + i) * 2).collect();
        let a = btree.bulk_delete(&doomed).unwrap();
        let b = lsm.bulk_delete(&doomed).unwrap();
        assert_eq!(a.deleted, b.deleted, "round {round}");

        // Re-insert a third of what this round deleted.
        for &k in doomed.iter().step_by(3) {
            let t = Tuple::new(vec![k, 99, 99]);
            btree.insert(&t).unwrap();
            lsm.insert(&t).unwrap();
        }
        let eq = audit_engine_equivalence(&mut btree, &mut lsm).unwrap();
        assert!(eq.is_clean(), "round {round}: {}", eq.render());
        assert!(lsm.audit_pages().is_clean(), "round {round}");
    }
    assert!(
        lsm.lsm_stats().compactions > 0,
        "churn must have compacted: {:?}",
        lsm.lsm_stats()
    );
}
