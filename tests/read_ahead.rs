//! End-to-end tests of the windowed read-ahead layer: temp-segment
//! lifecycle under spilling sorts, and fault tolerance inside prefetch
//! chains (a staging failure must degrade to pin-time retry, never abort
//! or corrupt a bulk delete).

use bulk_delete::prelude::*;

use bd_core::audit_catalog;
use bd_exec::sort_all;
use bd_storage::{FaultPlan, FaultSpec, StructureId};
use bd_workload::TableSpec;

fn build(n_rows: usize, total_mem: usize, seed: u64) -> (Database, bd_workload::Workload) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(total_mem));
    let w = TableSpec::tiny(n_rows)
        .with_seed(seed)
        .build(&mut db)
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    (db, w)
}

/// A vertical delete whose RID sort spills to temp segments must release
/// every temp page once the merge drains — the catalog owns zero `Temp`
/// pages afterwards. Before `TempSegment::free`, each spilling sort leaked
/// its run extents forever.
#[test]
fn spilling_vertical_delete_leaves_no_temp_pages() {
    // 256 KiB total => 64 KiB workspace; 10_000 deleted RIDs sort in
    // ~160 KiB of (rid, key) pairs, so the sort must spill.
    let (mut db, w) = build(20_000, 256 << 10, 7);
    let d = w.delete_set(0.5, 8);
    let (_, stats) = sort_all(
        db.pool().clone(),
        d.iter().copied(),
        db.workspace().capacity(),
    )
    .unwrap();
    assert!(stats.runs > 0, "budget must force a spill, got {stats:?}");
    assert!(
        db.pool().catalog().pages_of(StructureId::Temp).is_empty(),
        "probe sort_all must free its own runs"
    );

    let out = strategy::vertical_sort_merge(&mut db, w.tid, 0, &d, 1).unwrap();
    assert_eq!(out.deleted.len(), d.len());
    db.check_consistency(w.tid).unwrap();
    let temp = db.pool().catalog().pages_of(StructureId::Temp);
    assert!(temp.is_empty(), "leaked {} temp pages", temp.len());
    audit_catalog(&db, w.tid).unwrap().into_result().unwrap();
}

/// A transient read fault inside a staged prefetch chain: the chain's
/// retries are exhausted best-effort, the salvage pass skips the sick page,
/// and the eventual pin heals it under the pool's retry policy. The delete
/// must succeed and match a fault-free execution exactly.
#[test]
fn transient_fault_in_prefetch_chain_degrades_to_pin_retry() {
    let (mut reference, wr) = build(8_000, 1 << 20, 21);
    let d = wr.delete_set(0.4, 22);
    strategy::vertical_sort_merge(&mut reference, wr.tid, 0, &d, 1).unwrap();
    reference.check_consistency(wr.tid).unwrap();

    let (mut db, w) = build(8_000, 1 << 20, 21);
    let victim = db.table(w.tid).unwrap().heap.page_ids()[20];
    // 6 failures: the prefetch chain burns 4 (one issue + three retries),
    // the salvage read burns the 5th, the pin's first attempt burns the
    // 6th, and the pin's retry succeeds.
    db.pool().with_disk(|disk| {
        disk.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(victim).transient(6)))
    });
    let out = strategy::vertical_sort_merge(&mut db, w.tid, 0, &d, 1).unwrap();
    assert_eq!(out.deleted.len(), d.len());
    assert!(
        out.report.io.retries > 0,
        "the fault must have been retried"
    );
    db.check_consistency(w.tid).unwrap();
    let eq = audit_equivalence(&db, &reference, wr.tid).unwrap();
    assert!(eq.is_clean(), "faulted run diverged: {eq}");
}

/// A torn write under a page that a later prefetch chain stages: the
/// chained read detects the checksum mismatch and the retry path repairs
/// the primary from its replica — inside the prefetch, without surfacing
/// an error. State stays equivalent to a fault-free execution.
#[test]
fn torn_write_under_prefetch_chain_heals_from_replica() {
    let (mut reference, wr) = build(8_000, 1 << 20, 33);
    let d = wr.delete_set(0.4, 34);
    strategy::vertical_sort_merge(&mut reference, wr.tid, 0, &d, 1).unwrap();

    let (mut db, w) = build(8_000, 1 << 20, 33);
    let victim = db.table(w.tid).unwrap().heap.page_ids()[15];
    db.pool().with_disk(|disk| {
        disk.enable_replicas();
        disk.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_page(victim).torn()));
    });
    // The delete dirties and flushes the victim page; the primary copy is
    // torn, the replica lands intact.
    let out = strategy::vertical_sort_merge(&mut db, w.tid, 0, &d, 1).unwrap();
    assert_eq!(out.deleted.len(), d.len());

    // A cold scan prefetches the heap in chains; the chain over the torn
    // page must repair it from the replica rather than fail.
    db.pool().clear_cache().unwrap();
    let table = db.table(w.tid).unwrap();
    let rows = table.heap.dump().unwrap();
    assert_eq!(rows.len(), 8_000 - d.len());

    db.check_consistency(w.tid).unwrap();
    let eq = audit_equivalence(&db, &reference, wr.tid).unwrap();
    assert!(eq.is_clean(), "torn-write run diverged: {eq}");
}
