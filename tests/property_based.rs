//! Property-based tests: randomized workloads, every strategy against a
//! model (`BTreeMap`) oracle, B-tree invariants under arbitrary operation
//! sequences.

use std::collections::BTreeMap;

use proptest::prelude::*;

use bulk_delete::prelude::*;

use bd_btree::{bulk_delete_sorted, verify, BTree, BTreeConfig};
use bd_storage::{BufferPool, SimDisk, StructureId};

fn tiny_db() -> Database {
    Database::new(DatabaseConfig::with_total_memory(1 << 20))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Vertical bulk delete equals the model: for any row multiset and any
    /// delete subset, the surviving rows and all index contents match a
    /// `BTreeMap` oracle.
    #[test]
    fn vertical_matches_model(
        rows in prop::collection::vec((0u64..500, 0u64..100, 0u64..50), 1..300),
        picks in prop::collection::vec(any::<bool>(), 300),
    ) {
        // Deduplicate attribute A (unique index).
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<_> = rows.into_iter().filter(|r| seen.insert(r.0)).collect();

        let mut db = tiny_db();
        let tid = db.create_table("R", Schema::new(3, 32));
        db.create_index(tid, IndexDef::secondary(0).unique()).unwrap();
        db.create_index(tid, IndexDef::secondary(1)).unwrap();
        let mut model: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for &(a, b, c) in &rows {
            db.insert(tid, &Tuple::new(vec![a, b, c])).unwrap();
            model.insert(a, (b, c));
        }
        let d: Vec<u64> = rows
            .iter()
            .zip(picks.iter().cycle())
            .filter(|(_, &p)| p)
            .map(|(r, _)| r.0)
            .collect();
        let out = strategy::vertical_sort_merge(&mut db, tid, 0, &d, 1).unwrap();
        prop_assert_eq!(out.deleted.len(), d.len());
        for k in &d {
            model.remove(k);
        }
        db.check_consistency(tid).unwrap();
        // Survivors match the model exactly.
        let table = db.table(tid).unwrap();
        let mut got: Vec<(u64, u64, u64)> = table
            .heap
            .scan()
            .map(|(_, bytes)| {
                let t = table.schema.decode(&bytes);
                (t.attr(0), t.attr(1), t.attr(2))
            })
            .collect();
        got.sort_unstable();
        let want: Vec<(u64, u64, u64)> =
            model.iter().map(|(&a, &(b, c))| (a, b, c)).collect();
        prop_assert_eq!(got, want);
    }

    /// The shadow database tracks arbitrary insert/delete interleavings:
    /// after mirroring every mutation, `ShadowDb::diff` finds no divergence
    /// in the heap, any B-tree, the FSM, or the hash index.
    #[test]
    fn shadow_db_mirrors_engine(
        rows in prop::collection::vec((0u64..600, 0u64..60, 0u64..20), 1..250),
        more in prop::collection::vec((600u64..900, 0u64..60, 0u64..20), 0..80),
        picks in prop::collection::vec(any::<bool>(), 250),
    ) {
        // Deduplicate attribute A (unique index) across both batches.
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<_> = rows.into_iter().filter(|r| seen.insert(r.0)).collect();
        let more: Vec<_> = more.into_iter().filter(|r| seen.insert(r.0)).collect();

        let mut db = tiny_db();
        let tid = db.create_table("R", Schema::new(3, 32));
        db.create_index(tid, IndexDef::secondary(0).unique()).unwrap();
        db.create_index(tid, IndexDef::secondary(1)).unwrap();
        db.create_hash_index(tid, 2).unwrap();
        let mut shadow = ShadowDb::mirror_of(&db, tid).unwrap();
        for &(a, b, c) in &rows {
            let t = Tuple::new(vec![a, b, c]);
            let rid = db.insert(tid, &t).unwrap();
            shadow.insert(tid, rid, t);
        }
        // DELETE ... WHERE A IN (picked keys), mirrored semantically.
        let d: Vec<u64> = rows
            .iter()
            .zip(picks.iter().cycle())
            .filter(|(_, &p)| p)
            .map(|(r, _)| r.0)
            .collect();
        let out = db.delete_in(tid, 0, &d).unwrap();
        let mirrored = shadow.delete_in(tid, 0, &d);
        prop_assert_eq!(out.deleted.len(), mirrored.len());
        let diff = shadow.diff(&db, tid).unwrap();
        prop_assert!(diff.is_clean(), "after delete: {}", diff);
        // Inserts after the delete exercise free-space reuse.
        for &(a, b, c) in &more {
            let t = Tuple::new(vec![a, b, c]);
            let rid = db.insert(tid, &t).unwrap();
            shadow.insert(tid, rid, t);
        }
        let diff = shadow.diff(&db, tid).unwrap();
        prop_assert!(diff.is_clean(), "after refill: {}", diff);
        prop_assert_eq!(shadow.len(tid), db.table(tid).unwrap().heap.len());
    }

    /// Horizontal and vertical agree on arbitrary inputs.
    #[test]
    fn horizontal_equals_vertical(
        n_rows in 10usize..200,
        frac_pct in 0usize..=100,
        seed in 0u64..1000,
    ) {
        let spec = bd_workload::TableSpec::tiny(n_rows).with_seed(seed);
        let frac = frac_pct as f64 / 100.0;

        let run = |vertical: bool| -> Vec<Vec<u64>> {
            let mut db = tiny_db();
            let w = spec.build(&mut db).unwrap();
            w.attach_index(&mut db, IndexDef::secondary(0).unique()).unwrap();
            w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
            let d = w.delete_set(frac, seed + 7);
            if vertical {
                strategy::vertical_sort_merge(&mut db, w.tid, 0, &d, 1).unwrap();
            } else {
                strategy::horizontal(&mut db, w.tid, 0, &d, seed % 2 == 0).unwrap();
            }
            db.check_consistency(w.tid).unwrap();
            let table = db.table(w.tid).unwrap();
            let mut rows: Vec<Vec<u64>> = table
                .heap
                .scan()
                .map(|(_, b)| table.schema.decode(&b).attrs)
                .collect();
            rows.sort_unstable();
            rows
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// B-tree invariants hold after any interleaving of inserts, point
    /// deletes, and bulk deletes.
    #[test]
    fn btree_invariants_under_mixed_ops(
        ops in prop::collection::vec((0u8..3, 0u64..300), 1..200),
        fanout in 4usize..32,
    ) {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 512);
        let mut tree = BTree::create(pool, BTreeConfig::with_fanout(fanout), StructureId::Index(0)).unwrap();
        let mut model: BTreeMap<u64, Rid> = BTreeMap::new();
        let mut pending_bulk: Vec<u64> = Vec::new();
        for (op, k) in ops {
            match op {
                0 => {
                    model.entry(k).or_insert_with(|| {
                        let rid = Rid::new(k as u32, 0);
                        tree.insert(k, rid).unwrap();
                        rid
                    });
                }
                1 => {
                    if let Some(rid) = model.remove(&k) {
                        prop_assert!(tree.delete_one(k, rid).unwrap());
                    }
                }
                _ => pending_bulk.push(k),
            }
        }
        // Apply the accumulated bulk delete.
        let mut victims: Vec<(u64, Rid)> = pending_bulk
            .iter()
            .filter_map(|k| model.get(k).map(|&r| (*k, r)))
            .collect();
        victims.sort_unstable();
        victims.dedup();
        let deleted =
            bulk_delete_sorted(&mut tree, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        prop_assert_eq!(deleted.len(), victims.len());
        for (k, _) in &victims {
            model.remove(k);
        }
        let entries = verify::check(&tree).expect("invariants");
        let expect: Vec<(u64, Rid)> = model.iter().map(|(&k, &r)| (k, r)).collect();
        prop_assert_eq!(entries, expect);
    }

    /// External sort is a sorting function for any input and budget.
    #[test]
    fn external_sort_correct(
        items in prop::collection::vec(any::<u64>(), 0..5000),
        budget_kb in 1usize..64,
    ) {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 64);
        let (sorted, _) =
            bd_exec::sort_all(pool, items.clone(), budget_kb * 1024).unwrap();
        let mut want = items;
        want.sort_unstable();
        prop_assert_eq!(sorted, want);
    }

    /// Range partitions cover the input exactly, in order, within bounds.
    #[test]
    fn partitions_cover_input(
        mut keys in prop::collection::vec(0u64..1000, 1..500),
        per_part in 1usize..100,
    ) {
        keys.sort_unstable();
        let entries: Vec<(u64, Rid)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, Rid::new(i as u32, 0)))
            .collect();
        let parts = bd_exec::range_partitions(&entries, per_part);
        let flat: Vec<(u64, Rid)> =
            parts.iter().flat_map(|p| p.entries.clone()).collect();
        prop_assert_eq!(&flat, &entries);
        for p in &parts {
            prop_assert!(p.entries.len() <= per_part);
            prop_assert!(p.entries.iter().all(|e| e.0 >= p.lo && e.0 <= p.hi));
        }
    }
}
