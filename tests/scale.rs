//! Full-paper-scale smoke test (1,000,000 × 512 B). Ignored by default —
//! run with `cargo test --release -- --ignored` (about a minute per
//! experiment on a laptop).

use bd_bench::experiments;

#[test]
#[ignore = "full paper scale: ~1 minute in release, far slower in debug"]
fn fig7_at_paper_scale_matches_paper_shape() {
    let r = experiments::fig7(1_000_000, 1).unwrap();
    // Paper's Table 1 column (the 15% point of Fig. 7, in minutes):
    // sorted/trad 64.65, not sorted/trad 102.05, bulk 24.87.
    let sorted = r.value("15%", "sorted/trad");
    let notsorted = r.value("15%", "not sorted/trad");
    let bulk = r.value("15%", "bulk delete");
    assert!(
        (sorted - 64.65).abs() / 64.65 < 0.5,
        "sorted/trad at 15%: measured {sorted:.1} min vs paper 64.65"
    );
    assert!(
        (notsorted - 102.05).abs() / 102.05 < 0.5,
        "not-sorted/trad at 15%: measured {notsorted:.1} min vs paper 102.05"
    );
    // Our bulk is faster than the paper's (leaf-skipping merge); it must
    // still be the clear winner and stay under the paper's own number.
    assert!(bulk < sorted / 2.0);
    assert!(bulk < 24.87 * 1.5);
}
