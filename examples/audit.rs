//! The differential audit harness from the outside: mirror a workload into
//! a `ShadowDb`, diff it against the engine, then plant a single-entry
//! corruption and watch the auditor name the broken structure.

use bulk_delete::prelude::*;

fn main() {
    let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
    let tid = db.create_table("R", Schema::new(3, 64));
    db.create_index(tid, IndexDef::secondary(0).unique())
        .unwrap();
    db.create_index(tid, IndexDef::secondary(1)).unwrap();

    let mut shadow = ShadowDb::mirror_of(&db, tid).unwrap();
    for i in 0..2_000u64 {
        let t = Tuple::new(vec![i, i % 31, i % 7]);
        let rid = db.insert(tid, &t).unwrap();
        shadow.insert(tid, rid, t);
    }
    // DELETE FROM R WHERE R.A IN (0, 3, 6, ...), mirrored into the model.
    let d: Vec<u64> = (0..2_000).step_by(3).collect();
    let out = db.delete_in(tid, 0, &d).unwrap();
    shadow.delete_in(tid, 0, &d);
    println!(
        "deleted {} rows; diffing engine against the model...",
        out.deleted.len()
    );
    println!("{}", shadow.diff(&db, tid).unwrap());

    // Plant a single phantom entry in I_B and audit again.
    db.table_mut(tid).unwrap().indices[1]
        .tree
        .insert(424_242, Rid::new(0, 0))
        .unwrap();
    println!("planted one phantom entry in I_B; auditing...");
    print!("{}", audit_table(&db, tid).unwrap());
}
