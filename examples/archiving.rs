//! Archiving — the paper's motivating application (§1).
//!
//! "Data which are not needed for every-day operations are demoted from the
//! database (disks) to tertiary storage (tapes)." Step 1 selects the
//! victims ("find all orders which were processed more than three months
//! ago"); step 2 — this example — bulk-deletes them, writing the returned
//! rows to an archive.
//!
//! The orders table is indexed on order id (unique), order date, and ship
//! date, so simple single-dimension partitioning would not help (§1.1:
//! "partitioning will not help if some bulk deletes are carried out
//! according to the order date and some ... to the ship date"). Note the
//! extra predicate too: only *fully processed* old orders are archived.
//!
//! ```sh
//! cargo run --release --example archiving
//! ```

use bulk_delete::prelude::*;

const ORDER_ID: usize = 0;
const ORDER_DATE: usize = 1; // day number
const SHIP_DATE: usize = 2;
const STATUS: usize = 3; // 0 = processed, 1 = open

fn main() -> DbResult<()> {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let tid = db.create_table("orders", Schema::new(4, 128));
    db.create_index(tid, IndexDef::secondary(ORDER_ID).unique())?;
    db.create_index(tid, IndexDef::secondary(ORDER_DATE))?;
    db.create_index(tid, IndexDef::secondary(SHIP_DATE))?;

    // Three years of orders, ~40 per day; 2% remain open forever.
    let days = 3 * 365u64;
    let mut id = 0u64;
    for day in 0..days {
        for n in 0..40u64 {
            let status = u64::from((id * 7 + n).is_multiple_of(50));
            let ship = day + 1 + (id % 5);
            db.insert(tid, &Tuple::new(vec![id, day, ship, status]))?;
            id += 1;
        }
    }
    println!("orders loaded: {}", db.table(tid)?.heap.len());

    // Step 1 (the archiving query): orders older than ~3 months that are
    // fully processed. We answer it with the order-date index.
    let cutoff = days - 90;
    let table = db.table(tid)?;
    let old_orders = table
        .index_on(ORDER_DATE)
        .unwrap()
        .tree
        .range(0, cutoff - 1)?;
    let mut archive_ids = Vec::new();
    for (_, rid) in old_orders {
        let t = db.get(tid, rid)?;
        if t.attr(STATUS) == 0 {
            archive_ids.push(t.attr(ORDER_ID));
        }
    }
    println!(
        "archiving {} of {} orders (processed, older than day {cutoff})",
        archive_ids.len(),
        db.table(tid)?.heap.len()
    );

    // Step 2: bulk delete by order id; the outcome carries the full rows,
    // which go to the archive ("tape").
    let (plan, outcome) = strategy::vertical_auto(
        &mut db,
        tid,
        ORDER_ID,
        &archive_ids,
        ReorgPolicy::FreeAtEmpty,
        1,
    )?;
    println!("\n{}", plan.render(db.table(tid)?));
    println!("{}", outcome.report.summary());

    let mut tape: Vec<Vec<u8>> = Vec::new();
    let schema = db.table(tid)?.schema;
    for (_, row) in &outcome.deleted {
        tape.push(schema.encode(row)?);
    }
    println!(
        "archived {} orders ({} KB) to tape; {} orders remain online",
        tape.len(),
        tape.len() * schema.record_len / 1024,
        db.table(tid)?.heap.len()
    );

    db.check_consistency(tid)?;
    // Open orders older than the cutoff survived the archive run.
    let survivors = db
        .table(tid)?
        .index_on(ORDER_DATE)
        .unwrap()
        .tree
        .range(0, cutoff - 1)?;
    assert!(!survivors.is_empty(), "open old orders must remain");
    for (_, rid) in survivors {
        assert_eq!(db.get(tid, rid)?.attr(STATUS), 1);
    }
    println!("all remaining pre-cutoff orders are open ones — archive is consistent");
    Ok(())
}
