//! Bulk UPDATE via bulk delete + bulk insert on one index (§1): "increasing
//! the salary of above-average employees involves carrying out a bulk
//! delete (and bulk insert) on the Emp.salary index."
//!
//! The heap records are updated in place (the RIDs do not move); only the
//! salary index needs its entries moved — which is exactly a bulk delete of
//! the old `(salary, rid)` entries followed by a bulk insert of the new
//! ones.
//!
//! ```sh
//! cargo run --release --example bulk_update
//! ```

use bulk_delete::prelude::*;

use bd_core::bulk_update;

const EMP_ID: usize = 0;
const SALARY: usize = 1;
const DEPT: usize = 2;

fn main() -> DbResult<()> {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let tid = db.create_table("emp", Schema::new(3, 64));
    db.create_index(tid, IndexDef::secondary(EMP_ID).unique())?;
    db.create_index(tid, IndexDef::secondary(SALARY))?;
    db.create_index(tid, IndexDef::secondary(DEPT))?;

    let n = 30_000u64;
    let mut total = 0u64;
    for i in 0..n {
        let salary = 30_000 + (i * 7919) % 90_000;
        total += salary;
        db.insert(tid, &Tuple::new(vec![i, salary, i % 25]))?;
    }
    let avg = total / n;
    println!("{n} employees, average salary {avg}");

    // UPDATE emp SET salary = salary * 1.1 WHERE salary > avg
    // Step 1: find the victims through the salary index (range scan), then
    // address them by employee id.
    let table = db.table(tid)?;
    let victims: Vec<Key> = table
        .index_on(SALARY)
        .unwrap()
        .tree
        .range(avg + 1, u64::MAX)?
        .into_iter()
        .map(|(_, rid)| db.get(tid, rid).map(|t| t.attr(EMP_ID)))
        .collect::<DbResult<_>>()?;
    println!("{} employees above average get a 10% raise", victims.len());

    // Step 2: one bulk UPDATE — heap records rewritten in place, and only
    // the salary index (whose keys changed) sees a bulk delete + bulk
    // insert of its entries. The emp-id and dept indices are untouched.
    let out = bulk_update(&mut db, tid, EMP_ID, &victims, |t| {
        t.attrs[SALARY] += t.attrs[SALARY] / 10;
    })?;
    println!(
        "salary index updated in bulk: {} rows, {} index entries moved, {:.2} simulated min",
        out.updated,
        out.index_entries_moved,
        out.report.sim_minutes()
    );

    db.check_consistency(tid)?;
    let table = db.table(tid)?;
    let still_below: usize = table.index_on(SALARY).unwrap().tree.range(0, avg)?.len();
    println!(
        "consistency verified; {} employees remain at or below the old average",
        still_below
    );
    Ok(())
}
