//! EXPLAIN: watch the cost-based optimizer change its `⋈̄` method choices
//! as the delete-list size and the memory budget vary (§2.1: the choice
//! depends on "the size of the table/index, the number of records to be
//! deleted, and the size of the main memory buffer pool").
//!
//! ```sh
//! cargo run --release --example explain
//! ```

use bulk_delete::prelude::*;

use bd_core::{horizontal_cost, plan_delete_costed, CostEnv};

fn main() -> DbResult<()> {
    let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
    let tid = db.create_table("R", Schema::new(3, 128));
    db.create_index(tid, IndexDef::secondary(0).unique())?;
    db.create_index(tid, IndexDef::secondary(1))?;
    db.create_index(tid, IndexDef::secondary(2))?;
    for i in 0..60_000u64 {
        db.insert(tid, &Tuple::new(vec![i, i % 5_000, i % 365]))?;
    }
    println!("table: 60000 rows, indices on A (unique), B, C\n");

    let cm = CostModel::default();
    for (n_delete, ws_bytes) in [
        (600usize, 256 * 1024usize), // small D, roomy workspace
        (9_000, 256 * 1024),         // 15%, roomy workspace
        (9_000, 64 * 1024),          // 15%, tight workspace
        (9_000, 4 * 1024),           // 15%, tiny workspace
    ] {
        let table = db.table(tid)?;
        let (plan, estimate) = plan_delete_costed(table, 0, n_delete, ws_bytes, 1 << 20)?;
        let env = CostEnv::of(table, n_delete, ws_bytes, 1 << 20);
        let horizontal = horizontal_cost(table, false, &env).sim_ms(&cm);
        println!(
            "== DELETE of {n_delete} keys with {} KiB workspace ==",
            ws_bytes / 1024
        );
        println!("{}", plan.render(table));
        println!(
            "estimated: {:.1} s vertical vs {:.1} s traditional ({:.1}x)\n",
            estimate.sim_ms(&cm) / 1000.0,
            horizontal / 1000.0,
            horizontal / estimate.sim_ms(&cm),
        );
    }

    // Execute the last plan to show estimate vs measurement.
    let keys: Vec<Key> = (0..9_000u64).map(|i| i * 6).collect();
    let table = db.table(tid)?;
    let (plan, estimate) = plan_delete_costed(table, 0, keys.len(), 256 * 1024, 1 << 20)?;
    let est_ms = estimate.sim_ms(&cm);
    let outcome =
        bd_core::strategy::vertical(&mut db, tid, &keys, &plan, ReorgPolicy::FreeAtEmpty, 1)?;
    println!(
        "executed the roomy-workspace plan: estimated {:.1} s, measured {:.1} s",
        est_ms / 1000.0,
        outcome.report.sim_ms() / 1000.0
    );
    println!("{}", outcome.report.phase_breakdown());
    db.check_consistency(tid)?;
    Ok(())
}
