//! Bulk deletes from an R-tree — the paper's stated *future work* (§5:
//! "we plan to generalize our approach and study algorithms to delete
//! records in bulk from other index structures such as hash tables,
//! R-trees, or grid files"), realized here: one depth-first pass that
//! probes every leaf entry against a RID set and tightens MBRs on the way
//! back up, versus one root-to-leaf traversal per record.
//!
//! Scenario: a delivery service archives all *completed* trips — scattered
//! uniformly across the city — out of its trip-location index. (A spatially
//! clustered delete window would be the traditional approach's best case,
//! exactly like the clustered index of Experiment 5; scattered victims are
//! where bulk deletion shines.)
//!
//! ```sh
//! cargo run --release --example spatial_bulk_delete
//! ```

use std::collections::HashSet;

use bd_rtree::{PointEntry, RTree, RTreeConfig, Rect};
use bd_storage::{BufferPool, CostModel, Rid, SimDisk, StructureId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small cache (256 KiB) relative to the ~2 MB tree, as in the paper's
    // memory-starved experiments.
    let pool = BufferPool::new(SimDisk::new(CostModel::default()), 64);
    let mut tree = RTree::create(
        pool.clone(),
        RTreeConfig::default(),
        StructureId::Spatial(0),
    )?;

    // 60,000 trip endpoints across a 100km x 100km city (meters).
    let mut x = 42u64;
    let mut rng = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    for i in 0..60_000u32 {
        let e = PointEntry {
            x: rng() % 100_000,
            y: rng() % 100_000,
            rid: Rid::new(i, 0),
        };
        tree.insert(e)?;
    }
    println!(
        "trip index: {} points, R-tree height {}",
        tree.len(),
        tree.height()
    );

    // The archiving set: every 4th trip is completed — scattered uniformly.
    let victims: Vec<PointEntry> = tree
        .search_window(Rect::new(0, 0, u64::MAX, u64::MAX))?
        .into_iter()
        .filter(|e| e.rid.page % 4 == 0)
        .collect();
    println!("archiving {} completed trips (scattered)", victims.len());
    let victim_rids: HashSet<Rid> = victims.iter().map(|e| e.rid).collect();

    // Traditional: one root-to-leaf traversal per trip, in arrival order
    // (the delete list comes from the application unsorted — the
    // `not sorted/trad` situation of the paper).
    let mut trad = RTree::create(
        pool.clone(),
        RTreeConfig::default(),
        StructureId::Spatial(0),
    )?;
    // (Rebuild a copy so both strategies start identically.)
    for e in tree.search_window(Rect::new(0, 0, u64::MAX, u64::MAX))? {
        trad.insert(e)?;
    }
    let mut arrival = victims.clone();
    // Deterministic shuffle.
    let n = arrival.len();
    for i in 0..n {
        let j = (i.wrapping_mul(2654435761) + 17) % n;
        arrival.swap(i, j);
    }
    pool.clear_cache()?;
    pool.reset_stats();
    for e in &arrival {
        trad.delete(*e)?;
    }
    let trad_io = pool.disk_stats();

    // Bulk: one pass over the tree.
    pool.clear_cache()?;
    pool.reset_stats();
    let deleted = tree.bulk_delete_probe(&victim_rids)?;
    let bulk_io = pool.disk_stats();

    assert_eq!(deleted.len(), victims.len());
    assert_eq!(tree.verify()?, trad.verify()?);
    println!(
        "traditional: {:>8} page ios ({:>6} random)  {:>7.2} sim min",
        trad_io.total_ios(),
        trad_io.total_random(),
        trad_io.sim_ms / 60_000.0
    );
    println!(
        "bulk pass:   {:>8} page ios ({:>6} random)  {:>7.2} sim min",
        bulk_io.total_ios(),
        bulk_io.total_random(),
        bulk_io.sim_ms / 60_000.0
    );
    println!(
        "one-pass bulk delete is {:.1}x cheaper on this R-tree",
        trad_io.sim_ms / bulk_io.sim_ms
    );
    println!("both trees verify and agree — future work, delivered");
    Ok(())
}
