//! Crash recovery (§3.2): a bulk delete crashes halfway through its index
//! passes; restart *finishes* the deletion (roll-forward) instead of
//! rolling it back, then applies the pending side-file.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use bulk_delete::prelude::*;

use bd_txn::SideOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let tid = db.create_table("R", Schema::new(3, 64));
    db.create_index(tid, IndexDef::secondary(0).unique())?;
    db.create_index(tid, IndexDef::secondary(1))?;
    db.create_index(tid, IndexDef::secondary(2))?;
    let mut victims = Vec::new();
    for i in 0..20_000u64 {
        db.insert(tid, &Tuple::new(vec![i, i % 251, i % 13]))?;
        if i % 4 == 0 {
            victims.push(i);
        }
    }
    println!(
        "loaded 20000 rows; bulk delete of {} rows will crash mid-flight",
        victims.len()
    );

    // Run with a crash injected in the middle of the first secondary-index
    // pass: the probe index and the table are already done, the index pass
    // is half-flushed, and nothing about it is in the log.
    let log = LogManager::new();
    let crash = CrashInjector::at(CrashSite::MidStructure(2));
    let err = run_bulk_delete(&mut db, tid, 0, &victims, &log, crash).unwrap_err();
    println!("crashed as injected: {err}");
    println!("log holds {} records ({} bytes)", log.len(), log.byte_len());

    // Power failure: the buffer pool's dirty pages are gone.
    db.pool().crash();
    println!("volatile state discarded; only the disk and the log survive");

    // Meanwhile an updater transaction had inserted a row while index B was
    // offline: the heap record and the online indices were written directly,
    // and the index-B change was captured in a side-file. §3.2 says the
    // side-file is applied *after* the bulk delete finishes during recovery.
    let new_row = Tuple::new(vec![777_777, 888_888, 5]);
    let rid = {
        let (parts, _, _) = db.parts(tid)?;
        let bytes = parts.schema.encode(&new_row)?;
        let rid = parts.heap.insert(&bytes)?;
        for index in parts.indices.iter_mut() {
            if index.def.attr != 1 {
                index.tree.insert(new_row.attr(index.def.attr), rid)?;
            }
        }
        rid
    };
    let pending = vec![(
        1usize,
        vec![SideOp::Insert {
            key: new_row.attr(1),
            rid,
        }],
    )];

    let finished = recover(&mut db, tid, &log, &pending)?;
    println!("recovery rolled the bulk delete FORWARD: {finished} rows completed");

    db.check_consistency(tid)?;
    let remaining = db.table(tid)?.heap.len();
    assert_eq!(remaining, 20_000 - victims.len() + 1);
    println!("state matches a crash-free run: {remaining} rows, all indices consistent");

    // The side-file op landed, after the deletions.
    let table = db.table(tid)?;
    let hit = table.index_on(1).unwrap().tree.search(new_row.attr(1))?;
    assert_eq!(hit, vec![rid]);
    println!("pending side-file entry applied last, as the paper prescribes");

    // A second restart finds a committed log: recovery is a no-op.
    db.pool().crash();
    assert_eq!(recover(&mut db, tid, &log, &[])?, 0);
    println!("second restart: nothing to do (bulk delete committed)");
    Ok(())
}
