//! Concurrent bulk delete (§3.1): updater transactions keep running while
//! the bulk deleter propagates deletions to the non-unique indices, with
//! changes captured in side-files and replayed before each index comes back
//! online.
//!
//! ```sh
//! cargo run --release --example concurrent_bulk_delete
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bulk_delete::prelude::*;

fn main() {
    // Build the table: unique id, plus two non-unique indices.
    let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
    let tid = db.create_table("events", Schema::new(3, 64));
    db.create_index(tid, IndexDef::secondary(0).unique())
        .unwrap();
    db.create_index(tid, IndexDef::secondary(1)).unwrap();
    db.create_index(tid, IndexDef::secondary(2)).unwrap();
    let mut victims = Vec::new();
    for i in 0..40_000u64 {
        db.insert(tid, &Tuple::new(vec![i, i % 365, i % 97]))
            .unwrap();
        if i % 3 == 0 {
            victims.push(i);
        }
    }
    let tdb = TxnDb::new(db);
    println!(
        "loaded 40000 events; bulk-deleting {} concurrently",
        victims.len()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let inserted = std::thread::scope(|s| {
        // Bulk deleter.
        let bulk = {
            let tdb = tdb.clone();
            let victims = victims.clone();
            s.spawn(move || {
                tdb.bulk_delete(tid, 0, &victims, PropagationMode::SideFile)
                    .unwrap()
            })
        };
        // Two updaters inserting fresh events the whole time.
        let updaters: Vec<_> = (0..2u64)
            .map(|u| {
                let tdb = tdb.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let id = 1_000_000 + u * 100_000 + n;
                        let txn = tdb.begin();
                        tdb.insert(txn, tid, &Tuple::new(vec![id, id % 365, id % 97]))
                            .unwrap();
                        tdb.commit(txn);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let deleted = bulk.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        let inserted: u64 = updaters.into_iter().map(|h| h.join().unwrap()).sum();
        println!("bulk delete removed {deleted} rows while updaters inserted {inserted}");
        inserted
    });

    tdb.with(|db| {
        db.check_consistency(tid).unwrap();
        let remaining = db.table(tid).unwrap().heap.len();
        assert_eq!(remaining as u64, 40_000 - victims.len() as u64 + inserted);
        println!("final state consistent: {remaining} rows, every index agrees with the heap");
    });

    // Reads through the previously-offline index work again.
    let txn = tdb.begin();
    let rows = tdb.read(txn, tid, 1, 100).unwrap();
    println!(
        "index on attribute B is back online ({} rows for B = 100)",
        rows.len()
    );
    tdb.commit(txn);
}
