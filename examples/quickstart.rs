//! Quickstart: create a table with indices, run a bulk `DELETE ... WHERE A
//! IN (...)` through the optimizer, and compare against the traditional
//! record-at-a-time executor.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bulk_delete::prelude::*;

fn main() -> DbResult<()> {
    // One simulated database per strategy so each starts from the same
    // physical state.
    let build = || -> DbResult<(Database, TableId, Vec<Key>)> {
        let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
        let tid = db.create_table("R", Schema::new(4, 128));
        db.create_index(tid, IndexDef::secondary(0).unique())?; // I_A (key)
        db.create_index(tid, IndexDef::secondary(1))?; // I_B
        db.create_index(tid, IndexDef::secondary(2))?; // I_C
        let mut d = Vec::new();
        for i in 0..50_000u64 {
            // A unique; B, C, D with duplicates.
            db.insert(tid, &Tuple::new(vec![i * 2, i % 997, i % 83, i % 7]))?;
            if i % 5 == 0 {
                d.push(i * 2); // delete 20% of the rows
            }
        }
        Ok((db, tid, d))
    };

    // Traditional horizontal delete (what most systems do).
    let (mut db, tid, d) = build()?;
    let trad = strategy::horizontal(&mut db, tid, 0, &d, false)?;
    db.check_consistency(tid)?;
    println!("{}", trad.report.summary());

    // Vertical bulk delete, planned by the optimizer.
    let (mut db, tid, d) = build()?;
    let (plan, bulk) = strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1)?;
    db.check_consistency(tid)?;
    println!("{}", bulk.report.summary());
    println!("\n{}", plan.render(db.table(tid)?));

    let speedup = trad.report.sim_ms() / bulk.report.sim_ms();
    println!("vertical bulk delete is {speedup:.1}x faster (simulated time)");
    assert_eq!(trad.deleted.len(), bulk.deleted.len());
    Ok(())
}
