//! Sliding-window data warehouse — the paper's second application (§1):
//! "bulk deletes occur frequently in a data warehouse that keeps a window
//! of, say, all the sales information of the last six months."
//!
//! Each month, the oldest month of sales rolls out of the window with one
//! bulk delete and a new month is loaded. The example compares the monthly
//! roll-out cost under the traditional and the vertical executor.
//!
//! ```sh
//! cargo run --release --example warehouse_window
//! ```

use bulk_delete::prelude::*;

const SALE_ID: usize = 0;
const MONTH: usize = 1;
const PRODUCT: usize = 2;
const STORE: usize = 3;

const WINDOW_MONTHS: u64 = 6;
const SALES_PER_MONTH: u64 = 6_000;

fn load_month(db: &mut Database, tid: TableId, month: u64, next_id: &mut u64) -> DbResult<()> {
    for n in 0..SALES_PER_MONTH {
        let id = *next_id;
        *next_id += 1;
        db.insert(
            tid,
            &Tuple::new(vec![id, month, (id * 13 + n) % 500, id % 40]),
        )?;
    }
    Ok(())
}

/// The ids of every sale in `month` (the warehouse's roll-out query).
fn sale_ids_of_month(db: &Database, tid: TableId, month: u64) -> DbResult<Vec<Key>> {
    let table = db.table(tid)?;
    let hits = table.index_on(MONTH).unwrap().tree.range(month, month)?;
    hits.into_iter()
        .map(|(_, rid)| Ok(db.get(tid, rid)?.attr(SALE_ID)))
        .collect()
}

fn main() -> DbResult<()> {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let tid = db.create_table("sales", Schema::new(4, 64));
    db.create_index(tid, IndexDef::secondary(SALE_ID).unique())?;
    db.create_index(tid, IndexDef::secondary(MONTH))?;
    db.create_index(tid, IndexDef::secondary(PRODUCT))?;
    db.create_index(tid, IndexDef::secondary(STORE))?;

    let mut next_id = 0u64;
    for month in 0..WINDOW_MONTHS {
        load_month(&mut db, tid, month, &mut next_id)?;
    }
    println!(
        "warehouse holds {} sales across {WINDOW_MONTHS} months, 4 indices\n",
        db.table(tid)?.heap.len()
    );

    // Roll the window forward for a year, alternating executors so both
    // costs show on the same workload.
    println!(
        "{:<8}{:>10}  {:<16}{:>14}{:>12}",
        "month", "evicted", "executor", "sim minutes", "random I/O"
    );
    for new_month in WINDOW_MONTHS..WINDOW_MONTHS + 12 {
        let expired = new_month - WINDOW_MONTHS;
        let victims = sale_ids_of_month(&db, tid, expired)?;
        let use_bulk = new_month % 2 == 0;
        let (label, report) = if use_bulk {
            let out = strategy::vertical_sort_merge(&mut db, tid, SALE_ID, &victims, 1)?;
            ("bulk delete", out.report)
        } else {
            let out = strategy::horizontal(&mut db, tid, SALE_ID, &victims, true)?;
            ("sorted/trad", out.report)
        };
        println!(
            "{:<8}{:>10}  {:<16}{:>14.2}{:>12}",
            expired,
            victims.len(),
            label,
            report.sim_minutes(),
            report.io.total_random()
        );
        load_month(&mut db, tid, new_month, &mut next_id)?;
    }

    db.check_consistency(tid)?;
    let remaining = db.table(tid)?.heap.len();
    assert_eq!(remaining as u64, WINDOW_MONTHS * SALES_PER_MONTH);
    println!("\nwindow stable at {remaining} sales; all indices consistent");
    Ok(())
}
