//! Heavier cross-checks of the B-link tree against a model, across fanouts
//! and operation mixes.

use std::collections::BTreeMap;
use std::sync::Arc;

use bd_btree::{
    bulk_delete_by_keys, bulk_delete_probe, bulk_delete_sorted, bulk_load, verify, BTree,
    BTreeConfig, Key, LeafScan, ReorgPolicy,
};
use bd_storage::{BufferPool, CostModel, Rid, SimDisk, StructureId};

fn pool(frames: usize) -> Arc<BufferPool> {
    BufferPool::new(SimDisk::new(CostModel::default()), frames)
}

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed;
    move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    }
}

#[test]
fn random_lifecycle_across_fanouts() {
    for fanout in [3, 4, 7, 16, 64] {
        let mut rng = lcg(fanout as u64);
        let mut tree = BTree::create(
            pool(1024),
            BTreeConfig::with_fanout(fanout),
            StructureId::Index(0),
        )
        .unwrap();
        let mut model: BTreeMap<Key, Rid> = BTreeMap::new();
        // Phase 1: random inserts.
        for _ in 0..2000 {
            let k = rng() % 3000;
            if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                let rid = Rid::new(k as u32, 0);
                tree.insert(k, rid).unwrap();
                e.insert(rid);
            }
        }
        // Phase 2: random point deletes.
        for _ in 0..500 {
            let k = rng() % 3000;
            if let Some(rid) = model.remove(&k) {
                assert!(tree.delete_one(k, rid).unwrap());
            }
        }
        // Phase 3: one bulk delete of a random half of the survivors.
        let mut victims: Vec<(Key, Rid)> = model
            .iter()
            .filter(|_| rng().is_multiple_of(2))
            .map(|(&k, &r)| (k, r))
            .collect();
        victims.sort_unstable();
        bulk_delete_sorted(&mut tree, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        for (k, _) in &victims {
            model.remove(k);
        }
        // Phase 4: everything agrees, including the full physical audit.
        let audit = verify::audit(&tree).unwrap();
        let expect: Vec<(Key, Rid)> = model.iter().map(|(&k, &r)| (k, r)).collect();
        assert_eq!(audit.entries, expect, "fanout {fanout}");
        let scanned: Vec<(Key, Rid)> = LeafScan::new(&tree).unwrap().collect();
        assert_eq!(scanned, expect, "fanout {fanout} (chain)");
        // The audit's physical summary is self-consistent.
        assert_eq!(audit.height, tree.height(), "fanout {fanout}");
        assert_eq!(
            audit.leaf_pages.len(),
            audit.leaf_fill.len(),
            "fanout {fanout}"
        );
        assert_eq!(
            audit.leaf_fill.iter().sum::<usize>(),
            audit.entries.len(),
            "fanout {fanout}: leaf fill profile must cover every entry"
        );
    }
}

#[test]
fn three_bulk_primitives_agree() {
    // by-keys, sorted-pairs, and rid-probe must remove identical entries.
    let n = 5000u64;
    let entries: Vec<(Key, Rid)> = (0..n).map(|k| (k * 2, Rid::new(k as u32, 0))).collect();
    let keys: Vec<Key> = (0..n).filter(|k| k % 3 == 0).map(|k| k * 2).collect();
    let pairs: Vec<(Key, Rid)> = entries
        .iter()
        .copied()
        .filter(|(k, _)| k % 6 == 0)
        .collect();
    let rids: std::collections::HashSet<Rid> = pairs.iter().map(|e| e.1).collect();

    let mut t1 = bulk_load(
        pool(512),
        BTreeConfig::with_fanout(32),
        &entries,
        1.0,
        StructureId::Index(0),
    )
    .unwrap();
    let mut t2 = bulk_load(
        pool(512),
        BTreeConfig::with_fanout(32),
        &entries,
        1.0,
        StructureId::Index(0),
    )
    .unwrap();
    let mut t3 = bulk_load(
        pool(512),
        BTreeConfig::with_fanout(32),
        &entries,
        1.0,
        StructureId::Index(0),
    )
    .unwrap();

    let d1 = bulk_delete_by_keys(&mut t1, &keys, ReorgPolicy::FreeAtEmpty).unwrap();
    let d2 = bulk_delete_sorted(&mut t2, &pairs, ReorgPolicy::FreeAtEmpty).unwrap();
    let d3 = bulk_delete_probe(&mut t3, &rids, None, ReorgPolicy::FreeAtEmpty).unwrap();
    assert_eq!(d1, d2);
    assert_eq!(d2, d3);

    let s1: Vec<_> = LeafScan::new(&t1).unwrap().collect();
    let s2: Vec<_> = LeafScan::new(&t2).unwrap().collect();
    let s3: Vec<_> = LeafScan::new(&t3).unwrap().collect();
    assert_eq!(s1, s2);
    assert_eq!(s2, s3);
    verify::check(&t1).unwrap();
    verify::check(&t2).unwrap();
    verify::check(&t3).unwrap();
}

#[test]
fn alternating_bulk_loads_and_deletes() {
    // Repeatedly: bulk delete a stripe, insert a new stripe, verify.
    let mut tree = BTree::create(
        pool(1024),
        BTreeConfig::with_fanout(16),
        StructureId::Index(0),
    )
    .unwrap();
    let mut model: BTreeMap<Key, Rid> = BTreeMap::new();
    for k in 0..4000u64 {
        let rid = Rid::new(k as u32, 0);
        tree.insert(k, rid).unwrap();
        model.insert(k, rid);
    }
    for round in 0..5u64 {
        let lo = round * 700;
        let hi = lo + 500;
        let mut victims: Vec<(Key, Rid)> = model.range(lo..hi).map(|(&k, &r)| (k, r)).collect();
        victims.sort_unstable();
        let deleted = bulk_delete_sorted(&mut tree, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(deleted.len(), victims.len());
        for (k, _) in &victims {
            model.remove(k);
        }
        // Refill part of the hole.
        for k in (lo..lo + 200).step_by(2) {
            let rid = Rid::new(900_000 + k as u32, 1);
            tree.insert(k, rid).unwrap();
            model.insert(k, rid);
        }
        let audit = verify::audit(&tree).unwrap();
        assert_eq!(audit.entries.len(), model.len(), "round {round}");
        // Free-at-empty may leave detached empty leaves in the sibling
        // chain, but never ones holding entries (verify would fail), and
        // the reachable fill profile always covers the whole tree.
        assert_eq!(
            audit.leaf_fill.iter().sum::<usize>(),
            model.len(),
            "round {round}"
        );
    }
}

#[test]
fn base_node_pack_after_each_round_stays_consistent() {
    let entries: Vec<(Key, Rid)> = (0..6000u64).map(|k| (k, Rid::new(k as u32, 0))).collect();
    let mut tree = bulk_load(
        pool(1024),
        BTreeConfig::with_fanout(16),
        &entries,
        1.0,
        StructureId::Index(0),
    )
    .unwrap();
    let mut expect: BTreeMap<Key, Rid> = entries.iter().copied().collect();
    let mut rng = lcg(77);
    for round in 0..4 {
        let mut victims: Vec<(Key, Rid)> = expect
            .iter()
            .filter(|_| rng().is_multiple_of(3))
            .map(|(&k, &r)| (k, r))
            .collect();
        victims.sort_unstable();
        bulk_delete_sorted(&mut tree, &victims, ReorgPolicy::BaseNodePack).unwrap();
        for (k, _) in &victims {
            expect.remove(k);
        }
        let got = verify::check(&tree).unwrap();
        let want: Vec<(Key, Rid)> = expect.iter().map(|(&k, &r)| (k, r)).collect();
        assert_eq!(got, want, "round {round}");
    }
}

#[test]
fn deep_tree_operations() {
    // Fanout 3 at 3000 entries: a genuinely deep tree (~7 levels).
    let entries: Vec<(Key, Rid)> = (0..3000u64).map(|k| (k, Rid::new(k as u32, 0))).collect();
    let mut tree = bulk_load(
        pool(4096),
        BTreeConfig::with_fanout(3),
        &entries,
        1.0,
        StructureId::Index(0),
    )
    .unwrap();
    assert!(tree.height() >= 6, "height {}", tree.height());
    for k in (0..3000u64).step_by(100) {
        assert_eq!(tree.search(k).unwrap(), vec![Rid::new(k as u32, 0)]);
    }
    let victims: Vec<(Key, Rid)> = entries.iter().copied().step_by(2).collect();
    bulk_delete_sorted(&mut tree, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
    assert_eq!(tree.len(), 1500);
    verify::check(&tree).unwrap();
    // The tall tree still answers range queries correctly.
    let got = tree.range(1001, 1099).unwrap();
    let want: Vec<(Key, Rid)> = (1001..=1099)
        .filter(|k| k % 2 == 1)
        .map(|k| (k, Rid::new(k as u32, 0)))
        .collect();
    assert_eq!(got, want);
}
