//! Tests for the invariant checker itself: deliberately corrupt a tree and
//! assert `verify::check` catches each class of damage — otherwise the
//! oracle used by every other test proves nothing.

use bd_btree::node::{NodeKind, NodeMut, NodeRef};
use bd_btree::{bulk_load, verify, BTree, BTreeConfig, Key};
use bd_storage::{BufferPool, CostModel, PageId, Rid, SimDisk, StructureId};
use std::sync::Arc;

fn loaded(n: u64, fanout: usize) -> (BTree, Arc<BufferPool>) {
    let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
    let entries: Vec<(Key, Rid)> = (0..n).map(|k| (k, Rid::new(k as u32, 0))).collect();
    let t = bulk_load(
        pool.clone(),
        BTreeConfig::with_fanout(fanout),
        &entries,
        1.0,
        StructureId::Index(0),
    )
    .unwrap();
    (t, pool)
}

fn first_leaf_of(t: &BTree) -> PageId {
    t.first_leaf().unwrap()
}

#[test]
fn clean_tree_verifies() {
    let (t, _) = loaded(500, 8);
    let entries = verify::check(&t).unwrap();
    assert_eq!(entries.len(), 500);
}

#[test]
fn detects_unsorted_leaf() {
    let (t, pool) = loaded(500, 8);
    let leaf = first_leaf_of(&t);
    {
        let mut w = pool.pin_write(leaf).unwrap();
        let node = NodeMut::new(&mut w[..]);
        // Swap the first two entries by rewriting them out of order.
        let a = node.as_ref().leaf_entry(0);
        let b = node.as_ref().leaf_entry(1);
        // leaf_set_entries debug-asserts order, so write raw via the page.
        let _ = node;
        bd_storage::page::put_u64(&mut w[..], 16, b.0);
        bd_storage::page::put_u64(&mut w[..], 24, b.1.to_u64());
        bd_storage::page::put_u64(&mut w[..], 32, a.0);
        bd_storage::page::put_u64(&mut w[..], 40, a.1.to_u64());
    }
    let err = verify::check(&t).unwrap_err();
    assert!(err.0.contains("order") || err.0.contains("bound"), "{err}");
}

#[test]
fn detects_entry_outside_separator_bounds() {
    let (t, pool) = loaded(1000, 8);
    // Put a huge key into the first leaf: it violates the parent's upper
    // separator bound.
    let leaf = first_leaf_of(&t);
    {
        let mut w = pool.pin_write(leaf).unwrap();
        let mut node = NodeMut::new(&mut w[..]);
        node.leaf_remove_at(0); // keep the count at cap
        node.leaf_insert(999_999, Rid::new(0, 0));
    }
    let err = verify::check(&t).unwrap_err();
    assert!(err.0.contains("bound"), "{err}");
}

#[test]
fn detects_count_mismatch() {
    let (mut t, pool) = loaded(300, 8);
    // Remove an entry behind the tree's back.
    let leaf = first_leaf_of(&t);
    {
        let mut w = pool.pin_write(leaf).unwrap();
        let mut node = NodeMut::new(&mut w[..]);
        node.leaf_remove_at(0);
    }
    let err = verify::check(&t).unwrap_err();
    assert!(err.0.contains("reachable"), "{err}");
    // recount() repairs the counter.
    t.recount().unwrap();
    verify::check(&t).unwrap();
}

#[test]
fn detects_broken_sibling_chain() {
    let (t, pool) = loaded(1000, 8);
    let leaf = first_leaf_of(&t);
    {
        let mut w = pool.pin_write(leaf).unwrap();
        let mut node = NodeMut::new(&mut w[..]);
        // Skip the true right sibling: the chain now misses leaves that
        // are still reachable top-down.
        let skip = node.as_ref().right_sibling().unwrap();
        let r = pool.pin_read(skip).unwrap();
        let next_next = NodeRef::new(&r[..]).right_sibling();
        drop(r);
        node.set_right_sibling(next_next);
    }
    let err = verify::check(&t).unwrap_err();
    assert!(err.0.contains("chain") || err.0.contains("order"), "{err}");
}

#[test]
fn detects_populated_detached_leaf() {
    let (t, pool) = loaded(1000, 8);
    // Detach a populated leaf from its parent but keep it in the chain:
    // its entries become unreachable top-down.
    let root = t.root_page();
    let victim_child;
    {
        let mut w = pool.pin_write(root).unwrap();
        let mut node = NodeMut::new(&mut w[..]);
        assert_eq!(node.as_ref().kind(), NodeKind::Inner);
        let (_, child) = node.inner_remove_entry(0);
        victim_child = child;
    }
    let err = verify::check(&t).unwrap_err();
    // Either the chain mismatch or the unreachable-entries check fires.
    assert!(
        err.0.contains("unreachable") || err.0.contains("reachable") || err.0.contains("chain"),
        "{err} (victim {victim_child})"
    );
}

#[test]
fn restore_rebuilds_handle_from_metadata() {
    let (t, pool) = loaded(2000, 16);
    let root = t.root_page();
    let height = t.height();
    let cfg = t.config();
    drop(t);
    let restored = BTree::restore(pool, cfg, root, height, StructureId::Index(0)).unwrap();
    assert_eq!(restored.len(), 2000);
    assert_eq!(restored.height(), height);
    assert_eq!(restored.search(777).unwrap(), vec![Rid::new(777, 0)]);
    verify::check(&restored).unwrap();
}
