//! On-page layout of B-link tree nodes.
//!
//! Every node (leaf or inner) carries a right-sibling pointer — the paper
//! requires "a B-link-tree organization" in which "the nodes in each level
//! are linked" so that whole levels can be scanned sequentially.
//!
//! Separators are *composite* `(key, rid)` pairs. The paper's workload is
//! duplicate-free (Jannink's tree "does not support duplicates"); ours
//! supports duplicates as a robustness extension, and composite separators
//! keep descent exact even when one key's duplicates span several leaves.
//!
//! ```text
//! 0..2    node_type (u16)      0 = leaf, 1 = inner
//! 2..4    nkeys     (u16)
//! 4..8    right_sibling (u32)  NO_PAGE if none
//! 8..16   reserved
//! 16..    payload:
//!   leaf : entries of (key u64, rid u64), 16 bytes each, sorted by (key, rid)
//!   inner: child0 (u32) then entries of (key u64, rid u64, child u32),
//!          20 bytes each, sorted; child0 covers entries < sep[0],
//!          entries[i].child covers entries >= sep[i] (and < sep[i+1])
//! ```

use bd_storage::{Rid, PAGE_SIZE};

/// Sentinel page id meaning "no sibling".
pub const NO_PAGE: u32 = u32::MAX;

const TYPE_OFF: usize = 0;
const NKEYS_OFF: usize = 2;
const RIGHT_OFF: usize = 4;
const PAYLOAD: usize = 16;

const LEAF_ENTRY: usize = 16;
const INNER_CHILD0: usize = PAYLOAD;
const INNER_ENTRIES: usize = PAYLOAD + 4;
const INNER_ENTRY: usize = 20;

/// Maximum leaf entries a 4 KiB page can hold.
pub const MAX_LEAF_CAP: usize = (PAGE_SIZE - PAYLOAD) / LEAF_ENTRY;
/// Maximum inner separator entries a 4 KiB page can hold.
pub const MAX_INNER_CAP: usize = (PAGE_SIZE - INNER_ENTRIES) / INNER_ENTRY;

/// Index key type. The paper's attributes are random integers.
pub type Key = u64;

/// Composite separator: a `(key, rid)` boundary.
pub type Sep = (Key, Rid);

/// The smallest possible separator for `key` (used to descend to the
/// leftmost occurrence of a key).
pub fn key_floor(key: Key) -> Sep {
    (key, Rid::new(0, 0))
}

use bd_storage::page::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};

/// Kind of node stored on a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Leaf node holding `(key, rid)` entries.
    Leaf,
    /// Inner node holding separators and child pointers.
    Inner,
}

/// Read-only view of a node page.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    buf: &'a [u8],
}

impl<'a> NodeRef<'a> {
    /// Interpret `buf` (a full page) as a node.
    pub fn new(buf: &'a [u8]) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        NodeRef { buf }
    }

    /// Node kind.
    pub fn kind(&self) -> NodeKind {
        if get_u16(self.buf, TYPE_OFF) == 0 {
            NodeKind::Leaf
        } else {
            NodeKind::Inner
        }
    }

    /// Number of keys (leaf entries or inner separators).
    pub fn nkeys(&self) -> usize {
        get_u16(self.buf, NKEYS_OFF) as usize
    }

    /// Right sibling page, if any.
    pub fn right_sibling(&self) -> Option<u32> {
        let r = get_u32(self.buf, RIGHT_OFF);
        (r != NO_PAGE).then_some(r)
    }

    /// Leaf entry `i` as `(key, rid)`.
    pub fn leaf_entry(&self, i: usize) -> (Key, Rid) {
        debug_assert_eq!(self.kind(), NodeKind::Leaf);
        debug_assert!(i < self.nkeys());
        let off = PAYLOAD + i * LEAF_ENTRY;
        (
            get_u64(self.buf, off),
            Rid::from_u64(get_u64(self.buf, off + 8)),
        )
    }

    /// All leaf entries.
    pub fn leaf_entries(&self) -> Vec<(Key, Rid)> {
        (0..self.nkeys()).map(|i| self.leaf_entry(i)).collect()
    }

    /// Inner child pointer `i` (0 ..= nkeys).
    pub fn inner_child(&self, i: usize) -> u32 {
        debug_assert_eq!(self.kind(), NodeKind::Inner);
        debug_assert!(i <= self.nkeys());
        if i == 0 {
            get_u32(self.buf, INNER_CHILD0)
        } else {
            get_u32(self.buf, INNER_ENTRIES + (i - 1) * INNER_ENTRY + 16)
        }
    }

    /// Inner separator `i` (0 .. nkeys). Child `i + 1` covers entries
    /// `>= sep(i)`.
    pub fn inner_sep(&self, i: usize) -> Sep {
        debug_assert_eq!(self.kind(), NodeKind::Inner);
        debug_assert!(i < self.nkeys());
        let off = INNER_ENTRIES + i * INNER_ENTRY;
        (
            get_u64(self.buf, off),
            Rid::from_u64(get_u64(self.buf, off + 8)),
        )
    }

    /// Child index to descend into for `target` (rightmost child whose
    /// range contains it): the number of separators `<= target`.
    pub fn route(&self, target: Sep) -> usize {
        let n = self.nkeys();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.inner_sep(mid) <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Position of the first leaf entry `>= (key, rid)`.
    pub fn leaf_lower_bound(&self, key: Key, rid: Rid) -> usize {
        let target = (key, rid);
        let n = self.nkeys();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.leaf_entry(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First and last keys of a leaf (`None` when empty).
    pub fn leaf_key_range(&self) -> Option<(Key, Key)> {
        let n = self.nkeys();
        (n > 0).then(|| (self.leaf_entry(0).0, self.leaf_entry(n - 1).0))
    }
}

/// Mutable view of a node page.
pub struct NodeMut<'a> {
    buf: &'a mut [u8],
}

impl<'a> NodeMut<'a> {
    /// Interpret `buf` (a full page) as a mutable node.
    pub fn new(buf: &'a mut [u8]) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        NodeMut { buf }
    }

    /// Format `buf` as an empty node of `kind`.
    pub fn init(buf: &'a mut [u8], kind: NodeKind) -> Self {
        let n = NodeMut::new(buf);
        put_u16(n.buf, TYPE_OFF, matches!(kind, NodeKind::Inner) as u16);
        put_u16(n.buf, NKEYS_OFF, 0);
        put_u32(n.buf, RIGHT_OFF, NO_PAGE);
        n
    }

    /// Read-only view of this node.
    pub fn as_ref(&self) -> NodeRef<'_> {
        NodeRef::new(self.buf)
    }

    fn set_nkeys(&mut self, n: usize) {
        put_u16(self.buf, NKEYS_OFF, n as u16);
    }

    /// Set or clear the right sibling.
    pub fn set_right_sibling(&mut self, pid: Option<u32>) {
        put_u32(self.buf, RIGHT_OFF, pid.unwrap_or(NO_PAGE));
    }

    /// Insert a leaf entry at sorted position; panics if the page layout
    /// capacity is exceeded (the tree enforces its configured cap first).
    pub fn leaf_insert(&mut self, key: Key, rid: Rid) {
        let view = self.as_ref();
        debug_assert_eq!(view.kind(), NodeKind::Leaf);
        let n = view.nkeys();
        assert!(n < MAX_LEAF_CAP, "leaf page overflow");
        let pos = view.leaf_lower_bound(key, rid);
        let start = PAYLOAD + pos * LEAF_ENTRY;
        let end = PAYLOAD + n * LEAF_ENTRY;
        self.buf.copy_within(start..end, start + LEAF_ENTRY);
        put_u64(self.buf, start, key);
        put_u64(self.buf, start + 8, rid.to_u64());
        self.set_nkeys(n + 1);
    }

    /// Remove leaf entry at `pos`, returning it.
    pub fn leaf_remove_at(&mut self, pos: usize) -> (Key, Rid) {
        let n = self.as_ref().nkeys();
        debug_assert!(pos < n);
        let entry = self.as_ref().leaf_entry(pos);
        let start = PAYLOAD + (pos + 1) * LEAF_ENTRY;
        let end = PAYLOAD + n * LEAF_ENTRY;
        self.buf.copy_within(start..end, start - LEAF_ENTRY);
        self.set_nkeys(n - 1);
        entry
    }

    /// Replace all leaf entries with `entries` (must be sorted).
    pub fn leaf_set_entries(&mut self, entries: &[(Key, Rid)]) {
        assert!(entries.len() <= MAX_LEAF_CAP, "leaf page overflow");
        debug_assert!(entries.windows(2).all(|w| w[0] <= w[1]));
        for (i, &(k, r)) in entries.iter().enumerate() {
            let off = PAYLOAD + i * LEAF_ENTRY;
            put_u64(self.buf, off, k);
            put_u64(self.buf, off + 8, r.to_u64());
        }
        self.set_nkeys(entries.len());
    }

    /// Split this leaf: move the upper half into `right` (an initialized
    /// empty leaf) and return the separator (first entry of `right`).
    pub fn leaf_split_into(&mut self, right: &mut NodeMut<'_>) -> Sep {
        let n = self.as_ref().nkeys();
        let mid = n / 2;
        let moved: Vec<(Key, Rid)> = (mid..n).map(|i| self.as_ref().leaf_entry(i)).collect();
        right.leaf_set_entries(&moved);
        self.set_nkeys(mid);
        moved[0]
    }

    /// Initialize an inner node with its leftmost child.
    pub fn inner_init_child0(&mut self, child: u32) {
        debug_assert_eq!(self.as_ref().kind(), NodeKind::Inner);
        put_u32(self.buf, INNER_CHILD0, child);
    }

    /// Overwrite child pointer `i` (0 ..= nkeys).
    pub fn inner_set_child(&mut self, i: usize, child: u32) {
        let n = self.as_ref().nkeys();
        debug_assert!(i <= n);
        if i == 0 {
            put_u32(self.buf, INNER_CHILD0, child);
        } else {
            put_u32(self.buf, INNER_ENTRIES + (i - 1) * INNER_ENTRY + 16, child);
        }
    }

    /// Insert `(sep, child)` so that `child` covers entries `>= sep`.
    pub fn inner_insert(&mut self, sep: Sep, child: u32) {
        let view = self.as_ref();
        debug_assert_eq!(view.kind(), NodeKind::Inner);
        let n = view.nkeys();
        assert!(n < MAX_INNER_CAP, "inner page overflow");
        let pos = view.route(sep);
        let start = INNER_ENTRIES + pos * INNER_ENTRY;
        let end = INNER_ENTRIES + n * INNER_ENTRY;
        self.buf.copy_within(start..end, start + INNER_ENTRY);
        put_u64(self.buf, start, sep.0);
        put_u64(self.buf, start + 8, sep.1.to_u64());
        put_u32(self.buf, start + 16, child);
        self.set_nkeys(n + 1);
    }

    /// Remove separator entry `i` (its child pointer disappears with it).
    pub fn inner_remove_entry(&mut self, i: usize) -> (Sep, u32) {
        let view = self.as_ref();
        let n = view.nkeys();
        debug_assert!(i < n);
        let removed = (view.inner_sep(i), view.inner_child(i + 1));
        let start = INNER_ENTRIES + (i + 1) * INNER_ENTRY;
        let end = INNER_ENTRIES + n * INNER_ENTRY;
        self.buf.copy_within(start..end, start - INNER_ENTRY);
        self.set_nkeys(n - 1);
        removed
    }

    /// Split this inner node: the middle separator is *promoted* (returned,
    /// not kept); upper entries move to `right` (an initialized empty inner
    /// node). Returns the promoted separator.
    pub fn inner_split_into(&mut self, right: &mut NodeMut<'_>) -> Sep {
        let n = self.as_ref().nkeys();
        debug_assert!(n >= 3, "splitting an inner node needs >= 3 separators");
        let mid = n / 2;
        let view = self.as_ref();
        let promoted = view.inner_sep(mid);
        let child0_right = view.inner_child(mid + 1);
        let moved: Vec<(Sep, u32)> = (mid + 1..n)
            .map(|i| (view.inner_sep(i), view.inner_child(i + 1)))
            .collect();
        right.inner_init_child0(child0_right);
        for &(k, c) in &moved {
            right.inner_insert(k, c);
        }
        self.set_nkeys(mid);
        promoted
    }

    /// Overwrite separator entry `i` in place, keeping its child pointer.
    /// Used by the erasure scrub to *tighten* a stale separator up to the
    /// actual minimum of its right subtree; the caller must preserve the
    /// ordering invariant (old sep `<=` new sep `<=` right subtree min).
    pub fn inner_set_sep(&mut self, i: usize, sep: Sep) {
        let view = self.as_ref();
        debug_assert_eq!(view.kind(), NodeKind::Inner);
        debug_assert!(i < view.nkeys());
        let off = INNER_ENTRIES + i * INNER_ENTRY;
        put_u64(self.buf, off, sep.0);
        put_u64(self.buf, off + 8, sep.1.to_u64());
    }

    /// Zero every payload byte beyond the live entry region. Removals shift
    /// entries with `copy_within` and decrement `nkeys`, leaving the former
    /// last entry's `(key, rid)` image in the slack — this destroys it.
    /// Returns how many non-zero bytes were destroyed.
    pub fn scrub_slack(&mut self) -> usize {
        let view = self.as_ref();
        let start = match view.kind() {
            NodeKind::Leaf => PAYLOAD + view.nkeys() * LEAF_ENTRY,
            NodeKind::Inner => INNER_ENTRIES + view.nkeys() * INNER_ENTRY,
        };
        let slack = &mut self.buf[start..];
        let dirty = slack.iter().filter(|&&b| b != 0).count();
        if dirty > 0 {
            slack.fill(0);
        }
        dirty
    }

    /// Replace all separator entries (sorted) plus `child0`.
    pub fn inner_set_entries(&mut self, child0: u32, entries: &[(Sep, u32)]) {
        assert!(entries.len() <= MAX_INNER_CAP, "inner page overflow");
        debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
        put_u32(self.buf, INNER_CHILD0, child0);
        for (i, &(sep, c)) in entries.iter().enumerate() {
            let off = INNER_ENTRIES + i * INNER_ENTRY;
            put_u64(self.buf, off, sep.0);
            put_u64(self.buf, off + 8, sep.1.to_u64());
            put_u32(self.buf, off + 16, c);
        }
        self.set_nkeys(entries.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::page::zeroed;

    fn sep(k: Key) -> Sep {
        key_floor(k)
    }

    #[test]
    fn capacities_fit_the_page() {
        assert_eq!(MAX_LEAF_CAP, 255);
        assert_eq!(MAX_INNER_CAP, 203);
        const { assert!(PAYLOAD + MAX_LEAF_CAP * LEAF_ENTRY <= PAGE_SIZE) };
        const { assert!(INNER_ENTRIES + MAX_INNER_CAP * INNER_ENTRY <= PAGE_SIZE) };
    }

    #[test]
    fn leaf_insert_keeps_sorted_order() {
        let mut buf = zeroed();
        let mut n = NodeMut::init(&mut buf[..], NodeKind::Leaf);
        for k in [5u64, 1, 9, 3, 7] {
            n.leaf_insert(k, Rid::new(k as u32, 0));
        }
        let keys: Vec<Key> = n.as_ref().leaf_entries().iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn duplicate_keys_order_by_rid() {
        let mut buf = zeroed();
        let mut n = NodeMut::init(&mut buf[..], NodeKind::Leaf);
        n.leaf_insert(4, Rid::new(9, 0));
        n.leaf_insert(4, Rid::new(2, 1));
        n.leaf_insert(4, Rid::new(2, 0));
        let rids: Vec<Rid> = n.as_ref().leaf_entries().iter().map(|e| e.1).collect();
        assert_eq!(rids, vec![Rid::new(2, 0), Rid::new(2, 1), Rid::new(9, 0)]);
    }

    #[test]
    fn leaf_remove_shifts() {
        let mut buf = zeroed();
        let mut n = NodeMut::init(&mut buf[..], NodeKind::Leaf);
        for k in 0..5u64 {
            n.leaf_insert(k, Rid::new(0, k as u16));
        }
        let removed = n.leaf_remove_at(2);
        assert_eq!(removed.0, 2);
        let keys: Vec<Key> = n.as_ref().leaf_entries().iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![0, 1, 3, 4]);
    }

    #[test]
    fn leaf_split_moves_upper_half() {
        let mut lb = zeroed();
        let mut rb = zeroed();
        let mut left = NodeMut::init(&mut lb[..], NodeKind::Leaf);
        for k in 0..10u64 {
            left.leaf_insert(k, Rid::new(0, k as u16));
        }
        let mut right = NodeMut::init(&mut rb[..], NodeKind::Leaf);
        let boundary = left.leaf_split_into(&mut right);
        assert_eq!(boundary, (5, Rid::new(0, 5)));
        assert_eq!(left.as_ref().nkeys(), 5);
        assert_eq!(right.as_ref().nkeys(), 5);
        assert_eq!(right.as_ref().leaf_entry(0).0, 5);
    }

    #[test]
    fn inner_routing() {
        let mut buf = zeroed();
        let mut n = NodeMut::init(&mut buf[..], NodeKind::Inner);
        n.inner_init_child0(100);
        n.inner_insert(sep(10), 101);
        n.inner_insert(sep(20), 102);
        let v = n.as_ref();
        assert_eq!(v.inner_child(v.route(sep(5))), 100);
        assert_eq!(v.inner_child(v.route(sep(10))), 101);
        assert_eq!(v.inner_child(v.route(sep(15))), 101);
        assert_eq!(v.inner_child(v.route(sep(20))), 102);
        assert_eq!(v.inner_child(v.route(sep(99))), 102);
    }

    #[test]
    fn composite_routing_splits_duplicates() {
        let mut buf = zeroed();
        let mut n = NodeMut::init(&mut buf[..], NodeKind::Inner);
        n.inner_init_child0(100);
        // Duplicates of key 10 straddle two children at rid (5,0).
        n.inner_insert((10, Rid::new(5, 0)), 101);
        let v = n.as_ref();
        assert_eq!(v.inner_child(v.route((10, Rid::new(2, 0)))), 100);
        assert_eq!(v.inner_child(v.route((10, Rid::new(5, 0)))), 101);
        assert_eq!(v.inner_child(v.route((10, Rid::new(9, 0)))), 101);
        // key_floor(10) descends to the leftmost duplicate.
        assert_eq!(v.inner_child(v.route(key_floor(10))), 100);
    }

    #[test]
    fn inner_split_promotes_middle() {
        let mut lb = zeroed();
        let mut rb = zeroed();
        let mut left = NodeMut::init(&mut lb[..], NodeKind::Inner);
        left.inner_init_child0(200);
        for i in 0..5u64 {
            left.inner_insert(sep(10 * (i + 1)), 201 + i as u32);
        }
        let mut right = NodeMut::init(&mut rb[..], NodeKind::Inner);
        let promoted = left.inner_split_into(&mut right);
        assert_eq!(promoted, sep(30));
        let lv = left.as_ref();
        assert_eq!(lv.nkeys(), 2);
        assert_eq!(lv.inner_child(0), 200);
        assert_eq!(lv.inner_child(2), 202);
        let rv = right.as_ref();
        assert_eq!(rv.nkeys(), 2);
        assert_eq!(rv.inner_child(0), 203);
        assert_eq!(rv.inner_sep(0), sep(40));
        assert_eq!(rv.inner_child(2), 205);
    }

    #[test]
    fn inner_remove_entry_drops_child() {
        let mut buf = zeroed();
        let mut n = NodeMut::init(&mut buf[..], NodeKind::Inner);
        n.inner_init_child0(1);
        n.inner_insert(sep(10), 2);
        n.inner_insert(sep(20), 3);
        let (k, c) = n.inner_remove_entry(0);
        assert_eq!((k, c), (sep(10), 2));
        let v = n.as_ref();
        assert_eq!(v.nkeys(), 1);
        assert_eq!(v.inner_child(0), 1);
        assert_eq!(v.inner_sep(0), sep(20));
        assert_eq!(v.inner_child(1), 3);
    }

    #[test]
    fn sibling_pointer_roundtrip() {
        let mut buf = zeroed();
        let mut n = NodeMut::init(&mut buf[..], NodeKind::Leaf);
        assert_eq!(n.as_ref().right_sibling(), None);
        n.set_right_sibling(Some(77));
        assert_eq!(n.as_ref().right_sibling(), Some(77));
        n.set_right_sibling(None);
        assert_eq!(n.as_ref().right_sibling(), None);
    }

    #[test]
    fn leaf_lower_bound_finds_duplicates_start() {
        let mut buf = zeroed();
        let mut n = NodeMut::init(&mut buf[..], NodeKind::Leaf);
        for (k, s) in [(1u64, 0u16), (3, 0), (3, 1), (3, 2), (5, 0)] {
            n.leaf_insert(k, Rid::new(0, s));
        }
        let v = n.as_ref();
        assert_eq!(v.leaf_lower_bound(3, Rid::new(0, 0)), 1);
        assert_eq!(v.leaf_lower_bound(3, Rid::new(0, 2)), 3);
        assert_eq!(v.leaf_lower_bound(4, Rid::new(0, 0)), 4);
        assert_eq!(v.leaf_lower_bound(9, Rid::new(0, 0)), 5);
    }
}
