//! Bottom-up bulk loading from sorted entries.
//!
//! Used by the *drop & create* baseline (drop secondary indices, delete,
//! re-create) and by table/index construction in the workload generator.
//! Each level is written onto a freshly allocated contiguous page extent
//! with chained sequential writes, bypassing the buffer pool — the classic
//! sorted-run build (cf. van den Bercken et al. on bulk loading, cited by
//! the paper).

use std::sync::Arc;

use bd_storage::{BufferPool, PageId, Rid, StorageResult, StructureId};

use crate::node::{Key, NodeKind, NodeMut, Sep};
use crate::tree::{BTree, BTreeConfig};

/// Build a tree from `entries`, which must be sorted by `(key, rid)`.
/// `fill` in `(0, 1]` sets how full each node is packed (1.0 = dense).
/// Every page of the new tree is catalogued under `owner`.
pub fn bulk_load(
    pool: Arc<BufferPool>,
    cfg: BTreeConfig,
    entries: &[(Key, Rid)],
    fill: f64,
    owner: StructureId,
) -> StorageResult<BTree> {
    debug_assert!(entries.windows(2).all(|w| w[0] <= w[1]), "entries unsorted");
    assert!(fill > 0.0 && fill <= 1.0, "fill factor out of range");

    let mut tree = BTree::create(pool.clone(), cfg, owner)?;
    if entries.is_empty() {
        return Ok(tree);
    }

    let per_leaf = ((cfg.leaf_cap as f64 * fill) as usize).clamp(1, cfg.leaf_cap);
    let n_leaves = entries.len().div_ceil(per_leaf);
    let first_leaf = pool.allocate_contiguous(n_leaves, owner);

    // Write the leaf level with chained writes; remember each leaf's first
    // entry as the separator for the level above.
    let mut level_seps: Vec<(Sep, PageId)> = Vec::with_capacity(n_leaves);
    pool.with_disk(|disk| {
        disk.write_chain(first_leaf, n_leaves, |pid, page| {
            let i = (pid - first_leaf) as usize;
            let chunk = &entries[i * per_leaf..((i + 1) * per_leaf).min(entries.len())];
            let mut node = NodeMut::init(&mut page[..], NodeKind::Leaf);
            node.leaf_set_entries(chunk);
            let next = (i + 1 < n_leaves).then(|| pid + 1);
            node.set_right_sibling(next);
            level_seps.push((chunk[0], pid));
        })
    })?;

    // Build inner levels bottom-up until one node remains.
    let per_inner = ((cfg.inner_cap as f64 * fill) as usize).clamp(2, cfg.inner_cap);
    let mut height = 1;
    while level_seps.len() > 1 {
        // A node holding c children has c-1 separators; pack `per_inner`
        // separators => per_inner + 1 children per node.
        let per_node = per_inner + 1;
        let n_nodes = level_seps.len().div_ceil(per_node);
        // Avoid a lopsided final node with a single child: rebalance by
        // capping children per node at ceil(len / n_nodes).
        let per_node = level_seps.len().div_ceil(n_nodes);
        let first = pool.allocate_contiguous(n_nodes, owner);
        let mut next_seps: Vec<(Sep, PageId)> = Vec::with_capacity(n_nodes);
        pool.with_disk(|disk| {
            disk.write_chain(first, n_nodes, |pid, page| {
                let i = (pid - first) as usize;
                let group = &level_seps[i * per_node..((i + 1) * per_node).min(level_seps.len())];
                let mut node = NodeMut::init(&mut page[..], NodeKind::Inner);
                let seps: Vec<(Sep, u32)> = group[1..].iter().map(|&(s, c)| (s, c)).collect();
                node.inner_set_entries(group[0].1, &seps);
                let next = (i + 1 < n_nodes).then(|| pid + 1);
                node.set_right_sibling(next);
                next_seps.push((group[0].0, pid));
            })
        })?;
        level_seps = next_seps;
        height += 1;
    }

    let root = level_seps[0].1;
    // The empty-tree scaffold `create` made is superseded by the loaded
    // levels; return its page to the free set.
    pool.free_page(tree.root_page());
    tree.install_root(root, height);
    tree.set_len(entries.len());
    tree.set_leaf_extent(Some((first_leaf, n_leaves)));
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::LeafScan;
    use bd_storage::{CostModel, SimDisk};

    fn pool(frames: usize) -> Arc<BufferPool> {
        BufferPool::new(SimDisk::new(CostModel::default()), frames)
    }

    fn rid(i: u64) -> Rid {
        Rid::new((i / 7) as u32, (i % 7) as u16)
    }

    #[test]
    fn loads_and_searches() {
        let entries: Vec<(Key, Rid)> = (0..10_000u64).map(|k| (k * 2, rid(k))).collect();
        let t = bulk_load(
            pool(256),
            BTreeConfig::default(),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.search(1000).unwrap(), vec![rid(500)]);
        assert_eq!(t.search(1001).unwrap(), Vec::<Rid>::new());
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn empty_load_gives_empty_tree() {
        let t = bulk_load(
            pool(16),
            BTreeConfig::default(),
            &[],
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.search(1).unwrap(), Vec::<Rid>::new());
    }

    #[test]
    fn single_entry_load() {
        let t = bulk_load(
            pool(16),
            BTreeConfig::default(),
            &[(9, rid(9))],
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.search(9).unwrap(), vec![rid(9)]);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn fill_factor_affects_leaf_count_and_height() {
        let entries: Vec<(Key, Rid)> = (0..4000u64).map(|k| (k, rid(k))).collect();
        let dense = bulk_load(
            pool(64),
            BTreeConfig::with_fanout(16),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let sparse = bulk_load(
            pool(64),
            BTreeConfig::with_fanout(16),
            &entries,
            0.5,
            StructureId::Index(0),
        )
        .unwrap();
        let (_, dn) = dense.leaf_extent().unwrap();
        let (_, sn) = sparse.leaf_extent().unwrap();
        assert_eq!(dn, 250);
        assert_eq!(sn, 500);
        crate::verify::check(&dense).unwrap();
        crate::verify::check(&sparse).unwrap();
    }

    #[test]
    fn small_fanout_creates_taller_tree() {
        let entries: Vec<(Key, Rid)> = (0..100_000u64).map(|k| (k, rid(k))).collect();
        let wide = bulk_load(
            pool(64),
            BTreeConfig::default(),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let tall = bulk_load(
            pool(64),
            BTreeConfig::with_fanout(32),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        assert_eq!(wide.height(), 3); // 255/leaf, 203 fanout: 393 leaves, 2 inners, root
        assert_eq!(tall.height(), 4); // Experiment 3's "larger height" setup
        crate::verify::check(&tall).unwrap();
    }

    #[test]
    fn load_then_scan_roundtrips() {
        let entries: Vec<(Key, Rid)> = (0..2357u64).map(|k| (k * 3 + 1, rid(k))).collect();
        let t = bulk_load(
            pool(128),
            BTreeConfig::with_fanout(32),
            &entries,
            0.9,
            StructureId::Index(0),
        )
        .unwrap();
        let scanned: Vec<(Key, Rid)> = LeafScan::new(&t).unwrap().collect();
        assert_eq!(scanned, entries);
    }

    #[test]
    fn load_supports_duplicates() {
        let mut entries: Vec<(Key, Rid)> = Vec::new();
        for k in 0..100u64 {
            for d in 0..5u16 {
                entries.push((k, Rid::new(k as u32, d)));
            }
        }
        let t = bulk_load(
            pool(64),
            BTreeConfig::with_fanout(7),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        for k in 0..100u64 {
            assert_eq!(t.search(k).unwrap().len(), 5, "key {k}");
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn incremental_inserts_after_load_work() {
        let entries: Vec<(Key, Rid)> = (0..1000u64).map(|k| (k * 2, rid(k))).collect();
        let mut t = bulk_load(
            pool(256),
            BTreeConfig::with_fanout(16),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        for k in 0..500u64 {
            t.insert(k * 2 + 1, rid(10_000 + k)).unwrap();
        }
        assert_eq!(t.len(), 1500);
        assert_eq!(t.search(777).unwrap(), vec![rid(10_388)]);
        crate::verify::check(&t).unwrap();
    }
}
