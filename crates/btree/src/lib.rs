#![warn(missing_docs)]

//! B-link tree (sibling-chained B+-tree) for the bulk-delete reproduction.
//!
//! Implements both sides of the paper's comparison:
//!
//! * the **traditional** path — [`BTree::delete_one`] traverses root-to-leaf
//!   for every record, with free-at-empty reclamation (Jannink's deletion
//!   adapted to a B-link tree, as in the paper's prototype);
//! * the **bulk** path — [`bulk::bulk_delete_sorted`] merges a sorted delete
//!   list into a single leaf-level pass, and [`bulk::bulk_delete_probe`]
//!   probes a RID hash set during a leaf scan; both reorganize per
//!   [`reorg::ReorgPolicy`] and return the deleted entries for piping into
//!   downstream operators.
//!
//! [`bulk_load::bulk_load`] builds trees bottom-up from sorted entries onto
//! contiguous extents (used by the *drop & create* baseline), and
//! [`verify::check`] asserts every structural invariant (used heavily by
//! tests and property tests).

pub mod bulk;
pub mod bulk_load;
pub mod node;
pub mod reorg;
pub mod scan;
pub mod scrub;
pub mod tree;
pub mod verify;

pub use bulk::{bulk_delete_by_keys, bulk_delete_probe, bulk_delete_sorted};
pub use bulk_load::bulk_load;
pub use node::{Key, NodeKind, Sep, MAX_INNER_CAP, MAX_LEAF_CAP};
pub use reorg::{sweep_detached_inners, IncrementalPacker, PackProgress, ReorgPolicy};
pub use scan::{lookup_keys_sorted, LeafPages, LeafScan, RangeCursor};
pub use scrub::{scrub as scrub_tree, TreeScrub};
pub use tree::{BTree, BTreeConfig, TreeStats};

// Bulk-delete arms are dispatched to worker threads by the phase-task
// executor; a tree handle must therefore stay `Send` (it is `Arc<BufferPool>`
// plus plain data — this assertion turns an accidental `Rc`/`RefCell`
// regression into a compile error here rather than in bd-core).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<BTree>();
};
