//! Physical erasure scrub for B-link trees.
//!
//! A logically complete bulk delete still leaves erased keys physically on
//! tree pages in two places:
//!
//! * **Slack images** — removals shift entries down with `copy_within` and
//!   decrement `nkeys`, so the former last entry's `(key, rid)` bytes stay
//!   beyond the live region of every node that shrank.
//! * **Stale separators** — an inner separator is a copy of the boundary
//!   entry made at split time; deleting that entry leaves the separator
//!   routing on a key that no longer exists anywhere in the tree.
//!
//! [`scrub`] destroys both: it walks every level's sibling chain zeroing
//! slack (detached-but-chained free-at-empty leaves included), then walks
//! the root-reachable subtree rewriting each separator to its *canonical*
//! value — the minimum entry of its right subtree. That value is always a
//! valid separator (everything left of the boundary is strictly below it,
//! and routing compares `target >= sep`), so the pass both destroys stale
//! separator copies and **repairs** a separator garbled by a torn page
//! write — re-running the scrub after a crash restores the tree.

use bd_storage::{PageId, StorageResult};

use crate::node::{NodeKind, NodeMut, NodeRef, Sep};
use crate::tree::BTree;

/// What a scrub pass touched and destroyed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeScrub {
    /// Every page the pass visited (all sibling-chained nodes of every
    /// level). The erasure campaign subtracts these from the free-page
    /// sweep: a detached-but-chained leaf is catalogued free, yet its
    /// header must survive for chain walks, so it is slack-scrubbed here
    /// instead of zeroed wholesale.
    pub pages: Vec<PageId>,
    /// Non-zero slack bytes destroyed.
    pub slack_bytes: usize,
    /// Separators rewritten to the current minimum of their right subtree.
    pub seps_tightened: usize,
}

/// Scrub one tree. See the module docs for what is destroyed. The tree's
/// logical content is untouched: every lookup, range scan, and structural
/// invariant holds exactly as before.
pub fn scrub(tree: &mut BTree) -> StorageResult<TreeScrub> {
    let mut report = TreeScrub::default();
    // Pass 1: slack, level by level, following sibling chains so detached
    // empties are scrubbed too.
    for level in 0..tree.height() {
        let mut pid = Some(tree.leftmost_of_level(level)?);
        while let Some(p) = pid {
            // Pause point: between nodes, no pin held.
            bd_storage::pacer::checkpoint()?;
            let mut w = tree.pool().pin_write(p)?;
            let mut node = NodeMut::new(&mut w[..]);
            report.slack_bytes += node.scrub_slack();
            report.pages.push(p);
            pid = node.as_ref().right_sibling();
        }
    }
    // Pass 2: separator tightening over the root-reachable subtree.
    tighten(tree, tree.root_page(), &mut report)?;
    Ok(report)
}

/// Recursively tighten every separator under `pid` and return the minimum
/// entry of the subtree (None when the subtree holds no entries).
fn tighten(tree: &BTree, pid: PageId, report: &mut TreeScrub) -> StorageResult<Option<Sep>> {
    bd_storage::pacer::checkpoint()?;
    let (nkeys, children, seps) = {
        let r = tree.pool().pin_read(pid)?;
        let node = NodeRef::new(&r[..]);
        match node.kind() {
            NodeKind::Leaf => {
                return Ok((node.nkeys() > 0).then(|| node.leaf_entry(0)));
            }
            NodeKind::Inner => {
                let n = node.nkeys();
                let children: Vec<PageId> = (0..=n).map(|i| node.inner_child(i)).collect();
                let seps: Vec<Sep> = (0..n).map(|i| node.inner_sep(i)).collect();
                (n, children, seps)
            }
        }
    };
    let mut mins = Vec::with_capacity(nkeys + 1);
    for &child in &children {
        mins.push(tighten(tree, child, report)?);
    }
    // Rewrite sep[i] to its canonical value, min(subtree of child i+1):
    // always valid (everything left of the boundary is strictly below that
    // minimum, and routing compares `target >= sep`). Unconditional — not
    // just raising — so a separator garbled by a torn page write is
    // *repaired* by the next scrub, not merely tolerated.
    let mut updates = Vec::new();
    for i in 0..nkeys {
        if let Some(min) = mins[i + 1] {
            if min != seps[i] {
                updates.push((i, min));
            }
        }
    }
    if !updates.is_empty() {
        let mut w = tree.pool().pin_write(pid)?;
        let mut node = NodeMut::new(&mut w[..]);
        for &(i, sep) in &updates {
            node.inner_set_sep(i, sep);
        }
        report.seps_tightened += updates.len();
    }
    Ok(mins.into_iter().flatten().next())
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bd_storage::{BufferPool, CostModel, Rid, SimDisk, StructureId};

    use super::*;
    use crate::tree::BTreeConfig;

    fn pool() -> Arc<BufferPool> {
        BufferPool::new(SimDisk::new(CostModel::default()), 256)
    }

    fn rid(i: u64) -> Rid {
        Rid::new((i >> 3) as u32, (i & 7) as u16)
    }

    // High-entropy keys so a byte-scan cannot collide with metadata.
    fn tag(i: u64) -> u64 {
        0xC0DE_D00D_0000_0000u64 | (i * 0x0101)
    }

    fn residue_scan(tree: &BTree, pages: &[bd_storage::PageId], victims: &[u64]) -> Vec<u64> {
        let mut found = Vec::new();
        tree.pool().with_disk(|d| {
            for &p in pages {
                let img = d.peek(p).unwrap();
                for &v in victims {
                    let t = v.to_le_bytes();
                    if img.windows(8).any(|w| w == t) && !found.contains(&v) {
                        found.push(v);
                    }
                }
            }
        });
        found
    }

    #[test]
    fn scrub_destroys_slack_and_stale_separators() {
        let p = pool();
        let mut t = BTree::create(
            p.clone(),
            BTreeConfig::with_fanout(8),
            StructureId::Index(0),
        )
        .unwrap();
        let n = 400u64;
        for i in 0..n {
            t.insert(tag(i), rid(i)).unwrap();
        }
        // Delete a dense prefix: leaf shifts leave slack images and many
        // separators end up naming deleted boundary keys.
        let victims: Vec<u64> = (0..n / 2).map(tag).collect();
        for (i, &v) in victims.iter().enumerate() {
            assert!(t.delete_one(v, rid(i as u64)).unwrap());
        }
        t.pool().flush_all().unwrap();
        let all_pages: Vec<_> = t
            .pool()
            .with_disk(|d| (0..d.num_pages() as bd_storage::PageId).collect());
        assert!(
            !residue_scan(&t, &all_pages, &victims).is_empty(),
            "deletes should have left physical residue (or this test checks nothing)"
        );

        let report = scrub(&mut t).unwrap();
        assert!(report.slack_bytes > 0);
        t.pool().flush_all().unwrap();

        // The scrubbed tree's own pages hold no victim key images. Pages the
        // tree freed entirely (free-at-empty orphans) are the free-page
        // sweep's job, so restrict the scan to chain-visited pages.
        let found = residue_scan(&t, &report.pages, &victims);
        assert!(
            found.is_empty(),
            "victim keys survive on tree pages: {found:x?}"
        );

        // Logical state intact and structurally sound.
        crate::verify::check(&t).unwrap();
        for i in 0..n {
            let expect: Vec<Rid> = if i < n / 2 { vec![] } else { vec![rid(i)] };
            assert_eq!(t.search(tag(i)).unwrap(), expect, "key {i}");
        }
    }

    #[test]
    fn scrub_is_idempotent_and_preserves_range_scans() {
        let p = pool();
        let mut t = BTree::create(p, BTreeConfig::with_fanout(6), StructureId::Index(1)).unwrap();
        for i in 0..300u64 {
            t.insert(tag(i), rid(i)).unwrap();
        }
        for i in (0..300u64).step_by(3) {
            assert!(t.delete_one(tag(i), rid(i)).unwrap());
        }
        let before = t.range(tag(0), tag(299)).unwrap();
        let r1 = scrub(&mut t).unwrap();
        let r2 = scrub(&mut t).unwrap();
        assert_eq!(r2.slack_bytes, 0, "second scrub finds no slack");
        assert_eq!(r2.seps_tightened, 0, "second scrub tightens nothing");
        assert_eq!(r1.pages, r2.pages);
        assert_eq!(t.range(tag(0), tag(299)).unwrap(), before);
        crate::verify::check(&t).unwrap();
    }
}
