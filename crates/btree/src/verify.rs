//! Structural invariant checker used by tests and property tests.

use std::collections::HashSet;

use bd_storage::{PageId, Rid, StorageResult};

use crate::node::{Key, NodeKind, NodeRef, Sep};
use crate::tree::BTree;

/// A violated invariant, described for humans.
#[derive(Debug)]
pub struct Violation(pub String);

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "btree invariant violated: {}", self.0)
    }
}

impl std::error::Error for Violation {}

/// Exact physical summary of a verified tree, produced by [`audit`].
///
/// `entries` is the ground truth for differential comparison: two trees
/// holding the same logical index state have identical entry lists no
/// matter how their node layouts diverged. The remaining fields describe
/// the physical shape (for reports and free-at-empty accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeAudit {
    /// Every `(key, rid)` entry, in tree (= key) order.
    pub entries: Vec<(Key, Rid)>,
    /// Tree height in levels.
    pub height: usize,
    /// Reachable leaf pages, left to right.
    pub leaf_pages: Vec<PageId>,
    /// Entries per reachable leaf (fill profile, left to right).
    pub leaf_fill: Vec<usize>,
    /// Empty leaves still linked in the sibling chain but detached from the
    /// tree (free-at-empty leaves awaiting reuse).
    pub detached_empty_leaves: usize,
}

/// Check every structural invariant of `tree`; returns the entries found.
///
/// Verified invariants:
/// * nodes respect the configured capacities;
/// * separators and leaf entries are sorted;
/// * every subtree's entries lie within the separator bounds of its parent;
/// * all levels have the depth implied by `tree.height()`;
/// * the leaf sibling chain visits every reachable leaf in order (possibly
///   interleaved with detached empty leaves);
/// * `tree.len()` equals the number of reachable entries.
pub fn check(tree: &BTree) -> Result<Vec<(Key, Rid)>, Violation> {
    audit(tree).map(|a| a.entries)
}

/// Run every [`check`] invariant and additionally return the physical
/// summary the differential audit harness diffs across strategy runs.
pub fn audit(tree: &BTree) -> Result<TreeAudit, Violation> {
    let mut entries = Vec::new();
    let mut reachable_leaves = Vec::new();
    walk(
        tree,
        tree.root_page(),
        tree.height() - 1,
        None,
        None,
        &mut entries,
        &mut reachable_leaves,
    )
    .map_err(|e| Violation(format!("storage error during walk: {e}")))??;

    if !entries.windows(2).all(|w| w[0] < w[1]) {
        return Err(Violation("global entry order broken".into()));
    }
    if entries.len() != tree.len() {
        return Err(Violation(format!(
            "tree.len() = {} but {} entries reachable",
            tree.len(),
            entries.len()
        )));
    }

    // The sibling chain from the first leaf must visit all reachable leaves
    // in left-to-right order; detached empty leaves may appear in between.
    let first = tree
        .first_leaf()
        .map_err(|e| Violation(format!("first_leaf: {e}")))?;
    let reachable_set: HashSet<PageId> = reachable_leaves.iter().map(|&(p, _)| p).collect();
    let mut chain = Vec::new();
    let mut detached_empty = 0usize;
    let mut pid = Some(first);
    let mut guard = 0usize;
    while let Some(p) = pid {
        guard += 1;
        if guard > 1_000_000 {
            return Err(Violation("leaf chain does not terminate".into()));
        }
        let r = tree
            .pool()
            .pin_read(p)
            .map_err(|e| Violation(format!("pin leaf {p}: {e}")))?;
        let node = NodeRef::new(&r[..]);
        if node.kind() != NodeKind::Leaf {
            return Err(Violation(format!("page {p} in leaf chain is not a leaf")));
        }
        if reachable_set.contains(&p) {
            chain.push(p);
        } else if node.nkeys() != 0 {
            return Err(Violation(format!(
                "unreachable leaf {p} still holds {} entries",
                node.nkeys()
            )));
        } else {
            detached_empty += 1;
        }
        pid = node.right_sibling();
    }
    let reachable_order: Vec<PageId> = reachable_leaves.iter().map(|&(p, _)| p).collect();
    if chain != reachable_order {
        return Err(Violation(format!(
            "leaf chain order {chain:?} != reachable order {reachable_order:?}"
        )));
    }
    Ok(TreeAudit {
        entries,
        height: tree.height(),
        leaf_fill: reachable_leaves.iter().map(|&(_, n)| n).collect(),
        leaf_pages: reachable_order,
        detached_empty_leaves: detached_empty,
    })
}

#[allow(clippy::too_many_arguments)]
fn walk(
    tree: &BTree,
    pid: PageId,
    level: usize,
    lo: Option<Sep>,
    hi: Option<Sep>,
    entries: &mut Vec<(Key, Rid)>,
    leaves: &mut Vec<(PageId, usize)>,
) -> StorageResult<Result<(), Violation>> {
    let r = tree.pool().pin_read(pid)?;
    let node = NodeRef::new(&r[..]);
    match node.kind() {
        NodeKind::Leaf => {
            if level != 0 {
                return Ok(Err(Violation(format!("leaf {pid} found at level {level}"))));
            }
            if node.nkeys() > tree.config().leaf_cap {
                return Ok(Err(Violation(format!(
                    "leaf {pid} holds {} > cap {}",
                    node.nkeys(),
                    tree.config().leaf_cap
                ))));
            }
            for i in 0..node.nkeys() {
                let e = node.leaf_entry(i);
                if let Some(lo) = lo {
                    if e < lo {
                        return Ok(Err(Violation(format!(
                            "leaf {pid} entry {e:?} below bound {lo:?}"
                        ))));
                    }
                }
                if let Some(hi) = hi {
                    if e >= hi {
                        return Ok(Err(Violation(format!(
                            "leaf {pid} entry {e:?} at/above bound {hi:?}"
                        ))));
                    }
                }
                entries.push(e);
            }
            leaves.push((pid, node.nkeys()));
            Ok(Ok(()))
        }
        NodeKind::Inner => {
            if level == 0 {
                return Ok(Err(Violation(format!(
                    "inner node {pid} found at leaf level"
                ))));
            }
            let n = node.nkeys();
            if n > tree.config().inner_cap {
                return Ok(Err(Violation(format!(
                    "inner {pid} holds {} > cap {}",
                    n,
                    tree.config().inner_cap
                ))));
            }
            for i in 1..n {
                if node.inner_sep(i - 1) > node.inner_sep(i) {
                    return Ok(Err(Violation(format!("inner {pid} separators unsorted"))));
                }
            }
            let seps: Vec<Sep> = (0..n).map(|i| node.inner_sep(i)).collect();
            let children: Vec<PageId> = (0..=n).map(|i| node.inner_child(i)).collect();
            drop(r);
            for (i, &child) in children.iter().enumerate() {
                let c_lo = if i == 0 { lo } else { Some(seps[i - 1]) };
                let c_hi = if i == n { hi } else { Some(seps[i]) };
                match walk(tree, child, level - 1, c_lo, c_hi, entries, leaves)? {
                    Ok(()) => {}
                    Err(v) => return Ok(Err(v)),
                }
            }
            Ok(Ok(()))
        }
    }
}
