//! Reorganization during bulk deletion (paper §2.3).
//!
//! Three policies are offered:
//!
//! * [`ReorgPolicy::None`] — leave emptied leaves attached (baseline for the
//!   ablation);
//! * [`ReorgPolicy::FreeAtEmpty`] — detach a leaf only when it becomes
//!   completely empty. This is the paper's configuration ("we only
//!   reorganize and garbage collect an index page if it is totally empty",
//!   following Johnson & Shasha \[9]); inner levels are patched after the
//!   leaf pass, exactly as §2.3 describes ("the inner nodes of the B+-tree
//!   can be updated and reorganized after ... the leaf pages are
//!   processed");
//! * [`ReorgPolicy::CompactLeaves`] — additionally rewrite the whole leaf
//!   level densely left-packed onto a fresh contiguous extent and rebuild
//!   the inner levels bottom-up (§2.3's "shift all entries to the left" +
//!   level-wise inner rebuild). Leaf *merging* is deliberately not offered:
//!   the paper cites Johnson & Shasha's conclusion "that leaf pages should
//!   not be merged after deletions".

use std::collections::HashSet;

use bd_storage::{PageId, StorageResult};

use crate::bulk_load::bulk_load;
use crate::node::{NodeMut, NodeRef};
use crate::scan::LeafScan;
use crate::tree::BTree;

/// Leaf reorganization policy applied by the bulk delete operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorgPolicy {
    /// Leave emptied leaves in place.
    None,
    /// Detach completely empty leaves and patch the inner levels (paper
    /// default).
    #[default]
    FreeAtEmpty,
    /// Free-at-empty plus a dense left-packed rebuild of the leaf level and
    /// all inner levels onto a fresh contiguous extent (§2.3's "contiguous
    /// storage area", implemented as a full rewrite).
    CompactLeaves,
    /// Free-at-empty plus §2.3's *incremental* base-node reorganization:
    /// subtree by subtree, leaf entries are shifted left in place within
    /// each base node's children and the base node is rebuilt, without
    /// allocating a new extent.
    BaseNodePack,
}

/// Remove `freed` children from the inner levels, bottom-up, unlinking and
/// cascading frees of inner nodes that lose all children; finally collapse
/// a keyless root chain.
pub(crate) fn patch_parents(tree: &mut BTree, freed: &HashSet<PageId>) -> StorageResult<()> {
    patch_parents_from(tree, freed, 1)
}

/// As [`patch_parents`], but `freed` contains nodes of level
/// `start_level - 1` (1 = freed leaves, 2 = freed level-1 inner nodes, …).
pub(crate) fn patch_parents_from(
    tree: &mut BTree,
    freed: &HashSet<PageId>,
    start_level: usize,
) -> StorageResult<()> {
    if freed.is_empty() || tree.height() <= start_level {
        // Freed nodes at or above the root level can only mean an emptied
        // tree; the bulk path handles that before calling here.
        if freed.contains(&tree.root_page()) {
            let (new_root, mut w) = tree.pool().new_page(tree.owner())?;
            NodeMut::init(&mut w[..], crate::node::NodeKind::Leaf);
            drop(w);
            tree.install_root(new_root, 1);
            tree.set_leaf_extent(Some((new_root, 1)));
        }
        return Ok(());
    }
    let mut freed = freed.clone();
    for level in start_level..tree.height() {
        if freed.is_empty() {
            break;
        }
        let mut next_freed: HashSet<PageId> = HashSet::new();
        let mut prev: Option<PageId> = None;
        let mut cur = Some(tree.leftmost_of_level(level)?);
        while let Some(pid) = cur {
            let mut w = tree.pool().pin_write(pid)?;
            let mut node = NodeMut::new(&mut w[..]);
            // Drop separator entries whose child was freed.
            let mut i = 0;
            while i < node.as_ref().nkeys() {
                if freed.contains(&node.as_ref().inner_child(i + 1)) {
                    node.inner_remove_entry(i);
                } else {
                    i += 1;
                }
            }
            // Handle a freed child0 by promoting the first entry's child.
            if freed.contains(&node.as_ref().inner_child(0)) {
                if node.as_ref().nkeys() > 0 {
                    let (_, c1) = node.inner_remove_entry(0);
                    node.inner_set_child(0, c1);
                } else {
                    // Node lost every child: free it in turn.
                    next_freed.insert(pid);
                }
            }
            let next = node.as_ref().right_sibling();
            let is_freed = next_freed.contains(&pid);
            drop(w);
            if is_freed {
                if let Some(pv) = prev {
                    let mut pw = tree.pool().pin_write(pv)?;
                    NodeMut::new(&mut pw[..]).set_right_sibling(next);
                }
                tree.stats_mut().inners_freed += 1;
                tree.pool().free_page(pid);
            } else {
                prev = Some(pid);
            }
            cur = next;
        }
        freed = next_freed;
    }

    // The root itself lost every child: the tree is empty.
    if freed.contains(&tree.root_page()) {
        let (new_root, mut w) = tree.pool().new_page(tree.owner())?;
        NodeMut::init(&mut w[..], crate::node::NodeKind::Leaf);
        drop(w);
        tree.install_root(new_root, 1);
        tree.set_leaf_extent(Some((new_root, 1)));
        return Ok(());
    }

    // Collapse keyless inner roots.
    loop {
        if tree.height() == 1 {
            break;
        }
        let r = tree.pool().pin_read(tree.root_page())?;
        let node = NodeRef::new(&r[..]);
        if node.kind() == crate::node::NodeKind::Inner && node.nkeys() == 0 {
            let only = node.inner_child(0);
            drop(r);
            let h = tree.height() - 1;
            tree.install_root(only, h);
        } else {
            break;
        }
    }
    Ok(())
}

/// Post-pass hook run by every bulk delete after its leaf pass and parent
/// patching.
pub(crate) fn post_pass(tree: &mut BTree, policy: ReorgPolicy) -> StorageResult<()> {
    match policy {
        ReorgPolicy::CompactLeaves => compact_leaves(tree, 1.0),
        ReorgPolicy::BaseNodePack => base_node_pack(tree),
        ReorgPolicy::None | ReorgPolicy::FreeAtEmpty => Ok(()),
    }
}

/// §2.3 base-node reorganization, in place: for every level-1 node (the
/// "base nodes", whose subtrees are single-level and therefore bounded by
/// one node's fanout — they fit in memory), shift the live leaf entries
/// "to the left, beyond base node delimiters" *within that subtree's own
/// pages*, free the emptied trailing leaves, and rebuild the base node's
/// separators. Base nodes that end up childless are detached bottom-up.
pub(crate) fn base_node_pack(tree: &mut BTree) -> StorageResult<()> {
    if tree.height() < 2 {
        return Ok(());
    }
    let leaf_cap = tree.config().leaf_cap;
    let mut freed_base: HashSet<PageId> = HashSet::new();
    let mut prev_kept_leaf: Option<PageId> = None;
    let mut prev_base: Option<PageId> = None;
    let mut cur = Some(tree.leftmost_of_level(1)?);

    while let Some(base) = cur {
        // Children of this base node, left to right.
        let (children, next_base) = {
            let r = tree.pool().pin_read(base)?;
            let node = NodeRef::new(&r[..]);
            let children: Vec<PageId> = (0..=node.nkeys()).map(|i| node.inner_child(i)).collect();
            (children, node.right_sibling())
        };
        // Gather the subtree's live entries (bounded by fanout * leaf_cap).
        let mut entries = Vec::new();
        for &leaf in &children {
            let r = tree.pool().pin_read(leaf)?;
            let node = NodeRef::new(&r[..]);
            for i in 0..node.nkeys() {
                entries.push(node.leaf_entry(i));
            }
        }
        let kept = entries.len().div_ceil(leaf_cap).min(children.len());
        // Rewrite the first `kept` leaves densely, in place.
        let mut seps: Vec<(crate::node::Sep, PageId)> = Vec::with_capacity(kept);
        for (i, chunk) in entries.chunks(leaf_cap.max(1)).enumerate() {
            let pid = children[i];
            let mut w = tree.pool().pin_write(pid)?;
            let mut node = NodeMut::new(&mut w[..]);
            node.leaf_set_entries(chunk);
            let next = children.get(i + 1).copied();
            node.set_right_sibling(next); // provisional; fixed below
            seps.push((chunk[0], pid));
        }
        if entries.is_empty() {
            // The whole subtree is empty: free every leaf and the base.
            freed_base.insert(base);
            tree.stats_mut().leaves_freed += children.len() as u64;
            for &leaf in &children {
                tree.pool().free_page(leaf);
            }
            tree.pool().free_page(base);
        } else {
            // Fix the chain: previous kept leaf -> first kept leaf here;
            // last kept leaf -> (patched when the next subtree resolves).
            if let Some(pv) = prev_kept_leaf {
                let mut w = tree.pool().pin_write(pv)?;
                NodeMut::new(&mut w[..]).set_right_sibling(Some(seps[0].1));
            }
            let last_kept = seps[kept - 1].1;
            {
                let mut w = tree.pool().pin_write(last_kept)?;
                NodeMut::new(&mut w[..]).set_right_sibling(None);
            }
            prev_kept_leaf = Some(last_kept);
            tree.stats_mut().leaves_freed += (children.len() - kept) as u64;
            for &leaf in &children[kept..] {
                tree.pool().free_page(leaf);
            }
            // Rebuild the base node over the kept leaves only.
            let inner_seps: Vec<(crate::node::Sep, u32)> =
                seps[1..].iter().map(|&(s, c)| (s, c)).collect();
            let mut w = tree.pool().pin_write(base)?;
            let mut node = NodeMut::new(&mut w[..]);
            node.inner_set_entries(seps[0].1, &inner_seps);
            drop(w);
            // Unlink freed base nodes between the previous kept base and
            // this one.
            if let Some(pb) = prev_base {
                let mut w = tree.pool().pin_write(pb)?;
                NodeMut::new(&mut w[..]).set_right_sibling(Some(base));
            }
            prev_base = Some(base);
        }
        cur = next_base;
    }
    // Trailing empty subtree(s): the loop above only unlinks a freed base
    // when a *later* non-empty subtree resolves, so the last kept base may
    // still point at a freed base. Leaving the dangle would let a level-1
    // walker step into a page the maintenance daemon is free to zero and
    // recycle.
    if let Some(pb) = prev_base {
        let next = {
            let r = tree.pool().pin_read(pb)?;
            NodeRef::new(&r[..]).right_sibling()
        };
        if next.is_some_and(|n| freed_base.contains(&n)) {
            let mut w = tree.pool().pin_write(pb)?;
            NodeMut::new(&mut w[..]).set_right_sibling(None);
        }
    }
    // Packing rearranged entries across leaf boundaries; the fixed extent
    // now contains holes, so confident chained prefetch is disabled.
    tree.set_leaf_extent(None);
    patch_parents_from(tree, &freed_base, 2)?;
    tree.recount()?;
    Ok(())
}

/// Progress of one [`IncrementalPacker::step`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackProgress {
    /// Base subtrees packed by this step.
    pub subtrees: usize,
    /// Leaf and base pages freed by this step.
    pub pages_freed: usize,
    /// True once the pass has walked off the right edge of the base level.
    pub done: bool,
}

/// Incremental, resumable version of [`base_node_pack`]: the paced walker
/// the maintenance daemon drives *between* foreground phases instead of
/// stopping the world.
///
/// Each [`IncrementalPacker::step`] packs up to `max_subtrees` base
/// subtrees, calling [`bd_storage::pacer::checkpoint`] between subtrees
/// with no pin held. The tree is left fully consistent after **every**
/// subtree: kept leaves are rewritten in place (the subtree's first child
/// keeps its id, so the incoming sibling pointer stays valid), the last
/// kept leaf is linked to the next subtree's first child, and an emptied
/// subtree is removed from its parents immediately. A pause or cancel
/// therefore leaves a consistent prefix packed, and the pass resumes behind
/// a key cursor — foreground inserts into the already-packed prefix are
/// simply left for the next pass.
#[derive(Debug, Default)]
pub struct IncrementalPacker {
    /// Largest entry packed so far; the next step resumes at the base
    /// subtree to its right. `None` = pass not started.
    cursor: Option<crate::node::Sep>,
    done: bool,
}

impl IncrementalPacker {
    /// A packer positioned at the start of a fresh pass.
    pub fn new() -> Self {
        IncrementalPacker::default()
    }

    /// True once [`IncrementalPacker::step`] has completed the pass.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Rewind to the start of a fresh pass.
    pub fn reset(&mut self) {
        self.cursor = None;
        self.done = false;
    }

    /// Locate the next base node to pack. `None` when the pass is over.
    fn resume_base(&self, tree: &BTree) -> StorageResult<Option<PageId>> {
        match self.cursor {
            None => Ok(Some(tree.leftmost_of_level(1)?)),
            Some(cur) => {
                // The subtree containing the cursor was already packed;
                // resume at its right sibling.
                let (_, path) = tree.descend(cur)?;
                let base = path.last().expect("height >= 2").0;
                let next = {
                    let r = tree.pool().pin_read(base)?;
                    NodeRef::new(&r[..]).right_sibling()
                };
                skip_freed_bases(tree, next)
            }
        }
    }

    /// Pack up to `max_subtrees` base subtrees, resuming where the previous
    /// step stopped. Returns what was done and whether the pass finished.
    pub fn step(&mut self, tree: &mut BTree, max_subtrees: usize) -> StorageResult<PackProgress> {
        let mut progress = PackProgress::default();
        if self.done {
            progress.done = true;
            return Ok(progress);
        }
        if tree.height() < 2 {
            // Nothing to pack: a root leaf has no base level.
            self.done = true;
            progress.done = true;
            return Ok(progress);
        }
        let leaf_cap = tree.config().leaf_cap;
        let mut cur = self.resume_base(tree)?;
        while let Some(base) = cur {
            if progress.subtrees >= max_subtrees {
                return Ok(progress);
            }
            // Pause point between subtrees, tree consistent, no pin held.
            bd_storage::pacer::checkpoint()?;
            let (children, next_base) = {
                let r = tree.pool().pin_read(base)?;
                let node = NodeRef::new(&r[..]);
                let children: Vec<PageId> =
                    (0..=node.nkeys()).map(|i| node.inner_child(i)).collect();
                (children, node.right_sibling())
            };
            // First child of the next subtree: the leaf the packed chain
            // must continue into.
            let succ_leaf = match next_base {
                Some(nb) => {
                    let r = tree.pool().pin_read(nb)?;
                    Some(NodeRef::new(&r[..]).inner_child(0))
                }
                None => None,
            };
            let mut entries = Vec::new();
            for &leaf in &children {
                let r = tree.pool().pin_read(leaf)?;
                let node = NodeRef::new(&r[..]);
                for i in 0..node.nkeys() {
                    entries.push(node.leaf_entry(i));
                }
            }
            if entries.is_empty() {
                // Whole subtree empty: free it and detach it from its
                // parents right away (lazy chain semantics, as with
                // free-at-empty: the freed pages stay readable until a
                // later pass has rewritten the chains around them and the
                // daemon reclaims them).
                tree.stats_mut().leaves_freed += children.len() as u64;
                for &leaf in &children {
                    tree.pool().free_page(leaf);
                }
                tree.pool().free_page(base);
                progress.pages_freed += children.len() + 1;
                let mut freed = HashSet::new();
                freed.insert(base);
                patch_parents_from(tree, &freed, 2)?;
                if tree.height() < 2 {
                    // The tree collapsed to a root leaf; the pass is over.
                    break;
                }
            } else {
                let kept = entries.len().div_ceil(leaf_cap).min(children.len());
                let mut seps: Vec<(crate::node::Sep, PageId)> = Vec::with_capacity(kept);
                for (i, chunk) in entries.chunks(leaf_cap.max(1)).enumerate() {
                    let pid = children[i];
                    let mut w = tree.pool().pin_write(pid)?;
                    let mut node = NodeMut::new(&mut w[..]);
                    node.leaf_set_entries(chunk);
                    let next = if i + 1 < kept {
                        Some(children[i + 1])
                    } else {
                        succ_leaf
                    };
                    node.set_right_sibling(next);
                    seps.push((chunk[0], pid));
                }
                tree.stats_mut().leaves_freed += (children.len() - kept) as u64;
                for &leaf in &children[kept..] {
                    tree.pool().free_page(leaf);
                }
                progress.pages_freed += children.len() - kept;
                let inner_seps: Vec<(crate::node::Sep, u32)> =
                    seps[1..].iter().map(|&(s, c)| (s, c)).collect();
                let mut w = tree.pool().pin_write(base)?;
                NodeMut::new(&mut w[..]).inner_set_entries(seps[0].1, &inner_seps);
                drop(w);
                // Entries moved across leaf boundaries: no more confident
                // chained prefetch over a fixed extent.
                tree.set_leaf_extent(None);
                self.cursor = Some(*entries.last().expect("non-empty"));
            }
            progress.subtrees += 1;
            cur = skip_freed_bases(tree, next_base)?;
        }
        self.done = true;
        progress.done = true;
        Ok(progress)
    }
}

/// First catalog-owned base at or to the right of `cur`. Emptied subtrees
/// are detached from their parents but stay lazily chained at level 1, so
/// both resume-by-cursor and the in-step walk can land on a freed base;
/// following it would re-free its pages (and, once the cursor sits left of
/// a run of empty subtrees, never advance past them).
fn skip_freed_bases(tree: &BTree, mut cur: Option<PageId>) -> StorageResult<Option<PageId>> {
    let catalog = tree.pool().catalog();
    while let Some(pid) = cur {
        if catalog.owner(pid).is_some() {
            return Ok(Some(pid));
        }
        let r = tree.pool().pin_read(pid)?;
        cur = NodeRef::new(&r[..]).right_sibling();
    }
    Ok(None)
}

/// Unlink catalog-free nodes from every inner-level sibling chain
/// (levels 1 and up). Free-at-empty and the incremental packer detach
/// nodes from their *parents* but leave them in the singly linked level
/// chains; before the maintenance daemon may zero and recycle a freed
/// page, every such lazy reference must be gone — an all-zero page decodes
/// as an empty leaf whose right sibling is page 0. Returns the number of
/// unlinked nodes. Paced: checkpoints between nodes.
pub fn sweep_detached_inners(tree: &BTree) -> StorageResult<usize> {
    let catalog = tree.pool().catalog();
    let mut unlinked = 0;
    for level in 1..tree.height() {
        let mut prev: Option<PageId> = None;
        let mut cur = Some(tree.leftmost_of_level(level)?);
        while let Some(pid) = cur {
            bd_storage::pacer::checkpoint()?;
            let next = {
                let r = tree.pool().pin_read(pid)?;
                NodeRef::new(&r[..]).right_sibling()
            };
            if catalog.owner(pid).is_none() {
                if let Some(pv) = prev {
                    let mut w = tree.pool().pin_write(pv)?;
                    NodeMut::new(&mut w[..]).set_right_sibling(next);
                }
                unlinked += 1;
            } else {
                prev = Some(pid);
            }
            cur = next;
        }
    }
    Ok(unlinked)
}

/// §2.3 compaction: rewrite every live entry into a dense, contiguous,
/// left-packed leaf extent and rebuild the inner levels bottom-up.
pub(crate) fn compact_leaves(tree: &mut BTree, fill: f64) -> StorageResult<()> {
    let entries: Vec<_> = LeafScan::new(tree)?.collect();
    let rebuilt = bulk_load(
        tree.pool().clone(),
        tree.config(),
        &entries,
        fill,
        tree.owner(),
    )?;
    let root = rebuilt.root_page();
    let height = rebuilt.height();
    let extent = rebuilt.leaf_extent();
    tree.install_root(root, height);
    tree.set_len(entries.len());
    tree.set_leaf_extent(extent);
    Ok(())
}
