//! Reorganization during bulk deletion (paper §2.3).
//!
//! Three policies are offered:
//!
//! * [`ReorgPolicy::None`] — leave emptied leaves attached (baseline for the
//!   ablation);
//! * [`ReorgPolicy::FreeAtEmpty`] — detach a leaf only when it becomes
//!   completely empty. This is the paper's configuration ("we only
//!   reorganize and garbage collect an index page if it is totally empty",
//!   following Johnson & Shasha \[9]); inner levels are patched after the
//!   leaf pass, exactly as §2.3 describes ("the inner nodes of the B+-tree
//!   can be updated and reorganized after ... the leaf pages are
//!   processed");
//! * [`ReorgPolicy::CompactLeaves`] — additionally rewrite the whole leaf
//!   level densely left-packed onto a fresh contiguous extent and rebuild
//!   the inner levels bottom-up (§2.3's "shift all entries to the left" +
//!   level-wise inner rebuild). Leaf *merging* is deliberately not offered:
//!   the paper cites Johnson & Shasha's conclusion "that leaf pages should
//!   not be merged after deletions".

use std::collections::HashSet;

use bd_storage::{PageId, StorageResult};

use crate::bulk_load::bulk_load;
use crate::node::{NodeMut, NodeRef};
use crate::scan::LeafScan;
use crate::tree::BTree;

/// Leaf reorganization policy applied by the bulk delete operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorgPolicy {
    /// Leave emptied leaves in place.
    None,
    /// Detach completely empty leaves and patch the inner levels (paper
    /// default).
    #[default]
    FreeAtEmpty,
    /// Free-at-empty plus a dense left-packed rebuild of the leaf level and
    /// all inner levels onto a fresh contiguous extent (§2.3's "contiguous
    /// storage area", implemented as a full rewrite).
    CompactLeaves,
    /// Free-at-empty plus §2.3's *incremental* base-node reorganization:
    /// subtree by subtree, leaf entries are shifted left in place within
    /// each base node's children and the base node is rebuilt, without
    /// allocating a new extent.
    BaseNodePack,
}

/// Remove `freed` children from the inner levels, bottom-up, unlinking and
/// cascading frees of inner nodes that lose all children; finally collapse
/// a keyless root chain.
pub(crate) fn patch_parents(tree: &mut BTree, freed: &HashSet<PageId>) -> StorageResult<()> {
    patch_parents_from(tree, freed, 1)
}

/// As [`patch_parents`], but `freed` contains nodes of level
/// `start_level - 1` (1 = freed leaves, 2 = freed level-1 inner nodes, …).
pub(crate) fn patch_parents_from(
    tree: &mut BTree,
    freed: &HashSet<PageId>,
    start_level: usize,
) -> StorageResult<()> {
    if freed.is_empty() || tree.height() <= start_level {
        // Freed nodes at or above the root level can only mean an emptied
        // tree; the bulk path handles that before calling here.
        if freed.contains(&tree.root_page()) {
            let (new_root, mut w) = tree.pool().new_page(tree.owner())?;
            NodeMut::init(&mut w[..], crate::node::NodeKind::Leaf);
            drop(w);
            tree.install_root(new_root, 1);
            tree.set_leaf_extent(Some((new_root, 1)));
        }
        return Ok(());
    }
    let mut freed = freed.clone();
    for level in start_level..tree.height() {
        if freed.is_empty() {
            break;
        }
        let mut next_freed: HashSet<PageId> = HashSet::new();
        let mut prev: Option<PageId> = None;
        let mut cur = Some(tree.leftmost_of_level(level)?);
        while let Some(pid) = cur {
            let mut w = tree.pool().pin_write(pid)?;
            let mut node = NodeMut::new(&mut w[..]);
            // Drop separator entries whose child was freed.
            let mut i = 0;
            while i < node.as_ref().nkeys() {
                if freed.contains(&node.as_ref().inner_child(i + 1)) {
                    node.inner_remove_entry(i);
                } else {
                    i += 1;
                }
            }
            // Handle a freed child0 by promoting the first entry's child.
            if freed.contains(&node.as_ref().inner_child(0)) {
                if node.as_ref().nkeys() > 0 {
                    let (_, c1) = node.inner_remove_entry(0);
                    node.inner_set_child(0, c1);
                } else {
                    // Node lost every child: free it in turn.
                    next_freed.insert(pid);
                }
            }
            let next = node.as_ref().right_sibling();
            let is_freed = next_freed.contains(&pid);
            drop(w);
            if is_freed {
                if let Some(pv) = prev {
                    let mut pw = tree.pool().pin_write(pv)?;
                    NodeMut::new(&mut pw[..]).set_right_sibling(next);
                }
                tree.stats_mut().inners_freed += 1;
                tree.pool().free_page(pid);
            } else {
                prev = Some(pid);
            }
            cur = next;
        }
        freed = next_freed;
    }

    // The root itself lost every child: the tree is empty.
    if freed.contains(&tree.root_page()) {
        let (new_root, mut w) = tree.pool().new_page(tree.owner())?;
        NodeMut::init(&mut w[..], crate::node::NodeKind::Leaf);
        drop(w);
        tree.install_root(new_root, 1);
        tree.set_leaf_extent(Some((new_root, 1)));
        return Ok(());
    }

    // Collapse keyless inner roots.
    loop {
        if tree.height() == 1 {
            break;
        }
        let r = tree.pool().pin_read(tree.root_page())?;
        let node = NodeRef::new(&r[..]);
        if node.kind() == crate::node::NodeKind::Inner && node.nkeys() == 0 {
            let only = node.inner_child(0);
            drop(r);
            let h = tree.height() - 1;
            tree.install_root(only, h);
        } else {
            break;
        }
    }
    Ok(())
}

/// Post-pass hook run by every bulk delete after its leaf pass and parent
/// patching.
pub(crate) fn post_pass(tree: &mut BTree, policy: ReorgPolicy) -> StorageResult<()> {
    match policy {
        ReorgPolicy::CompactLeaves => compact_leaves(tree, 1.0),
        ReorgPolicy::BaseNodePack => base_node_pack(tree),
        ReorgPolicy::None | ReorgPolicy::FreeAtEmpty => Ok(()),
    }
}

/// §2.3 base-node reorganization, in place: for every level-1 node (the
/// "base nodes", whose subtrees are single-level and therefore bounded by
/// one node's fanout — they fit in memory), shift the live leaf entries
/// "to the left, beyond base node delimiters" *within that subtree's own
/// pages*, free the emptied trailing leaves, and rebuild the base node's
/// separators. Base nodes that end up childless are detached bottom-up.
pub(crate) fn base_node_pack(tree: &mut BTree) -> StorageResult<()> {
    if tree.height() < 2 {
        return Ok(());
    }
    let leaf_cap = tree.config().leaf_cap;
    let mut freed_base: HashSet<PageId> = HashSet::new();
    let mut prev_kept_leaf: Option<PageId> = None;
    let mut prev_base: Option<PageId> = None;
    let mut cur = Some(tree.leftmost_of_level(1)?);

    while let Some(base) = cur {
        // Children of this base node, left to right.
        let (children, next_base) = {
            let r = tree.pool().pin_read(base)?;
            let node = NodeRef::new(&r[..]);
            let children: Vec<PageId> = (0..=node.nkeys()).map(|i| node.inner_child(i)).collect();
            (children, node.right_sibling())
        };
        // Gather the subtree's live entries (bounded by fanout * leaf_cap).
        let mut entries = Vec::new();
        for &leaf in &children {
            let r = tree.pool().pin_read(leaf)?;
            let node = NodeRef::new(&r[..]);
            for i in 0..node.nkeys() {
                entries.push(node.leaf_entry(i));
            }
        }
        let kept = entries.len().div_ceil(leaf_cap).min(children.len());
        // Rewrite the first `kept` leaves densely, in place.
        let mut seps: Vec<(crate::node::Sep, PageId)> = Vec::with_capacity(kept);
        for (i, chunk) in entries.chunks(leaf_cap.max(1)).enumerate() {
            let pid = children[i];
            let mut w = tree.pool().pin_write(pid)?;
            let mut node = NodeMut::new(&mut w[..]);
            node.leaf_set_entries(chunk);
            let next = children.get(i + 1).copied();
            node.set_right_sibling(next); // provisional; fixed below
            seps.push((chunk[0], pid));
        }
        if entries.is_empty() {
            // The whole subtree is empty: free every leaf and the base.
            freed_base.insert(base);
            tree.stats_mut().leaves_freed += children.len() as u64;
            for &leaf in &children {
                tree.pool().free_page(leaf);
            }
            tree.pool().free_page(base);
        } else {
            // Fix the chain: previous kept leaf -> first kept leaf here;
            // last kept leaf -> (patched when the next subtree resolves).
            if let Some(pv) = prev_kept_leaf {
                let mut w = tree.pool().pin_write(pv)?;
                NodeMut::new(&mut w[..]).set_right_sibling(Some(seps[0].1));
            }
            let last_kept = seps[kept - 1].1;
            {
                let mut w = tree.pool().pin_write(last_kept)?;
                NodeMut::new(&mut w[..]).set_right_sibling(None);
            }
            prev_kept_leaf = Some(last_kept);
            tree.stats_mut().leaves_freed += (children.len() - kept) as u64;
            for &leaf in &children[kept..] {
                tree.pool().free_page(leaf);
            }
            // Rebuild the base node over the kept leaves only.
            let inner_seps: Vec<(crate::node::Sep, u32)> =
                seps[1..].iter().map(|&(s, c)| (s, c)).collect();
            let mut w = tree.pool().pin_write(base)?;
            let mut node = NodeMut::new(&mut w[..]);
            node.inner_set_entries(seps[0].1, &inner_seps);
            drop(w);
            // Unlink freed base nodes between the previous kept base and
            // this one.
            if let Some(pb) = prev_base {
                let mut w = tree.pool().pin_write(pb)?;
                NodeMut::new(&mut w[..]).set_right_sibling(Some(base));
            }
            prev_base = Some(base);
        }
        cur = next_base;
    }
    // Packing rearranged entries across leaf boundaries; the fixed extent
    // now contains holes, so confident chained prefetch is disabled.
    tree.set_leaf_extent(None);
    patch_parents_from(tree, &freed_base, 2)?;
    tree.recount()?;
    Ok(())
}

/// §2.3 compaction: rewrite every live entry into a dense, contiguous,
/// left-packed leaf extent and rebuild the inner levels bottom-up.
pub(crate) fn compact_leaves(tree: &mut BTree, fill: f64) -> StorageResult<()> {
    let entries: Vec<_> = LeafScan::new(tree)?.collect();
    let rebuilt = bulk_load(
        tree.pool().clone(),
        tree.config(),
        &entries,
        fill,
        tree.owner(),
    )?;
    let root = rebuilt.root_page();
    let height = rebuilt.height();
    let extent = rebuilt.leaf_extent();
    tree.install_root(root, height);
    tree.set_len(entries.len());
    tree.set_leaf_extent(extent);
    Ok(())
}
