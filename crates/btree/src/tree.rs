//! The B-link tree proper: descent, insert with splits, traditional
//! record-at-a-time delete with free-at-empty, and point/range search.
//!
//! The *traditional* delete ([`BTree::delete_one`]) is deliberately faithful
//! to what the paper attacks: "for every record, each B-tree is traversed
//! individually from the root to the relevant leaf resulting in overall
//! very high costs". Leaf-level bulk operations live in [`crate::bulk`].

use std::sync::Arc;

use bd_storage::{BufferPool, PageId, Rid, StorageResult, StructureId};

use crate::node::{key_floor, Key, NodeKind, NodeMut, NodeRef, Sep, MAX_INNER_CAP, MAX_LEAF_CAP};

/// Node capacity configuration.
///
/// The paper's Experiment 3 manufactures taller trees by shrinking the
/// number of keys per inner node ("we store 100 keys per node in order to
/// create an index with height four"); `inner_cap`/`leaf_cap` reproduce
/// that knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Maximum entries per leaf.
    pub leaf_cap: usize,
    /// Maximum separator entries per inner node.
    pub inner_cap: usize,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig {
            leaf_cap: MAX_LEAF_CAP,
            inner_cap: MAX_INNER_CAP,
        }
    }
}

impl BTreeConfig {
    /// Cap both node kinds at `fanout` entries (clamped to page capacity).
    pub fn with_fanout(fanout: usize) -> Self {
        BTreeConfig {
            leaf_cap: fanout.clamp(2, MAX_LEAF_CAP),
            inner_cap: fanout.clamp(2, MAX_INNER_CAP),
        }
    }
}

/// Counters describing structural maintenance work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Leaf pages emptied and detached by free-at-empty.
    pub leaves_freed: u64,
    /// Inner pages detached by free-at-empty.
    pub inners_freed: u64,
    /// Leaf splits performed by inserts.
    pub leaf_splits: u64,
    /// Inner splits performed by inserts.
    pub inner_splits: u64,
    /// Leaf pages merged into a sibling by bulk reorganization.
    pub leaves_merged: u64,
}

/// A B-link tree of `(key, rid)` entries over a buffer pool.
pub struct BTree {
    pool: Arc<BufferPool>,
    cfg: BTreeConfig,
    /// Structure that owns this tree's pages; every allocation the tree
    /// makes is tagged with it in the page catalog.
    owner: StructureId,
    root: PageId,
    /// Levels in the tree; 1 means the root is a leaf.
    height: usize,
    n_entries: usize,
    /// While the leaf level occupies one contiguous ascending page range
    /// (set by bulk load, cleared by any split), this records it — enabling
    /// confident chained prefetch during leaf scans.
    leaf_extent: Option<(PageId, usize)>,
    stats: TreeStats,
}

impl BTree {
    /// Create an empty tree (a single empty leaf as root) whose pages are
    /// catalogued under `owner`.
    pub fn create(
        pool: Arc<BufferPool>,
        cfg: BTreeConfig,
        owner: StructureId,
    ) -> StorageResult<Self> {
        let (root, mut w) = pool.new_page(owner)?;
        NodeMut::init(&mut w[..], NodeKind::Leaf);
        drop(w);
        Ok(BTree {
            pool,
            cfg,
            owner,
            root,
            height: 1,
            n_entries: 0,
            leaf_extent: Some((root, 1)),
            stats: TreeStats::default(),
        })
    }

    /// Structure that owns this tree's pages in the page catalog.
    pub fn owner(&self) -> StructureId {
        self.owner
    }

    /// The buffer pool this tree lives in.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Node capacity configuration.
    pub fn config(&self) -> BTreeConfig {
        self.cfg
    }

    /// Number of levels (1 = root is a leaf). The paper reports this as the
    /// index *height*.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.n_entries
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Root page id.
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Structural maintenance counters.
    pub fn stats(&self) -> TreeStats {
        self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut TreeStats {
        &mut self.stats
    }

    pub(crate) fn set_len(&mut self, n: usize) {
        self.n_entries = n;
    }

    pub(crate) fn sub_len(&mut self, n: usize) {
        self.n_entries -= n;
    }

    pub(crate) fn set_leaf_extent(&mut self, extent: Option<(PageId, usize)>) {
        self.leaf_extent = extent;
    }

    /// The contiguous page range holding all leaves, if the leaf level is
    /// still one ascending run on disk.
    pub fn leaf_extent(&self) -> Option<(PageId, usize)> {
        self.leaf_extent
    }

    /// True when leaf pages are one contiguous ascending run on disk.
    pub fn has_contiguous_leaves(&self) -> bool {
        self.leaf_extent.is_some()
    }

    pub(crate) fn install_root(&mut self, root: PageId, height: usize) {
        self.root = root;
        self.height = height;
    }

    /// Descend from the root to the leaf responsible for `target`,
    /// recording `(inner page, taken child index)` for every inner node on
    /// the way.
    pub(crate) fn descend(&self, target: Sep) -> StorageResult<(PageId, Vec<(PageId, usize)>)> {
        let mut pid = self.root;
        let mut path = Vec::with_capacity(self.height.saturating_sub(1));
        loop {
            let r = self.pool.pin_read(pid)?;
            let node = NodeRef::new(&r[..]);
            match node.kind() {
                NodeKind::Leaf => return Ok((pid, path)),
                NodeKind::Inner => {
                    let ci = node.route(target);
                    let child = node.inner_child(ci);
                    path.push((pid, ci));
                    drop(r);
                    pid = child;
                }
            }
        }
    }

    /// Leftmost node of `level` (0 = leaf level).
    pub(crate) fn leftmost_of_level(&self, level: usize) -> StorageResult<PageId> {
        let mut pid = self.root;
        let mut cur_level = self.height - 1;
        while cur_level > level {
            let r = self.pool.pin_read(pid)?;
            let node = NodeRef::new(&r[..]);
            debug_assert_eq!(node.kind(), NodeKind::Inner);
            let child = node.inner_child(0);
            drop(r);
            pid = child;
            cur_level -= 1;
        }
        Ok(pid)
    }

    /// Leftmost leaf page.
    pub fn first_leaf(&self) -> StorageResult<PageId> {
        self.leftmost_of_level(0)
    }

    /// Reconstruct a tree handle after a crash from durable metadata (root
    /// and height come from the recovery checkpoint; a real system keeps
    /// them in the catalog). The entry count is recounted from disk; the
    /// leaf extent is conservatively dropped (no more confident prefetch).
    pub fn restore(
        pool: Arc<BufferPool>,
        cfg: BTreeConfig,
        root: PageId,
        height: usize,
        owner: StructureId,
    ) -> StorageResult<Self> {
        let mut tree = BTree {
            pool,
            cfg,
            owner,
            root,
            height,
            n_entries: 0,
            leaf_extent: None,
            stats: TreeStats::default(),
        };
        tree.recount()?;
        Ok(tree)
    }

    /// Recount entries by walking the leaf chain; fixes `len()` after a
    /// crash left the in-memory counter out of sync with the disk state.
    pub fn recount(&mut self) -> StorageResult<usize> {
        let mut n = 0;
        let mut pid = Some(self.first_leaf()?);
        while let Some(p) = pid {
            let r = self.pool.pin_read(p)?;
            let node = NodeRef::new(&r[..]);
            n += node.nkeys();
            pid = node.right_sibling();
        }
        self.n_entries = n;
        Ok(n)
    }

    /// Warm the top of the tree into the buffer pool: breadth-first from
    /// the root, level by level, pinning (and thereby loading) up to
    /// `page_budget` pages. The upper levels are what every point lookup
    /// and descent hits first, so this is the working set a delete-heavy
    /// phase or a crash just evicted. Paced: checkpoints between pages
    /// with no pin held. Returns how many pages were touched.
    pub fn prewarm(&self, page_budget: usize) -> StorageResult<usize> {
        let mut frontier = vec![self.root];
        let mut touched = 0;
        while !frontier.is_empty() && touched < page_budget {
            let mut next = Vec::new();
            for &pid in &frontier {
                if touched >= page_budget {
                    break;
                }
                bd_storage::pacer::checkpoint()?;
                let r = self.pool.pin_read(pid)?;
                let node = NodeRef::new(&r[..]);
                touched += 1;
                if node.kind() == NodeKind::Inner {
                    for i in 0..=node.nkeys() {
                        next.push(node.inner_child(i));
                    }
                }
            }
            frontier = next;
        }
        Ok(touched)
    }

    /// Every page reachable from the root by *child pointers*, in DFS
    /// order. This is the tree's authoritative page set for the catalog
    /// audit: leaves detached by free-at-empty stay in the sibling chain
    /// (a B-link chain has no back pointer to patch) but are unreachable
    /// through parents, so they are correctly absent here.
    pub fn pages(&self) -> StorageResult<Vec<PageId>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            out.push(pid);
            let r = self.pool.pin_read(pid)?;
            let node = NodeRef::new(&r[..]);
            if node.kind() == NodeKind::Inner {
                for i in (0..=node.nkeys()).rev() {
                    stack.push(node.inner_child(i));
                }
            }
        }
        Ok(out)
    }

    /// Insert `(key, rid)`.
    pub fn insert(&mut self, key: Key, rid: Rid) -> StorageResult<()> {
        let (leaf, path) = self.descend((key, rid))?;
        let mut w = self.pool.pin_write(leaf)?;
        let mut node = NodeMut::new(&mut w[..]);
        if node.as_ref().nkeys() < self.cfg.leaf_cap {
            node.leaf_insert(key, rid);
            drop(w);
            self.n_entries += 1;
            return Ok(());
        }
        // Leaf split.
        let (new_pid, mut new_w) = self.pool.new_page(self.owner)?;
        let mut right = NodeMut::init(&mut new_w[..], NodeKind::Leaf);
        let boundary = node.leaf_split_into(&mut right);
        right.set_right_sibling(node.as_ref().right_sibling());
        node.set_right_sibling(Some(new_pid));
        if (key, rid) >= boundary {
            right.leaf_insert(key, rid);
        } else {
            node.leaf_insert(key, rid);
        }
        drop(new_w);
        drop(w);
        self.n_entries += 1;
        self.stats.leaf_splits += 1;
        self.leaf_extent = None;
        self.propagate_split(path, boundary, new_pid)
    }

    /// Insert `(sep, right_child)` into the parents along `path`, splitting
    /// upward as needed.
    fn propagate_split(
        &mut self,
        mut path: Vec<(PageId, usize)>,
        mut sep: Sep,
        mut right_child: PageId,
    ) -> StorageResult<()> {
        while let Some((pid, _)) = path.pop() {
            let mut w = self.pool.pin_write(pid)?;
            let mut node = NodeMut::new(&mut w[..]);
            if node.as_ref().nkeys() < self.cfg.inner_cap {
                node.inner_insert(sep, right_child);
                return Ok(());
            }
            // Split the inner node.
            let (new_pid, mut new_w) = self.pool.new_page(self.owner)?;
            let mut right = NodeMut::init(&mut new_w[..], NodeKind::Inner);
            let promoted = node.inner_split_into(&mut right);
            right.set_right_sibling(node.as_ref().right_sibling());
            node.set_right_sibling(Some(new_pid));
            if sep >= promoted {
                right.inner_insert(sep, right_child);
            } else {
                node.inner_insert(sep, right_child);
            }
            drop(new_w);
            drop(w);
            self.stats.inner_splits += 1;
            sep = promoted;
            right_child = new_pid;
        }
        // Root split.
        let (new_root, mut w) = self.pool.new_page(self.owner)?;
        let mut node = NodeMut::init(&mut w[..], NodeKind::Inner);
        node.inner_init_child0(self.root);
        node.inner_insert(sep, right_child);
        drop(w);
        self.root = new_root;
        self.height += 1;
        Ok(())
    }

    /// All RIDs stored under `key` (follows duplicates across leaves).
    pub fn search(&self, key: Key) -> StorageResult<Vec<Rid>> {
        let (leaf, _) = self.descend(key_floor(key))?;
        let mut out = Vec::new();
        let mut pid = leaf;
        loop {
            let r = self.pool.pin_read(pid)?;
            let node = NodeRef::new(&r[..]);
            let n = node.nkeys();
            let mut pos = node.leaf_lower_bound(key, Rid::new(0, 0));
            while pos < n {
                let (k, rid) = node.leaf_entry(pos);
                if k != key {
                    return Ok(out);
                }
                out.push(rid);
                pos += 1;
            }
            // Reached the end of the leaf; matches may continue rightward.
            match node.right_sibling() {
                Some(next) => {
                    drop(r);
                    pid = next;
                }
                None => return Ok(out),
            }
        }
    }

    /// All `(key, rid)` entries with `lo <= key <= hi`, in order.
    pub fn range(&self, lo: Key, hi: Key) -> StorageResult<Vec<(Key, Rid)>> {
        let (leaf, _) = self.descend(key_floor(lo))?;
        let mut out = Vec::new();
        let mut pid = leaf;
        loop {
            let r = self.pool.pin_read(pid)?;
            let node = NodeRef::new(&r[..]);
            let n = node.nkeys();
            let mut pos = node.leaf_lower_bound(lo, Rid::new(0, 0));
            while pos < n {
                let (k, rid) = node.leaf_entry(pos);
                if k > hi {
                    return Ok(out);
                }
                out.push((k, rid));
                pos += 1;
            }
            match node.right_sibling() {
                Some(next) => {
                    drop(r);
                    pid = next;
                }
                None => return Ok(out),
            }
        }
    }

    /// Traditional record-at-a-time delete of exactly `(key, rid)`:
    /// a root-to-leaf traversal per call, free-at-empty reclamation.
    /// Returns `true` if the entry existed.
    pub fn delete_one(&mut self, key: Key, rid: Rid) -> StorageResult<bool> {
        let (leaf, path) = self.descend((key, rid))?;
        let mut w = self.pool.pin_write(leaf)?;
        let mut node = NodeMut::new(&mut w[..]);
        let view = node.as_ref();
        let n = view.nkeys();
        let pos = view.leaf_lower_bound(key, rid);
        if pos < n && view.leaf_entry(pos) == (key, rid) {
            node.leaf_remove_at(pos);
            let emptied = node.as_ref().nkeys() == 0;
            drop(w);
            self.n_entries -= 1;
            if emptied && leaf != self.root {
                self.free_at_empty(leaf, &path)?;
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Free-at-empty: detach the emptied leaf `pid` from its parent chain of
    /// separators (\[9]: free-at-empty beats merge-at-half). The page stays
    /// in the sibling chain as an empty leaf (a singly linked B-link chain
    /// has no back pointer to patch); descents no longer reach it. Bulk
    /// deletes unlink empties properly as they walk the chain.
    pub(crate) fn free_at_empty(
        &mut self,
        pid: PageId,
        path: &[(PageId, usize)],
    ) -> StorageResult<()> {
        self.stats.leaves_freed += 1;
        self.pool.free_page(pid);
        let mut child = pid;
        for (level, &(parent, ci)) in path.iter().enumerate().rev() {
            let mut w = self.pool.pin_write(parent)?;
            let mut node = NodeMut::new(&mut w[..]);
            let nkeys = node.as_ref().nkeys();
            debug_assert_eq!(node.as_ref().inner_child(ci), child);
            if ci == 0 {
                if nkeys == 0 {
                    // Parent lost its only child: free it one level up.
                    drop(w);
                    if level > 0 {
                        self.stats.inners_freed += 1;
                        self.pool.free_page(parent);
                        child = parent;
                        continue;
                    }
                    // Parent is the root with no children left; the tree is
                    // empty: make a fresh leaf the root.
                    let (new_root, mut nw) = self.pool.new_page(self.owner)?;
                    NodeMut::init(&mut nw[..], NodeKind::Leaf);
                    drop(nw);
                    self.pool.free_page(parent);
                    self.root = new_root;
                    self.height = 1;
                    self.leaf_extent = Some((new_root, 1));
                    return Ok(());
                }
                // Promote the first separator's child to child0.
                let (_, c1) = node.inner_remove_entry(0);
                node.inner_set_child(0, c1);
            } else {
                node.inner_remove_entry(ci - 1);
            }
            let remaining = node.as_ref().nkeys();
            drop(w);
            // Root collapse: a keyless root with a single child shrinks the
            // tree by one level.
            if parent == self.root && remaining == 0 && self.height > 1 {
                let r = self.pool.pin_read(parent)?;
                let only = NodeRef::new(&r[..]).inner_child(0);
                drop(r);
                self.pool.free_page(parent);
                self.root = only;
                self.height -= 1;
            }
            return Ok(());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{CostModel, SimDisk, StructureId};

    fn tree(frames: usize, cfg: BTreeConfig) -> BTree {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), frames);
        BTree::create(pool, cfg, StructureId::Index(0)).unwrap()
    }

    fn rid(i: u64) -> Rid {
        Rid::new((i >> 3) as u32, (i & 7) as u16)
    }

    #[test]
    fn insert_and_search_small() {
        let mut t = tree(64, BTreeConfig::default());
        for k in [5u64, 3, 8, 1, 9, 7] {
            t.insert(k, rid(k)).unwrap();
        }
        assert_eq!(t.search(8).unwrap(), vec![rid(8)]);
        assert_eq!(t.search(4).unwrap(), Vec::<Rid>::new());
        assert_eq!(t.len(), 6);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn splits_grow_height() {
        let mut t = tree(256, BTreeConfig::with_fanout(4));
        for k in 0..100u64 {
            t.insert(k, rid(k)).unwrap();
        }
        assert!(t.height() >= 3);
        for k in 0..100u64 {
            assert_eq!(t.search(k).unwrap(), vec![rid(k)], "key {k}");
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        let mut t = tree(256, BTreeConfig::with_fanout(5));
        let mut keys: Vec<u64> = (0..200).collect();
        // Deterministic shuffle.
        for i in 0..keys.len() {
            let j = (i * 7919 + 13) % keys.len();
            keys.swap(i, j);
        }
        for &k in &keys {
            t.insert(k, rid(k)).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.search(k).unwrap(), vec![rid(k)]);
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn prewarm_loads_top_levels_within_budget() {
        let mut t = tree(4096, BTreeConfig::with_fanout(4));
        for k in 0..600u64 {
            t.insert(k, rid(k)).unwrap();
        }
        assert!(t.height() >= 4);
        t.pool().clear_cache().unwrap();
        assert!(!t.pool().contains(t.root_page()));

        // A budget of 1 warms exactly the root.
        assert_eq!(t.prewarm(1).unwrap(), 1);
        assert!(t.pool().contains(t.root_page()));

        // A generous budget is truncated by it and warms breadth-first:
        // with budget 5 the root and its children come first.
        t.pool().clear_cache().unwrap();
        assert_eq!(t.prewarm(5).unwrap(), 5);
        assert!(t.pool().contains(t.root_page()));
        let r = t.pool().pin_read(t.root_page()).unwrap();
        let root = NodeRef::new(&r[..]);
        let child0 = root.inner_child(0);
        drop(r);
        assert!(t.pool().contains(child0));

        // A budget beyond the page count touches every reachable page.
        t.pool().clear_cache().unwrap();
        let n_pages = t.pages().unwrap().len();
        assert_eq!(t.prewarm(usize::MAX).unwrap(), n_pages);
    }

    #[test]
    fn duplicates_across_leaf_boundaries() {
        let mut t = tree(256, BTreeConfig::with_fanout(4));
        // 20 duplicates of key 42 force several leaf splits.
        for i in 0..20u64 {
            t.insert(42, Rid::new(0, i as u16)).unwrap();
        }
        t.insert(41, rid(1)).unwrap();
        t.insert(43, rid(2)).unwrap();
        let mut rids = t.search(42).unwrap();
        rids.sort();
        assert_eq!(rids.len(), 20);
        assert_eq!(rids[0], Rid::new(0, 0));
        assert_eq!(rids[19], Rid::new(0, 19));
        assert_eq!(t.search(41).unwrap(), vec![rid(1)]);
        assert_eq!(t.search(43).unwrap(), vec![rid(2)]);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn range_scan_returns_sorted_window() {
        let mut t = tree(256, BTreeConfig::with_fanout(6));
        for k in (0..300u64).rev() {
            t.insert(k, rid(k)).unwrap();
        }
        let out = t.range(100, 110).unwrap();
        let keys: Vec<u64> = out.iter().map(|e| e.0).collect();
        assert_eq!(keys, (100..=110).collect::<Vec<_>>());
    }

    #[test]
    fn delete_one_removes_exactly_target() {
        let mut t = tree(256, BTreeConfig::with_fanout(8));
        for k in 0..100u64 {
            t.insert(k, rid(k)).unwrap();
        }
        assert!(t.delete_one(40, rid(40)).unwrap());
        assert!(!t.delete_one(40, rid(40)).unwrap(), "double delete");
        assert!(!t.delete_one(1000, rid(0)).unwrap(), "missing key");
        assert_eq!(t.search(40).unwrap(), Vec::<Rid>::new());
        assert_eq!(t.search(41).unwrap(), vec![rid(41)]);
        assert_eq!(t.len(), 99);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn delete_everything_then_reuse() {
        let mut t = tree(256, BTreeConfig::with_fanout(4));
        for k in 0..50u64 {
            t.insert(k, rid(k)).unwrap();
        }
        for k in 0..50u64 {
            assert!(t.delete_one(k, rid(k)).unwrap(), "delete {k}");
        }
        assert!(t.is_empty());
        for k in 0..50u64 {
            assert_eq!(t.search(k).unwrap(), Vec::<Rid>::new());
        }
        // Tree must be fully usable again.
        for k in 0..50u64 {
            t.insert(k, rid(k)).unwrap();
        }
        for k in 0..50u64 {
            assert_eq!(t.search(k).unwrap(), vec![rid(k)]);
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn delete_duplicate_picks_right_rid() {
        let mut t = tree(256, BTreeConfig::with_fanout(4));
        for i in 0..12u64 {
            t.insert(7, Rid::new(1, i as u16)).unwrap();
        }
        assert!(t.delete_one(7, Rid::new(1, 5)).unwrap());
        let rids = t.search(7).unwrap();
        assert_eq!(rids.len(), 11);
        assert!(!rids.contains(&Rid::new(1, 5)));
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn fanout_controls_height() {
        // Same data, two fanouts => two heights (Experiment 3's knob).
        let mut short = tree(2048, BTreeConfig::with_fanout(64));
        let mut tall = tree(2048, BTreeConfig::with_fanout(8));
        for k in 0..4000u64 {
            short.insert(k, rid(k)).unwrap();
            tall.insert(k, rid(k)).unwrap();
        }
        assert!(tall.height() > short.height());
    }

    #[test]
    fn free_at_empty_counts() {
        let mut t = tree(256, BTreeConfig::with_fanout(4));
        for k in 0..64u64 {
            t.insert(k, rid(k)).unwrap();
        }
        for k in 0..64u64 {
            t.delete_one(k, rid(k)).unwrap();
        }
        assert!(t.stats().leaves_freed > 0);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn interleaved_insert_delete_stays_consistent() {
        let mut t = tree(512, BTreeConfig::with_fanout(6));
        let mut model = std::collections::BTreeSet::new();
        let mut x: u64 = 12345;
        for step in 0..3000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 500;
            if step % 3 == 0 && model.contains(&k) {
                assert!(t.delete_one(k, rid(k)).unwrap());
                model.remove(&k);
            } else if !model.contains(&k) {
                t.insert(k, rid(k)).unwrap();
                model.insert(k);
            }
        }
        assert_eq!(t.len(), model.len());
        for k in 0..500u64 {
            let expect: Vec<Rid> = if model.contains(&k) {
                vec![rid(k)]
            } else {
                vec![]
            };
            assert_eq!(t.search(k).unwrap(), expect, "key {k}");
        }
        crate::verify::check(&t).unwrap();
    }
}
