//! Sequential leaf-level scans.
//!
//! The bulk delete operator "directly operates on the leaf pages of an
//! index" — leaf scans walk the B-link sibling chain from left to right.
//! When the tree still occupies a contiguous extent (fresh bulk load), the
//! scan streams the extent through a windowed [`ReadAhead`], mirroring the
//! prototype's chained I/O. The window fires from the very first pin — a
//! walk entering mid-extent (a key probe that descended into the middle of
//! the leaf level) prefetches from its entry page, not from the next chunk
//! boundary.

use std::collections::VecDeque;
use std::sync::Arc;

use bd_storage::{BufferPool, PageId, ReadAhead, Rid, StorageResult};

use crate::node::{Key, NodeRef};
use crate::tree::BTree;

/// Iterator over the leaf *pages* of a tree, left to right.
pub struct LeafPages {
    pool: Arc<BufferPool>,
    next: Option<PageId>,
    ra: ReadAhead,
}

impl LeafPages {
    /// Walk all leaves of `tree` from the leftmost.
    pub fn new(tree: &BTree) -> StorageResult<Self> {
        let first = tree.first_leaf()?;
        Ok(LeafPages {
            pool: tree.pool().clone(),
            next: Some(first),
            ra: ReadAhead::over_extent(tree.pool().clone(), tree.leaf_extent(), first),
        })
    }

    /// Walk leaves starting from a specific leaf page.
    pub fn from_leaf(tree: &BTree, start: PageId) -> Self {
        LeafPages {
            pool: tree.pool().clone(),
            next: Some(start),
            ra: ReadAhead::over_extent(tree.pool().clone(), tree.leaf_extent(), start),
        }
    }
}

impl Iterator for LeafPages {
    type Item = StorageResult<PageId>;

    fn next(&mut self) -> Option<Self::Item> {
        let pid = self.next?;
        // Pause point: between leaves, before the next pin.
        if let Err(e) = bd_storage::pacer::checkpoint() {
            self.next = None;
            return Some(Err(e));
        }
        self.ra.before_pin(pid);
        match self.pool.pin_read(pid) {
            Ok(r) => {
                let node = NodeRef::new(&r[..]);
                self.next = node.right_sibling();
                Some(Ok(pid))
            }
            Err(e) => {
                self.next = None;
                Some(Err(e))
            }
        }
    }
}

/// Iterator over all `(key, rid)` entries of a tree in composite order.
pub struct LeafScan {
    pages: LeafPages,
    buf: VecDeque<(Key, Rid)>,
}

impl LeafScan {
    /// Scan all entries of `tree`.
    pub fn new(tree: &BTree) -> StorageResult<Self> {
        Ok(LeafScan {
            pages: LeafPages::new(tree)?,
            buf: VecDeque::new(),
        })
    }
}

impl Iterator for LeafScan {
    type Item = (Key, Rid);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.buf.pop_front() {
                return Some(e);
            }
            let pid = match self.pages.next()? {
                Ok(p) => p,
                Err(_) => return None,
            };
            if let Ok(r) = self.pages.pool.pin_read(pid) {
                let node = NodeRef::new(&r[..]);
                for i in 0..node.nkeys() {
                    self.buf.push_back(node.leaf_entry(i));
                }
            }
        }
    }
}

/// Read-only sorted-key lookup: merge a *sorted* key list against the leaf
/// chain, returning every `(key, rid)` entry whose key appears in `keys`.
/// One descent plus a bounded left-to-right walk — the read-only analogue
/// of the key-predicate `⋈̄` (used by integrity-constraint checks and by
/// recovery's materialization phase).
pub fn lookup_keys_sorted(tree: &BTree, keys: &[Key]) -> StorageResult<Vec<(Key, Rid)>> {
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys unsorted");
    if keys.is_empty() || tree.is_empty() {
        return Ok(Vec::new());
    }
    let (start, _) = tree.descend(crate::node::key_floor(keys[0]))?;
    let mut out = Vec::new();
    let mut ki = 0usize;
    let mut pages = LeafPages::from_leaf(tree, start);
    while ki < keys.len() {
        let Some(pid) = pages.next() else { break };
        let pid = pid?;
        let r = tree.pool().pin_read(pid)?;
        let node = NodeRef::new(&r[..]);
        for i in 0..node.nkeys() {
            let e = node.leaf_entry(i);
            while ki < keys.len() && keys[ki] < e.0 {
                ki += 1;
            }
            if ki >= keys.len() {
                break;
            }
            if keys[ki] == e.0 {
                out.push(e);
            }
        }
    }
    Ok(out)
}

/// A resumable range scan over the leaf level, following B-link right
/// pointers — the in-flight-reader half of the online bulk-delete story.
///
/// The cursor holds **no page pin between batches**: it remembers the leaf
/// it stopped in and the last `(key, rid)` entry it returned, and each
/// [`RangeCursor::next_batch`] re-pins that leaf and continues. That makes
/// it safe to interleave with a bulk delete reorganising the same tree
/// under [`ReorgPolicy::FreeAtEmpty`](crate::ReorgPolicy::FreeAtEmpty):
///
/// * an emptied leaf is detached from its *predecessor* but keeps its own
///   right pointer, and freed pages are never recycled in this prototype —
///   so a cursor parked on a since-freed leaf wakes up, finds it empty,
///   and chases the right pointer back into the live chain;
/// * surviving entries never move to a *different* leaf during a bulk
///   delete (leaves are rewritten in place), and an updater's leaf split
///   only moves entries *right* — already past entries are never revisited
///   and pending entries are always reachable by following right pointers;
/// * the `last` watermark is a full composite `(key, rid)`, so duplicate
///   keys straddling a batch boundary are neither skipped nor repeated.
pub struct RangeCursor {
    lo: Key,
    hi: Key,
    leaf: Option<PageId>,
    last: Option<(Key, Rid)>,
    done: bool,
}

impl RangeCursor {
    /// A cursor over `lo..=hi` (composite key order) on `tree`. Performs
    /// one descent; the walk itself happens in [`RangeCursor::next_batch`].
    pub fn new(tree: &BTree, lo: Key, hi: Key) -> StorageResult<Self> {
        if lo > hi || tree.is_empty() {
            return Ok(RangeCursor {
                lo,
                hi,
                leaf: None,
                last: None,
                done: true,
            });
        }
        let (start, _) = tree.descend(crate::node::key_floor(lo))?;
        Ok(RangeCursor {
            lo,
            hi,
            leaf: Some(start),
            last: None,
            done: false,
        })
    }

    /// Whether the scan has passed `hi` or run out of leaves.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Return up to `max` further entries. The call pins one leaf at a
    /// time and drops every pin before returning; between calls the tree
    /// may be reorganised by a bulk delete or grown by updaters.
    pub fn next_batch(&mut self, tree: &BTree, max: usize) -> StorageResult<Vec<(Key, Rid)>> {
        let mut out = Vec::new();
        while !self.done && out.len() < max {
            // Pause point: between leaves, no pin held.
            bd_storage::pacer::checkpoint()?;
            let Some(pid) = self.leaf else {
                self.done = true;
                break;
            };
            let r = tree.pool().pin_read(pid)?;
            let node = NodeRef::new(&r[..]);
            let mut leaf_exhausted = true;
            for i in 0..node.nkeys() {
                let e = node.leaf_entry(i);
                if e.0 > self.hi {
                    self.done = true;
                    leaf_exhausted = false;
                    break;
                }
                if e.0 < self.lo || self.last.is_some_and(|l| e <= l) {
                    continue;
                }
                out.push(e);
                self.last = Some(e);
                if out.len() >= max {
                    // Stay on this leaf; the watermark resumes past `e`.
                    leaf_exhausted = false;
                    break;
                }
            }
            if leaf_exhausted {
                self.leaf = node.right_sibling();
                if self.leaf.is_none() {
                    self.done = true;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk_load::bulk_load;
    use crate::tree::BTreeConfig;
    use bd_storage::{CostModel, SimDisk, StructureId};

    fn rid(i: u64) -> Rid {
        Rid::new(i as u32, 0)
    }

    #[test]
    fn scan_after_incremental_inserts() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
        let mut t =
            BTree::create(pool, BTreeConfig::with_fanout(8), StructureId::Index(0)).unwrap();
        for k in (0..200u64).rev() {
            t.insert(k, rid(k)).unwrap();
        }
        let scanned: Vec<(Key, Rid)> = LeafScan::new(&t).unwrap().collect();
        assert_eq!(scanned.len(), 200);
        assert!(scanned.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(scanned[0], (0, rid(0)));
        assert_eq!(scanned[199], (199, rid(199)));
    }

    #[test]
    fn scan_of_bulk_loaded_tree_is_chained() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 128);
        let entries: Vec<(Key, Rid)> = (0..5000u64).map(|k| (k, rid(k))).collect();
        let t = bulk_load(
            pool.clone(),
            BTreeConfig::default(),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let n = LeafScan::new(&t).unwrap().count();
        assert_eq!(n, 5000);
        let s = pool.disk_stats();
        assert!(
            s.total_random() * 4 <= s.pages_read.max(4),
            "leaf scan should be mostly chained: {s:?}"
        );
    }

    #[test]
    fn lookup_keys_sorted_finds_exactly_matches() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
        let entries: Vec<(Key, Rid)> = (0..2000u64).map(|k| (k * 2, rid(k))).collect();
        let t = bulk_load(
            pool,
            BTreeConfig::with_fanout(16),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let keys = vec![0, 2, 3, 100, 101, 3998, 9999];
        let hits = lookup_keys_sorted(&t, &keys).unwrap();
        let got: Vec<Key> = hits.iter().map(|e| e.0).collect();
        assert_eq!(got, vec![0, 2, 100, 3998]);
    }

    #[test]
    fn lookup_keys_sorted_collects_duplicates() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
        let mut entries: Vec<(Key, Rid)> = Vec::new();
        for k in 0..100u64 {
            for d in 0..3u16 {
                entries.push((k, Rid::new(k as u32, d)));
            }
        }
        let t = bulk_load(
            pool,
            BTreeConfig::with_fanout(8),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let hits = lookup_keys_sorted(&t, &[7, 50]).unwrap();
        assert_eq!(hits.len(), 6);
        assert!(hits.iter().all(|e| e.0 == 7 || e.0 == 50));
    }

    #[test]
    fn lookup_keys_sorted_empty_cases() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 64);
        let t = bulk_load(
            pool.clone(),
            BTreeConfig::default(),
            &[],
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        assert!(lookup_keys_sorted(&t, &[1, 2]).unwrap().is_empty());
        let t2 = bulk_load(
            pool,
            BTreeConfig::default(),
            &[(5, rid(5))],
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        assert!(lookup_keys_sorted(&t2, &[]).unwrap().is_empty());
    }

    #[test]
    fn mid_extent_walk_prefetches_from_its_first_leaf() {
        // Regression: the old chunk-aligned prefetch only fired when the
        // entry leaf's extent index was a multiple of the chunk size, so a
        // probe descending into the middle of the leaf level paid one
        // positioned read per leaf until the walk happened to cross a chunk
        // boundary. The window must fire on the first pin.
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
        let entries: Vec<(Key, Rid)> = (0..4000u64).map(|k| (k, rid(k))).collect();
        let t = bulk_load(
            pool.clone(),
            BTreeConfig::with_fanout(16),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        // Keys living ~mid-extent, chosen so the entry leaf is unaligned.
        let keys: Vec<Key> = (2002..2300u64).collect();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let hits = lookup_keys_sorted(&t, &keys).unwrap();
        assert_eq!(hits.len(), keys.len());
        let d = pool.disk_stats();
        let p = pool.pool_stats();
        // ~19 leaves walked: the descent costs a few positioned reads, the
        // walk itself must be chained, not one positioning per leaf.
        assert!(d.random_reads <= 6, "walk not chained: {d:?}");
        assert!(
            p.prefetched > p.misses,
            "leaves should be staged ahead of their pins: {p:?}"
        );
    }

    #[test]
    fn range_cursor_batches_cover_the_range_exactly() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
        let entries: Vec<(Key, Rid)> = (0..3000u64).map(|k| (k * 2, rid(k))).collect();
        let t = bulk_load(
            pool,
            BTreeConfig::with_fanout(16),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let mut cur = RangeCursor::new(&t, 101, 999).unwrap();
        let mut got = Vec::new();
        while !cur.done() {
            got.extend(cur.next_batch(&t, 7).unwrap());
        }
        let expect: Vec<(Key, Rid)> = entries
            .iter()
            .copied()
            .filter(|e| (101..=999).contains(&e.0))
            .collect();
        assert_eq!(got, expect);
        // Exhausted cursor keeps returning empty batches.
        assert!(cur.next_batch(&t, 7).unwrap().is_empty());
    }

    #[test]
    fn range_cursor_duplicates_across_batch_boundaries() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
        let mut entries: Vec<(Key, Rid)> = Vec::new();
        for k in 0..200u64 {
            for d in 0..5u16 {
                entries.push((k, Rid::new(k as u32, d)));
            }
        }
        let t = bulk_load(
            pool,
            BTreeConfig::with_fanout(8),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let mut cur = RangeCursor::new(&t, 0, 199).unwrap();
        let mut got = Vec::new();
        // Batch size 3 never divides the 5-way duplicate groups evenly.
        while !cur.done() {
            got.extend(cur.next_batch(&t, 3).unwrap());
        }
        assert_eq!(got, entries);
    }

    #[test]
    fn range_cursor_survives_bulk_delete_reorg_between_batches() {
        use crate::bulk::bulk_delete_sorted;
        use crate::reorg::ReorgPolicy;
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
        let entries: Vec<(Key, Rid)> = (0..4000u64).map(|k| (k, rid(k))).collect();
        let mut t = bulk_load(
            pool.clone(),
            BTreeConfig::with_fanout(8),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let mut cur = RangeCursor::new(&t, 0, 3999).unwrap();
        let first = cur.next_batch(&t, 10).unwrap();
        assert_eq!(first.len(), 10);
        // Bulk-delete a band that empties whole leaves *around the cursor's
        // parked position*, including the leaf it sits in.
        let victims: Vec<(Key, Rid)> = (5..200u64).map(|k| (k, rid(k))).collect();
        bulk_delete_sorted(&mut t, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        let mut got = first;
        while !cur.done() {
            got.extend(cur.next_batch(&t, 64).unwrap());
        }
        // The cursor saw every survivor past its watermark exactly once;
        // entries deleted before it reached them may legitimately be gone.
        let keys: Vec<Key> = got.iter().map(|e| e.0).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "no repeats, in order");
        let survivors: Vec<Key> = (0..4000u64).filter(|k| !(5..200).contains(k)).collect();
        let past_watermark: Vec<Key> = keys.iter().copied().filter(|&k| k >= 10).collect();
        let expect_past: Vec<Key> = survivors.into_iter().filter(|&k| k >= 10).collect();
        assert_eq!(past_watermark, expect_past, "every survivor visited");
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    fn range_cursor_sees_right_moved_entries_after_a_split() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
        let entries: Vec<(Key, Rid)> = (0..640u64).map(|k| (k * 10, rid(k))).collect();
        let mut t = bulk_load(
            pool,
            BTreeConfig::with_fanout(8),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let mut cur = RangeCursor::new(&t, 0, 6400).unwrap();
        let first = cur.next_batch(&t, 5).unwrap();
        assert_eq!(first.len(), 5);
        // Insert ahead of the cursor until leaves split (fill factor 1.0
        // means the very first insert into a full leaf splits it).
        for k in 300..360u64 {
            t.insert(k * 10 + 5, rid(100_000 + k)).unwrap();
        }
        let mut got = first;
        while !cur.done() {
            got.extend(cur.next_batch(&t, 16).unwrap());
        }
        let keys: Vec<Key> = got.iter().map(|e| e.0).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // All 640 originals plus the 60 inserted-ahead keys are present.
        assert_eq!(got.len(), 700);
    }

    #[test]
    fn leaf_pages_visits_every_leaf_once() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 256);
        let entries: Vec<(Key, Rid)> = (0..1000u64).map(|k| (k, rid(k))).collect();
        let t = bulk_load(
            pool,
            BTreeConfig::with_fanout(16),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let pages: Vec<PageId> = LeafPages::new(&t).unwrap().map(|p| p.unwrap()).collect();
        let unique: std::collections::HashSet<_> = pages.iter().collect();
        assert_eq!(pages.len(), unique.len());
        assert_eq!(pages.len(), 1000usize.div_ceil(16));
    }
}
