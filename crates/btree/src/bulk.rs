//! Leaf-level bulk deletion — the index side of the paper's `⋈̄` operator.
//!
//! Two primary-predicate variants, matching §2.1's "Primary ⋈̄ predicate"
//! choice:
//!
//! * [`bulk_delete_sorted`] — the delete list is sorted by `(key, rid)` and
//!   merged against the leaf chain (the sort/merge plan of Fig. 3). One
//!   descent finds the first affected leaf; from there the pass walks
//!   strictly left-to-right, touching each affected leaf exactly once.
//! * [`bulk_delete_probe`] — the delete list is a RID hash set probed by a
//!   full (or key-range-restricted) leaf scan (the hash plans of Figs. 4
//!   and 5: "the leaf pages of the indices ... are scanned and the RIDs of
//!   each record is probed with the hash table").
//!
//! Both operate "in place ... on the original leaf node pages", as §2.1
//! requires of any viable ⋈̄ method, and both return the deleted entries so
//! the operator's output can be piped into downstream bulk deletes.

use std::collections::HashSet;

use bd_storage::{PageId, ReadAhead, Rid, StorageResult};

use crate::node::{key_floor, Key, NodeMut};
use crate::reorg::{patch_parents, post_pass, ReorgPolicy};
use crate::tree::BTree;

/// Close out a bulk-delete pass. On the success path, patch the parents of
/// the freed leaves and run the policy's reorganization pass. On the error
/// path (a fault, or cancellation from a failing sibling arm), still patch
/// the parents — with cancellation checks suspended, since this small,
/// bounded cleanup is what leaves the tree structurally consistent (freed
/// leaves fully detached, `len` already maintained per leaf) so the
/// executor's serial re-run can resume from the partial state. The cleanup
/// I/O remains charged to the simulated clock.
fn finish_pass(
    tree: &mut BTree,
    walked: StorageResult<()>,
    freed: &HashSet<PageId>,
    policy: ReorgPolicy,
) -> StorageResult<()> {
    let finished = walked.and_then(|()| {
        patch_parents(tree, freed)?;
        post_pass(tree, policy)
    });
    if let Err(e) = finished {
        let _ = bd_storage::io_scope::bypass_cancel(|| patch_parents(tree, freed));
        return Err(e);
    }
    Ok(())
}

/// Windowed read-ahead for a leaf walk entering at `start`: the extent of a
/// contiguously bulk-loaded leaf level streams in via chained reads (pages a
/// pass frees *behind* the cursor stay readable in the cost model, so
/// prefetching ahead of an in-place delete is safe). A fragmented tree has
/// no extent — the plan is empty and every pin passes through untouched.
fn leaf_read_ahead(tree: &BTree, start: PageId) -> ReadAhead {
    ReadAhead::over_extent(tree.pool().clone(), tree.leaf_extent(), start)
}

/// Delete every `(key, rid)` in `victims` (sorted ascending) by merging the
/// list into a left-to-right leaf walk. Victims not present in the tree are
/// skipped. Returns the deleted entries in order.
pub fn bulk_delete_sorted(
    tree: &mut BTree,
    victims: &[(Key, Rid)],
    policy: ReorgPolicy,
) -> StorageResult<Vec<(Key, Rid)>> {
    debug_assert!(victims.windows(2).all(|w| w[0] <= w[1]), "victims unsorted");
    if victims.is_empty() {
        return Ok(Vec::new());
    }
    let (start_leaf, _) = tree.descend(victims[0])?;
    let mut deleted = Vec::with_capacity(victims.len());
    let mut vi = 0usize;
    let mut freed: HashSet<PageId> = HashSet::new();
    let mut prev: Option<PageId> = None;
    let mut cur = Some(start_leaf);
    let mut ra = leaf_read_ahead(tree, start_leaf);

    let walked = (|| -> StorageResult<()> {
        while let Some(pid) = cur {
            if vi >= victims.len() {
                break;
            }
            // Pause point: between leaves, no pin held, freed set and the
            // per-leaf `len` counter consistent.
            bd_storage::pacer::checkpoint()?;
            ra.before_pin(pid);
            let mut w = tree.pool().pin_write(pid)?;
            let mut node = NodeMut::new(&mut w[..]);
            let entries = node.as_ref().leaf_entries();
            let mut keep = Vec::with_capacity(entries.len());
            let before = deleted.len();
            for e in entries.iter().copied() {
                while vi < victims.len() && victims[vi] < e {
                    vi += 1; // victim not present in the tree
                }
                if vi < victims.len() && victims[vi] == e {
                    deleted.push(e);
                    vi += 1;
                } else {
                    keep.push(e);
                }
            }
            let changed = deleted.len() > before;
            if changed {
                node.leaf_set_entries(&keep);
            }
            let next = node.as_ref().right_sibling();
            let emptied = changed && keep.is_empty();
            drop(w);
            // Maintain `len` leaf by leaf (no disk access since the leaf
            // was rewritten), so an aborted pass never leaves the entry
            // count overstated.
            tree.sub_len(deleted.len() - before);
            if emptied && pid != tree.root_page() && policy != ReorgPolicy::None {
                freed.insert(pid);
                tree.stats_mut().leaves_freed += 1;
                tree.pool().free_page(pid);
                if let Some(pv) = prev {
                    let mut pw = tree.pool().pin_write(pv)?;
                    NodeMut::new(&mut pw[..]).set_right_sibling(next);
                }
            } else if !entries.is_empty() || pid == tree.root_page() {
                prev = Some(pid);
            }
            cur = next;
        }
        Ok(())
    })();

    finish_pass(tree, walked, &freed, policy)?;
    Ok(deleted)
}

/// Delete every entry whose *key* appears in `keys` (sorted ascending,
/// duplicates in the tree all removed) by merging the key list into a
/// left-to-right leaf walk. This is the first `⋈̄` of every vertical plan:
/// the delete list `D` holds key values only; the RIDs are this operator's
/// *output*. Returns the deleted entries in order.
pub fn bulk_delete_by_keys(
    tree: &mut BTree,
    keys: &[Key],
    policy: ReorgPolicy,
) -> StorageResult<Vec<(Key, Rid)>> {
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys unsorted");
    if keys.is_empty() {
        return Ok(Vec::new());
    }
    let (start_leaf, _) = tree.descend(key_floor(keys[0]))?;
    let mut deleted = Vec::with_capacity(keys.len());
    let mut ki = 0usize;
    let mut freed: HashSet<PageId> = HashSet::new();
    let mut prev: Option<PageId> = None;
    let mut cur = Some(start_leaf);
    let mut ra = leaf_read_ahead(tree, start_leaf);

    let walked = (|| -> StorageResult<()> {
        while let Some(pid) = cur {
            if ki >= keys.len() {
                break;
            }
            // Pause point: between leaves, no pin held.
            bd_storage::pacer::checkpoint()?;
            ra.before_pin(pid);
            let mut w = tree.pool().pin_write(pid)?;
            let mut node = NodeMut::new(&mut w[..]);
            let entries = node.as_ref().leaf_entries();
            let mut keep = Vec::with_capacity(entries.len());
            let before = deleted.len();
            for e in entries.iter().copied() {
                while ki < keys.len() && keys[ki] < e.0 {
                    ki += 1; // key not present in the tree
                }
                if ki < keys.len() && keys[ki] == e.0 {
                    // Do not advance ki: the key may have more duplicates.
                    deleted.push(e);
                } else {
                    keep.push(e);
                }
            }
            let changed = deleted.len() > before;
            if changed {
                node.leaf_set_entries(&keep);
            }
            let next = node.as_ref().right_sibling();
            let emptied = changed && keep.is_empty();
            drop(w);
            tree.sub_len(deleted.len() - before);
            if emptied && pid != tree.root_page() && policy != ReorgPolicy::None {
                freed.insert(pid);
                tree.stats_mut().leaves_freed += 1;
                tree.pool().free_page(pid);
                if let Some(pv) = prev {
                    let mut pw = tree.pool().pin_write(pv)?;
                    NodeMut::new(&mut pw[..]).set_right_sibling(next);
                }
            } else if !entries.is_empty() || pid == tree.root_page() {
                prev = Some(pid);
            }
            cur = next;
        }
        Ok(())
    })();

    finish_pass(tree, walked, &freed, policy)?;
    Ok(deleted)
}

/// Delete every entry whose RID is in `victims`, scanning the leaf level
/// (optionally restricted to keys in `key_range`). Returns deleted entries
/// in scan order.
pub fn bulk_delete_probe(
    tree: &mut BTree,
    victims: &HashSet<Rid>,
    key_range: Option<(Key, Key)>,
    policy: ReorgPolicy,
) -> StorageResult<Vec<(Key, Rid)>> {
    if victims.is_empty() {
        return Ok(Vec::new());
    }
    let start_leaf = match key_range {
        Some((lo, _)) => tree.descend(key_floor(lo))?.0,
        None => tree.first_leaf()?,
    };
    let mut deleted = Vec::new();
    let mut freed: HashSet<PageId> = HashSet::new();
    let mut prev: Option<PageId> = None;
    let mut cur = Some(start_leaf);
    let mut ra = leaf_read_ahead(tree, start_leaf);

    let walked = (|| -> StorageResult<()> {
        'walk: while let Some(pid) = cur {
            // Pause point: between leaves, no pin held.
            bd_storage::pacer::checkpoint()?;
            ra.before_pin(pid);
            let mut w = tree.pool().pin_write(pid)?;
            let mut node = NodeMut::new(&mut w[..]);
            let entries = node.as_ref().leaf_entries();
            let mut keep = Vec::with_capacity(entries.len());
            let before = deleted.len();
            let mut past_range = false;
            for e in entries.iter().copied() {
                if let Some((_, hi)) = key_range {
                    if e.0 > hi {
                        past_range = true;
                        keep.push(e);
                        continue;
                    }
                }
                if victims.contains(&e.1) {
                    deleted.push(e);
                } else {
                    keep.push(e);
                }
            }
            let changed = deleted.len() > before;
            if changed {
                node.leaf_set_entries(&keep);
            }
            let next = node.as_ref().right_sibling();
            let emptied = changed && keep.is_empty();
            drop(w);
            tree.sub_len(deleted.len() - before);
            if emptied && pid != tree.root_page() && policy != ReorgPolicy::None {
                freed.insert(pid);
                tree.stats_mut().leaves_freed += 1;
                tree.pool().free_page(pid);
                if let Some(pv) = prev {
                    let mut pw = tree.pool().pin_write(pv)?;
                    NodeMut::new(&mut pw[..]).set_right_sibling(next);
                }
            } else if !entries.is_empty() || pid == tree.root_page() {
                prev = Some(pid);
            }
            cur = next;
            if past_range || deleted.len() == victims.len() {
                break 'walk;
            }
        }
        Ok(())
    })();

    finish_pass(tree, walked, &freed, policy)?;
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk_load::bulk_load;
    use crate::scan::LeafScan;
    use crate::tree::BTreeConfig;
    use bd_storage::{BufferPool, CostModel, SimDisk, StructureId};
    use std::sync::Arc;

    fn pool(frames: usize) -> Arc<BufferPool> {
        BufferPool::new(SimDisk::new(CostModel::default()), frames)
    }

    fn rid(i: u64) -> Rid {
        Rid::new((i / 7) as u32, (i % 7) as u16)
    }

    fn loaded(n: u64, fanout: usize) -> BTree {
        let entries: Vec<(Key, Rid)> = (0..n).map(|k| (k, rid(k))).collect();
        bulk_load(
            pool(512),
            BTreeConfig::with_fanout(fanout),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap()
    }

    #[test]
    fn sorted_bulk_delete_matches_one_by_one() {
        let mut bulk = loaded(2000, 16);
        let mut trad = loaded(2000, 16);
        let victims: Vec<(Key, Rid)> = (0..2000u64)
            .filter(|k| k % 3 == 0)
            .map(|k| (k, rid(k)))
            .collect();
        let deleted = bulk_delete_sorted(&mut bulk, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(deleted, victims);
        for &(k, r) in &victims {
            assert!(trad.delete_one(k, r).unwrap());
        }
        let a: Vec<_> = LeafScan::new(&bulk).unwrap().collect();
        let b: Vec<_> = LeafScan::new(&trad).unwrap().collect();
        assert_eq!(a, b);
        assert_eq!(bulk.len(), trad.len());
        crate::verify::check(&bulk).unwrap();
    }

    #[test]
    fn missing_victims_are_skipped() {
        let mut t = loaded(100, 8);
        let victims = vec![
            (5, rid(5)),
            (5, Rid::new(99, 9)), // wrong rid
            (50, rid(50)),
            (1000, rid(0)), // key past the end
        ];
        let deleted = bulk_delete_sorted(&mut t, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(deleted, vec![(5, rid(5)), (50, rid(50))]);
        assert_eq!(t.len(), 98);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn empty_victims_is_noop() {
        let mut t = loaded(50, 8);
        let deleted = bulk_delete_sorted(&mut t, &[], ReorgPolicy::FreeAtEmpty).unwrap();
        assert!(deleted.is_empty());
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn delete_all_entries_leaves_empty_tree() {
        let mut t = loaded(500, 8);
        let victims: Vec<(Key, Rid)> = (0..500u64).map(|k| (k, rid(k))).collect();
        let deleted = bulk_delete_sorted(&mut t, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(deleted.len(), 500);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        for k in (0..500).step_by(37) {
            assert_eq!(t.search(k).unwrap(), Vec::<Rid>::new());
        }
        // Tree stays usable.
        t.insert(7, rid(7)).unwrap();
        assert_eq!(t.search(7).unwrap(), vec![rid(7)]);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn contiguous_range_delete_frees_leaves_and_patches_parents() {
        let mut t = loaded(4000, 16);
        // Delete one dense stripe: keys 1000..2000 — frees ~62 leaves.
        let victims: Vec<(Key, Rid)> = (1000..2000u64).map(|k| (k, rid(k))).collect();
        bulk_delete_sorted(&mut t, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(t.len(), 3000);
        assert!(t.stats().leaves_freed >= 60, "{:?}", t.stats());
        assert_eq!(t.search(1500).unwrap(), Vec::<Rid>::new());
        assert_eq!(t.search(999).unwrap(), vec![rid(999)]);
        assert_eq!(t.search(2000).unwrap(), vec![rid(2000)]);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn probe_matches_sorted_results() {
        let mut a = loaded(3000, 16);
        let mut b = loaded(3000, 16);
        let victims: Vec<(Key, Rid)> = (0..3000u64)
            .filter(|k| k % 5 == 0)
            .map(|k| (k, rid(k)))
            .collect();
        let by_sort = bulk_delete_sorted(&mut a, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        let set: HashSet<Rid> = victims.iter().map(|v| v.1).collect();
        let by_probe = bulk_delete_probe(&mut b, &set, None, ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(by_sort, by_probe);
        let sa: Vec<_> = LeafScan::new(&a).unwrap().collect();
        let sb: Vec<_> = LeafScan::new(&b).unwrap().collect();
        assert_eq!(sa, sb);
        crate::verify::check(&a).unwrap();
        crate::verify::check(&b).unwrap();
    }

    #[test]
    fn probe_with_key_range_only_touches_range() {
        let mut t = loaded(2000, 16);
        // Victim rids for keys 500..700, but also include rids of keys
        // outside the range — those must NOT be deleted.
        let mut set: HashSet<Rid> = (500..700u64).map(rid).collect();
        set.insert(rid(10));
        set.insert(rid(1900));
        let deleted =
            bulk_delete_probe(&mut t, &set, Some((500, 699)), ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(deleted.len(), 200);
        assert!(deleted.iter().all(|&(k, _)| (500..700).contains(&k)));
        assert_eq!(t.search(10).unwrap(), vec![rid(10)]);
        assert_eq!(t.search(1900).unwrap(), vec![rid(1900)]);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn bulk_delete_reads_leaves_sequentially() {
        let mut t = loaded(50_000, 255);
        let victims: Vec<(Key, Rid)> = (0..50_000u64)
            .filter(|k| k % 7 == 0)
            .map(|k| (k, rid(k)))
            .collect();
        t.pool().clear_cache().unwrap();
        t.pool().reset_stats();
        bulk_delete_sorted(&mut t, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        let s = t.pool().disk_stats();
        // ~197 leaves; with chained prefetch + clustered write-back the
        // positioning count must be far below the page count.
        assert!(
            s.total_random() * 3 <= s.total_ios(),
            "bulk delete should be mostly sequential: {s:?}"
        );
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn reorg_none_keeps_empty_leaves_attached() {
        let mut t = loaded(1000, 8);
        let victims: Vec<(Key, Rid)> = (200..400u64).map(|k| (k, rid(k))).collect();
        bulk_delete_sorted(&mut t, &victims, ReorgPolicy::None).unwrap();
        assert_eq!(t.stats().leaves_freed, 0);
        assert_eq!(t.len(), 800);
        assert_eq!(t.search(300).unwrap(), Vec::<Rid>::new());
        assert_eq!(t.search(199).unwrap(), vec![rid(199)]);
        // NB: verify::check tolerates reachable empty leaves? It must: with
        // ReorgPolicy::None empty leaves stay reachable.
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn compact_leaves_restores_contiguity() {
        let mut t = loaded(2000, 16);
        let victims: Vec<(Key, Rid)> = (0..2000u64)
            .filter(|k| k % 2 == 0)
            .map(|k| (k, rid(k)))
            .collect();
        bulk_delete_sorted(&mut t, &victims, ReorgPolicy::CompactLeaves).unwrap();
        assert_eq!(t.len(), 1000);
        assert!(t.has_contiguous_leaves());
        let (_, n_leaves) = t.leaf_extent().unwrap();
        assert_eq!(n_leaves, 1000usize.div_ceil(16));
        for k in (1..2000u64).step_by(2) {
            assert_eq!(t.search(k).unwrap(), vec![rid(k)], "key {k}");
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn by_keys_deletes_all_duplicates() {
        let mut entries: Vec<(Key, Rid)> = Vec::new();
        for k in 0..300u64 {
            for d in 0..3u16 {
                entries.push((k, Rid::new(k as u32, d)));
            }
        }
        let mut t = bulk_load(
            pool(256),
            BTreeConfig::with_fanout(8),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        let keys: Vec<Key> = (0..300u64).filter(|k| k % 4 == 0).collect();
        let deleted = bulk_delete_by_keys(&mut t, &keys, ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(deleted.len(), keys.len() * 3);
        for k in 0..300u64 {
            let expect = if k % 4 == 0 { 0 } else { 3 };
            assert_eq!(t.search(k).unwrap().len(), expect, "key {k}");
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn by_keys_skips_missing_keys_and_terminates_early() {
        let mut t = loaded(1000, 16);
        let keys = vec![5, 6, 7, 423, 424, 5000, 6000];
        let deleted = bulk_delete_by_keys(&mut t, &keys, ReorgPolicy::FreeAtEmpty).unwrap();
        let got: Vec<Key> = deleted.iter().map(|e| e.0).collect();
        assert_eq!(got, vec![5, 6, 7, 423, 424]);
        assert_eq!(t.len(), 995);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn by_keys_matches_sorted_pairs_on_unique_keys() {
        let mut a = loaded(2000, 16);
        let mut b = loaded(2000, 16);
        let keys: Vec<Key> = (0..2000u64).filter(|k| k % 9 == 0).collect();
        let pairs: Vec<(Key, Rid)> = keys.iter().map(|&k| (k, rid(k))).collect();
        let da = bulk_delete_by_keys(&mut a, &keys, ReorgPolicy::FreeAtEmpty).unwrap();
        let db = bulk_delete_sorted(&mut b, &pairs, ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(da, db);
        let sa: Vec<_> = LeafScan::new(&a).unwrap().collect();
        let sb: Vec<_> = LeafScan::new(&b).unwrap().collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn base_node_pack_preserves_contents_and_invariants() {
        let mut t = loaded(3000, 16);
        let victims: Vec<(Key, Rid)> = (0..3000u64)
            .filter(|k| k % 3 != 0)
            .map(|k| (k, rid(k)))
            .collect();
        let deleted = bulk_delete_sorted(&mut t, &victims, ReorgPolicy::BaseNodePack).unwrap();
        assert_eq!(deleted.len(), victims.len());
        assert_eq!(t.len(), 1000);
        for k in (0..3000u64).step_by(3) {
            assert_eq!(t.search(k).unwrap(), vec![rid(k)], "key {k}");
        }
        // Packing: every leaf except possibly the last is full.
        let pages: Vec<_> = crate::scan::LeafPages::new(&t)
            .unwrap()
            .map(|p| p.unwrap())
            .collect();
        for (i, &pid) in pages.iter().enumerate() {
            let r = t.pool().pin_read(pid).unwrap();
            let n = crate::node::NodeRef::new(&r[..]).nkeys();
            if i + 1 < pages.len() {
                assert!(n > 0, "kept leaf {pid} empty");
            }
        }
        crate::verify::check(&t).unwrap();
        // Tree remains fully usable.
        t.insert(1, rid(1)).unwrap();
        assert_eq!(t.search(1).unwrap(), vec![rid(1)]);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn base_node_pack_handles_total_emptying() {
        let mut t = loaded(500, 8);
        let victims: Vec<(Key, Rid)> = (0..500u64).map(|k| (k, rid(k))).collect();
        bulk_delete_sorted(&mut t, &victims, ReorgPolicy::BaseNodePack).unwrap();
        assert!(t.is_empty());
        t.insert(9, rid(9)).unwrap();
        assert_eq!(t.search(9).unwrap(), vec![rid(9)]);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn base_node_pack_reduces_leaf_count() {
        let mut sparse = loaded(4000, 16);
        let victims: Vec<(Key, Rid)> = (0..4000u64)
            .filter(|k| k % 4 != 0)
            .map(|k| (k, rid(k)))
            .collect();
        bulk_delete_sorted(&mut sparse, &victims, ReorgPolicy::None).unwrap();
        let leaves_before = crate::scan::LeafPages::new(&sparse).unwrap().count();
        crate::reorg::base_node_pack(&mut sparse).unwrap();
        let leaves_after = crate::scan::LeafPages::new(&sparse).unwrap().count();
        assert!(
            leaves_after * 3 <= leaves_before,
            "{leaves_before} -> {leaves_after}"
        );
        crate::verify::check(&sparse).unwrap();
    }

    #[test]
    fn base_node_pack_unlinks_trailing_freed_base() {
        // Regression: when the *trailing* base subtree(s) empty, the freed
        // base was never unlinked from the previous kept base — the level-1
        // chain ended in a dangling pointer to a freed (and, with
        // recycling, eventually zeroed) page.
        let mut t = loaded(1000, 8);
        assert!(t.height() >= 3);
        // Empty every subtree holding the top of the key range.
        let victims: Vec<(Key, Rid)> = (600..1000u64).map(|k| (k, rid(k))).collect();
        bulk_delete_sorted(&mut t, &victims, ReorgPolicy::BaseNodePack).unwrap();
        assert_eq!(t.len(), 600);
        // Walk level 1: every chained node must still be catalog-owned.
        let catalog = t.pool().catalog();
        let mut pid = Some(t.leftmost_of_level(1).unwrap());
        let mut seen = 0;
        while let Some(p) = pid {
            assert!(
                catalog.owner(p).is_some(),
                "level-1 chain reaches freed page {p}"
            );
            let r = t.pool().pin_read(p).unwrap();
            pid = crate::node::NodeRef::new(&r[..]).right_sibling();
            seen += 1;
            assert!(seen <= 1000, "level-1 chain does not terminate");
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn incremental_packer_matches_one_shot_pack() {
        use crate::reorg::IncrementalPacker;
        let mut sparse = loaded(4000, 16);
        let victims: Vec<(Key, Rid)> = (0..4000u64)
            .filter(|k| k % 4 != 0)
            .map(|k| (k, rid(k)))
            .collect();
        bulk_delete_sorted(&mut sparse, &victims, ReorgPolicy::None).unwrap();
        let before: Vec<_> = LeafScan::new(&sparse).unwrap().collect();
        let leaves_before = crate::scan::LeafPages::new(&sparse).unwrap().count();
        // Drive the packer in small budgeted steps; the tree must be fully
        // consistent and content-complete after every step.
        let mut packer = IncrementalPacker::new();
        let mut steps = 0;
        loop {
            let p = packer.step(&mut sparse, 3).unwrap();
            crate::verify::check(&sparse).unwrap();
            let now: Vec<_> = LeafScan::new(&sparse).unwrap().collect();
            assert_eq!(now, before, "entries changed at step {steps}");
            if p.done {
                break;
            }
            steps += 1;
            assert!(steps <= 1000, "packer does not terminate");
        }
        assert!(packer.is_done());
        let leaves_after = crate::scan::LeafPages::new(&sparse).unwrap().count();
        assert!(
            leaves_after * 3 <= leaves_before,
            "{leaves_before} -> {leaves_after}"
        );
        // A fresh pass over the packed tree finds nothing left to free.
        let mut again = IncrementalPacker::new();
        let mut freed = 0;
        loop {
            let p = again.step(&mut sparse, 100).unwrap();
            freed += p.pages_freed;
            if p.done {
                break;
            }
        }
        assert_eq!(freed, 0, "second pass must be a no-op");
        sparse.recount().unwrap();
        assert_eq!(sparse.len(), 1000);
    }

    #[test]
    fn incremental_packer_handles_empty_subtrees_mid_pass() {
        use crate::reorg::IncrementalPacker;
        let mut t = loaded(2000, 8);
        // Empty an interior key band and the trailing band entirely,
        // leaving sparse survivors elsewhere.
        let victims: Vec<(Key, Rid)> = (0..2000u64)
            .filter(|k| (500..900).contains(k) || *k >= 1600 || k % 2 == 1)
            .map(|k| (k, rid(k)))
            .collect();
        let survivors = 2000 - victims.len();
        bulk_delete_sorted(&mut t, &victims, ReorgPolicy::None).unwrap();
        let mut packer = IncrementalPacker::new();
        loop {
            let p = packer.step(&mut t, 2).unwrap();
            crate::verify::check(&t).unwrap();
            if p.done {
                break;
            }
        }
        t.recount().unwrap();
        assert_eq!(t.len(), survivors);
        for k in (0..500u64).step_by(2) {
            assert_eq!(t.search(k).unwrap(), vec![rid(k)], "key {k}");
        }
        for k in 500..900u64 {
            assert_eq!(t.search(k).unwrap(), Vec::<Rid>::new(), "key {k}");
        }
    }

    #[test]
    fn incremental_packer_empties_whole_tree() {
        use crate::reorg::IncrementalPacker;
        let mut t = loaded(500, 8);
        let victims: Vec<(Key, Rid)> = (0..500u64).map(|k| (k, rid(k))).collect();
        bulk_delete_sorted(&mut t, &victims, ReorgPolicy::None).unwrap();
        let mut packer = IncrementalPacker::new();
        loop {
            let p = packer.step(&mut t, 4).unwrap();
            crate::verify::check(&t).unwrap();
            if p.done {
                break;
            }
        }
        assert!(t.height() <= 2, "empty tree must collapse");
        t.insert(9, rid(9)).unwrap();
        assert_eq!(t.search(9).unwrap(), vec![rid(9)]);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn sweep_detached_inners_cleans_every_level_chain() {
        use crate::reorg::sweep_detached_inners;
        let mut t = loaded(2000, 8);
        // Record-at-a-time deletes cascade free-at-empty through inner
        // nodes, which stay lazily chained at their levels.
        for k in 400..1400u64 {
            assert!(t.delete_one(k, rid(k)).unwrap());
        }
        assert!(t.stats().inners_freed > 0, "need freed inners to sweep");
        let unlinked = sweep_detached_inners(&t).unwrap();
        assert!(unlinked > 0, "sweep found nothing to unlink");
        // Every inner-level chain now contains only owned pages.
        let catalog = t.pool().catalog();
        for level in 1..t.height() {
            let mut pid = Some(t.leftmost_of_level(level).unwrap());
            while let Some(p) = pid {
                assert!(
                    catalog.owner(p).is_some(),
                    "level-{level} chain reaches freed page {p}"
                );
                let r = t.pool().pin_read(p).unwrap();
                pid = crate::node::NodeRef::new(&r[..]).right_sibling();
            }
        }
        // Idempotent: a second sweep finds nothing.
        assert_eq!(sweep_detached_inners(&t).unwrap(), 0);
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn duplicates_bulk_delete_specific_rids() {
        let mut entries: Vec<(Key, Rid)> = Vec::new();
        for k in 0..200u64 {
            for d in 0..4u16 {
                entries.push((k, Rid::new(k as u32, d)));
            }
        }
        let mut t = bulk_load(
            pool(256),
            BTreeConfig::with_fanout(8),
            &entries,
            1.0,
            StructureId::Index(0),
        )
        .unwrap();
        // Delete duplicate #1 and #3 of every key.
        let victims: Vec<(Key, Rid)> = (0..200u64)
            .flat_map(|k| [(k, Rid::new(k as u32, 1)), (k, Rid::new(k as u32, 3))])
            .collect();
        let deleted = bulk_delete_sorted(&mut t, &victims, ReorgPolicy::FreeAtEmpty).unwrap();
        assert_eq!(deleted.len(), 400);
        for k in 0..200u64 {
            let rids = t.search(k).unwrap();
            assert_eq!(rids, vec![Rid::new(k as u32, 0), Rid::new(k as u32, 2)]);
        }
        crate::verify::check(&t).unwrap();
    }
}
