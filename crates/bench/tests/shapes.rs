//! Shape tests: at a reduced scale, each experiment must exhibit the
//! qualitative behaviour the paper reports. These guard the reproduction
//! against regressions in the cost model or the strategies.

use bd_bench::experiments;

const ROWS: usize = 10_000;

#[test]
fn fig1_traditional_grows_drop_create_flatter() {
    let r = experiments::fig1(ROWS, 1).unwrap();
    let trad_1 = r.value("1%", "sorted/trad");
    let trad_15 = r.value("15%", "sorted/trad");
    let dc_1 = r.value("1%", "drop&create");
    let dc_15 = r.value("15%", "drop&create");
    assert!(trad_15 > 8.0 * trad_1, "traditional must grow sharply");
    // drop&create grows with the (1-index) delete portion but much more
    // slowly than the 3-index traditional plan, and wins decisively at
    // higher fractions.
    assert!(
        dc_15 / dc_1 < trad_15 / trad_1,
        "drop&create must grow more slowly than traditional"
    );
    assert!(dc_15 * 2.0 < trad_15, "drop&create wins clearly at 15%");
}

#[test]
fn fig7_bulk_dominates_and_gap_grows() {
    let r = experiments::fig7(ROWS, 1).unwrap();
    for x in ["5%", "10%", "15%", "20%"] {
        let bulk = r.value(x, "bulk delete");
        let sorted = r.value(x, "sorted/trad");
        let notsorted = r.value(x, "not sorted/trad");
        assert!(bulk < sorted, "{x}: bulk must beat sorted/trad");
        assert!(
            sorted < notsorted,
            "{x}: sorting D must help the traditional plan"
        );
    }
    // The gap grows with the delete fraction, reaching ~an order of
    // magnitude at 20% (paper: "by almost one order of magnitude").
    let gap_5 = r.value("5%", "not sorted/trad") / r.value("5%", "bulk delete");
    let gap_20 = r.value("20%", "not sorted/trad") / r.value("20%", "bulk delete");
    assert!(gap_20 > gap_5, "gap must widen with the delete fraction");
    assert!(
        gap_20 >= 8.0,
        "expected ~order-of-magnitude at 20%, got {gap_20:.1}x"
    );
    // Bulk is roughly flat.
    let bulk_5 = r.value("5%", "bulk delete");
    let bulk_20 = r.value("20%", "bulk delete");
    assert!(bulk_20 < 2.0 * bulk_5, "bulk must stay nearly flat");
}

#[test]
fn fig8_bulk_advantage_grows_with_indices() {
    let r = experiments::fig8(ROWS, 1).unwrap();
    // Traditional grows with index count; bulk nearly flat.
    assert!(r.value("3", "sorted/trad") > 2.0 * r.value("1", "sorted/trad"));
    assert!(r.value("3", "bulk delete") < 1.5 * r.value("1", "bulk delete"));
    // The paper's prototype finding: drop/create (record-at-a-time
    // rebuild) is the worst series once secondary indices exist.
    for x in ["2", "3"] {
        let dc = r.value(x, "drop/create");
        assert!(dc > r.value(x, "sorted/trad"), "{x} indices");
        assert!(dc > r.value(x, "not sorted/trad"), "{x} indices");
    }
    // Bulk wins everywhere.
    for x in ["1", "2", "3"] {
        assert!(r.value(x, "bulk delete") < r.value(x, "sorted/trad") / 3.0);
    }
}

#[test]
fn table1_bulk_height_independent_traditional_not() {
    let r = experiments::table1(ROWS, 1).unwrap();
    let rows: Vec<&str> = r.rows.iter().map(|(x, _)| x.as_str()).collect();
    assert_eq!(rows.len(), 2);
    let (short, tall) = (rows[0].to_string(), rows[1].to_string());
    assert_ne!(short, tall, "the two configurations must differ in height");
    // Bulk: nearly height-independent, and identical with pre-sorted D
    // (paper Table 1 shows the same value for sorted/bulk and bulk).
    let b_short = r.value(&short, "bulk delete");
    let b_tall = r.value(&tall, "bulk delete");
    assert!(
        b_tall < 1.3 * b_short,
        "bulk must be nearly height-independent"
    );
    let sb_short = r.value(&short, "sorted/bulk");
    assert!((sb_short - b_short).abs() / b_short < 0.25);
    // Traditional: grows with height.
    assert!(r.value(&tall, "not sorted/trad") > r.value(&short, "not sorted/trad"));
}

#[test]
fn fig9_bulk_flat_traditional_memory_sensitive() {
    let r = experiments::fig9(ROWS, 1).unwrap();
    let b2 = r.value("2 MB", "bulk delete");
    let b10 = r.value("10 MB", "bulk delete");
    assert!(b2 < 1.5 * b10, "bulk must work with very little memory");
    // not-sorted/trad improves with memory.
    assert!(r.value("2 MB", "not sorted/trad") > r.value("10 MB", "not sorted/trad"));
    // Ordering holds at every budget.
    for x in ["2 MB", "6 MB", "10 MB"] {
        assert!(r.value(x, "bulk delete") < r.value(x, "sorted/trad"));
        assert!(r.value(x, "sorted/trad") < r.value(x, "not sorted/trad"));
    }
}

#[test]
fn fig10_clustering_is_traditionals_best_case() {
    let r = experiments::fig10(ROWS, 1).unwrap();
    for x in ["6%", "10%", "15%", "20%"] {
        // Clustering helps sorted/trad massively (paper: its best case).
        assert!(
            r.value(x, "sorted/trad/clust") < r.value(x, "sorted/trad/unclust") / 1.5,
            "{x}: clustering must help the sorted traditional plan"
        );
        // not-sorted/trad stays poor even clustered.
        assert!(r.value(x, "not sorted/trad/clust") > r.value(x, "sorted/trad/clust") * 2.0);
        // Bulk stays competitive with traditional's best case (paper:
        // "performs almost as well"; ours is even faster).
        assert!(r.value(x, "bulk delete") <= r.value(x, "sorted/trad/clust") * 1.5);
    }
}

#[test]
fn fig8_parallel_crit_path_beats_serial_clock() {
    let parallel = experiments::fig8(ROWS, 3).unwrap();
    // (The per-arm cost model is unchanged, but interleaved arms move the
    // simulated disk head differently, so the global serial clock is not
    // bit-identical across worker counts — only the physical end state is.)
    // With 3 indices the fan-out group has two concurrent arms, so the
    // critical path is strictly below the serial clock; with 1 index
    // there is nothing to overlap and the clocks agree.
    let crit3 = parallel.value("3", "bulk crit-path");
    let serial3 = parallel.value("3", "bulk delete");
    assert!(
        crit3 < serial3,
        "critical path must be strictly below serial ({crit3} !< {serial3})"
    );
    let crit1 = parallel.value("1", "bulk crit-path");
    let serial1 = parallel.value("1", "bulk delete");
    assert!((crit1 - serial1).abs() < 1e-9, "no arms, no overlap");
}
