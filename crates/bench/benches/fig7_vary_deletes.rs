//! Figure 7 (Experiment 1): vary the deleted fraction; 1 unclustered index.

mod common;

use bd_bench::{PointConfig, StrategyKind};
use common::{bench_cell, BENCH_ROWS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = PointConfig::base(BENCH_ROWS);
    for frac in [0.05, 0.20] {
        for s in [
            StrategyKind::SortedTrad,
            StrategyKind::NotSortedTrad,
            StrategyKind::Bulk,
        ] {
            bench_cell(
                c,
                "fig7_vary_deletes",
                &format!("{}/{:.0}%", s.label(), frac * 100.0),
                cfg,
                s,
                frac,
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
