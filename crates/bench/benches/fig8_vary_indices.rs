//! Figure 8 (Experiment 2): vary the number of indices at 15% deletes.

mod common;

use bd_bench::{PointConfig, StrategyKind};
use common::{bench_cell, BENCH_ROWS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    for n in [1usize, 3] {
        let cfg = PointConfig {
            n_secondary: n - 1,
            ..PointConfig::base(BENCH_ROWS)
        };
        for s in [
            StrategyKind::SortedTrad,
            StrategyKind::NotSortedTrad,
            StrategyKind::DropCreateInsertRebuild,
            StrategyKind::Bulk,
        ] {
            bench_cell(
                c,
                "fig8_vary_indices",
                &format!("{}/{}idx", s.label(), n),
                cfg,
                s,
                0.15,
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
