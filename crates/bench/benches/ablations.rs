//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * reorganization policy during bulk deletion (§2.3): none vs
//!   free-at-empty vs full leaf compaction;
//! * the `⋈̄` method on secondary indices (§2.2): sort/merge vs classic
//!   hash vs partitioned hash;
//! * the base-table `⋈̄` method: sorted merge vs hash probe;
//! * chained prefetch: bulk delete over a contiguous (freshly loaded) leaf
//!   extent vs a fragmented tree.

mod common;

use bd_bench::{prepare, PointConfig, StrategyKind};
use bd_btree::ReorgPolicy;
use bd_core::{strategy, DeletePlan, IndexMethod, IndexStep, TableMethod};
use common::{tune, BENCH_ROWS};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn plan(method: IndexMethod, table: TableMethod) -> DeletePlan {
    DeletePlan {
        probe_attr: 0,
        table,
        index_steps: vec![IndexStep { attr: 1, method }, IndexStep { attr: 2, method }],
    }
}

fn bench_reorg(c: &mut Criterion) {
    let cfg = PointConfig {
        n_secondary: 2,
        ..PointConfig::base(BENCH_ROWS)
    };
    let mut g = c.benchmark_group("ablation_reorg");
    tune(&mut g);
    for (name, policy) in [
        ("none", ReorgPolicy::None),
        ("free-at-empty", ReorgPolicy::FreeAtEmpty),
        ("compact-leaves", ReorgPolicy::CompactLeaves),
        ("base-node-pack", ReorgPolicy::BaseNodePack),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || prepare(&cfg, 0.5),
                |(mut db, tid, d)| {
                    let p = bd_core::plan_sort_merge(db.table(tid).unwrap(), 0).unwrap();
                    strategy::vertical(&mut db, tid, &d, &p, policy, 1).unwrap();
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_index_method(c: &mut Criterion) {
    // Classic hash needs the RID set to fit the workspace: give this group
    // the paper's roomiest budget (the method comparison, not memory
    // starvation, is the subject here).
    let cfg = PointConfig {
        n_secondary: 2,
        paper_mem_mb: 40.0,
        ..PointConfig::base(BENCH_ROWS)
    };
    let mut g = c.benchmark_group("ablation_index_method");
    tune(&mut g);
    for (name, method) in [
        ("sort-merge", IndexMethod::SortMerge { presort: true }),
        ("classic-hash", IndexMethod::ClassicHash),
        (
            "partitioned-hash",
            IndexMethod::PartitionedHash { partitions: 4 },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || prepare(&cfg, 0.15),
                |(mut db, tid, d)| {
                    let p = plan(method, TableMethod::Merge { presort: true });
                    strategy::vertical(&mut db, tid, &d, &p, ReorgPolicy::FreeAtEmpty, 1).unwrap();
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_table_method(c: &mut Criterion) {
    // The hash-probe table step needs its RID set to fit the workspace.
    let cfg = PointConfig {
        n_secondary: 0,
        paper_mem_mb: 40.0,
        ..PointConfig::base(BENCH_ROWS)
    };
    let mut g = c.benchmark_group("ablation_table_method");
    tune(&mut g);
    for (name, table) in [
        ("sorted-merge", TableMethod::Merge { presort: true }),
        ("hash-probe", TableMethod::HashProbe),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || prepare(&cfg, 0.15),
                |(mut db, tid, d)| {
                    let p = DeletePlan {
                        probe_attr: 0,
                        table,
                        index_steps: vec![],
                    };
                    strategy::vertical(&mut db, tid, &d, &p, ReorgPolicy::FreeAtEmpty, 1).unwrap();
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    let cfg = PointConfig::base(BENCH_ROWS);
    let mut g = c.benchmark_group("ablation_chained_prefetch");
    tune(&mut g);
    for fragmented in [false, true] {
        let name = if fragmented {
            "fragmented-leaves"
        } else {
            "contiguous-leaves"
        };
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let (mut db, tid, d) = prepare(&cfg, 0.15);
                    if fragmented {
                        // One insert past a full leaf splits it, clearing
                        // the contiguous extent => no chained prefetch.
                        let t = db.table_mut(tid).unwrap();
                        let idx = t.index_on_mut(0).unwrap();
                        idx.tree.insert(1, bd_storage::Rid::new(0, 0)).unwrap();
                        idx.tree.delete_one(1, bd_storage::Rid::new(0, 0)).unwrap();
                        assert!(!t.index_on(0).unwrap().tree.has_contiguous_leaves());
                    }
                    (db, tid, d)
                },
                |(mut db, tid, d)| {
                    StrategyKind::Bulk.run(&mut db, tid, &d).unwrap();
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_hash_index_burden(c: &mut Criterion) {
    // The paper's prototype updates non-B-tree indices "in the traditional
    // way" even inside a vertical bulk delete: measure that burden.
    let cfg = PointConfig {
        n_secondary: 1,
        ..PointConfig::base(BENCH_ROWS)
    };
    let mut g = c.benchmark_group("ablation_hash_index_burden");
    tune(&mut g);
    for n_hash in [0usize, 2] {
        g.bench_function(format!("{n_hash}-hash-indices"), |b| {
            b.iter_batched(
                || {
                    let (mut db, tid, d) = prepare(&cfg, 0.15);
                    for attr in 0..n_hash {
                        db.create_hash_index(tid, 2 + attr).unwrap();
                    }
                    (db, tid, d)
                },
                |(mut db, tid, d)| {
                    StrategyKind::Bulk.run(&mut db, tid, &d).unwrap();
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_reorg,
    bench_index_method,
    bench_table_method,
    bench_prefetch,
    bench_hash_index_burden
);
criterion_main!(benches);
