//! Ablation: worker count for the independent `⋈̄` arms of the vertical
//! bulk delete (phase-task executor fan-out).
//!
//! Criterion measures *wall* time; the simulated critical-path clock is
//! reported by `repro fig8 --parallel N`. Both should move the same way:
//! with 3 indices the fan-out group has two concurrent sort/merge arms, so
//! workers > 1 overlap them, and more workers than arms buys nothing.

mod common;

use bd_bench::{prepare, PointConfig, StrategyKind};
use common::{tune, BENCH_ROWS};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_parallel_arms(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_parallel_arms");
    tune(&mut g);
    for workers in [1usize, 2, 3, 4] {
        let cfg = PointConfig {
            n_secondary: 2,
            workers,
            ..PointConfig::base(BENCH_ROWS)
        };
        g.bench_function(format!("workers-{workers}"), |b| {
            b.iter_batched(
                || prepare(&cfg, 0.15),
                |(mut db, tid, d)| {
                    StrategyKind::Bulk
                        .run_workers(&mut db, tid, &d, workers)
                        .expect("bulk delete");
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_arms);
criterion_main!(benches);
