//! Shared Criterion scaffolding for the figure benches.
//!
//! Criterion measures *wall time* of each strategy at a reduced scale
//! (10,000 rows) to keep iteration cheap; the `repro` binary regenerates
//! the full simulated-time tables. Shapes agree between the two.

use bd_bench::{prepare, PointConfig, StrategyKind};
use criterion::{BatchSize, Criterion};
use std::time::Duration;

/// Rows per benchmark point (kept small: Criterion re-runs the setup once
/// per iteration).
#[allow(dead_code)] // each bench binary uses a subset of this module
pub const BENCH_ROWS: usize = 5_000;

/// Apply fast timing settings (setup dominates, so long measurement
/// windows only multiply table builds).
#[allow(dead_code)]
pub fn tune(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
}

/// Register one `(strategy, point, fraction)` cell.
#[allow(dead_code)] // each bench binary uses a subset of this module
pub fn bench_cell(
    c: &mut Criterion,
    group: &str,
    name: &str,
    cfg: PointConfig,
    strategy: StrategyKind,
    fraction: f64,
) {
    let mut g = c.benchmark_group(group);
    tune(&mut g);
    g.bench_function(name, |b| {
        b.iter_batched(
            || prepare(&cfg, fraction),
            |(mut db, tid, d)| {
                strategy.run(&mut db, tid, &d).expect("strategy run");
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}
