//! Table 1 (Experiment 3): index height 3 vs 4 via the fanout knob.

mod common;

use bd_bench::{PointConfig, StrategyKind};
use common::{bench_cell, BENCH_ROWS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // At bench scale: default fanout => height 2; fanout 12 => height 3-4.
    for (tag, fanout) in [("short", None), ("tall", Some(12))] {
        let cfg = PointConfig {
            fanout,
            ..PointConfig::base(BENCH_ROWS)
        };
        for s in [
            StrategyKind::BulkPresorted,
            StrategyKind::Bulk,
            StrategyKind::SortedTrad,
            StrategyKind::NotSortedTrad,
        ] {
            bench_cell(
                c,
                "table1_index_height",
                &format!("{}/{tag}", s.label()),
                cfg,
                s,
                0.15,
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
