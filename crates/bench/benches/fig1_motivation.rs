//! Figure 1 (introduction): traditional vs drop&create on a 3-index table.

mod common;

use bd_bench::{PointConfig, StrategyKind};
use common::{bench_cell, BENCH_ROWS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = PointConfig {
        n_secondary: 2,
        ..PointConfig::base(BENCH_ROWS)
    };
    for frac in [0.05, 0.15] {
        for s in [StrategyKind::SortedTrad, StrategyKind::DropCreate] {
            bench_cell(
                c,
                "fig1_motivation",
                &format!("{}/{:.0}%", s.label(), frac * 100.0),
                cfg,
                s,
                frac,
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
