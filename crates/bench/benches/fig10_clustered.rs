//! Figure 10 (Experiment 5): clustered index on the delete attribute.

mod common;

use bd_bench::{PointConfig, StrategyKind};
use common::{bench_cell, BENCH_ROWS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let clustered = PointConfig {
        cluster_a: true,
        ..PointConfig::base(BENCH_ROWS)
    };
    let unclustered = PointConfig::base(BENCH_ROWS);
    for (name, cfg, s) in [
        ("sorted-trad/clust", clustered, StrategyKind::SortedTrad),
        ("sorted-trad/unclust", unclustered, StrategyKind::SortedTrad),
        (
            "not-sorted-trad/clust",
            clustered,
            StrategyKind::NotSortedTrad,
        ),
        ("bulk/clust", clustered, StrategyKind::Bulk),
    ] {
        bench_cell(c, "fig10_clustered", name, cfg, s, 0.15);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
