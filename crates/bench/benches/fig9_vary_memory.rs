//! Figure 9 (Experiment 4): vary the memory budget at 15% deletes.

mod common;

use bd_bench::{PointConfig, StrategyKind};
use common::{bench_cell, BENCH_ROWS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    for mb in [2.0, 10.0] {
        let cfg = PointConfig {
            paper_mem_mb: mb,
            ..PointConfig::base(BENCH_ROWS)
        };
        for s in [
            StrategyKind::SortedTrad,
            StrategyKind::NotSortedTrad,
            StrategyKind::Bulk,
        ] {
            bench_cell(
                c,
                "fig9_vary_memory",
                &format!("{}/{mb:.0}MB", s.label()),
                cfg,
                s,
                0.15,
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
