#![warn(missing_docs)]

//! Experiment harness: builds the paper's benchmark database at a chosen
//! scale, runs each delete strategy, and prints the tables/figures of §4.
//!
//! Scaling: the paper's table is 1,000,000 × 512 B (512 MB) with 2–10 MB of
//! memory. The default reproduction scale is `rows = 100_000` (1/10) with
//! memory scaled by the same factor, preserving every ratio the experiments
//! depend on (delete fraction, memory/table, records/page). Reported times
//! are *simulated minutes* from the disk cost model — the paper's y-axis —
//! plus raw I/O counts.

pub mod erase;
pub mod experiments;
pub mod live;
pub mod lsm;
pub mod maintain;
pub mod snapshot;

use bd_btree::BTreeConfig;
use bd_core::{Database, DatabaseConfig, DbResult, IndexDef, RunReport, TableId};
use bd_workload::{TableSpec, Workload};

use bd_btree::Key;

/// Paper scale in rows (used to scale memory budgets proportionally).
pub const PAPER_ROWS: usize = 1_000_000;

/// Scale memory the paper quotes in MB down to the chosen row count.
pub fn mem_bytes(paper_mb: f64, rows: usize) -> usize {
    let scale = rows as f64 / PAPER_ROWS as f64;
    ((paper_mb * 1024.0 * 1024.0 * scale) as usize).max(64 * 1024)
}

/// Configuration of one experiment point.
#[derive(Debug, Clone, Copy)]
pub struct PointConfig {
    /// Table rows.
    pub rows: usize,
    /// Memory budget as the paper quotes it, in MB (scaled by `rows`).
    pub paper_mem_mb: f64,
    /// Number of secondary indices beyond `I_A` (attributes B, C, ...).
    pub n_secondary: usize,
    /// Physically sort the table by A (Experiment 5).
    pub cluster_a: bool,
    /// Override node fanout of every index (Experiment 3's height knob).
    pub fanout: Option<usize>,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads for the independent `⋈̄` arms (1 = serial; the
    /// physical result is identical either way, only the critical-path
    /// clock changes).
    pub workers: usize,
}

impl PointConfig {
    /// The common configuration: 1 unclustered index on A, 5 MB memory.
    pub fn base(rows: usize) -> Self {
        PointConfig {
            rows,
            paper_mem_mb: 5.0,
            n_secondary: 0,
            cluster_a: false,
            fanout: None,
            seed: 42,
            workers: 1,
        }
    }

    fn tree_config(&self) -> BTreeConfig {
        match self.fanout {
            Some(f) => BTreeConfig::with_fanout(f),
            None => BTreeConfig::default(),
        }
    }

    /// Build the database and workload for this point.
    pub fn build(&self) -> DbResult<(Database, Workload)> {
        let mut spec = TableSpec::paper_scaled()
            .with_rows(self.rows)
            .with_seed(self.seed);
        if self.cluster_a {
            spec = spec.clustered_by(0);
        }
        let mut db = Database::new(DatabaseConfig::with_total_memory(mem_bytes(
            self.paper_mem_mb,
            self.rows,
        )));
        let w = spec.build(&mut db)?;
        w.attach_index(
            &mut db,
            IndexDef::secondary(0)
                .unique()
                .with_config(self.tree_config()),
        )?;
        for attr in 1..=self.n_secondary {
            w.attach_index(
                &mut db,
                IndexDef::secondary(attr).with_config(self.tree_config()),
            )?;
        }
        Ok((db, w))
    }
}

/// The strategies the paper's figures compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// `sorted/trad` — traditional with D sorted first.
    SortedTrad,
    /// `not sorted/trad` — traditional, D in arrival order.
    NotSortedTrad,
    /// `drop & create` with a modern bulk-load rebuild (Fig. 1's
    /// commercial system).
    DropCreate,
    /// `drop & create` with record-at-a-time index rebuild (the paper's
    /// prototype, Fig. 8).
    DropCreateInsertRebuild,
    /// `bulk delete` — the vertical sort/merge plan.
    Bulk,
    /// `bulk delete` fed an already-sorted D (Table 1's `sorted/bulk`).
    BulkPresorted,
}

impl StrategyKind {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::SortedTrad => "sorted/trad",
            StrategyKind::NotSortedTrad => "not sorted/trad",
            StrategyKind::DropCreate => "drop&create",
            StrategyKind::DropCreateInsertRebuild => "drop/create",
            StrategyKind::Bulk => "bulk delete",
            StrategyKind::BulkPresorted => "sorted/bulk",
        }
    }

    /// Run this strategy over a built point (serial arms).
    pub fn run(&self, db: &mut Database, tid: TableId, d_keys: &[Key]) -> DbResult<RunReport> {
        self.run_workers(db, tid, d_keys, 1)
    }

    /// Run this strategy with the independent `⋈̄` / rebuild arms allowed
    /// `workers` threads. The horizontal strategies have no independent
    /// arms and ignore `workers`.
    pub fn run_workers(
        &self,
        db: &mut Database,
        tid: TableId,
        d_keys: &[Key],
        workers: usize,
    ) -> DbResult<RunReport> {
        use bd_core::strategy as s;
        let outcome = match self {
            StrategyKind::SortedTrad => s::horizontal(db, tid, 0, d_keys, true)?,
            StrategyKind::NotSortedTrad => s::horizontal(db, tid, 0, d_keys, false)?,
            StrategyKind::DropCreate => {
                s::drop_create(db, tid, 0, d_keys, bd_core::RebuildMode::BulkLoad, workers)?
            }
            StrategyKind::DropCreateInsertRebuild => s::drop_create(
                db,
                tid,
                0,
                d_keys,
                bd_core::RebuildMode::InsertEach,
                workers,
            )?,
            StrategyKind::Bulk => s::vertical_sort_merge(db, tid, 0, d_keys, workers)?,
            StrategyKind::BulkPresorted => {
                let mut sorted = d_keys.to_vec();
                sorted.sort_unstable();
                s::vertical_sort_merge(db, tid, 0, &sorted, workers)?
            }
        };
        Ok(outcome.report)
    }

    /// Whether this strategy has independent arms that parallelise (and
    /// therefore a critical-path clock distinct from the serial one).
    pub fn parallelizable(&self) -> bool {
        !matches!(self, StrategyKind::SortedTrad | StrategyKind::NotSortedTrad)
    }

    /// Label of this strategy's critical-path series in parallel sweeps.
    pub fn crit_label(&self) -> &'static str {
        match self {
            StrategyKind::SortedTrad => "sorted/trad crit",
            StrategyKind::NotSortedTrad => "not sorted crit",
            StrategyKind::DropCreate => "drop&create crit",
            StrategyKind::DropCreateInsertRebuild => "drop/create crit",
            StrategyKind::Bulk => "bulk crit-path",
            StrategyKind::BulkPresorted => "sorted/bulk crit",
        }
    }
}

/// Run one `(point, strategy, fraction)` cell on a freshly built database,
/// verifying consistency afterwards.
pub fn run_point(
    cfg: &PointConfig,
    strategy: StrategyKind,
    delete_fraction: f64,
) -> DbResult<RunReport> {
    let (mut db, w) = cfg.build()?;
    let d = w.delete_set(delete_fraction, cfg.seed.wrapping_add(1));
    let report = strategy.run_workers(&mut db, w.tid, &d, cfg.workers.max(1))?;
    db.check_consistency(w.tid)?;
    Ok(report)
}

/// Build a point and draw its delete set (Criterion setup closure).
pub fn prepare(cfg: &PointConfig, delete_fraction: f64) -> (Database, TableId, Vec<Key>) {
    let (db, w) = cfg.build().expect("build point");
    let d = w.delete_set(delete_fraction, cfg.seed.wrapping_add(1));
    (db, w.tid, d)
}

/// A rendered experiment: one row per x-value, one column per series.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `fig7`.
    pub id: &'static str,
    /// Paper caption.
    pub title: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// Series names in column order.
    pub series: Vec<&'static str>,
    /// `(x, simulated minutes per series)`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Expected qualitative shape, checked by tests.
    pub notes: String,
    /// Full per-cell counters behind `rows`, for `BENCH_<n>.json` dumps.
    pub points: Vec<snapshot::BenchPoint>,
}

impl ExperimentReport {
    /// Render as an aligned text table (the `repro` binary's output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.title));
        out.push_str(&format!("{:<24}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("{s:>20}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(24 + 20 * self.series.len()));
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&format!("{x:<24}"));
            for v in vals {
                out.push_str(&format!("{v:>16.2} min"));
            }
            out.push('\n');
        }
        out.push_str(&format!("note: {}\n", self.notes));
        out
    }

    /// Value for `(x-row, series)` (panics on unknown names; test helper).
    pub fn value(&self, x: &str, series: &str) -> f64 {
        let col = self
            .series
            .iter()
            .position(|s| *s == series)
            .unwrap_or_else(|| panic!("unknown series {series}"));
        let row = self
            .rows
            .iter()
            .find(|(r, _)| r == x)
            .unwrap_or_else(|| panic!("unknown x {x}"));
        row.1[col]
    }
}
