//! Machine-readable bench snapshots (`BENCH_<n>.json`).
//!
//! Each `repro` sweep can dump every measured `(experiment, x, strategy)`
//! cell as a flat JSON document, so the perf trajectory across PRs is
//! diffable by scripts instead of living only in prose. No serde is
//! vendored, so both the writer and the validating reader are hand-rolled
//! against the one fixed schema below.
//!
//! Schema (all fields required):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "label": "...",
//!   "rows": 100000,
//!   "workers": 1,
//!   "points": [ { ...BenchPoint fields... } ]
//! }
//! ```

use bd_core::{ForegroundReport, RunReport};

/// Fields every snapshot point must carry, used by the writer and checked
/// by [`BenchSnapshot::validate`].
pub const POINT_FIELDS: &[&str] = &[
    "experiment",
    "x",
    "strategy",
    "deleted",
    "sim_minutes",
    "crit_path_minutes",
    "random_reads",
    "sequential_reads",
    "random_writes",
    "sequential_writes",
    "pages_read",
    "pages_written",
    "retries",
    "pool_hits",
    "pool_misses",
    "pool_prefetched",
    "pool_writebacks",
    "buffer_hit_rate",
];

/// Fields every per-class foreground entry must carry when a point has a
/// `foreground` array (points without live traffic simply omit the array).
pub const FG_FIELDS: &[&str] = &["class", "ops", "p50_us", "p95_us", "p99_us", "max_us"];

/// Foreground latency percentiles for one op class of a live run.
#[derive(Debug, Clone, PartialEq)]
pub struct FgClass {
    /// Op class, e.g. `point_read`.
    pub class: String,
    /// Operations sampled.
    pub ops: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

impl FgClass {
    /// Flatten a [`ForegroundReport`] into per-class snapshot entries.
    pub fn from_report(fg: &ForegroundReport) -> Vec<FgClass> {
        fg.classes
            .iter()
            .map(|(name, h)| FgClass {
                class: name.clone(),
                ops: h.count(),
                p50_us: h.percentile(50.0),
                p95_us: h.percentile(95.0),
                p99_us: h.percentile(99.0),
                max_us: h.max_us(),
            })
            .collect()
    }
}

/// One measured `(experiment, x, strategy)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Experiment id, e.g. `fig7`.
    pub experiment: String,
    /// X-axis value, e.g. `15%` or `2` (indices).
    pub x: String,
    /// Strategy label, e.g. `bulk delete`.
    pub strategy: String,
    /// Records deleted.
    pub deleted: u64,
    /// Serial simulated clock, minutes.
    pub sim_minutes: f64,
    /// Critical-path simulated clock, minutes (= serial when serial).
    pub crit_path_minutes: f64,
    /// Positioned (head-moving) read accesses.
    pub random_reads: u64,
    /// Sequential-successor read accesses.
    pub sequential_reads: u64,
    /// Positioned write accesses.
    pub random_writes: u64,
    /// Sequential-successor write accesses.
    pub sequential_writes: u64,
    /// Pages transferred by reads.
    pub pages_read: u64,
    /// Pages transferred by writes.
    pub pages_written: u64,
    /// Transient-fault retries.
    pub retries: u64,
    /// Buffer-pool pins served warm.
    pub pool_hits: u64,
    /// Buffer-pool pins that read from disk.
    pub pool_misses: u64,
    /// First pins of prefetched pages.
    pub pool_prefetched: u64,
    /// Dirty pages written back.
    pub pool_writebacks: u64,
    /// Warm-hit fraction of all pins (prefetched pins are not warm).
    pub buffer_hit_rate: f64,
    /// Foreground latency percentiles per op class, for points measured
    /// under live traffic. Empty for offline points (and omitted from
    /// their JSON).
    pub foreground: Vec<FgClass>,
}

impl BenchPoint {
    /// Flatten one [`RunReport`] into a snapshot point.
    pub fn from_report(experiment: &str, x: &str, report: &RunReport) -> Self {
        BenchPoint {
            experiment: experiment.to_string(),
            x: x.to_string(),
            strategy: report.strategy.clone(),
            deleted: report.deleted as u64,
            sim_minutes: report.sim_minutes(),
            crit_path_minutes: report.critical_path_minutes(),
            random_reads: report.io.random_reads,
            sequential_reads: report.io.sequential_reads,
            random_writes: report.io.random_writes,
            sequential_writes: report.io.sequential_writes,
            pages_read: report.io.pages_read,
            pages_written: report.io.pages_written,
            retries: report.io.retries,
            pool_hits: report.pool.hits,
            pool_misses: report.pool.misses,
            pool_prefetched: report.pool.prefetched,
            pool_writebacks: report.pool.writebacks,
            buffer_hit_rate: report.pool.hit_rate(),
            foreground: report
                .foreground
                .as_ref()
                .map(FgClass::from_report)
                .unwrap_or_default(),
        }
    }
}

/// A full snapshot: run metadata plus every measured point.
#[derive(Debug, Clone, Default)]
pub struct BenchSnapshot {
    /// Free-form label, e.g. `PR 6 after` or a git describe string.
    pub label: String,
    /// Table rows the sweep ran at.
    pub rows: u64,
    /// Worker threads the sweep ran with.
    pub workers: u64,
    /// Every measured cell, in sweep order.
    pub points: Vec<BenchPoint>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    // JSON has no NaN/Infinity; a snapshot must stay parseable regardless.
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

impl BenchSnapshot {
    /// A snapshot with metadata and no points yet.
    pub fn new(label: &str, rows: usize, workers: usize) -> Self {
        BenchSnapshot {
            label: label.to_string(),
            rows: rows as u64,
            workers: workers as u64,
            points: Vec::new(),
        }
    }

    /// Serialise to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"label\": \"{}\",\n", esc(&self.label)));
        out.push_str(&format!("  \"rows\": {},\n", self.rows));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    {");
            let fields = [
                format!("\"experiment\": \"{}\"", esc(&p.experiment)),
                format!("\"x\": \"{}\"", esc(&p.x)),
                format!("\"strategy\": \"{}\"", esc(&p.strategy)),
                format!("\"deleted\": {}", p.deleted),
                format!("\"sim_minutes\": {}", num(p.sim_minutes)),
                format!("\"crit_path_minutes\": {}", num(p.crit_path_minutes)),
                format!("\"random_reads\": {}", p.random_reads),
                format!("\"sequential_reads\": {}", p.sequential_reads),
                format!("\"random_writes\": {}", p.random_writes),
                format!("\"sequential_writes\": {}", p.sequential_writes),
                format!("\"pages_read\": {}", p.pages_read),
                format!("\"pages_written\": {}", p.pages_written),
                format!("\"retries\": {}", p.retries),
                format!("\"pool_hits\": {}", p.pool_hits),
                format!("\"pool_misses\": {}", p.pool_misses),
                format!("\"pool_prefetched\": {}", p.pool_prefetched),
                format!("\"pool_writebacks\": {}", p.pool_writebacks),
                format!("\"buffer_hit_rate\": {}", num(p.buffer_hit_rate)),
            ];
            out.push_str(&fields.join(", "));
            if !p.foreground.is_empty() {
                let classes: Vec<String> = p
                    .foreground
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"class\": \"{}\", \"ops\": {}, \"p50_us\": {}, \
                             \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                            esc(&c.class),
                            c.ops,
                            c.p50_us,
                            c.p95_us,
                            c.p99_us,
                            c.max_us
                        )
                    })
                    .collect();
                out.push_str(&format!(", \"foreground\": [{}]", classes.join(", ")));
            }
            out.push_str(if i + 1 < self.points.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse and validate a snapshot document: well-formed JSON, required
    /// top-level fields, and every [`POINT_FIELDS`] entry present in every
    /// point. Returns a human-readable error otherwise.
    pub fn validate(text: &str) -> Result<BenchSnapshot, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let get = |k: &str| {
            obj.get(k)
                .ok_or_else(|| format!("missing top-level field `{k}`"))
        };
        let schema = get("schema")?.as_u64().ok_or("`schema` is not a number")?;
        if schema != 1 {
            return Err(format!("unsupported schema version {schema}"));
        }
        let mut snap = BenchSnapshot {
            label: get("label")?
                .as_str()
                .ok_or("`label` is not a string")?
                .to_string(),
            rows: get("rows")?.as_u64().ok_or("`rows` is not a number")?,
            workers: get("workers")?
                .as_u64()
                .ok_or("`workers` is not a number")?,
            points: Vec::new(),
        };
        let points = get("points")?
            .as_array()
            .ok_or("`points` is not an array")?;
        for (i, p) in points.iter().enumerate() {
            let p = p
                .as_object()
                .ok_or_else(|| format!("point {i} is not an object"))?;
            for field in POINT_FIELDS {
                if !p.contains_key(*field) {
                    return Err(format!("point {i} is missing field `{field}`"));
                }
            }
            let s = |k: &str| -> Result<String, String> {
                p[k].as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("point {i} field `{k}` is not a string"))
            };
            let u = |k: &str| -> Result<u64, String> {
                p[k].as_u64()
                    .ok_or_else(|| format!("point {i} field `{k}` is not an integer"))
            };
            let f = |k: &str| -> Result<f64, String> {
                p[k].as_f64()
                    .ok_or_else(|| format!("point {i} field `{k}` is not a number"))
            };
            let mut foreground = Vec::new();
            if let Some(fg) = p.get("foreground") {
                let classes = fg
                    .as_array()
                    .ok_or_else(|| format!("point {i} `foreground` is not an array"))?;
                for (j, c) in classes.iter().enumerate() {
                    let c = c
                        .as_object()
                        .ok_or_else(|| format!("point {i} foreground[{j}] is not an object"))?;
                    for field in FG_FIELDS {
                        if !c.contains_key(*field) {
                            return Err(format!(
                                "point {i} foreground[{j}] is missing field `{field}`"
                            ));
                        }
                    }
                    let cu = |k: &str| -> Result<u64, String> {
                        c[k].as_u64().ok_or_else(|| {
                            format!("point {i} foreground[{j}] field `{k}` is not an integer")
                        })
                    };
                    foreground.push(FgClass {
                        class: c["class"]
                            .as_str()
                            .ok_or_else(|| {
                                format!("point {i} foreground[{j}] field `class` is not a string")
                            })?
                            .to_string(),
                        ops: cu("ops")?,
                        p50_us: cu("p50_us")?,
                        p95_us: cu("p95_us")?,
                        p99_us: cu("p99_us")?,
                        max_us: cu("max_us")?,
                    });
                }
            }
            snap.points.push(BenchPoint {
                experiment: s("experiment")?,
                x: s("x")?,
                strategy: s("strategy")?,
                deleted: u("deleted")?,
                sim_minutes: f("sim_minutes")?,
                crit_path_minutes: f("crit_path_minutes")?,
                random_reads: u("random_reads")?,
                sequential_reads: u("sequential_reads")?,
                random_writes: u("random_writes")?,
                sequential_writes: u("sequential_writes")?,
                pages_read: u("pages_read")?,
                pages_written: u("pages_written")?,
                retries: u("retries")?,
                pool_hits: u("pool_hits")?,
                pool_misses: u("pool_misses")?,
                pool_prefetched: u("pool_prefetched")?,
                pool_writebacks: u("pool_writebacks")?,
                buffer_hit_rate: f("buffer_hit_rate")?,
                foreground,
            });
        }
        Ok(snap)
    }
}

/// A minimal recursive-descent JSON reader — just enough to validate the
/// snapshots this module writes (no serde in the vendor set).
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let ch_len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&b[*pos..*pos + ch_len])
                        .map_err(|_| "invalid utf-8 in string")?;
                    out.push_str(s);
                    *pos += ch_len;
                }
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            map.insert(key, parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_point() -> BenchPoint {
        BenchPoint {
            experiment: "fig7".into(),
            x: "15%".into(),
            strategy: "bulk delete".into(),
            deleted: 15_000,
            sim_minutes: 1.25,
            crit_path_minutes: 1.25,
            random_reads: 100,
            sequential_reads: 9_000,
            random_writes: 50,
            sequential_writes: 4_000,
            pages_read: 9_100,
            pages_written: 4_050,
            retries: 0,
            pool_hits: 20,
            pool_misses: 900,
            pool_prefetched: 8_200,
            pool_writebacks: 4_050,
            buffer_hit_rate: 0.002192,
            foreground: vec![],
        }
    }

    fn sample_fg() -> Vec<FgClass> {
        vec![
            FgClass {
                class: "point_read".into(),
                ops: 4_200,
                p50_us: 18,
                p95_us: 95,
                p99_us: 240,
                max_us: 1_900,
            },
            FgClass {
                class: "range_scan".into(),
                ops: 800,
                p50_us: 120,
                p95_us: 600,
                p99_us: 1_500,
                max_us: 4_000,
            },
        ]
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = BenchSnapshot::new("unit \"quoted\" label", 100_000, 3);
        snap.points.push(sample_point());
        snap.points.push(BenchPoint {
            x: "20%".into(),
            ..sample_point()
        });
        let parsed = BenchSnapshot::validate(&snap.to_json()).expect("round trip");
        assert_eq!(parsed.label, snap.label);
        assert_eq!(parsed.rows, 100_000);
        assert_eq!(parsed.workers, 3);
        assert_eq!(parsed.points.len(), 2);
        assert_eq!(parsed.points[0].strategy, "bulk delete");
        assert_eq!(parsed.points[1].x, "20%");
        assert!((parsed.points[0].sim_minutes - 1.25).abs() < 1e-9);
    }

    #[test]
    fn foreground_classes_round_trip_through_json() {
        let mut snap = BenchSnapshot::new("live", 100_000, 4);
        snap.points.push(BenchPoint {
            foreground: sample_fg(),
            ..sample_point()
        });
        snap.points.push(sample_point());
        let parsed = BenchSnapshot::validate(&snap.to_json()).expect("round trip");
        assert_eq!(parsed.points[0].foreground, sample_fg());
        assert!(parsed.points[1].foreground.is_empty());
        // An offline point's JSON must not mention foreground at all, so
        // pre-live snapshots stay byte-identical.
        let offline_only = BenchSnapshot::new("offline", 1, 1).to_json();
        assert!(!offline_only.contains("foreground"));
    }

    #[test]
    fn missing_foreground_subfield_is_rejected() {
        let mut snap = BenchSnapshot::new("live", 1, 1);
        snap.points.push(BenchPoint {
            foreground: sample_fg(),
            ..sample_point()
        });
        let json = snap.to_json().replace("\"p99_us\": 240, ", "");
        let err = BenchSnapshot::validate(&json).unwrap_err();
        assert!(err.contains("p99_us"), "err: {err}");
    }

    #[test]
    fn missing_point_field_is_rejected() {
        let mut snap = BenchSnapshot::new("x", 1, 1);
        snap.points.push(sample_point());
        let json = snap.to_json().replace("\"retries\": 0, ", "");
        let err = BenchSnapshot::validate(&json).unwrap_err();
        assert!(err.contains("retries"), "err: {err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(BenchSnapshot::validate("{\"schema\": 1,").is_err());
        assert!(BenchSnapshot::validate("").is_err());
        assert!(BenchSnapshot::validate("[1, 2]").is_err());
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let snap = BenchSnapshot::new("x", 1, 1);
        let json = snap.to_json().replace("\"schema\": 1", "\"schema\": 2");
        assert!(BenchSnapshot::validate(&json)
            .unwrap_err()
            .contains("schema"));
    }
}
