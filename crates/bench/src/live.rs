//! The online experiment: foreground latency under an offline versus a
//! live (chunked, paced) bulk delete.
//!
//! The paper's §3.1 concurrency-control section argues bulk deletion must
//! coexist with updaters; this experiment quantifies the difference. For
//! each delete fraction it runs the same foreground mix (point reads,
//! range scans, inserts) twice — once against the blocking offline
//! statement, once against [`TxnDb::bulk_delete_live`] — and reports the
//! foreground p50/p95/p99 per op class next to the delete's own I/O cost.
//! Every run is model-checked against a [`ShadowDb`] (victims deleted,
//! foreground inserts applied) before its numbers are accepted.

use bd_core::{RunReport, ShadowDb};
use bd_storage::Pacer;
use bd_txn::{PropagationMode, TxnDb};
use bd_workload::{run_with_foreground, DeleteDriver, FgConfig};

use crate::snapshot::BenchPoint;
use crate::{ExperimentReport, PointConfig};

/// Delete fractions the live sweep measures (the acceptance floor is two).
pub const LIVE_FRACTIONS: &[f64] = &[0.05, 0.15];

/// Keys per exclusive span of the live driver.
pub const LIVE_CHUNK: usize = 512;

/// Configuration of the live sweep.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Table rows.
    pub rows: usize,
    /// Foreground threads.
    pub threads: usize,
    /// Workload seed.
    pub seed: u64,
}

impl LiveConfig {
    /// Default scale: matches `PointConfig::base` with 4 foreground threads.
    pub fn new(rows: usize) -> Self {
        LiveConfig {
            rows,
            threads: 4,
            seed: 42,
        }
    }
}

fn driver_label(driver: DeleteDriver) -> &'static str {
    match driver {
        DeleteDriver::Offline(_) => "offline",
        DeleteDriver::Live { .. } => "live",
    }
}

/// Run one `(fraction, driver)` cell: build the full vertical structure
/// (unique probe index, two secondary B-trees, one hash index), start the
/// foreground pool, run the delete, and model-check the end state.
fn run_cell(cfg: &LiveConfig, fraction: f64, driver: DeleteDriver) -> Result<RunReport, String> {
    let mut point = PointConfig::base(cfg.rows);
    point.n_secondary = 2;
    point.seed = cfg.seed;
    let (mut db, w) = point.build().map_err(|e| e.to_string())?;
    db.create_hash_index(w.tid, 3).map_err(|e| e.to_string())?;
    let mut shadow = ShadowDb::mirror_of(&db, w.tid).map_err(|e| e.to_string())?;
    let victims = w.delete_set(fraction, cfg.seed.wrapping_add(1));

    let tdb = TxnDb::new(db);
    let pool = tdb.with(|db| db.pool().clone());
    pool.clear_cache().map_err(|e| e.to_string())?;
    pool.reset_stats();
    let before = pool.disk_stats();
    let run = run_with_foreground(
        &tdb,
        &w,
        &victims,
        driver,
        FgConfig {
            threads: cfg.threads,
            seed: cfg.seed ^ 0xF0,
            ..FgConfig::default()
        },
        &Pacer::new(),
    )
    .map_err(|e| e.to_string())?;
    pool.flush_all().map_err(|e| e.to_string())?;
    let io = pool.disk_stats().since(&before);

    shadow.delete_in(w.tid, 0, &victims);
    for (rid, tuple) in run.inserted {
        shadow.insert(w.tid, rid, tuple);
    }
    let diff = tdb
        .with(|db| shadow.diff(db, w.tid))
        .map_err(|e| e.to_string())?;
    if !diff.is_clean() {
        return Err(format!(
            "{} {:.0}%: end state diverged from the model: {diff}",
            driver_label(driver),
            fraction * 100.0
        ));
    }
    tdb.with(|db| db.check_consistency(w.tid))
        .map_err(|e| e.to_string())?;

    Ok(RunReport {
        strategy: driver_label(driver).to_string(),
        deleted: run.deleted,
        io,
        phases: Vec::new(),
        workers: 1,
        pool: pool.pool_stats(),
        events: Vec::new(),
        foreground: Some(run.foreground),
    })
}

/// The full sweep: every [`LIVE_FRACTIONS`] fraction, offline then live,
/// both drivers propagating the non-probe non-unique indices through the
/// side file.
pub fn live_experiment(cfg: &LiveConfig) -> Result<ExperimentReport, String> {
    let drivers = [
        DeleteDriver::Offline(PropagationMode::SideFile),
        DeleteDriver::Live {
            mode: PropagationMode::SideFile,
            chunk: LIVE_CHUNK,
        },
    ];
    let mut report = ExperimentReport {
        id: "live",
        title: "foreground latency under an offline vs a live bulk delete".to_string(),
        x_label: "% deleted",
        series: vec!["offline", "live"],
        rows: Vec::new(),
        notes: format!(
            "live = {LIVE_CHUNK}-key exclusive spans with pacer checkpoints; \
             both drivers side-file the non-probe secondary indices; \
             foreground percentiles are in the per-point `foreground` arrays"
        ),
        points: Vec::new(),
    };
    for &fraction in LIVE_FRACTIONS {
        let x = format!("{:.0}%", fraction * 100.0);
        let mut row = Vec::new();
        for driver in drivers {
            let cell = run_cell(cfg, fraction, driver)?;
            row.push(cell.sim_minutes());
            report
                .points
                .push(BenchPoint::from_report("live", &x, &cell));
        }
        report.rows.push((x, row));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded end-to-end sweep: both drivers at both fractions finish,
    /// model-check clean, and every point carries non-empty foreground
    /// percentiles for all three op classes.
    #[test]
    fn live_sweep_reports_foreground_percentiles() {
        let cfg = LiveConfig {
            rows: 4_000,
            threads: 2,
            seed: 42,
        };
        let report = live_experiment(&cfg).expect("sweep");
        assert_eq!(report.rows.len(), LIVE_FRACTIONS.len());
        assert_eq!(report.points.len(), 2 * LIVE_FRACTIONS.len());
        for p in &report.points {
            assert!(
                !p.foreground.is_empty(),
                "{} {} has no fg data",
                p.strategy,
                p.x
            );
            let classes: Vec<&str> = p.foreground.iter().map(|c| c.class.as_str()).collect();
            for want in ["point_read", "range_scan", "insert"] {
                assert!(
                    classes.contains(&want),
                    "{} {} missing {want}",
                    p.strategy,
                    p.x
                );
            }
            for c in &p.foreground {
                assert!(c.ops > 0);
                assert!(c.p50_us <= c.p95_us && c.p95_us <= c.p99_us && c.p99_us <= c.max_us);
            }
        }
    }
}
