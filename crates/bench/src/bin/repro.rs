//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [fig1|fig7|fig8|table1|fig9|fig10|all]... [--rows N] [--parallel N]
//!       [--phases] [--audit] [--faults] [--live] [--erase] [--maintain]
//!       [--lsm] [--bench-json PATH] [--check-bench PATH]
//! ```
//!
//! `--parallel N` allows the independent `⋈̄` / rebuild arms of the bulk
//! strategies N worker threads. Parallel runs produce the identical
//! physical state (the arms touch disjoint structures); the figures gain a
//! `crit-path` column per parallelizable strategy — the simulated time if
//! the arms truly overlap — next to the serial clock.
//!
//! `--phases` additionally prints the per-`⋈̄` I/O breakdown of one bulk
//! delete at the chosen scale (`∥` marks arms of a concurrent group).
//!
//! `--audit` runs the differential audit harness instead of the
//! experiments: the same build + delete workload is executed horizontally
//! and vertically in two separate databases, and every storage structure
//! (heap record multiset, B-tree entries and invariants, FSM accounting,
//! hash chains) is diffed across the two executions — and then again
//! between a serial and a parallel vertical run. Exits non-zero and prints
//! the per-structure diff on divergence.
//!
//! `--faults` runs the fault-injection demo instead of the experiments:
//! a transient disk fault is planted under one fan-out arm of a parallel
//! vertical delete (the statement must ride it out via buffer-pool retries
//! plus the executor's serial degradation, bit-identical to the fault-free
//! run), followed by a crash-at-every-I/O campaign smoke over the WAL
//! driver — serial and parallel — where every crash point must recover to
//! the reference state, and a torn-write campaign smoke where each swept
//! write persists only half a page and media recovery must rebuild the
//! damaged structure back to the reference state. Exits non-zero on any
//! divergence.
//!
//! Default scale is 100,000 rows (1/10 of the paper with all ratios
//! preserved); `--rows 1000000` runs the paper's full scale. Output times
//! are simulated minutes from the disk cost model.
//!
//! `--live` runs the online experiment instead of the offline figures: the
//! same foreground mix (point reads, range scans, inserts on 4 threads)
//! runs against the blocking offline delete statement and against the
//! chunked live driver (`TxnDb::bulk_delete_live`), at two delete
//! fractions. Every run is model-checked against a shadow before its
//! numbers are accepted; the output is the per-class foreground
//! p50/p95/p99 under each driver, and `--bench-json` dumps them in the
//! per-point `foreground` arrays.
//!
//! `--erase` runs the retention-window erasure sweep instead of the
//! offline figures: the §1 sliding-window warehouse (sales + CASCADE line
//! items) erases its oldest 1/2/3 months, once as a plain cascading bulk
//! delete and once as a durable erasure campaign (WAL manifest, physical
//! scrub, log redaction, proof-of-deletion — which must come back clean),
//! followed by a bounded crash/torn-write sample of the campaign fault
//! sweep as a recovery smoke. Exits non-zero on any proof residue or
//! unrecovered fault point.
//!
//! `--maintain` runs the steady-state space sweep instead of the offline
//! figures: a sliding-window workload (delete the oldest quarter of the
//! keys, refill with fresh rows, repeat) runs with and without the
//! incremental maintenance daemon. The daemon's end state must keep its
//! in-use page count within 10% of a fresh bulk load of the same live
//! rows, and the unmaintained arm's file must be strictly larger — the
//! space leak the daemon exists to stop. Exits non-zero otherwise.
//!
//! `--lsm` runs the engine comparison instead of the offline figures: the
//! fig7 delete-fraction sweep replayed through the engine seam, four arms
//! per fraction — B-tree vertical bulk delete, B-tree drop&create, the
//! delete-aware LSM's tombstone write (deferred cost), and the same LSM
//! delete plus a forced purge of every tombstone (total cost). Every LSM
//! cell is differentially audited against a B-tree twin fed the identical
//! workload (`audit_engine_equivalence`) and its page catalog is audited
//! for leaks before its numbers are accepted; exits non-zero on any
//! divergence.
//!
//! `--bench-json PATH` additionally dumps every measured cell of the
//! selected experiments as a machine-readable snapshot (the `BENCH_<n>.json`
//! trajectory files); `--check-bench PATH` parses and validates such a
//! snapshot — schema, required fields, point count — and exits non-zero on
//! any problem (the CI gate for the emitted files).

use bd_bench::experiments;
use bd_bench::snapshot::BenchSnapshot;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut rows: usize = 100_000;
    let mut workers: usize = 1;
    let mut show_phases = false;
    let mut run_audit = false;
    let mut run_faults = false;
    let mut run_live = false;
    let mut run_erase = false;
    let mut run_maintain = false;
    let mut run_lsm = false;
    let mut bench_json: Option<String> = None;
    let mut check_bench: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--phases" => show_phases = true,
            "--audit" => run_audit = true,
            "--faults" => run_faults = true,
            "--live" => run_live = true,
            "--erase" => run_erase = true,
            "--maintain" => run_maintain = true,
            "--lsm" => run_lsm = true,
            "--rows" => {
                i += 1;
                rows = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--parallel" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--bench-json" => {
                i += 1;
                bench_json = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--check-bench" => {
                i += 1;
                check_bench = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            name => which.push(name.to_string()),
        }
        i += 1;
    }

    if let Some(path) = check_bench {
        validate_snapshot(&path);
        return;
    }

    let run = |id: &str| -> bd_core::DbResult<bd_bench::ExperimentReport> {
        match id {
            "fig1" => experiments::fig1(rows, workers),
            "fig7" => experiments::fig7(rows, workers),
            "fig8" => experiments::fig8(rows, workers),
            "table1" => experiments::table1(rows, workers),
            "fig9" => experiments::fig9(rows, workers),
            "fig10" => experiments::fig10(rows, workers),
            other => {
                eprintln!("unknown experiment `{other}`");
                usage()
            }
        }
    };

    if run_audit {
        audit(rows, workers);
        return;
    }
    if run_faults {
        faults(rows, workers);
        return;
    }
    if run_live {
        live(rows, bench_json.as_deref());
        return;
    }
    if run_erase {
        erase(rows, workers, bench_json.as_deref());
        return;
    }
    if run_maintain {
        maintain(rows, bench_json.as_deref());
        return;
    }
    if run_lsm {
        lsm(rows, workers, bench_json.as_deref());
        return;
    }

    println!(
        "Efficient Bulk Deletes in Relational Databases (ICDE 2001) — reproduction\n\
         scale: {rows} rows x 512 B; memory budgets scaled by rows/1M; times are\n\
         simulated minutes under the 1999-era disk cost model\n"
    );
    if workers > 1 {
        println!(
            "parallel arms: {workers} workers; `crit-path` columns give the \
             simulated time with concurrent `⋈̄` arms overlapped\n"
        );
    }
    let ids: Vec<&str> = if which.is_empty() || which.iter().any(|w| w == "all") {
        vec!["fig1", "fig7", "fig8", "table1", "fig9", "fig10"]
    } else {
        which.iter().map(|s| s.as_str()).collect()
    };
    if show_phases {
        print_phases(rows, workers);
    }
    let mut snap = BenchSnapshot::new(&format!("repro {}", ids.join(" ")), rows, workers);
    for id in &ids {
        let started = std::time::Instant::now();
        match run(id) {
            Ok(report) => {
                println!("{}", report.render());
                eprintln!(
                    "[{} finished in {:.1}s wall]",
                    id,
                    started.elapsed().as_secs_f32()
                );
                snap.points.extend(report.points);
            }
            Err(e) => {
                eprintln!("{id} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = bench_json {
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            eprintln!("failed to write bench snapshot `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("[bench snapshot: {} points -> {path}]", snap.points.len());
    }
}

/// `--check-bench`: parse + validate a `BENCH_<n>.json` file, print a
/// one-line summary, exit non-zero on any schema problem.
fn validate_snapshot(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(2);
        }
    };
    match BenchSnapshot::validate(&text) {
        Ok(snap) => {
            if snap.points.is_empty() {
                eprintln!("`{path}` is valid but has no points");
                std::process::exit(2);
            }
            println!(
                "`{path}` ok: label `{}`, {} rows, {} workers, {} points",
                snap.label,
                snap.rows,
                snap.workers,
                snap.points.len()
            );
        }
        Err(e) => {
            eprintln!("`{path}` is not a valid bench snapshot: {e}");
            std::process::exit(2);
        }
    }
}

/// `--live`: the online experiment — foreground latency percentiles under
/// the offline vs the chunked live bulk delete, model-checked per run.
fn live(rows: usize, bench_json: Option<&str>) {
    use bd_bench::live::{live_experiment, LiveConfig, LIVE_CHUNK};

    let cfg = LiveConfig::new(rows);
    println!(
        "online experiment: offline vs live bulk delete under foreground \
         traffic ({} threads, point reads / range scans / inserts), \
         {rows} rows, live chunk {LIVE_CHUNK} keys\n",
        cfg.threads
    );
    let started = std::time::Instant::now();
    let report = match live_experiment(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("live experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.render());
    println!("foreground latency per op class:");
    for p in &report.points {
        println!("  {} @ {} (deleted {}):", p.strategy, p.x, p.deleted);
        for c in &p.foreground {
            println!(
                "    {:<12} n {:>7}  p50 {:>7} µs  p95 {:>7} µs  p99 {:>7} µs  max {:>8} µs",
                c.class, c.ops, c.p50_us, c.p95_us, c.p99_us, c.max_us
            );
        }
    }
    eprintln!(
        "[live finished in {:.1}s wall]",
        started.elapsed().as_secs_f32()
    );
    if let Some(path) = bench_json {
        let mut snap = BenchSnapshot::new("repro live", rows, cfg.threads);
        snap.points.extend(report.points);
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("failed to write bench snapshot `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("[bench snapshot: {} points -> {path}]", snap.points.len());
    }
}

fn print_phases(rows: usize, workers: usize) {
    use bd_bench::{run_point, PointConfig, StrategyKind};
    let cfg = PointConfig {
        n_secondary: 2,
        workers,
        ..PointConfig::base(rows)
    };
    match run_point(&cfg, StrategyKind::Bulk, 0.15) {
        Ok(report) => {
            println!("per-phase breakdown (bulk delete, 15% of {rows} rows, 3 indices):");
            print!("{}", report.phase_breakdown());
            if workers > 1 {
                println!(
                    "  serial clock {:.2} min; critical path {:.2} min ({} workers)",
                    report.sim_minutes(),
                    report.critical_path_minutes(),
                    workers,
                );
            }
            println!();
        }
        Err(e) => eprintln!("phase breakdown failed: {e}"),
    }
}

/// Differential strategy-equivalence audit: run the same workload
/// horizontally and vertically (and vertically again with parallel arms),
/// then diff all physical structures pairwise.
fn audit(rows: usize, workers: usize) {
    use bd_core::prelude::*;
    use bd_core::{audit_equivalence, IndexDef};
    use bd_workload::TableSpec;

    let rows = rows.min(20_000); // the audit is O(n log n) in host time
    let par_workers = if workers > 1 { workers } else { 3 };
    println!(
        "differential audit: horizontal vs vertical vs vertical/parallel({par_workers}), \
         {rows} rows, 15% delete, 3 B-tree indices + 1 hash index"
    );
    let build = |seed: u64| {
        let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
        let w = TableSpec::tiny(rows)
            .with_seed(seed)
            .build(&mut db)
            .unwrap();
        w.attach_index(&mut db, IndexDef::secondary(0).unique())
            .unwrap();
        w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
        w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
        db.create_hash_index(w.tid, 3).unwrap();
        (db, w)
    };
    let check = |label: &str, report: bd_core::DbResult<bd_core::AuditReport>| match report {
        Ok(report) if report.is_clean() => {
            println!("[{label}] {report}");
        }
        Ok(report) => {
            eprintln!("[{label}] {report}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("[{label}] audit aborted: {e}");
            std::process::exit(1);
        }
    };
    let (mut db_a, w_a) = build(1);
    let (mut db_b, _) = build(1);
    let (mut db_c, _) = build(1);
    let d = w_a.delete_set(0.15, 2);
    strategy::horizontal(&mut db_a, w_a.tid, 0, &d, true).unwrap();
    strategy::vertical_sort_merge(&mut db_b, w_a.tid, 0, &d, 1).unwrap();
    strategy::vertical_sort_merge(&mut db_c, w_a.tid, 0, &d, par_workers).unwrap();
    check(
        "horizontal vs vertical",
        audit_equivalence(&db_a, &db_b, w_a.tid),
    );
    check(
        "vertical serial vs parallel",
        audit_equivalence(&db_b, &db_c, w_a.tid),
    );
}

/// Fault-injection demo: a transient fault ridden out by retry + serial
/// degradation, then a crash-at-every-I/O campaign smoke for both drivers.
fn faults(rows: usize, workers: usize) {
    use bd_core::prelude::*;
    use bd_core::{audit_equivalence, IndexDef};
    use bd_storage::{FaultPlan, FaultSpec};
    use bd_wal::{crash_at_every_io, torn_write_at_every_io};
    use bd_workload::TableSpec;

    let rows = rows.min(5_000); // the campaign rebuilds the db per crash point
    let par_workers = if workers > 1 { workers } else { 3 };
    let build = |mem: usize| {
        let mut db = Database::new(DatabaseConfig::with_total_memory(mem));
        let w = TableSpec::tiny(rows).build(&mut db).unwrap();
        w.attach_index(&mut db, IndexDef::secondary(0).unique())
            .unwrap();
        w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
        w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
        (db, w)
    };

    // Part 1: a transient fault under one fan-out arm. The buffer pool's
    // bounded retry is outlasted (6 consecutive failures vs. 4 attempts
    // per pin), so the arm dies, siblings are cancelled, and the executor
    // re-runs the group serially — the statement must still commit with a
    // state bit-identical to the fault-free run.
    println!(
        "fault demo: transient fault under a fan-out arm, {rows} rows, \
         33% delete, {par_workers} workers"
    );
    let (mut db_ref, w) = build(4 << 20);
    let (mut db_faulty, _) = build(4 << 20);
    let d = w.delete_set(0.33, 7);
    let clean = strategy::vertical_sort_merge(&mut db_ref, w.tid, 0, &d, par_workers)
        .expect("fault-free run");
    let bad = db_faulty
        .table(w.tid)
        .unwrap()
        .index_on(1)
        .unwrap()
        .tree
        .first_leaf()
        .unwrap();
    db_faulty.pool().with_disk(|disk| {
        disk.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(bad).transient(6)))
    });
    match strategy::vertical_sort_merge(&mut db_faulty, w.tid, 0, &d, par_workers) {
        Ok(out) => {
            println!("{}", out.report.summary());
            print!("{}", out.report.phase_breakdown());
            let eq = audit_equivalence(&db_ref, &db_faulty, w.tid).unwrap();
            if !eq.is_clean() || out.deleted != clean.deleted {
                eprintln!("[faults] degraded run diverged from fault-free run: {eq}");
                std::process::exit(1);
            }
            println!(
                "[faults] degraded run bit-identical to fault-free run \
                 ({} retries, {} degradation event(s))\n",
                out.report.io.retries,
                out.report.events.len()
            );
        }
        Err(e) => {
            eprintln!("[faults] transient fault aborted the statement: {e}");
            std::process::exit(1);
        }
    }

    // Part 2: crash-at-every-I/O campaign smoke over the WAL drivers. The
    // tiny pool (24 frames) keeps the working set uncached so the sweep
    // covers real read and write accesses, not just the final flush.
    let campaign_rows = rows.min(1_500);
    let d: Vec<u64> = {
        let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
        let w = TableSpec::tiny(campaign_rows).build(&mut db).unwrap();
        w.a_values.iter().copied().step_by(3).collect()
    };
    // The campaign table carries a B-tree per attribute *and* a hash index
    // on attr 3, so the sweep also covers the hash phase (it runs last).
    let campaign_build = || {
        let mut db = Database::new(DatabaseConfig::with_total_memory(96 << 10));
        let w = TableSpec::tiny(campaign_rows).build(&mut db).unwrap();
        w.attach_index(&mut db, IndexDef::secondary(0).unique())
            .unwrap();
        w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
        w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
        db.create_hash_index(w.tid, 3).unwrap();
        (db, w.tid)
    };
    for (label, workers) in [("serial", 1usize), ("parallel", par_workers)] {
        let started = std::time::Instant::now();
        match crash_at_every_io(campaign_build, 0, &d, workers, Some(25)) {
            Ok(report) => println!(
                "[faults] {label} campaign smoke: {} crash points recovered \
                 ({} fault-free accesses, {} rows deleted) in {:.1}s wall",
                report.crash_points,
                report.fault_free_accesses,
                report.deleted,
                started.elapsed().as_secs_f32()
            ),
            Err(e) => {
                eprintln!("[faults] {label} campaign failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Part 3: torn-write campaign smoke — the write-side mirror of the
    // crash sweep. Each position tears one write (half the page persists
    // under a checksum recording the intended image); media recovery heals
    // the page, rebuilds the owning structure from the heap, and must
    // converge to the fault-free state. Bounded for smoke: the sweep stops
    // after 10 surfaced tears.
    for (label, workers) in [("serial", 1usize), ("parallel", par_workers)] {
        let started = std::time::Instant::now();
        match torn_write_at_every_io(campaign_build, 0, &d, workers, 0, Some(10)) {
            Ok(report) => println!(
                "[faults] {label} torn-write smoke: {} tears media-recovered, \
                 {} silent, {} rows deleted in {:.1}s wall",
                report.torn_points,
                report.silent_points,
                report.deleted,
                started.elapsed().as_secs_f32()
            ),
            Err(e) => {
                eprintln!("[faults] {label} torn-write campaign failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Part 4: replica ride-out. Per-page mirror copies absorb a torn write
    // without media recovery — the retry policy repairs the torn primary
    // from its intact second copy. Every mirror write is charged honestly
    // as `DiskStats::replica_writes` (the replica lives on its own media).
    {
        use bd_storage::StructureId;
        use bd_wal::{run_bulk_delete, CrashInjector, LogManager};
        let (mut db, w) = build(4 << 20);
        let d = w.delete_set(0.33, 7);
        db.pool().flush_all().unwrap();
        db.pool().with_disk(|disk| disk.enable_replicas());
        // Tear the first write to a live page of the B-tree on attr 1.
        let victim = db
            .pool()
            .with_disk(|disk| disk.catalog().pages_of(StructureId::Index(1))[0]);
        db.pool().with_disk(|disk| {
            disk.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_page(victim).torn()))
        });
        let log = LogManager::new();
        let deleted = run_bulk_delete(&mut db, w.tid, 0, &d, &log, CrashInjector::none())
            .expect("replica ride-out run");
        let fired = db.pool().with_disk(|disk| disk.fault_plan_fired());
        db.pool().crash();
        db.pool().with_disk(|disk| disk.clear_fault_plan());
        db.check_consistency(w.tid).unwrap();
        let scrub = db.pool().with_disk(|disk| disk.corrupt_pages());
        let stats = db.pool().with_disk(|disk| disk.stats());
        if fired == 0 || !scrub.is_empty() {
            eprintln!(
                "[faults] replica ride-out failed: fired={fired}, \
                 {} pages still corrupt",
                scrub.len()
            );
            std::process::exit(1);
        }
        println!(
            "[faults] replica ride-out: {deleted} rows deleted through a torn \
             write, scrub clean after restart; cost model charged {} primary \
             page writes + {} mirror writes (replica_writes), {} repair \
             retries",
            stats.pages_written, stats.replica_writes, stats.retries
        );
    }
}

/// `--erase`: the retention-window erasure sweep over the warehouse
/// example, plus a bounded crash/torn sample of the campaign fault sweep.
fn erase(rows: usize, workers: usize, bench_json: Option<&str>) {
    use bd_bench::erase::{crash_sample, erase_experiment};

    println!(
        "retention-window erasure: plain cascade vs durable erasure \
         campaign over the sliding-window warehouse, {rows} sales\n"
    );
    let started = std::time::Instant::now();
    let report = match erase_experiment(rows, workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("erase sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.render());
    println!("[every campaign proof clean: zero erased-key residue on any surface]");
    eprintln!(
        "[erase finished in {:.1}s wall]",
        started.elapsed().as_secs_f32()
    );

    // Recovery smoke: a few crash points and torn writes over the whole
    // campaign of a small warehouse; every sampled point must recover and
    // re-prove the erasure.
    match crash_sample(4, workers) {
        Ok((crash, torn)) => println!(
            "[fault sample: {} crash points recovered; {} torn writes \
             recovered + {} silent; {}-step cascade, proof clean at every \
             point]",
            crash.recovered_points, torn.recovered_points, torn.silent_points, crash.steps
        ),
        Err(e) => {
            eprintln!("campaign fault sample failed: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = bench_json {
        let mut snap = BenchSnapshot::new("repro erase", rows, workers);
        snap.points.extend(report.points);
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("failed to write bench snapshot `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("[bench snapshot: {} points -> {path}]", snap.points.len());
    }
}

/// `--maintain`: the steady-state space sweep — a sliding-window workload
/// with and without the maintenance daemon, judged against a fresh bulk
/// load of the same live rows. Exits non-zero if the daemon fails to hold
/// the footprint (or no leak shows up without it).
fn maintain(rows: usize, bench_json: Option<&str>) {
    use bd_bench::maintain::{maintain_experiment, ROUNDS};

    println!(
        "steady-state space: sliding window over {rows} rows ({ROUNDS} rounds \
         of delete-oldest-quarter + refill), daemon on vs off vs fresh load\n"
    );
    let started = std::time::Instant::now();
    let summary = match maintain_experiment(rows) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("maintain sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", summary.report.render());
    match summary.check() {
        Ok(()) => println!("{}\n[steady state held]", summary.verdict()),
        Err(e) => {
            eprintln!("{}", summary.verdict());
            eprintln!("maintain sweep verdict failed: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "[maintain finished in {:.1}s wall]",
        started.elapsed().as_secs_f32()
    );

    if let Some(path) = bench_json {
        let mut snap = BenchSnapshot::new(
            &format!(
                "repro maintain (pages in use/file: on {}/{}, off {}/{}, \
                 fresh {}/{}, {} reclaimed)",
                summary.on.in_use,
                summary.on.file,
                summary.off.in_use,
                summary.off.file,
                summary.fresh.in_use,
                summary.fresh.file,
                summary.reclaimed
            ),
            rows,
            1,
        );
        snap.points.extend(summary.report.points);
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("failed to write bench snapshot `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("[bench snapshot: {} points -> {path}]", snap.points.len());
    }
}

/// `--lsm`: the engine comparison — B-tree bulk delete and drop&create vs
/// the delete-aware LSM engine's deferred (tombstone) and total (purged)
/// cost, every LSM cell differentially audited against its B-tree twin.
fn lsm(rows: usize, workers: usize, bench_json: Option<&str>) {
    use bd_bench::lsm::lsm_experiment;

    println!(
        "engine comparison: B-tree vertical bulk delete vs drop&create vs \
         delete-aware LSM (tombstone write and forced purge), {rows} rows; \
         every LSM cell audit-equivalent to its B-tree twin\n"
    );
    let started = std::time::Instant::now();
    let report = match lsm_experiment(rows, workers) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lsm experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.render());
    println!("[every LSM cell audit-equivalent to its B-tree twin; page catalog clean]");
    eprintln!(
        "[lsm finished in {:.1}s wall]",
        started.elapsed().as_secs_f32()
    );

    if let Some(path) = bench_json {
        let mut snap = BenchSnapshot::new("repro lsm", rows, workers);
        snap.points.extend(report.points);
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("failed to write bench snapshot `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("[bench snapshot: {} points -> {path}]", snap.points.len());
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: repro [fig1|fig7|fig8|table1|fig9|fig10|all]... [--rows N] \
         [--parallel N] [--phases] [--audit] [--faults] [--live] [--erase] \
         [--maintain] [--lsm] [--bench-json PATH] [--check-bench PATH]"
    );
    std::process::exit(2);
}
