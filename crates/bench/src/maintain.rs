//! The steady-state space experiment: does the maintenance daemon stop
//! the space leak?
//!
//! A sliding-window workload (delete the oldest quarter of the keys, bulk
//! the same number of fresh rows back in, repeat) is run twice from the
//! same build — once with [`Maintainer::run_cycle`] after every round
//! ("daemon on") and once without ("daemon off"). Without recycling,
//! every freed index page is stranded: fresh inserts extend the file and
//! the disk footprint grows without bound even though the live row count
//! never changes. With the daemon, packed leaves and recycled pages feed
//! the next round's allocations and the footprint plateaus.
//!
//! The verdict compares three databases at the end of the sweep:
//!
//! * **daemon on** — in-use pages must land within 10% of **fresh**, a
//!   database bulk-loaded from scratch with exactly the same live rows
//!   (the paper's `drop & create` end state, the densest layout we know
//!   how to build);
//! * **daemon off** — its file must be strictly larger than the daemon's,
//!   or there was no leak to stop.
//!
//! Both arms are audited (`check_consistency` + `audit_catalog`) before
//! any number is reported.

use bd_core::{
    audit_catalog, strategy, Database, DatabaseConfig, DbError, DbResult, IndexDef, Maintainer,
    MaintenanceConfig, RunReport, TableId, Tuple,
};

use bd_btree::{Key, ReorgPolicy};
use bd_workload::TableSpec;

use crate::snapshot::BenchPoint;
use crate::{mem_bytes, ExperimentReport};

/// Sliding-window rounds; each deletes `rows / ROUNDS` keys and inserts
/// as many fresh ones, so the sweep turns over the whole table once.
pub const ROUNDS: usize = 4;

/// Page accounting of one database at a point in time.
#[derive(Debug, Clone, Copy)]
pub struct SpaceUse {
    /// Pages the catalog holds an owner for (heap + index + hash).
    pub in_use: usize,
    /// Pages the backing file spans (the allocation frontier — what the
    /// leak grows).
    pub file: usize,
}

fn space(db: &Database) -> SpaceUse {
    let cat = db.pool().catalog();
    SpaceUse {
        in_use: cat.len() - cat.n_free(),
        file: db.pool().with_disk(|d| d.num_pages()),
    }
}

/// Everything the sweep measured beyond the rendered minutes table.
pub struct MaintainSummary {
    /// The per-round cost table (`daemon off` / `daemon on` /
    /// `maintenance` series) plus its [`BenchPoint`]s.
    pub report: ExperimentReport,
    /// End-state pages with the daemon.
    pub on: SpaceUse,
    /// End-state pages without it.
    pub off: SpaceUse,
    /// Pages of a fresh bulk load of the same live rows.
    pub fresh: SpaceUse,
    /// Pages the daemon zeroed and returned to the allocator.
    pub reclaimed: usize,
    /// Full daemon cycles the sweep ran.
    pub cycles: usize,
}

impl MaintainSummary {
    /// The steady-state verdict the sweep exists to prove. `Err` carries
    /// the failed comparison, numbers included.
    pub fn check(&self) -> Result<(), String> {
        if self.reclaimed == 0 {
            return Err("the daemon reclaimed no pages at all".into());
        }
        if self.off.file <= self.on.file {
            return Err(format!(
                "no leak demonstrated: daemon-off file {} pages <= daemon-on {}",
                self.off.file, self.on.file
            ));
        }
        let budget = self.fresh.in_use + self.fresh.in_use / 10;
        if self.on.in_use > budget {
            return Err(format!(
                "daemon-on keeps {} pages in use; a fresh bulk load of the \
                 same rows needs {} (budget {budget}, +10%)",
                self.on.in_use, self.fresh.in_use
            ));
        }
        Ok(())
    }

    /// One-paragraph rendering of the space verdict.
    pub fn verdict(&self) -> String {
        format!(
            "space after {} rounds / {} daemon cycles:\n\
             \x20 daemon on   {:>6} pages in use, {:>6} in file ({} reclaimed)\n\
             \x20 daemon off  {:>6} pages in use, {:>6} in file\n\
             \x20 fresh load  {:>6} pages in use, {:>6} in file\n\
             daemon-on in-use is within 10% of a fresh bulk load; \
             daemon-off file is {} pages larger than daemon-on",
            ROUNDS,
            self.cycles,
            self.on.in_use,
            self.on.file,
            self.reclaimed,
            self.off.in_use,
            self.off.file,
            self.fresh.in_use,
            self.fresh.file,
            self.off.file - self.on.file,
        )
    }
}

/// One arm of the sweep: the paper-scaled table with the usual vertical
/// index set (unique probe on A, plain B-trees on B and C).
fn build_arm(rows: usize, seed: u64) -> DbResult<(Database, TableId)> {
    let mut db = Database::new(DatabaseConfig::with_total_memory(mem_bytes(5.0, rows)));
    let w = TableSpec::paper_scaled()
        .with_rows(rows)
        .with_seed(seed)
        .build(&mut db)?;
    w.attach_index(&mut db, IndexDef::secondary(0).unique())?;
    w.attach_index(&mut db, IndexDef::secondary(1))?;
    w.attach_index(&mut db, IndexDef::secondary(2))?;
    Ok((db, w.tid))
}

/// A fresh row for slot `i` of the insert stream. Generated attribute
/// values are multiples of 10 in `0..rows*10`, so `(rows + i) * 10` can
/// never collide with a live key on any attribute.
fn fresh_row(rows: usize, i: usize, n_attrs: usize) -> Tuple {
    let base = ((rows + i) as Key) * 10;
    Tuple::new((0..n_attrs as Key).map(|a| base + a * 2).collect())
}

/// Account one maintenance slice's I/O the way [`bd_core::measure`] does
/// for a strategy (cold cache, reset counters, flush at the end).
fn measured_cycle(db: &mut Database, m: &mut Maintainer, label: &str) -> DbResult<RunReport> {
    let pool = db.pool().clone();
    pool.clear_cache().map_err(DbError::from)?;
    pool.reset_stats();
    let before = pool.disk_stats();
    m.run_cycle(db)?;
    pool.flush_all().map_err(DbError::from)?;
    Ok(RunReport {
        strategy: label.to_string(),
        deleted: 0,
        io: pool.disk_stats().since(&before),
        phases: Vec::new(),
        workers: 1,
        pool: pool.pool_stats(),
        events: Vec::new(),
        foreground: None,
    })
}

/// Bulk-load a brand-new database holding exactly `db`'s live rows — the
/// densest end state we can name, used as the steady-state yardstick.
fn fresh_copy(db: &Database, tid: TableId, rows: usize) -> DbResult<Database> {
    let table = db.table(tid)?;
    let schema = table.schema;
    let live: Vec<Tuple> = table
        .heap
        .dump()?
        .into_iter()
        .map(|(_, bytes)| {
            Tuple::new(
                (0..schema.n_attrs)
                    .map(|a| schema.attr_of(&bytes, a))
                    .collect(),
            )
        })
        .collect();
    let mut fresh = Database::new(DatabaseConfig::with_total_memory(mem_bytes(5.0, rows)));
    let ftid = fresh.create_table("R_fresh", schema);
    for t in &live {
        fresh.insert(ftid, t)?;
    }
    fresh.create_index(ftid, IndexDef::secondary(0).unique())?;
    fresh.create_index(ftid, IndexDef::secondary(1))?;
    fresh.create_index(ftid, IndexDef::secondary(2))?;
    fresh.pool().flush_all().map_err(DbError::from)?;
    Ok(fresh)
}

/// Run the sliding-window sweep at `rows` scale and return the verdict.
///
/// The caller decides what to do with a failed [`MaintainSummary::check`];
/// the sweep itself only errors on real execution or audit failures.
pub fn maintain_experiment(rows: usize) -> Result<MaintainSummary, String> {
    maintain_sweep(rows).map_err(|e| e.to_string())
}

fn maintain_sweep(rows: usize) -> DbResult<MaintainSummary> {
    let (mut db_on, tid) = build_arm(rows, 42)?;
    let (mut db_off, _) = build_arm(rows, 42)?;
    let n_attrs = db_on.table(tid)?.schema.n_attrs;

    // Delete in key order: each round evicts the current oldest window,
    // exactly the §1 sliding-window warehouse shape.
    let mut victims: Vec<Key> = TableSpec::paper_scaled()
        .with_rows(rows)
        .generate_rows()
        .iter()
        .map(|r| r.attr(0))
        .collect();
    victims.sort_unstable();
    let window = rows / ROUNDS;

    let mut maintainer = Maintainer::new(MaintenanceConfig::default());
    let mut table_rows = Vec::new();
    let mut points = Vec::new();
    for round in 0..ROUNDS {
        let d = &victims[round * window..(round + 1) * window];
        let x = format!("round {}", round + 1);

        let mut off = strategy::vertical_auto(&mut db_off, tid, 0, d, ReorgPolicy::FreeAtEmpty, 1)?
            .1
            .report;
        off.strategy = "daemon off".to_string();
        let mut on = strategy::vertical_auto(&mut db_on, tid, 0, d, ReorgPolicy::FreeAtEmpty, 1)?
            .1
            .report;
        on.strategy = "daemon on".to_string();
        let maint = measured_cycle(&mut db_on, &mut maintainer, "maintenance")?;

        // Refill both arms so the live row count never changes; the
        // daemon's arm must satisfy these inserts from recycled pages.
        for i in 0..window {
            let t = fresh_row(rows, round * window + i, n_attrs);
            db_on.insert(tid, &t)?;
            db_off.insert(tid, &t)?;
        }

        table_rows.push((
            x.clone(),
            vec![off.sim_minutes(), on.sim_minutes(), maint.sim_minutes()],
        ));
        for r in [&off, &on, &maint] {
            points.push(BenchPoint::from_report("maintain", &x, r));
        }
    }

    // Settling cycles: the last round's inserts have not seen the daemon
    // yet, and packing may need a second pass to converge.
    let settle_a = measured_cycle(&mut db_on, &mut maintainer, "maintenance")?;
    let settle_b = measured_cycle(&mut db_on, &mut maintainer, "maintenance")?;
    let settle = settle_a.sim_minutes() + settle_b.sim_minutes();
    table_rows.push(("settle".to_string(), vec![0.0, 0.0, settle]));
    points.push(BenchPoint::from_report("maintain", "settle", &settle_a));
    points.push(BenchPoint::from_report("maintain", "settle", &settle_b));

    for db in [&db_on, &db_off] {
        db.check_consistency(tid)?;
        let cat = audit_catalog(db, tid)?;
        assert!(
            cat.is_clean(),
            "maintain sweep left a dirty catalog: {:?}",
            cat.findings
        );
    }

    let fresh_db = fresh_copy(&db_on, tid, rows)?;
    db_on.pool().flush_all().map_err(DbError::from)?;
    db_off.pool().flush_all().map_err(DbError::from)?;

    let summary = MaintainSummary {
        on: space(&db_on),
        off: space(&db_off),
        fresh: space(&fresh_db),
        reclaimed: maintainer.report().pages_reclaimed,
        cycles: maintainer.report().cycles as usize,
        report: ExperimentReport {
            id: "maintain",
            title: format!(
                "steady-state space under a sliding window: {rows} rows, \
                 {ROUNDS} rounds of delete-oldest-quarter + refill"
            ),
            x_label: "window round",
            series: vec!["daemon off", "daemon on", "maintenance"],
            rows: table_rows,
            notes: "expected: both delete arms cost the same (the daemon runs \
                    after, not during); the maintenance column is the upkeep \
                    price; the space verdict below the table is the point"
                .into(),
            points,
        },
    };
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded end-to-end sweep: the daemon arm plateaus within 10% of
    /// a fresh bulk load while the unmaintained arm leaks.
    #[test]
    fn sliding_window_sweep_reaches_steady_state() {
        let summary = maintain_experiment(8_000).expect("sweep");
        summary.check().expect("steady-state verdict");
        assert_eq!(summary.report.rows.len(), ROUNDS + 1);
        assert_eq!(summary.report.points.len(), 3 * ROUNDS + 2);
        assert!(summary.cycles >= ROUNDS);
        // Upkeep is paid I/O: every measured cycle moved real pages.
        for p in &summary.report.points {
            if p.strategy == "maintenance" {
                assert!(p.sim_minutes > 0.0, "{} cycle cost nothing", p.x);
            }
        }
    }
}
