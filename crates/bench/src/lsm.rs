//! The engine experiment: the paper's delete design space replayed over
//! log-structured storage.
//!
//! Three arms, same rows, same delete sets, same (scaled) memory budget:
//!
//! * **bulk delete** — the B-tree engine running the paper's vertical
//!   sort/merge plan (the winner of the original evaluation);
//! * **drop&create** — rebuild-from-survivors on the B-tree engine, the
//!   paper's baseline for very large delete fractions;
//! * **lsm tombstone** — the delete-aware LSM engine: the delete writes
//!   point tombstones (after a membership probe) plus whatever flushes
//!   and FADE compactions the write triggers. This is the *deferred*
//!   cost: some tombstones still sit in the tree when it returns;
//! * **lsm purged** — the same LSM delete plus [`LsmTable::purge_all`]:
//!   compaction forced until every tombstone is physically dropped. This
//!   is the LSM's *total* bill, the number comparable to the B-tree arms
//!   (which leave no deferred work behind).
//!
//! Every LSM arm is differentially audited against its B-tree twin with
//! [`audit_engine_equivalence`] before its numbers are accepted — a
//! diverging engine's timings are meaningless.

use bd_core::engine::{audit_engine_equivalence, BtreeEngine, TableEngine};
use bd_core::report::measure;
use bd_core::{DbError, DbResult, RunReport};
use bd_lsm::{LsmConfig, LsmTable};
use bd_workload::TableSpec;

use crate::snapshot::BenchPoint;
use crate::{mem_bytes, ExperimentReport, PointConfig, StrategyKind};

/// LSM knobs for a bench point: the memtable plays the role the paper's
/// sort/hash workspace plays for the B-tree (1/4 of the memory budget),
/// everything else at defaults.
pub fn lsm_config(total_memory: usize, record_len: usize) -> LsmConfig {
    LsmConfig {
        memtable_capacity: (total_memory / 4 / (record_len + 9)).max(64),
        ..LsmConfig::default()
    }
}

/// One measured LSM cell: the tombstone-write report, the purge report,
/// and the engine shape afterwards.
pub struct LsmCell {
    /// The deferred-cost arm (tombstones + triggered compactions).
    pub tombstone: RunReport,
    /// The purge continuation (forced compaction to zero tombstones).
    pub purge: RunReport,
    /// Compactions the whole cell ran.
    pub compactions: usize,
}

/// Run one delete fraction through the LSM engine, differentially audited
/// against a B-tree engine fed the identical workload.
pub fn lsm_point(cfg: &PointConfig, fraction: f64) -> DbResult<LsmCell> {
    let spec = TableSpec::paper_scaled()
        .with_rows(cfg.rows)
        .with_seed(cfg.seed);
    let rows = spec.generate_rows();
    let total_memory = mem_bytes(cfg.paper_mem_mb, cfg.rows);

    // The B-tree twin reuses the normal point build (heap + unique index).
    let (db, w) = cfg.build()?;
    let d = w.delete_set(fraction, cfg.seed.wrapping_add(1));
    let mut btree = BtreeEngine::from_db(db, w.tid, cfg.workers.max(1));
    btree.bulk_delete(&d)?;

    let mut lsm = LsmTable::new(
        spec.schema(),
        total_memory,
        lsm_config(total_memory, spec.schema().record_len),
    );
    lsm.bulk_load(&rows)?;
    let mut tombstone = lsm.bulk_delete(&d)?;

    let pool = lsm.pool().clone();
    let (_, mut purge) =
        measure(&pool, "lsm purged", || lsm.purge_all()).map_err(DbError::Storage)?;
    purge.deleted = tombstone.deleted;
    // The purge arm's bill includes the tombstone write that preceded it.
    purge.io.merge(&tombstone.io);

    let eq = audit_engine_equivalence(&mut btree, &mut lsm)?;
    if !eq.is_clean() {
        return Err(DbError::Audit(format!(
            "lsm diverged from btree at {fraction}: {}",
            eq.render()
        )));
    }
    let pages = lsm.audit_pages();
    if !pages.is_clean() {
        return Err(DbError::Audit(format!(
            "lsm page catalog dirty at {fraction}: {}",
            pages.render()
        )));
    }

    tombstone.workers = 1;
    let stats = lsm.lsm_stats();
    Ok(LsmCell {
        tombstone,
        purge,
        compactions: stats.compactions,
    })
}

/// The three-way engine comparison over delete fractions (fig7's sweep
/// replayed through the engine seam).
pub fn lsm_experiment(rows: usize, workers: usize) -> DbResult<ExperimentReport> {
    let cfg = PointConfig {
        workers,
        ..PointConfig::base(rows)
    };
    let fractions = [0.05, 0.10, 0.15, 0.20];
    let mut table_rows = Vec::new();
    let mut cells = Vec::new();
    for f in fractions {
        let x = format!("{:.0}%", f * 100.0);
        let bulk = crate::run_point(&cfg, StrategyKind::Bulk, f)?;
        let drop = crate::run_point(&cfg, StrategyKind::DropCreate, f)?;
        let lsm = lsm_point(&cfg, f)?;
        table_rows.push((
            x.clone(),
            vec![
                bulk.sim_minutes(),
                drop.sim_minutes(),
                lsm.tombstone.sim_minutes(),
                lsm.purge.sim_minutes(),
            ],
        ));
        cells.push(BenchPoint::from_report("lsm", &x, &bulk));
        cells.push(BenchPoint::from_report("lsm", &x, &drop));
        cells.push(BenchPoint::from_report("lsm", &x, &lsm.tombstone));
        cells.push(BenchPoint::from_report("lsm", &x, &lsm.purge));
    }
    Ok(ExperimentReport {
        id: "lsm",
        title: format!(
            "engine comparison: {rows} rows, B-tree vertical vs drop&create \
             vs delete-aware LSM, 5 MB memory"
        ),
        x_label: "deleted tuples",
        series: vec!["bulk delete", "drop&create", "lsm tombstone", "lsm purged"],
        rows: table_rows,
        notes: "the LSM arms grow linearly with the fraction (each tombstone \
                pays a membership probe before it is written, plus the \
                flushes/compactions the writes trigger); the B-tree vertical \
                plan amortises its probes through the sort/merge and stays \
                cheapest; purging every remaining tombstone adds only the \
                residual compactions on top of the tombstone arm; every LSM \
                cell is audit-equivalent to its B-tree twin"
            .into(),
        points: cells,
    })
}
