//! One runner per table/figure of the paper's evaluation (§4) plus the
//! motivation figure (§1).

use crate::snapshot::BenchPoint;
use crate::{run_point, ExperimentReport, PointConfig, StrategyKind};
use bd_core::DbResult;

fn pct(f: f64) -> String {
    format!("{:.0}%", f * 100.0)
}

fn sweep(
    id: &'static str,
    title: String,
    x_label: &'static str,
    strategies: &[StrategyKind],
    points: &[(String, PointConfig, f64)],
    notes: String,
) -> DbResult<ExperimentReport> {
    // When the points run with workers, every parallelizable strategy gets
    // a second column: its critical-path clock (concurrent arms overlap).
    let workers = points.first().map_or(1, |p| p.1.workers.max(1));
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    for (x, cfg, fraction) in points {
        let mut vals = Vec::new();
        for s in strategies {
            let report = run_point(cfg, *s, *fraction)?;
            vals.push(report.sim_minutes());
            if workers > 1 && s.parallelizable() {
                vals.push(report.critical_path_minutes());
            }
            cells.push(BenchPoint::from_report(id, x, &report));
        }
        rows.push((x.clone(), vals));
    }
    let mut series = Vec::new();
    for s in strategies {
        series.push(s.label());
        if workers > 1 && s.parallelizable() {
            series.push(s.crit_label());
        }
    }
    Ok(ExperimentReport {
        id,
        title,
        x_label,
        series,
        rows,
        notes,
        points: cells,
    })
}

/// Figure 1 (introduction): commercial-RDBMS-style bulk deletes — the
/// traditional plan vs. drop & create on a 3-index table, varying the
/// delete fraction (1/5/10/15 %).
pub fn fig1(rows: usize, workers: usize) -> DbResult<ExperimentReport> {
    let cfg = PointConfig {
        n_secondary: 2,
        workers,
        ..PointConfig::base(rows)
    };
    let strategies = [StrategyKind::SortedTrad, StrategyKind::DropCreate];
    let points: Vec<(String, PointConfig, f64)> = [0.01, 0.05, 0.10, 0.15]
        .iter()
        .map(|&f| (pct(f), cfg, f))
        .collect();
    sweep(
        "fig1",
        format!("bulk deletes, traditional RDBMS style: {rows} rows, 3 indices"),
        "deleted tuples",
        &strategies,
        &points,
        "expected: traditional grows sharply with delete %; drop&create is \
         ~flat and wins beyond roughly 5%"
            .into(),
    )
}

/// Figure 7 (Experiment 1): vary the number of deleted records; 1
/// unclustered index, 5 MB (scaled) memory.
pub fn fig7(rows: usize, workers: usize) -> DbResult<ExperimentReport> {
    let cfg = PointConfig {
        workers,
        ..PointConfig::base(rows)
    };
    let strategies = [
        StrategyKind::SortedTrad,
        StrategyKind::NotSortedTrad,
        StrategyKind::Bulk,
    ];
    let points: Vec<(String, PointConfig, f64)> = [0.05, 0.10, 0.15, 0.20]
        .iter()
        .map(|&f| (pct(f), cfg, f))
        .collect();
    sweep(
        "fig7",
        format!("vary deletes: {rows} rows, 1 unclustered index, 5 MB memory"),
        "deleted tuples",
        &strategies,
        &points,
        "expected: bulk << sorted/trad << not-sorted/trad; gap grows with \
         delete % (~1 order of magnitude at 20%)"
            .into(),
    )
}

/// Figure 8 (Experiment 2): vary the number of indices (1/2/3); 15 %
/// deletes, 5 MB (scaled) memory.
pub fn fig8(rows: usize, workers: usize) -> DbResult<ExperimentReport> {
    let strategies = [
        StrategyKind::SortedTrad,
        StrategyKind::NotSortedTrad,
        StrategyKind::DropCreateInsertRebuild,
        StrategyKind::Bulk,
    ];
    let points: Vec<(String, PointConfig, f64)> = (1..=3usize)
        .map(|n| {
            (
                format!("{n}"),
                PointConfig {
                    n_secondary: n - 1,
                    workers,
                    ..PointConfig::base(rows)
                },
                0.15,
            )
        })
        .collect();
    sweep(
        "fig8",
        format!("vary indices: {rows} rows, unclustered, 5 MB memory, 15% deletes"),
        "number of indexes",
        &strategies,
        &points,
        "expected: bulk's advantage grows with index count; drop/create \
         (record-at-a-time rebuild, as in the paper's prototype) is the \
         worst series"
            .into(),
    )
}

/// Table 1 (Experiment 3): vary the index height via fanout; 1 unclustered
/// index, 15 % deletes, 5 MB (scaled) memory.
///
/// The paper shrinks keys-per-node (512 → 100) to grow the height from 3 to
/// 4 at 1 M rows; with 4 KiB pages we use the default fanout for the short
/// tree and a reduced fanout for the tall one, and report the measured
/// heights.
pub fn table1(rows: usize, workers: usize) -> DbResult<ExperimentReport> {
    let strategies = [
        StrategyKind::BulkPresorted,
        StrategyKind::Bulk,
        StrategyKind::SortedTrad,
        StrategyKind::NotSortedTrad,
    ];
    // Measure the heights actually obtained so the row labels are honest.
    let mut points = Vec::new();
    for fanout in [None, Some(32)] {
        let cfg = PointConfig {
            fanout,
            workers,
            ..PointConfig::base(rows)
        };
        let (db, w) = cfg.build()?;
        let height = db.table(w.tid)?.index_on(0).unwrap().tree.height();
        points.push((format!("index height {height}"), cfg, 0.15));
    }
    sweep(
        "table1",
        format!("vary index height: {rows} rows, 1 unclustered index, 15% deletes"),
        "configuration",
        &strategies,
        &points,
        "expected: bulk-delete times are nearly height-independent (and \
         identical with pre-sorted D); traditional times grow sharply with \
         height"
            .into(),
    )
}

/// Figure 9 (Experiment 4): vary available memory (2/6/10 MB, scaled);
/// 1 unclustered index, 15 % deletes.
pub fn fig9(rows: usize, workers: usize) -> DbResult<ExperimentReport> {
    let strategies = [
        StrategyKind::SortedTrad,
        StrategyKind::NotSortedTrad,
        StrategyKind::Bulk,
    ];
    let points: Vec<(String, PointConfig, f64)> = [2.0, 6.0, 10.0]
        .iter()
        .map(|&mb| {
            (
                format!("{mb:.0} MB"),
                PointConfig {
                    paper_mem_mb: mb,
                    workers,
                    ..PointConfig::base(rows)
                },
                0.15,
            )
        })
        .collect();
    sweep(
        "fig9",
        format!("vary memory: {rows} rows, 1 unclustered index, 15% deletes"),
        "main memory",
        &strategies,
        &points,
        "expected: bulk is flat from the smallest budget up; not-sorted/trad \
         depends strongly on memory (caching); sorted/trad in between"
            .into(),
    )
}

/// Figure 10 (Experiment 5): clustered index on A (table sorted by A);
/// vary delete fraction; plus the unclustered sorted/trad baseline.
pub fn fig10(rows: usize, workers: usize) -> DbResult<ExperimentReport> {
    let clustered = PointConfig {
        cluster_a: true,
        workers,
        ..PointConfig::base(rows)
    };
    let unclustered = PointConfig {
        workers,
        ..PointConfig::base(rows)
    };
    let fractions = [0.06, 0.10, 0.15, 0.20];
    let mut rows_out = Vec::new();
    let mut cells = Vec::new();
    for &f in &fractions {
        let sorted_clust = run_point(&clustered, StrategyKind::SortedTrad, f)?;
        let sorted_unclust = run_point(&unclustered, StrategyKind::SortedTrad, f)?;
        let notsorted_clust = run_point(&clustered, StrategyKind::NotSortedTrad, f)?;
        let bulk = run_point(&clustered, StrategyKind::Bulk, f)?;
        let mut vals = vec![
            sorted_clust.sim_minutes(),
            sorted_unclust.sim_minutes(),
            notsorted_clust.sim_minutes(),
            bulk.sim_minutes(),
        ];
        if workers > 1 {
            vals.push(bulk.critical_path_minutes());
        }
        for (label, r) in [
            ("sorted/trad/clust", &sorted_clust),
            ("sorted/trad/unclust", &sorted_unclust),
            ("not sorted/trad/clust", &notsorted_clust),
            ("bulk delete", &bulk),
        ] {
            let mut p = BenchPoint::from_report("fig10", &pct(f), r);
            p.strategy = label.to_string();
            cells.push(p);
        }
        rows_out.push((pct(f), vals));
    }
    let mut series = vec![
        "sorted/trad/clust",
        "sorted/trad/unclust",
        "not sorted/trad/clust",
        "bulk delete",
    ];
    if workers > 1 {
        series.push(StrategyKind::Bulk.crit_label());
    }
    Ok(ExperimentReport {
        id: "fig10",
        title: format!("clustered index: {rows} rows, 1 index, 5 MB memory"),
        x_label: "deleted tuples",
        series,
        rows: rows_out,
        notes: "expected: sorted/trad on a clustered index is the best case \
                for the traditional approach and slightly beats bulk; bulk \
                stays within a small factor; not-sorted/trad remains poor"
            .into(),
        points: cells,
    })
}

/// Every experiment at the given scale, in paper order.
pub fn all(rows: usize, workers: usize) -> DbResult<Vec<ExperimentReport>> {
    Ok(vec![
        fig1(rows, workers)?,
        fig7(rows, workers)?,
        fig8(rows, workers)?,
        table1(rows, workers)?,
        fig9(rows, workers)?,
        fig10(rows, workers)?,
    ])
}
