//! Retention-window erasure over the sliding-window warehouse (§1).
//!
//! The paper's warehouse keeps "a window of, say, all the sales
//! information of the last six months"; each sweep point here erases the
//! oldest `w` months of sales *and their line items* (FK CASCADE) twice:
//!
//! * **cascade** — the plain cascading bulk delete (logical deletion
//!   only, what the paper's executor gives you);
//! * **campaign** — the durable erasure campaign: WAL manifest, resumable
//!   steps, whole-database physical scrub, log redaction, and the
//!   proof-of-deletion verifier, which must come back clean.
//!
//! The gap between the two series is the I/O price of compliance-grade
//! deletion at each retention window.

use bd_btree::{Key, ReorgPolicy};
use bd_core::{
    plan_cascade, run_cascade_step, Database, DatabaseConfig, DbError, ForeignKey, IndexDef,
    RunReport, Schema, TableId, Tuple,
};
use bd_storage::Pacer;
use bd_wal::{
    erasure_crash_at_every_io, erasure_torn_write_at_every_io, run_erasure_campaign,
    ErasureSweepReport, LogManager, WalError,
};

use crate::snapshot::BenchPoint;
use crate::ExperimentReport;

/// Months the warehouse window holds.
pub const WINDOW_MONTHS: u64 = 6;
/// Line items per sale (the CASCADE fan-out).
pub const LINE_ITEMS_PER_SALE: u64 = 2;
/// Months erased per sweep point — the retention windows measured.
pub const ERASED_MONTHS: &[u64] = &[1, 2, 3];

// Every stored value is high-entropy: the proof-of-deletion byte-scans
// whole page images, so small integers (a month number, a row counter)
// would collide with page metadata and slot offsets.
fn sale_id(m: u64, n: u64) -> u64 {
    0x5A1E_0000_0000_0000 | (m << 40) | (n * 0x0101 + 1)
}
fn month_code(m: u64) -> u64 {
    0xE0AA_0000_0000_0000 | (m * 0x0101_0101 + 7)
}
fn product_code(p: u64) -> u64 {
    0xB00C_0000_0000_0000 | ((p % 97) * 0x0101_0101 + 5)
}
fn item_id(m: u64, seq: u64) -> u64 {
    0x17EA_0000_0000_0000 | (m << 40) | (seq * 0x0101 + 1)
}
fn item_amount(m: u64, seq: u64) -> u64 {
    0xA0CE_0000_0000_0000 | (m << 40) | (seq * 0x0101 + 3)
}

/// Build the warehouse: `sales(sale_id, month, product)` with a unique
/// probe index, a month index, and a hash index on product; and
/// `line_items(item_id, sale_id, amount)` CASCADE-referencing sales.
///
/// Returns `(db, sales, line_items)`. Deterministic for a given
/// `(sales_per_month, pool_bytes)` — the fault sweeps rebuild through it.
pub fn build_warehouse(sales_per_month: u64, pool_bytes: usize) -> (Database, TableId, TableId) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(pool_bytes));
    let sales = db.create_table("sales", Schema::new(3, 64));
    db.create_index(sales, IndexDef::secondary(0).unique())
        .unwrap();
    db.create_index(sales, IndexDef::secondary(1)).unwrap();
    db.create_hash_index(sales, 2).unwrap();
    let items = db.create_table("line_items", Schema::new(3, 64));
    db.create_index(items, IndexDef::secondary(0).unique())
        .unwrap();
    db.create_index(items, IndexDef::secondary(1)).unwrap();
    db.add_foreign_key(ForeignKey::cascade("fk_sale_items", sales, 0, items, 1));
    for m in 0..WINDOW_MONTHS {
        for n in 0..sales_per_month {
            let id = sale_id(m, n);
            db.insert(
                sales,
                &Tuple::new(vec![
                    id,
                    month_code(m),
                    product_code(m * sales_per_month + n),
                ]),
            )
            .unwrap();
            for k in 0..LINE_ITEMS_PER_SALE {
                let seq = n * LINE_ITEMS_PER_SALE + k;
                db.insert(
                    items,
                    &Tuple::new(vec![item_id(m, seq), id, item_amount(m, seq)]),
                )
                .unwrap();
            }
        }
    }
    (db, sales, items)
}

/// The sale ids of the oldest `w` months — the roll-out victim set.
pub fn victim_ids(w: u64, sales_per_month: u64) -> Vec<Key> {
    (0..w)
        .flat_map(|m| (0..sales_per_month).map(move |n| sale_id(m, n)))
        .collect()
}

/// Run `body` against a cold cache and account its I/O into a
/// [`RunReport`] (mirrors [`bd_core::measure`], with the WAL error type).
fn measured(
    db: &mut Database,
    strategy: &str,
    workers: usize,
    body: impl FnOnce(&mut Database) -> Result<usize, WalError>,
) -> Result<RunReport, WalError> {
    let pool = db.pool().clone();
    pool.clear_cache().map_err(DbError::from)?;
    pool.reset_stats();
    let before = pool.disk_stats();
    let deleted = body(db)?;
    pool.flush_all().map_err(DbError::from)?;
    let io = pool.disk_stats().since(&before);
    Ok(RunReport {
        strategy: strategy.to_string(),
        deleted,
        io,
        phases: Vec::new(),
        workers,
        pool: pool.pool_stats(),
        events: Vec::new(),
        foreground: None,
    })
}

/// The retention-window sweep: for each erased-months point, the plain
/// cascade and the full erasure campaign over a fresh warehouse.
pub fn erase_experiment(rows: usize, workers: usize) -> Result<ExperimentReport, WalError> {
    let spm = (rows as u64 / WINDOW_MONTHS).max(16);
    let pool_bytes = crate::mem_bytes(5.0, rows.max(1));
    let mut table_rows = Vec::new();
    let mut points = Vec::new();

    for &w in ERASED_MONTHS {
        let d = victim_ids(w, spm);
        let expect = (w * spm * (1 + LINE_ITEMS_PER_SALE)) as usize;
        let x = format!("{w}mo");

        let (mut db, sales, _) = build_warehouse(spm, pool_bytes);
        let plain = measured(&mut db, "cascade", workers, |db| {
            let plan = plan_cascade(db, sales, 0, &d)?;
            let mut n = 0;
            for step in &plan.steps {
                n += run_cascade_step(db, step, ReorgPolicy::FreeAtEmpty, workers)?
                    .deleted
                    .len();
            }
            Ok(n)
        })?;

        let (mut db, sales, _) = build_warehouse(spm, pool_bytes);
        let campaign = measured(&mut db, "campaign", workers, |db| {
            let plan = plan_cascade(db, sales, 0, &d)?;
            let log = LogManager::new();
            let out = run_erasure_campaign(db, &plan, &log, workers, &Pacer::new())?;
            if !out.report.is_clean() {
                return Err(WalError::Divergence {
                    crash_point: 0,
                    details: format!("erasure proof at {w} months: {}", out.report.render()),
                });
            }
            Ok(out.deleted)
        })?;

        for r in [&plain, &campaign] {
            if r.deleted != expect {
                return Err(WalError::Divergence {
                    crash_point: 0,
                    details: format!(
                        "{} at {w} months deleted {} rows, expected {expect}",
                        r.strategy, r.deleted
                    ),
                });
            }
            points.push(BenchPoint::from_report("erase", &x, r));
        }
        table_rows.push((x, vec![plain.sim_minutes(), campaign.sim_minutes()]));
    }

    Ok(ExperimentReport {
        id: "erase",
        title: format!(
            "retention-window erasure: warehouse of {} sales x {WINDOW_MONTHS} months, \
             {LINE_ITEMS_PER_SALE} line items/sale (CASCADE)",
            spm * WINDOW_MONTHS
        ),
        x_label: "months erased",
        series: vec!["cascade", "campaign"],
        rows: table_rows,
        notes: "expected: campaign > cascade at every window (the scrub reads \
                every live page and zeroes the freed ones, and the proof \
                re-scans the database); both grow with months erased"
            .into(),
        points,
    })
}

/// A bounded crash/torn-write sample of the campaign fault sweep on a
/// small warehouse — the CI smoke. Each sampled point recovers through
/// [`bd_wal::recover_campaign`] (or the post-commit heal path) and must
/// re-prove the erasure; any divergence surfaces as an error.
pub fn crash_sample(
    limit: usize,
    workers: usize,
) -> Result<(ErasureSweepReport, ErasureSweepReport), WalError> {
    const SPM: u64 = 12;
    let build = || {
        let (db, sales, _) = build_warehouse(SPM, 32 << 10);
        (db, sales)
    };
    let d = victim_ids(1, SPM);
    let crash = erasure_crash_at_every_io(build, 0, &d, workers, 0, Some(limit))?;
    let torn = erasure_torn_write_at_every_io(build, 0, &d, workers, 0, Some(limit))?;
    Ok((crash, torn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_sweep_proves_every_window() {
        let report = erase_experiment(600, 1).unwrap();
        assert_eq!(report.series, vec!["cascade", "campaign"]);
        assert_eq!(report.rows.len(), ERASED_MONTHS.len());
        assert_eq!(report.points.len(), 2 * ERASED_MONTHS.len());
        // The campaign's physical scrub and proof cost real I/O on top of
        // the cascade at every window.
        for (x, cells) in &report.rows {
            assert!(
                cells[1] > cells[0],
                "{x}: campaign ({}) not above cascade ({})",
                cells[1],
                cells[0]
            );
        }
    }

    #[test]
    fn crash_sample_recovers_and_proves() {
        let (crash, torn) = crash_sample(3, 1).unwrap();
        assert!(crash.recovered_points > 0, "{crash:?}");
        assert_eq!(crash.steps, 2, "sales + line_items cascade");
        assert!(torn.recovered_points + torn.silent_points > 0, "{torn:?}");
    }
}
