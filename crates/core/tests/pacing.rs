//! Strategy-level pause/cancel safety under a [`Pacer`].
//!
//! The pause contract: every checkpoint sits between page visits with no
//! pinned frame, so a paused bulk delete leaves the buffer pool fully
//! unpinned for as long as it stays parked, and resuming completes the
//! statement to the exact state an uninterrupted run produces
//! (`audit_equivalence`). The trip points sweep early, middle, and late
//! checkpoints, so the park lands mid-leaf-walk, mid-heap-pass, and inside
//! the secondary/hash phases across the sweep.

use std::time::Duration;

use bd_core::prelude::*;
use bd_core::strategy;
use bd_storage::Pacer;
use bd_workload::TableSpec;

fn build(n_rows: usize) -> (Database, TableId, Vec<u64>) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(2 << 20));
    let w = TableSpec::tiny(n_rows).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    db.create_hash_index(w.tid, 3).unwrap();
    (db, w.tid, w.a_values)
}

/// Run the reference delete once under a counting pacer to learn how many
/// checkpoints the statement crosses, then re-run it with pauses tripped at
/// several of them: each pause must park with zero pinned frames and each
/// resumed run must be equivalent to the uninterrupted reference.
#[test]
fn paused_vertical_resumes_to_the_uninterrupted_state() {
    let (mut reference, tid, a_values) = build(1200);
    let d: Vec<u64> = a_values.iter().copied().step_by(3).collect();
    let counter = Pacer::new();
    {
        let _g = counter.enter();
        strategy::vertical_auto(&mut reference, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1).unwrap();
    }
    let total = counter.checks();
    assert!(total > 30, "statement crossed only {total} checkpoints");

    for trip in [2, total / 3, total / 2, total - total / 5] {
        let (mut db, tid2, _) = build(1200);
        assert_eq!(tid, tid2);
        let pool = db.pool().clone();
        let pacer = Pacer::new();
        pacer.pause_after(trip.max(1));
        std::thread::scope(|s| {
            let worker = s.spawn(|| {
                let _g = pacer.enter();
                strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1)
                    .map(|(_, o)| o.deleted.len())
            });
            assert!(
                pacer.wait_parked(1, Duration::from_secs(10)),
                "trip {trip}/{total} never parked"
            );
            assert_eq!(
                pool.pinned_frames(),
                0,
                "paused at trip {trip}/{total} with a frame still pinned"
            );
            pacer.resume();
            assert_eq!(worker.join().unwrap().unwrap(), d.len());
        });
        db.check_consistency(tid).unwrap();
        let eq = audit_equivalence(&reference, &db, tid).unwrap();
        assert!(eq.is_clean(), "trip {trip}/{total} diverged: {eq}");
    }
}

/// The parallel driver: the executor re-installs the driver thread's pacer
/// on every worker, so a pause lands in the fan-out arms too and the
/// resumed run still matches the serial reference.
#[test]
fn paused_parallel_vertical_resumes_to_the_serial_state() {
    let (mut reference, tid, a_values) = build(1200);
    let d: Vec<u64> = a_values.iter().copied().step_by(3).collect();
    strategy::vertical_auto(&mut reference, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1).unwrap();

    let (mut db, _, _) = build(1200);
    let pacer = Pacer::new();
    pacer.pause_after(40);
    std::thread::scope(|s| {
        let worker = s.spawn(|| {
            let _g = pacer.enter();
            strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 3)
                .map(|(_, o)| o.deleted.len())
        });
        assert!(
            pacer.wait_parked(1, Duration::from_secs(10)),
            "parallel run never parked"
        );
        pacer.resume();
        assert_eq!(worker.join().unwrap().unwrap(), d.len());
    });
    db.check_consistency(tid).unwrap();
    let eq = audit_equivalence(&reference, &db, tid).unwrap();
    assert!(eq.is_clean(), "paused parallel run diverged: {eq}");
}

/// Cancelling a parked statement unwinds through the normal error path and
/// releases every pin on the way out.
#[test]
fn cancelled_vertical_unwinds_and_unpins() {
    let (mut db, tid, a_values) = build(800);
    let d: Vec<u64> = a_values.iter().copied().step_by(2).collect();
    let pool = db.pool().clone();
    let pacer = Pacer::new();
    pacer.pause_after(25);
    std::thread::scope(|s| {
        let worker = s.spawn(|| {
            let _g = pacer.enter();
            strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1)
        });
        assert!(pacer.wait_parked(1, Duration::from_secs(10)));
        pacer.cancel();
        assert!(
            worker.join().unwrap().is_err(),
            "cancelled statement must fail"
        );
    });
    assert_eq!(pool.pinned_frames(), 0, "cancel leaked a pin");
}
