//! Schemas and tuples.
//!
//! The paper's table `R` has "eleven attributes A, B, ..., K. ... The first
//! 10 attributes are random integers and the last attribute (i.e., K) is a
//! string field containing garbage data for padding" to a 512-byte record.
//! [`Schema::paper`] is exactly that layout; other shapes are configurable.

use crate::error::{DbError, DbResult};

use bd_btree::Key;

/// Printable name of attribute `i` (0 = `A`).
pub fn attr_name(i: usize) -> char {
    (b'A' + (i as u8 % 26)) as char
}

/// Fixed-size record layout: `n_attrs` little-endian `u64`s followed by
/// zero padding up to `record_len` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schema {
    /// Number of integer attributes at the front of the record.
    pub n_attrs: usize,
    /// Total record size in bytes (attributes + padding).
    pub record_len: usize,
}

impl Schema {
    /// A schema with `n_attrs` integer attributes padded to `record_len`.
    pub fn new(n_attrs: usize, record_len: usize) -> Self {
        assert!(record_len >= n_attrs * 8, "record too small for attributes");
        Schema {
            n_attrs,
            record_len,
        }
    }

    /// The paper's layout: 10 integer attributes, 512-byte records.
    pub fn paper() -> Self {
        Schema::new(10, 512)
    }

    /// Encode a tuple into a record buffer.
    pub fn encode(&self, tuple: &Tuple) -> DbResult<Vec<u8>> {
        if tuple.attrs.len() != self.n_attrs {
            return Err(DbError::SchemaMismatch {
                expected: self.n_attrs,
                got: tuple.attrs.len(),
            });
        }
        let mut buf = vec![0u8; self.record_len];
        for (i, a) in tuple.attrs.iter().enumerate() {
            buf[i * 8..(i + 1) * 8].copy_from_slice(&a.to_le_bytes());
        }
        Ok(buf)
    }

    /// Decode a record buffer into a tuple.
    pub fn decode(&self, bytes: &[u8]) -> Tuple {
        debug_assert!(bytes.len() >= self.n_attrs * 8);
        let attrs = (0..self.n_attrs)
            .map(|i| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
                u64::from_le_bytes(b)
            })
            .collect();
        Tuple { attrs }
    }

    /// Read just attribute `attr` out of a record buffer (cheaper than a
    /// full decode when only one index key is needed).
    pub fn attr_of(&self, bytes: &[u8], attr: usize) -> Key {
        debug_assert!(attr < self.n_attrs);
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[attr * 8..(attr + 1) * 8]);
        u64::from_le_bytes(b)
    }
}

/// A row: one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    /// Attribute values, index 0 = attribute `A`.
    pub attrs: Vec<Key>,
}

impl Tuple {
    /// Tuple from attribute values.
    pub fn new(attrs: Vec<Key>) -> Self {
        Tuple { attrs }
    }

    /// Value of attribute `i`.
    pub fn attr(&self, i: usize) -> Key {
        self.attrs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_shape() {
        let s = Schema::paper();
        assert_eq!(s.n_attrs, 10);
        assert_eq!(s.record_len, 512);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = Schema::new(3, 64);
        let t = Tuple::new(vec![7, u64::MAX, 0]);
        let bytes = s.encode(&t).unwrap();
        assert_eq!(bytes.len(), 64);
        assert_eq!(s.decode(&bytes), t);
    }

    #[test]
    fn attr_of_matches_decode() {
        let s = Schema::paper();
        let t = Tuple::new((0..10u64).map(|i| i * 1000 + 17).collect());
        let bytes = s.encode(&t).unwrap();
        for i in 0..10 {
            assert_eq!(s.attr_of(&bytes, i), t.attr(i));
        }
    }

    #[test]
    fn schema_mismatch_is_error() {
        let s = Schema::new(3, 64);
        let t = Tuple::new(vec![1, 2]);
        assert_eq!(
            s.encode(&t).unwrap_err(),
            DbError::SchemaMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn attr_names() {
        assert_eq!(attr_name(0), 'A');
        assert_eq!(attr_name(2), 'C');
        assert_eq!(attr_name(10), 'K');
    }

    #[test]
    #[should_panic(expected = "record too small")]
    fn record_must_fit_attrs() {
        let _ = Schema::new(10, 64);
    }
}
