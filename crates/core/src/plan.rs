//! Delete plans: the logical `D ⋈̄ I_A ⋈̄ R ⋈̄ I_B ⋈̄ I_C` shape with the
//! optimizer's three degrees of freedom (§2.1): ⋈̄ *method*, ⋈̄ *order*, and
//! primary ⋈̄ *predicate*.

use crate::catalog::Table;
use crate::tuple::attr_name;

/// How one downstream index `⋈̄` is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMethod {
    /// Sort the projected `(key, rid)` list and merge it into the leaf
    /// chain (Fig. 3). `presort: false` when the index is clustered — "an
    /// order on RID implies an order on B" — so the list arrives sorted.
    SortMerge {
        /// Whether the projected list needs sorting first.
        presort: bool,
    },
    /// Probe an in-memory RID hash set during a full leaf scan (Fig. 4,
    /// classic hash). Requires the RID set to fit the workspace.
    ClassicHash,
    /// Range-partition the list so each partition's RID set fits the
    /// workspace, then probe partition by partition over the matching leaf
    /// ranges (Fig. 5).
    PartitionedHash {
        /// Number of partitions.
        partitions: usize,
    },
}

/// How the base-table `⋈̄` is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMethod {
    /// Merge the RID-sorted list against the heap's page order (Fig. 3).
    /// `presort: false` when the probe index is clustered — "the result of
    /// the first ⋈̄ operation is already sorted by RID".
    Merge {
        /// Whether the RID list needs sorting first.
        presort: bool,
    },
    /// Scan all heap pages, probing each record's RID (Fig. 4).
    HashProbe,
}

/// One downstream index step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStep {
    /// Attribute whose index is processed.
    pub attr: usize,
    /// Chosen ⋈̄ method.
    pub method: IndexMethod,
}

/// A complete vertical bulk-delete plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletePlan {
    /// The attribute the `DELETE ... WHERE attr IN (D)` predicate names;
    /// its index is the first ⋈̄ (key predicate).
    pub probe_attr: usize,
    /// Base-table step.
    pub table: TableMethod,
    /// Downstream index steps, in execution order (unique indices first,
    /// per §3.1.3).
    pub index_steps: Vec<IndexStep>,
}

impl DeletePlan {
    /// EXPLAIN-style rendering of the plan DAG.
    pub fn render(&self, table: &Table) -> String {
        let mut out = String::new();
        let a = attr_name(self.probe_attr);
        out.push_str(&format!("bulk delete plan for {}:\n", table.name));
        out.push_str(&format!("  sort(D) -> bd[sort/merge, key] I_{a}\n"));
        match self.table {
            TableMethod::Merge { presort: true } => {
                out.push_str("  -> sort(RID) -> bd[merge, rid] R\n");
            }
            TableMethod::Merge { presort: false } => {
                out.push_str(&format!(
                    "  -> bd[merge, rid] R          (I_{a} clustered: RID sort elided)\n"
                ));
            }
            TableMethod::HashProbe => {
                out.push_str("  -> build hash(RID) -> bd[hash probe, rid] R\n");
            }
        }
        for step in &self.index_steps {
            let n = attr_name(step.attr);
            let unique = table
                .index_on(step.attr)
                .map(|i| i.def.unique)
                .unwrap_or(false);
            let tag = if unique {
                " (unique, processed early)"
            } else {
                ""
            };
            match step.method {
                IndexMethod::SortMerge { presort: true } => out.push_str(&format!(
                    "  -> project({n},RID) -> sort({n}) -> bd[sort/merge, key+rid] I_{n}{tag}\n"
                )),
                IndexMethod::SortMerge { presort: false } => out.push_str(&format!(
                    "  -> project({n},RID) -> bd[merge, key+rid] I_{n}{tag}   (clustered: sort elided)\n"
                )),
                IndexMethod::ClassicHash => out.push_str(&format!(
                    "  -> bd[hash probe, rid] I_{n}{tag}   (shared RID hash table)\n"
                )),
                IndexMethod::PartitionedHash { partitions } => out.push_str(&format!(
                    "  -> project({n},RID) -> range-partition x{partitions} -> bd[hash probe, rid] I_{n}{tag}\n"
                )),
            }
        }
        out
    }
}
