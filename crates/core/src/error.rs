//! Engine-level error type.

use std::fmt;

use bd_storage::StorageError;

use bd_btree::Key;

/// Errors raised by the bulk-delete engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// An error bubbled up from the storage layer.
    Storage(StorageError),
    /// No table with this id exists.
    NoSuchTable(usize),
    /// The table has no index on the named attribute.
    NoSuchIndex {
        /// Attribute number (0 = `A`).
        attr: usize,
    },
    /// An index on this attribute already exists.
    IndexExists {
        /// Attribute number (0 = `A`).
        attr: usize,
    },
    /// A `DELETE` statement referenced an attribute without an index to
    /// probe (all strategies need the index on the delete attribute).
    NoProbeIndex {
        /// Attribute number (0 = `A`).
        attr: usize,
    },
    /// Inserting `key` would violate a unique constraint.
    DuplicateKey {
        /// Attribute carrying the unique constraint.
        attr: usize,
        /// Conflicting key value.
        key: Key,
    },
    /// A tuple did not match the table schema.
    SchemaMismatch {
        /// Attributes the schema defines.
        expected: usize,
        /// Attributes the tuple carried.
        got: usize,
    },
    /// A RESTRICT foreign key still has referencing rows.
    ForeignKeyViolation {
        /// Constraint name.
        name: String,
        /// Number of child rows still referencing deleted keys.
        referencing_rows: usize,
    },
    /// A structural or differential audit found the engine in a state it
    /// must never be in (carries the rendered audit report).
    Audit(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::NoSuchTable(id) => write!(f, "no table with id {id}"),
            DbError::NoSuchIndex { attr } => {
                write!(
                    f,
                    "no index on attribute {}",
                    crate::tuple::attr_name(*attr)
                )
            }
            DbError::IndexExists { attr } => {
                write!(
                    f,
                    "index on attribute {} already exists",
                    crate::tuple::attr_name(*attr)
                )
            }
            DbError::NoProbeIndex { attr } => write!(
                f,
                "bulk delete on attribute {} needs an index to probe",
                crate::tuple::attr_name(*attr)
            ),
            DbError::DuplicateKey { attr, key } => write!(
                f,
                "unique constraint on attribute {} violated by key {key}",
                crate::tuple::attr_name(*attr)
            ),
            DbError::SchemaMismatch { expected, got } => {
                write!(f, "tuple has {got} attributes, schema expects {expected}")
            }
            DbError::ForeignKeyViolation {
                name,
                referencing_rows,
            } => write!(
                f,
                "foreign key {name} violated: {referencing_rows} referencing rows remain"
            ),
            DbError::Audit(report) => write!(f, "audit failed: {report}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

/// Convenience alias used throughout the engine.
pub type DbResult<T> = Result<T, DbError>;
