//! Referential integrity for bulk deletes.
//!
//! The paper folds constraint checking into the vertical framework:
//! "integrity constraints can be processed more efficiently using a
//! vertical approach ... we propose to check integrity constraints in such
//! a vertical way as early as possible and before deleting records from
//! the table and the indices so that no work needs to be undone if an
//! integrity constraint fails" (§2.2).
//!
//! A [`ForeignKey`] declares that `child.child_attr` references
//! `parent.parent_attr`. Checking is one read-only sorted merge of the
//! delete list against the child's index ([`bd_btree::lookup_keys_sorted`])
//! — the same access pattern as the `⋈̄` itself, run *before* any
//! destructive pass. `RESTRICT` aborts on the first match; `CASCADE` turns
//! matches into a recursive vertical bulk delete on the child table.

use bd_btree::{lookup_keys_sorted, Key};

use crate::db::{Database, TableId};
use crate::error::{DbError, DbResult};

/// Action when deleted parent keys are still referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefAction {
    /// Fail the bulk delete before any destructive work.
    Restrict,
    /// Bulk-delete the referencing child rows first (recursively).
    Cascade,
}

/// A referential constraint between two tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Display name, e.g. `fk_orders_customer`.
    pub name: String,
    /// Referenced (parent) table.
    pub parent: TableId,
    /// Referenced attribute in the parent.
    pub parent_attr: usize,
    /// Referencing (child) table.
    pub child: TableId,
    /// Referencing attribute in the child — must be indexed so the check
    /// is a leaf-level merge rather than a table scan.
    pub child_attr: usize,
    /// What to do with referencing rows.
    pub action: RefAction,
}

impl ForeignKey {
    /// A RESTRICT constraint.
    pub fn restrict(
        name: &str,
        parent: TableId,
        parent_attr: usize,
        child: TableId,
        child_attr: usize,
    ) -> Self {
        ForeignKey {
            name: name.to_string(),
            parent,
            parent_attr,
            child,
            child_attr,
            action: RefAction::Restrict,
        }
    }

    /// A CASCADE constraint.
    pub fn cascade(
        name: &str,
        parent: TableId,
        parent_attr: usize,
        child: TableId,
        child_attr: usize,
    ) -> Self {
        ForeignKey {
            name: name.to_string(),
            parent,
            parent_attr,
            child,
            child_attr,
            action: RefAction::Cascade,
        }
    }
}

/// Count child rows referencing any of the (sorted) `keys` — one read-only
/// sorted merge over the child index's leaf chain.
pub fn count_references(db: &Database, fk: &ForeignKey, sorted_keys: &[Key]) -> DbResult<usize> {
    let child = db.table(fk.child)?;
    let index = child.index_on(fk.child_attr).ok_or(DbError::NoSuchIndex {
        attr: fk.child_attr,
    })?;
    Ok(lookup_keys_sorted(&index.tree, sorted_keys)?.len())
}

/// Enforce `fk` for a pending bulk delete of `sorted_keys` from the parent.
/// RESTRICT: error if any reference exists. CASCADE: return the child keys
/// that must be bulk-deleted from the child table first.
pub fn enforce(db: &Database, fk: &ForeignKey, sorted_keys: &[Key]) -> DbResult<Option<Vec<Key>>> {
    let refs = count_references(db, fk, sorted_keys)?;
    match fk.action {
        RefAction::Restrict => {
            if refs > 0 {
                Err(DbError::ForeignKeyViolation {
                    name: fk.name.clone(),
                    referencing_rows: refs,
                })
            } else {
                Ok(None)
            }
        }
        RefAction::Cascade => {
            if refs == 0 {
                Ok(None)
            } else {
                // The child rows to delete are exactly those whose
                // child_attr matches a deleted parent key.
                let child = db.table(fk.child)?;
                let index = child.index_on(fk.child_attr).expect("checked above");
                let mut keys: Vec<Key> = lookup_keys_sorted(&index.tree, sorted_keys)?
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                keys.dedup();
                Ok(Some(keys))
            }
        }
    }
}
