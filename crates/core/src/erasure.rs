//! Cascading erasure: plan the full delete closure over the foreign-key
//! graph, execute it step by step, physically scrub every surface, and
//! prove the erased values are gone.
//!
//! The paper's constraint section (§2.2) checks integrity *vertically and
//! early*; this module extends that idea into a compliance-grade pipeline:
//!
//! 1. [`plan_cascade`] — a **fixpoint** computation over the FK graph. Key
//!    sets per `(table, attr)` node only grow, and the loop runs until no
//!    set grows, so CASCADE *cycles* (self-referencing tables, mutually
//!    referencing tables) terminate with the complete delete closure. A
//!    naive per-edge visited set is not enough: revisiting a node with
//!    newly discovered keys must *merge* them, not drop them.
//! 2. [`run_cascade`] — execute the plan, children before parents, each
//!    step one vertical bulk delete.
//! 3. [`scrub_database`] — destroy the physical residue a logically
//!    complete delete leaves behind (heap slack, tree slack and stale
//!    separators, hash swap-remove images, freed pages and their
//!    replicas).
//! 4. [`verify_erasure`] — byte-scan every disk surface for sensitive
//!    values and report any residue ([`ErasureReport`]).
//!
//! The WAL-integrated campaign driver (durable manifest, crash-resumable
//! steps, log redaction) lives in `bd-wal`; it is built from these pieces.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use bd_btree::{Key, ReorgPolicy};
use bd_storage::{PageId, Rid};

use crate::db::{Database, TableId};
use crate::error::{DbError, DbResult};
use crate::strategy::DeleteOutcome;
use crate::tuple::Tuple;

/// One table's share of a cascading erasure: bulk-delete every row whose
/// `attr` value is in `keys` (sorted, deduplicated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeStep {
    /// Target table.
    pub table: TableId,
    /// Probe attribute (must be indexed).
    pub attr: usize,
    /// Sorted, deduplicated key closure for this node.
    pub keys: Vec<Key>,
}

/// The complete delete closure of one `DELETE` statement over the FK
/// graph, in execution order (children before parents, root last; inside
/// a cycle the order is discovery-based — any order is correct because
/// every step's key set is already the full fixpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadePlan {
    /// Steps in execution order.
    pub steps: Vec<CascadeStep>,
    /// True when the CASCADE edges actually used form a cycle.
    pub cyclic: bool,
}

impl CascadePlan {
    /// Position of the statement's root step within [`CascadePlan::steps`].
    pub fn root_pos(&self, table: TableId, attr: usize) -> Option<usize> {
        self.steps
            .iter()
            .position(|s| s.table == table && s.attr == attr)
    }

    /// Total keys across all steps.
    pub fn total_keys(&self) -> usize {
        self.steps.iter().map(|s| s.keys.len()).sum()
    }
}

/// Read-only victim resolution: the rows a bulk delete of `keys` on
/// `(tid, attr)` would remove, in RID order. `keys` need not be sorted.
pub fn victim_rows(db: &Database, tid: TableId, attr: usize, keys: &[Key]) -> DbResult<Vec<Tuple>> {
    let table = db.table(tid)?;
    let index = table.index_on(attr).ok_or(DbError::NoProbeIndex { attr })?;
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut rids: Vec<Rid> = bd_btree::lookup_keys_sorted(&index.tree, &sorted)
        .map_err(DbError::Storage)?
        .into_iter()
        .map(|(_, rid)| rid)
        .collect();
    rids.sort_unstable();
    rids.into_iter()
        .map(|rid| {
            let bytes = table.heap.get(rid).map_err(DbError::Storage)?;
            Ok(table.schema.decode(&bytes))
        })
        .collect()
}

/// Compute the delete closure of `DELETE FROM tid WHERE attr IN d_keys`
/// over every registered foreign key — read-only.
///
/// RESTRICT constraints abort here, before any destructive work, exactly
/// as §2.2 prescribes ("no work needs to be undone"). CASCADE constraints
/// grow the closure; a worklist fixpoint guarantees termination and
/// completeness even when the constraint graph is cyclic.
pub fn plan_cascade(
    db: &Database,
    tid: TableId,
    attr: usize,
    d_keys: &[Key],
) -> DbResult<CascadePlan> {
    type Node = (TableId, usize);
    let root: Node = (tid, attr);
    // Validate the root probe index up front (even for an empty key list).
    db.table(tid)?
        .index_on(attr)
        .ok_or(DbError::NoProbeIndex { attr })?;

    let mut sets: BTreeMap<Node, BTreeSet<Key>> = BTreeMap::new();
    let mut discovery: Vec<Node> = vec![root];
    sets.insert(root, d_keys.iter().copied().collect());
    let mut edges: BTreeSet<(Node, Node)> = BTreeSet::new();
    let mut work: Vec<(Node, Vec<Key>)> = vec![(root, sets[&root].iter().copied().collect())];

    // Worklist fixpoint: each item is a node plus the keys *newly* added
    // to it. Key sets grow monotonically and are bounded by the keys
    // physically present in the child indices, so the loop terminates.
    while let Some(((t, a), delta)) = work.pop() {
        let fks = db.foreign_keys_on_table(t);
        if fks.is_empty() {
            continue;
        }
        let rows = victim_rows(db, t, a, &delta)?;
        for fk in fks {
            let mut vals: Vec<Key> = rows.iter().map(|r| r.attr(fk.parent_attr)).collect();
            vals.sort_unstable();
            vals.dedup();
            if vals.is_empty() {
                continue;
            }
            // RESTRICT: errors right here. CASCADE: the referencing child
            // keys, or None when nothing references the vanishing values.
            if let Some(child_keys) = crate::constraint::enforce(db, &fk, &vals)? {
                let child: Node = (fk.child, fk.child_attr);
                edges.insert(((t, a), child));
                let set = sets.entry(child).or_insert_with(|| {
                    discovery.push(child);
                    BTreeSet::new()
                });
                let fresh: Vec<Key> = child_keys.into_iter().filter(|k| set.insert(*k)).collect();
                if !fresh.is_empty() {
                    work.push((child, fresh));
                }
            }
        }
    }

    // Cycle detection over the used edges (DFS, three colours).
    let mut adj: HashMap<Node, Vec<Node>> = HashMap::new();
    for &(p, c) in &edges {
        adj.entry(p).or_default().push(c);
    }
    let cyclic = has_cycle(&discovery, &adj);

    // Execution order: children before parents. `depth` is the longest
    // root distance along used edges, relaxed at most |nodes| sweeps (the
    // cap makes cyclic graphs converge to *a* deterministic order; the
    // fixpoint key sets make any order correct).
    let mut depth: HashMap<Node, usize> = discovery.iter().map(|&n| (n, 0)).collect();
    let cap = discovery.len();
    for _ in 0..cap {
        let mut changed = false;
        for &(p, c) in &edges {
            let d = (depth[&p] + 1).min(cap);
            if depth[&c] < d {
                depth.insert(c, d);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut order: Vec<(usize, usize, Node)> = discovery
        .iter()
        .enumerate()
        .map(|(i, &n)| (depth[&n], i, n))
        .collect();
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let steps = order
        .into_iter()
        .map(|(_, _, node)| CascadeStep {
            table: node.0,
            attr: node.1,
            keys: sets[&node].iter().copied().collect(),
        })
        .collect();
    Ok(CascadePlan { steps, cyclic })
}

fn has_cycle(
    nodes: &[(TableId, usize)],
    adj: &HashMap<(TableId, usize), Vec<(TableId, usize)>>,
) -> bool {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut colour: HashMap<(TableId, usize), u8> = nodes.iter().map(|&n| (n, WHITE)).collect();
    for &start in nodes {
        if colour[&start] != WHITE {
            continue;
        }
        // Iterative DFS: (node, next child index).
        let mut stack: Vec<((TableId, usize), usize)> = vec![(start, 0)];
        colour.insert(start, GREY);
        while let Some(&mut (node, ref mut i)) = stack.last_mut() {
            let children = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *i < children.len() {
                let child = children[*i];
                *i += 1;
                match colour.get(&child).copied().unwrap_or(WHITE) {
                    GREY => return true,
                    WHITE => {
                        colour.insert(child, GREY);
                        stack.push((child, 0));
                    }
                    _ => {}
                }
            } else {
                colour.insert(node, BLACK);
                stack.pop();
            }
        }
    }
    false
}

/// Execute a cascade plan: one vertical bulk delete per step, in plan
/// order. Returns one [`DeleteOutcome`] per step (same order).
pub fn run_cascade(
    db: &mut Database,
    plan: &CascadePlan,
    policy: ReorgPolicy,
) -> DbResult<Vec<DeleteOutcome>> {
    let mut outcomes = Vec::with_capacity(plan.steps.len());
    for step in &plan.steps {
        outcomes.push(run_cascade_step(db, step, policy, 1)?);
    }
    Ok(outcomes)
}

/// Execute a single step of a cascade plan with up to `workers` threads
/// for the independent index arms (serial when `workers <= 1`).
pub fn run_cascade_step(
    db: &mut Database,
    step: &CascadeStep,
    policy: ReorgPolicy,
    workers: usize,
) -> DbResult<DeleteOutcome> {
    let p = crate::planner::plan_delete(
        db.table(step.table)?,
        step.attr,
        step.keys.len(),
        db.workspace().capacity(),
    )?;
    crate::strategy::vertical(db, step.table, &step.keys, &p, policy, workers)
}

/// What [`scrub_database`] visited and destroyed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Heap pages visited.
    pub heap_pages: usize,
    /// Non-zero heap bytes destroyed (deleted-record images, compaction
    /// residue).
    pub heap_bytes: usize,
    /// Every B-tree page visited by the per-level chain walks — freed
    /// pages still threaded into a sibling chain are in here, and the
    /// free-page sweep must *not* wholesale-zero them (their headers keep
    /// the chains walkable); their slack is scrubbed by the tree pass.
    pub tree_pages: Vec<PageId>,
    /// Non-zero tree slack bytes destroyed.
    pub tree_slack_bytes: usize,
    /// Inner separators rewritten off deleted boundary keys.
    pub seps_tightened: usize,
    /// Hash pages whose swap-remove slack was destroyed.
    pub hash_pages: usize,
    /// Free pages (and their replica mirrors) zeroed wholesale.
    pub free_pages_zeroed: usize,
}

/// Destroy the physical residue of every logically deleted record in the
/// whole database: heap slack, tree slack + stale separators, hash
/// swap-remove images, then every catalogued-free page (and its replica)
/// not still threaded into a tree's sibling chain.
///
/// Pacer checkpoints run between pages, so a paused or cancelled scrub
/// stops at a page boundary with everything it already scrubbed durable.
pub fn scrub_database(db: &mut Database) -> DbResult<ScrubReport> {
    let mut rep = ScrubReport::default();
    for tid in 0..db.n_tables() {
        let (parts, _ws, _pool) = db.parts(tid)?;
        let (pages, bytes) = parts.heap.scrub()?;
        rep.heap_pages += pages;
        rep.heap_bytes += bytes;
        for index in parts.indices.iter_mut() {
            let t = bd_btree::scrub::scrub(&mut index.tree)?;
            rep.tree_pages.extend(t.pages);
            rep.tree_slack_bytes += t.slack_bytes;
            rep.seps_tightened += t.seps_tightened;
        }
        for h in parts.hash_indices.iter_mut() {
            rep.hash_pages += h.index.scrub()?;
        }
    }

    // Free-page sweep. The zeroing writes bypass the buffer pool (they go
    // straight to the disk), so flush dirty frames first and drop the
    // cache after — no frame may outlive the bytes it mirrors.
    db.pool().flush_all()?;
    let chained: HashSet<PageId> = rep.tree_pages.iter().copied().collect();
    for pid in db.pool().catalog().free_pages() {
        if chained.contains(&pid) {
            continue;
        }
        bd_storage::pacer::checkpoint()?;
        db.pool().with_disk(|d| d.scrub_page(pid))?;
        rep.free_pages_zeroed += 1;
    }
    db.pool().clear_cache()?;
    Ok(rep)
}

/// One sensitive value found on a surface it should have vanished from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Residue {
    /// Where (`page 12`, `replica 3`, `wal`, ...).
    pub surface: String,
    /// The value found.
    pub value: u64,
}

/// The proof-of-deletion verdict: which sensitive values still have byte
/// images anywhere.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErasureReport {
    /// Sensitive values the caller asked about.
    pub sensitive: usize,
    /// Values excluded because a *surviving* row still legitimately holds
    /// them (a shared attribute value is not residue).
    pub excluded_survivors: usize,
    /// Every `(surface, value)` hit. Empty ⇒ proof holds.
    pub residue: Vec<Residue>,
}

impl ErasureReport {
    /// True when no sensitive value survives on any surface.
    pub fn is_clean(&self) -> bool {
        self.residue.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        if self.is_clean() {
            format!(
                "erasure proof holds: {} sensitive values ({} shared with survivors), zero residue",
                self.sensitive, self.excluded_survivors
            )
        } else {
            let mut s = format!(
                "erasure proof FAILS: {} residue hits over {} sensitive values\n",
                self.residue.len(),
                self.sensitive
            );
            for r in &self.residue {
                s.push_str(&format!("  {:#018x} on {}\n", r.value, r.surface));
            }
            s
        }
    }
}

/// All attribute values of every row a cascade plan will delete, plus the
/// plan's own key closure. Read-only — call *before* [`run_cascade`].
pub fn collect_sensitive(db: &Database, plan: &CascadePlan) -> DbResult<Vec<u64>> {
    let mut out: BTreeSet<u64> = BTreeSet::new();
    for step in &plan.steps {
        for row in victim_rows(db, step.table, step.attr, &step.keys)? {
            out.extend(row.attrs.iter().copied());
        }
        out.extend(step.keys.iter().copied());
    }
    Ok(out.into_iter().collect())
}

/// Every attribute value still held by a surviving row of any table.
pub fn surviving_values(db: &Database) -> DbResult<HashSet<u64>> {
    let mut out = HashSet::new();
    for tid in 0..db.n_tables() {
        let table = db.table(tid)?;
        for (_rid, bytes) in table.heap.dump()? {
            out.extend(table.schema.decode(&bytes).attrs);
        }
    }
    Ok(out)
}

/// Scan `img` for any little-endian `u64` image of a target value, at
/// every byte offset, recording at most one hit per (surface, value).
pub fn scan_surface(surface: &str, img: &[u8], targets: &HashSet<u64>, out: &mut Vec<Residue>) {
    if targets.is_empty() {
        return;
    }
    let mut seen: HashSet<u64> = HashSet::new();
    for w in img.windows(8) {
        let v = u64::from_le_bytes(w.try_into().expect("8-byte window"));
        if targets.contains(&v) && seen.insert(v) {
            out.push(Residue {
                surface: surface.to_string(),
                value: v,
            });
        }
    }
}

/// The proof of deletion: flush the pool, subtract values surviving rows
/// still legitimately hold, then byte-scan **every** primary page image,
/// **every** replica image, and any extra surfaces the caller supplies
/// (e.g. the raw WAL bytes) for the remaining sensitive values.
pub fn verify_erasure(
    db: &Database,
    sensitive: &[u64],
    extra_surfaces: &[(&str, &[u8])],
) -> DbResult<ErasureReport> {
    db.pool().flush_all()?;
    let survivors = surviving_values(db)?;
    let targets: HashSet<u64> = sensitive
        .iter()
        .copied()
        .filter(|v| !survivors.contains(v))
        .collect();
    let mut residue = Vec::new();
    db.pool().with_disk(|d| {
        for pid in 0..d.num_pages() as PageId {
            if let Some(img) = d.peek(pid) {
                scan_surface(&format!("page {pid}"), img, &targets, &mut residue);
            }
            if let Some(img) = d.peek_replica(pid) {
                scan_surface(&format!("replica {pid}"), img, &targets, &mut residue);
            }
        }
    });
    for (name, bytes) in extra_surfaces {
        scan_surface(name, bytes, &targets, &mut residue);
    }
    Ok(ErasureReport {
        sensitive: sensitive.len(),
        excluded_survivors: sensitive.len() - targets.len(),
        residue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexDef;
    use crate::constraint::ForeignKey;
    use crate::db::DatabaseConfig;
    use crate::tuple::Schema;

    // High-entropy ids so byte scans cannot collide with metadata.
    fn tag(ns: u64, i: u64) -> u64 {
        0xACE0_0000_0000_0000 | (ns << 40) | (i * 0x0101 + 1)
    }

    fn db_with_tables(n: usize) -> (Database, Vec<TableId>) {
        let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
        let tids = (0..n)
            .map(|i| {
                let tid = db.create_table(&format!("T{i}"), Schema::new(3, 64));
                db.create_index(tid, IndexDef::secondary(0).unique())
                    .unwrap();
                db.create_index(tid, IndexDef::secondary(1)).unwrap();
                tid
            })
            .collect();
        (db, tids)
    }

    fn count_rows(db: &Database, tid: TableId) -> usize {
        db.table(tid).unwrap().heap.dump().unwrap().len()
    }

    /// A self-referencing CASCADE chain: row i's attr1 references row
    /// i-1's attr0. Deleting the chain head must delete the whole chain —
    /// the old visited-set guard dropped every key discovered after the
    /// first revisit of (T, attr1).
    #[test]
    fn self_referencing_cascade_deletes_whole_chain() {
        let (mut db, tids) = db_with_tables(1);
        let t = tids[0];
        db.add_foreign_key(ForeignKey::cascade("fk_self", t, 0, t, 1));
        let n = 24u64;
        // Chain: attr1 of row i = attr0 of row i-1; head references itself.
        for i in 0..n {
            let parent = if i == 0 { tag(0, 0) } else { tag(0, i - 1) };
            db.insert(t, &Tuple::new(vec![tag(0, i), parent, 7]))
                .unwrap();
        }
        // Unrelated survivor rows.
        for i in 100..110u64 {
            db.insert(t, &Tuple::new(vec![tag(0, i), tag(0, 99), 7]))
                .unwrap();
        }

        let plan = plan_cascade(&db, t, 0, &[tag(0, 0)]).unwrap();
        assert!(plan.cyclic, "head references itself: cycle");
        // Closure covers every chain id (n ids through the attr1 node).
        let closure: BTreeSet<Key> = plan
            .steps
            .iter()
            .flat_map(|s| s.keys.iter().copied())
            .collect();
        for i in 0..n - 1 {
            assert!(closure.contains(&tag(0, i)), "chain id {i} missing");
        }

        // The head self-references, so the (T, attr1) child step already
        // removes it; the root step then finds nothing left — overlapping
        // steps are benign because bulk deletes tolerate absent keys.
        let out = db.delete_in(t, 0, &[tag(0, 0)]).unwrap();
        assert_eq!(out.deleted.len(), 0, "head removed by the child step");
        assert_eq!(count_rows(&db, t), 10, "whole chain gone, survivors stay");
        db.check_consistency(t).unwrap();
        // No dangling references: every attr1 value still present belongs
        // to a surviving attr0 (or is the survivor sentinel).
        for (_, bytes) in db.table(t).unwrap().heap.dump().unwrap() {
            let row = db.table(t).unwrap().schema.decode(&bytes);
            assert_eq!(row.attr(1), tag(0, 99));
        }
    }

    /// Two tables CASCADE into each other; the closure alternates between
    /// them. The fixpoint must terminate and cover both sides.
    #[test]
    fn mutually_referencing_tables_reach_fixpoint() {
        let (mut db, tids) = db_with_tables(2);
        let (a, b) = (tids[0], tids[1]);
        db.add_foreign_key(ForeignKey::cascade("fk_ab", a, 0, b, 1));
        db.add_foreign_key(ForeignKey::cascade("fk_ba", b, 0, a, 1));
        let n = 10u64;
        // a_i references b_{i-1}; b_i references a_i. Deleting a_0 walks
        // the whole ladder.
        for i in 0..n {
            let parent = if i == 0 { tag(2, 0) } else { tag(2, i - 1) };
            db.insert(a, &Tuple::new(vec![tag(1, i), parent, 1]))
                .unwrap();
            db.insert(b, &Tuple::new(vec![tag(2, i), tag(1, i), 2]))
                .unwrap();
        }

        let plan = plan_cascade(&db, a, 0, &[tag(1, 0)]).unwrap();
        assert!(plan.cyclic);
        db.delete_in(a, 0, &[tag(1, 0)]).unwrap();
        assert_eq!(count_rows(&db, a), 0, "every a row is in the closure");
        assert_eq!(count_rows(&db, b), 0, "every b row is in the closure");
        db.check_consistency(a).unwrap();
        db.check_consistency(b).unwrap();
    }

    /// A RESTRICT edge anywhere below the root aborts during planning,
    /// before any destructive work.
    #[test]
    fn restrict_below_cascade_aborts_with_nothing_modified() {
        let (mut db, tids) = db_with_tables(3);
        let (a, b, c) = (tids[0], tids[1], tids[2]);
        db.add_foreign_key(ForeignKey::cascade("fk_ab", a, 0, b, 1));
        db.add_foreign_key(ForeignKey::restrict("fk_bc", b, 0, c, 1));
        db.insert(a, &Tuple::new(vec![tag(3, 1), 0, 0])).unwrap();
        db.insert(b, &Tuple::new(vec![tag(4, 1), tag(3, 1), 0]))
            .unwrap();
        db.insert(c, &Tuple::new(vec![tag(5, 1), tag(4, 1), 0]))
            .unwrap();

        let err = db.delete_in(a, 0, &[tag(3, 1)]).unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
        assert_eq!(count_rows(&db, a), 1);
        assert_eq!(count_rows(&db, b), 1);
        assert_eq!(count_rows(&db, c), 1);
        for &t in &[a, b, c] {
            db.check_consistency(t).unwrap();
        }
    }

    /// Acyclic chains order children first, root last.
    #[test]
    fn plan_orders_children_before_parents() {
        let (mut db, tids) = db_with_tables(3);
        let (a, b, c) = (tids[0], tids[1], tids[2]);
        db.add_foreign_key(ForeignKey::cascade("fk_ab", a, 0, b, 1));
        db.add_foreign_key(ForeignKey::cascade("fk_bc", b, 0, c, 1));
        db.insert(a, &Tuple::new(vec![tag(6, 1), 0, 0])).unwrap();
        db.insert(b, &Tuple::new(vec![tag(7, 1), tag(6, 1), 0]))
            .unwrap();
        db.insert(c, &Tuple::new(vec![tag(8, 1), tag(7, 1), 0]))
            .unwrap();

        let plan = plan_cascade(&db, a, 0, &[tag(6, 1)]).unwrap();
        assert!(!plan.cyclic);
        let order: Vec<TableId> = plan.steps.iter().map(|s| s.table).collect();
        assert_eq!(order, vec![c, b, a], "deepest child first, root last");
        assert_eq!(plan.root_pos(a, 0), Some(2));
    }

    /// End-to-end single-table proof: delete, scrub, verify zero residue
    /// on every primary and replica page.
    #[test]
    fn scrub_then_verify_proves_erasure() {
        let (mut db, tids) = db_with_tables(1);
        let t = tids[0];
        db.create_hash_index(t, 2).unwrap();
        db.pool().with_disk(|d| d.enable_replicas());
        let n = 400u64;
        for i in 0..n {
            db.insert(t, &Tuple::new(vec![tag(9, i), tag(10, i), tag(11, i)]))
                .unwrap();
        }
        let d_keys: Vec<Key> = (0..n / 2).map(|i| tag(9, i)).collect();
        let plan = plan_cascade(&db, t, 0, &d_keys).unwrap();
        let sensitive = collect_sensitive(&db, &plan).unwrap();
        assert_eq!(sensitive.len(), (n as usize / 2) * 3);

        // Before scrubbing, the delete alone must leave residue — the
        // whole reason this subsystem exists.
        run_cascade(&mut db, &plan, ReorgPolicy::FreeAtEmpty).unwrap();
        let before = verify_erasure(&db, &sensitive, &[]).unwrap();
        assert!(
            !before.is_clean(),
            "logical delete should leave physical residue"
        );

        let rep = scrub_database(&mut db).unwrap();
        assert!(rep.heap_bytes > 0);
        let after = verify_erasure(&db, &sensitive, &[]).unwrap();
        assert!(after.is_clean(), "{}", after.render());
        db.check_consistency(t).unwrap();
    }

    /// Values shared with surviving rows are excluded, not reported.
    #[test]
    fn verifier_subtracts_survivor_values() {
        let (mut db, tids) = db_with_tables(1);
        let t = tids[0];
        let shared = tag(12, 7);
        db.insert(t, &Tuple::new(vec![tag(12, 1), shared, 0]))
            .unwrap();
        db.insert(t, &Tuple::new(vec![tag(12, 2), shared, 0]))
            .unwrap();
        let plan = plan_cascade(&db, t, 0, &[tag(12, 1)]).unwrap();
        let sensitive = collect_sensitive(&db, &plan).unwrap();
        assert!(sensitive.contains(&shared));
        run_cascade(&mut db, &plan, ReorgPolicy::FreeAtEmpty).unwrap();
        scrub_database(&mut db).unwrap();
        let rep = verify_erasure(&db, &sensitive, &[]).unwrap();
        assert!(rep.excluded_survivors >= 1, "shared value excluded");
        assert!(rep.is_clean(), "{}", rep.render());
    }
}
