//! The delete-plan optimizer.
//!
//! "Being aware of all these options, it is quite straightforward to extend
//! an existing optimizer to make these decisions" (§2.1). The decisions,
//! in the order the paper lists them:
//!
//! * **⋈̄ method** — classic hash when the RID set fits the workspace
//!   ("particularly attractive if the hash table really fits into physical
//!   main memory"); range-partitioned hash when it does not but a modest
//!   number of partitions suffices; sort/merge otherwise (external sort
//!   handles any size).
//! * **⋈̄ order** — unique indices first (§3.1.3: "Especially the unique
//!   indices can be processed first"), then the rest in attribute order.
//! * **primary ⋈̄ predicate** — the probe index uses the key predicate (the
//!   delete list holds keys); downstream indices use the RID predicate
//!   under hash methods and the composite predicate under sort/merge.
//!
//! Clustering elides sorts: a clustered probe index yields a RID-sorted
//! list for free; a clustered downstream index receives its keys already
//! ordered because RID order implies key order.

use bd_exec::{partitions_needed, BYTES_PER_RID};

use crate::catalog::Table;
use crate::error::{DbError, DbResult};
use crate::plan::{DeletePlan, IndexMethod, IndexStep, TableMethod};

/// Above this many range partitions the planner falls back to sort/merge.
const MAX_PARTITIONS: usize = 16;

/// Plan a vertical bulk delete of about `n_delete` keys on `probe_attr`
/// with `workspace_bytes` of sort/hash memory.
pub fn plan_delete(
    table: &Table,
    probe_attr: usize,
    n_delete: usize,
    workspace_bytes: usize,
) -> DbResult<DeletePlan> {
    let probe = table
        .index_on(probe_attr)
        .ok_or(DbError::NoProbeIndex { attr: probe_attr })?;

    // Table step: merge, with the RID sort elided when the probe index is
    // clustered.
    let table_method = TableMethod::Merge {
        presort: !probe.def.clustered,
    };

    // Hash fits when the whole RID set plus working slack fits.
    let rid_set_fits = n_delete * BYTES_PER_RID <= workspace_bytes;

    // Downstream indices: unique first, then attribute order.
    let mut downstream: Vec<&crate::catalog::Index> = table
        .indices
        .iter()
        .filter(|i| i.def.attr != probe_attr)
        .collect();
    downstream.sort_by_key(|i| (!i.def.unique, i.def.attr));

    let index_steps = downstream
        .into_iter()
        .map(|index| {
            let method = if index.def.clustered {
                // Clustered: the projected list is already in key order.
                IndexMethod::SortMerge { presort: false }
            } else if rid_set_fits {
                IndexMethod::ClassicHash
            } else {
                let partitions = partitions_needed(n_delete, BYTES_PER_RID, workspace_bytes);
                if partitions <= MAX_PARTITIONS {
                    IndexMethod::PartitionedHash { partitions }
                } else {
                    IndexMethod::SortMerge { presort: true }
                }
            };
            IndexStep {
                attr: index.def.attr,
                method,
            }
        })
        .collect();

    Ok(DeletePlan {
        probe_attr,
        table: table_method,
        index_steps,
    })
}

/// Cost-based planning: enumerate the viable `⋈̄` method combinations,
/// price each with the [`crate::cost`] model, and return the cheapest plan
/// together with its estimate — the "optimizer based on dynamic
/// programming" extension §2.1 sketches, specialized to this plan space
/// (the steps are independent given the shared RID list, so per-step
/// minimization is globally optimal).
pub fn plan_delete_costed(
    table: &Table,
    probe_attr: usize,
    n_delete: usize,
    workspace_bytes: usize,
    pool_bytes: usize,
) -> DbResult<(DeletePlan, crate::cost::CostEstimate)> {
    use crate::cost::{index_bd_cost, table_bd_cost, CostEnv};

    let probe = table
        .index_on(probe_attr)
        .ok_or(DbError::NoProbeIndex { attr: probe_attr })?;
    let env = CostEnv::of(table, n_delete, workspace_bytes, pool_bytes);

    // Table step: merge with/without the RID sort vs hash probe.
    let rid_set_fits = n_delete * BYTES_PER_RID <= workspace_bytes;
    let mut table_candidates = vec![TableMethod::Merge {
        presort: !probe.def.clustered,
    }];
    if rid_set_fits {
        table_candidates.push(TableMethod::HashProbe);
    }
    let table_method = *table_candidates
        .iter()
        .min_by(|a, b| {
            table_bd_cost(**a, &env)
                .sim_ms(&bd_storage::CostModel::default())
                .total_cmp(&table_bd_cost(**b, &env).sim_ms(&bd_storage::CostModel::default()))
        })
        .expect("non-empty candidates");

    // Downstream indices: per index, the cheapest viable method.
    let mut downstream: Vec<&crate::catalog::Index> = table
        .indices
        .iter()
        .filter(|i| i.def.attr != probe_attr)
        .collect();
    downstream.sort_by_key(|i| (!i.def.unique, i.def.attr));
    let cm = bd_storage::CostModel::default();
    let index_steps: Vec<IndexStep> = downstream
        .into_iter()
        .map(|index| {
            let mut candidates = vec![IndexMethod::SortMerge {
                presort: !index.def.clustered,
            }];
            if rid_set_fits {
                candidates.push(IndexMethod::ClassicHash);
            } else {
                let partitions = partitions_needed(n_delete, BYTES_PER_RID, workspace_bytes);
                if partitions <= MAX_PARTITIONS {
                    candidates.push(IndexMethod::PartitionedHash { partitions });
                }
            }
            let method = candidates
                .into_iter()
                .min_by(|a, b| {
                    index_bd_cost(index, *a, &env)
                        .sim_ms(&cm)
                        .total_cmp(&index_bd_cost(index, *b, &env).sim_ms(&cm))
                })
                .expect("non-empty candidates");
            IndexStep {
                attr: index.def.attr,
                method,
            }
        })
        .collect();

    let plan = DeletePlan {
        probe_attr,
        table: table_method,
        index_steps,
    };
    let estimate = crate::cost::plan_cost(table, &plan, &env)?;
    Ok((plan, estimate))
}

/// A plan that forces sort/merge everywhere — the configuration the paper's
/// experiments report ("We will only present results that were obtained
/// using sorting and merging").
pub fn plan_sort_merge(table: &Table, probe_attr: usize) -> DbResult<DeletePlan> {
    let probe = table
        .index_on(probe_attr)
        .ok_or(DbError::NoProbeIndex { attr: probe_attr })?;
    let mut downstream: Vec<&crate::catalog::Index> = table
        .indices
        .iter()
        .filter(|i| i.def.attr != probe_attr)
        .collect();
    downstream.sort_by_key(|i| (!i.def.unique, i.def.attr));
    Ok(DeletePlan {
        probe_attr,
        table: TableMethod::Merge {
            presort: !probe.def.clustered,
        },
        index_steps: downstream
            .into_iter()
            .map(|i| IndexStep {
                attr: i.def.attr,
                method: IndexMethod::SortMerge {
                    presort: !i.def.clustered,
                },
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexDef;
    use crate::db::{Database, DatabaseConfig};
    use crate::tuple::{Schema, Tuple};

    fn db_with_indices(clustered_a: bool) -> (Database, usize) {
        let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
        let tid = db.create_table("R", Schema::new(4, 64));
        for i in 0..200u64 {
            db.insert(tid, &Tuple::new(vec![i, i % 17, i % 5, i % 3]))
                .unwrap();
        }
        let mut def_a = IndexDef::secondary(0).unique();
        if clustered_a {
            def_a = def_a.clustered();
        }
        db.create_index(tid, def_a).unwrap();
        db.create_index(tid, IndexDef::secondary(1)).unwrap();
        db.create_index(tid, IndexDef::secondary(2).unique())
            .unwrap();
        (db, tid)
    }

    #[test]
    fn hash_chosen_when_rid_set_fits() {
        let (db, tid) = db_with_indices(false);
        let plan = plan_delete(db.table(tid).unwrap(), 0, 100, 1 << 20).unwrap();
        assert_eq!(plan.table, TableMethod::Merge { presort: true });
        assert!(plan
            .index_steps
            .iter()
            .all(|s| s.method == IndexMethod::ClassicHash));
    }

    #[test]
    fn unique_indices_ordered_first() {
        let (db, tid) = db_with_indices(false);
        let plan = plan_delete(db.table(tid).unwrap(), 0, 100, 1 << 20).unwrap();
        // attr 2 is unique, attr 1 is not: 2 must come first.
        let attrs: Vec<usize> = plan.index_steps.iter().map(|s| s.attr).collect();
        assert_eq!(attrs, vec![2, 1]);
    }

    #[test]
    fn partitioned_hash_when_set_overflows() {
        let (db, tid) = db_with_indices(false);
        // 100k rids * 24B = 2.4MB against a 1MB workspace => 3 partitions.
        let plan = plan_delete(db.table(tid).unwrap(), 0, 100_000, 1 << 20).unwrap();
        match plan.index_steps[0].method {
            IndexMethod::PartitionedHash { partitions } => assert_eq!(partitions, 3),
            m => panic!("expected partitioned hash, got {m:?}"),
        }
    }

    #[test]
    fn sort_merge_when_partitions_explode() {
        let (db, tid) = db_with_indices(false);
        // Tiny workspace: too many partitions => sort/merge.
        let plan = plan_delete(db.table(tid).unwrap(), 0, 100_000, 4096).unwrap();
        assert_eq!(
            plan.index_steps[0].method,
            IndexMethod::SortMerge { presort: true }
        );
    }

    #[test]
    fn clustered_probe_elides_rid_sort() {
        let (db, tid) = db_with_indices(true);
        let plan = plan_delete(db.table(tid).unwrap(), 0, 100, 1 << 20).unwrap();
        assert_eq!(plan.table, TableMethod::Merge { presort: false });
    }

    #[test]
    fn missing_probe_index_is_error() {
        let (db, tid) = db_with_indices(false);
        let err = plan_delete(db.table(tid).unwrap(), 3, 10, 1 << 20).unwrap_err();
        assert_eq!(err, DbError::NoProbeIndex { attr: 3 });
    }

    #[test]
    fn render_mentions_every_index() {
        let (db, tid) = db_with_indices(false);
        let plan = plan_delete(db.table(tid).unwrap(), 0, 100, 1 << 20).unwrap();
        let text = plan.render(db.table(tid).unwrap());
        assert!(text.contains("I_A"));
        assert!(text.contains("I_B"));
        assert!(text.contains("I_C"));
        assert!(text.contains("unique"));
    }
}
