//! Background maintenance daemon: free-page recycling, incremental leaf
//! packing, and prewarming.
//!
//! A delete-heavy workload leaks space three ways: emptied-but-attached
//! heap pages whose FSM entries go stale, sparse B-tree leaves left behind
//! by free-at-empty reorganization, and catalog-free pages the allocator
//! never reuses (page ids only ever grew before this module). The
//! [`Maintainer`] closes the loop as a *low-priority background service*:
//! its work is cut into small paced rounds — every inner loop calls
//! [`bd_storage::pacer::checkpoint`] between page visits — so a foreground
//! phase can run it in the gaps between its own chunks (see the
//! maintenance hook on the transactional frontend) and pause or cancel it
//! at any page boundary.
//!
//! One maintenance **cycle** is:
//!
//! 1. **Heap release** — [`bd_storage::HeapFile::release_empty_pages`]
//!    drops record-free heap pages from the page list *and* the free-space
//!    map (fixing the FSM/catalog drift where `find_page` could steer an
//!    insert into a released page).
//! 2. **Incremental packing** — an [`IncrementalPacker`] per B-tree index
//!    walks the base level a few subtrees per round, shifting live leaf
//!    entries left in place and freeing emptied trailing leaves. Unlike the
//!    stop-the-world `CompactLeaves`, a pause leaves a consistent packed
//!    prefix and the pass resumes behind a key cursor.
//! 3. **Recycle** — once every packer finished its pass,
//!    [`bd_btree::sweep_detached_inners`] unlinks catalog-free nodes from
//!    the inner sibling chains; any catalog-free page *not* still threaded
//!    into a leaf chain is then durably zeroed and handed to the allocator
//!    ([`bd_storage::BufferPool::reclaim_page`]), so the next allocation
//!    reuses it instead of growing the file. Zero-on-reuse keeps erasure
//!    proofs honest: a recycled page can never resurrect deleted bytes.
//! 4. **Prewarm** — [`bd_btree::BTree::prewarm`] reloads each index's hot
//!    upper levels into the buffer pool, restoring the working set the
//!    delete phase (or a crash) just evicted.
//!
//! The chained-leaf exclusion in step 3 is load-bearing: an all-zero page
//! decodes as an empty leaf whose right sibling is page 0, so a freed leaf
//! still threaded into a live sibling chain must keep its bytes until a
//! later pack pass has rewritten the chain around it. Pages freed *during*
//! a cycle therefore wait at most one more cycle before they recycle.

use std::collections::{HashMap, HashSet};

use bd_btree::{sweep_detached_inners, IncrementalPacker, LeafPages};
use bd_storage::PageId;

use crate::db::{Database, TableId};
use crate::error::{DbError, DbResult};

/// Budgets for one maintenance round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceConfig {
    /// Base subtrees each index's packer advances per round. Smaller values
    /// yield to the foreground more often; the pass just takes more rounds.
    pub pack_subtrees: usize,
    /// Page budget for each index's end-of-cycle prewarm (0 disables it).
    pub prewarm_pages: usize,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            pack_subtrees: 8,
            prewarm_pages: 64,
        }
    }
}

/// Cumulative counters across every round a [`Maintainer`] has run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Rounds run.
    pub rounds: u64,
    /// Full cycles completed (every packer finished, recycle + prewarm ran).
    pub cycles: u64,
    /// Empty heap pages released (page list + FSM entry dropped, page
    /// freed).
    pub heap_pages_released: usize,
    /// Base subtrees packed by the incremental packers.
    pub subtrees_packed: usize,
    /// Leaf and base pages freed by packing.
    pub pack_pages_freed: usize,
    /// Freed inner nodes unlinked from level chains before recycling.
    pub inners_unlinked: usize,
    /// Free pages durably zeroed and returned to the allocator.
    pub pages_reclaimed: usize,
    /// Index pages prewarmed into the buffer pool.
    pub pages_prewarmed: usize,
}

/// The incremental maintenance daemon. Create one per database and call
/// [`Maintainer::run_round`] whenever the foreground has a gap; every round
/// is internally paced, so an installed [`bd_storage::Pacer`] can pause or
/// cancel it between page visits.
#[derive(Debug, Default)]
pub struct Maintainer {
    cfg: MaintenanceConfig,
    /// One resumable pack pass per `(table, indexed attribute)`.
    packers: HashMap<(TableId, usize), IncrementalPacker>,
    report: MaintenanceReport,
}

impl Maintainer {
    /// A fresh daemon with the given round budgets.
    pub fn new(cfg: MaintenanceConfig) -> Self {
        Maintainer {
            cfg,
            ..Maintainer::default()
        }
    }

    /// Cumulative counters so far.
    pub fn report(&self) -> &MaintenanceReport {
        &self.report
    }

    /// Run one bounded maintenance round: release empty heap pages, advance
    /// every unfinished pack pass by the configured subtree budget, and —
    /// when all passes completed — finish the cycle (sweep, recycle,
    /// prewarm) and rewind the packers for the next one. Returns `true`
    /// when this round completed a cycle.
    pub fn run_round(&mut self, db: &mut Database) -> DbResult<bool> {
        self.report.rounds += 1;
        for tid in 0..db.n_tables() {
            self.release_heap(db, tid)?;
        }
        let mut all_done = true;
        for tid in 0..db.n_tables() {
            let attrs: Vec<usize> = db.table(tid)?.indices.iter().map(|i| i.def.attr).collect();
            for attr in attrs {
                if !self.pack_index(db, tid, attr)? {
                    all_done = false;
                }
            }
        }
        if !all_done {
            return Ok(false);
        }
        self.finish_cycle(db)?;
        Ok(true)
    }

    /// Run rounds until a full cycle completes. A paused pacer parks the
    /// call inside a round; a cancelled pacer unwinds it with
    /// [`bd_storage::StorageError::Cancelled`].
    pub fn run_cycle(&mut self, db: &mut Database) -> DbResult<()> {
        while !self.run_round(db)? {}
        Ok(())
    }

    /// Release record-free heap pages of one table (page list + free-space
    /// map entry dropped, page freed). Detach-only: no live page is
    /// rewritten, so a crash anywhere inside leaves the heap consistent.
    pub fn release_heap(&mut self, db: &mut Database, tid: TableId) -> DbResult<usize> {
        let (parts, _, _) = db.parts(tid)?;
        let released = parts.heap.release_empty_pages().map_err(DbError::Storage)?;
        self.report.heap_pages_released += released.len();
        Ok(released.len())
    }

    /// Advance one index's pack pass by the configured subtree budget.
    /// Returns `true` once the pass has walked its whole base level. Unlike
    /// the other phases this *rewrites live pages without logging them*, so
    /// a durable caller must run it under a WAL maintenance bracket.
    pub fn pack_index(&mut self, db: &mut Database, tid: TableId, attr: usize) -> DbResult<bool> {
        let packer = self.packers.entry((tid, attr)).or_default();
        if packer.is_done() {
            return Ok(true);
        }
        let (parts, _, _) = db.parts(tid)?;
        let tree = &mut parts
            .indices
            .iter_mut()
            .find(|i| i.def.attr == attr)
            .ok_or(DbError::NoProbeIndex { attr })?
            .tree;
        let p = packer
            .step(tree, self.cfg.pack_subtrees)
            .map_err(DbError::Storage)?;
        self.report.subtrees_packed += p.subtrees;
        self.report.pack_pages_freed += p.pages_freed;
        Ok(p.done)
    }

    /// Unlink catalog-free nodes from one index's inner sibling chains.
    /// Rewrites live sibling pointers — bracket like [`Maintainer::pack_index`].
    pub fn sweep_index(&mut self, db: &mut Database, tid: TableId, attr: usize) -> DbResult<usize> {
        let table = db.table(tid)?;
        let ix = table
            .indices
            .iter()
            .find(|i| i.def.attr == attr)
            .ok_or(DbError::NoProbeIndex { attr })?;
        let n = sweep_detached_inners(&ix.tree).map_err(DbError::Storage)?;
        self.report.inners_unlinked += n;
        Ok(n)
    }

    /// Durably zero and return to the allocator every catalog-free page not
    /// still threaded into some leaf sibling chain. Only call after every
    /// index's inner chains were swept this cycle. Writes only free pages,
    /// so it needs no bracket: a crash or tear mid-zero leaves a free page
    /// with stale or torn bytes, which the next cycle (or media recovery)
    /// handles with no rebuild.
    pub fn recycle(&mut self, db: &mut Database) -> DbResult<usize> {
        // A freed leaf still threaded into some tree's sibling chain (the
        // completed pack pass detaches its own tree's, but pages freed
        // mid-cycle remain chained) keeps its bytes until a later cycle.
        let mut chained: HashSet<PageId> = HashSet::new();
        for tid in 0..db.n_tables() {
            let table = db.table(tid)?;
            for ix in &table.indices {
                for pid in LeafPages::new(&ix.tree).map_err(DbError::Storage)? {
                    chained.insert(pid.map_err(DbError::Storage)?);
                }
            }
        }
        let mut reclaimed = 0usize;
        for pid in db.pool().reclaimable_pages() {
            bd_storage::pacer::checkpoint().map_err(DbError::Storage)?;
            if chained.contains(&pid) {
                continue;
            }
            if db.pool().reclaim_page(pid).map_err(DbError::Storage)? {
                reclaimed += 1;
            }
        }
        self.report.pages_reclaimed += reclaimed;
        Ok(reclaimed)
    }

    /// Reload every index's hot upper levels into the buffer pool, up to
    /// the configured page budget per index. Read-only.
    pub fn prewarm(&mut self, db: &Database) -> DbResult<usize> {
        let mut warmed = 0usize;
        if self.cfg.prewarm_pages == 0 {
            return Ok(0);
        }
        for tid in 0..db.n_tables() {
            let table = db.table(tid)?;
            for ix in &table.indices {
                warmed += ix
                    .tree
                    .prewarm(self.cfg.prewarm_pages)
                    .map_err(DbError::Storage)?;
            }
        }
        self.report.pages_prewarmed += warmed;
        Ok(warmed)
    }

    /// Rewind every pack pass and count a completed cycle. Call once the
    /// cycle's sweep/recycle/prewarm tail has run.
    pub fn end_cycle(&mut self) {
        for p in self.packers.values_mut() {
            p.reset();
        }
        self.report.cycles += 1;
    }

    /// End-of-cycle work, once every pack pass has walked its whole tree:
    /// unlink freed inners from the level chains, recycle every free page
    /// not still threaded into a leaf chain, prewarm the hot levels, and
    /// rewind the packers.
    fn finish_cycle(&mut self, db: &mut Database) -> DbResult<()> {
        // Inner chains first: after the sweep, the only chain references
        // into catalog-free pages left anywhere are lazy *leaves*.
        for tid in 0..db.n_tables() {
            let attrs: Vec<usize> = db.table(tid)?.indices.iter().map(|i| i.def.attr).collect();
            for attr in attrs {
                self.sweep_index(db, tid, attr)?;
            }
        }
        self.recycle(db)?;
        self.prewarm(db)?;
        self.end_cycle();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IndexDef;
    use crate::db::DatabaseConfig;
    use crate::strategy;
    use crate::tuple::{Schema, Tuple};
    use bd_btree::{BTreeConfig, ReorgPolicy};

    // High-entropy keys so the erasure byte scan cannot collide with page
    // metadata or shifted images of small live values.
    fn skey(i: u64) -> u64 {
        0xACE7_0000_0000_0000 | (i * 0x0101 + 1)
    }

    fn row(k: u64) -> Tuple {
        Tuple::new(vec![k, k % 97, k % 7])
    }

    /// Small fanout so every index has many base subtrees (a real
    /// incremental pass, not a single-step one).
    fn db_with_keys(keys: impl Iterator<Item = u64>) -> (Database, TableId) {
        let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 22));
        let tid = db.create_table("R", Schema::new(3, 64));
        let cfg = BTreeConfig::with_fanout(16);
        db.create_index(tid, IndexDef::secondary(0).unique().with_config(cfg))
            .unwrap();
        db.create_index(tid, IndexDef::secondary(1).with_config(cfg))
            .unwrap();
        for k in keys {
            db.insert(tid, &row(k)).unwrap();
        }
        (db, tid)
    }

    fn file_pages(db: &Database) -> usize {
        db.pool().with_disk(|d| d.num_pages())
    }

    #[test]
    fn cycle_recycles_pages_and_bounds_growth() {
        // Sliding-window workload: each round deletes the oldest 2000 keys
        // and inserts 2000 fresh ones, so the live set stays at 4000 rows.
        // Without recycling the file grows by roughly a window per round.
        const N: u64 = 4000;
        const W: u64 = 2000;
        let (mut db, tid) = db_with_keys(0..N);
        let mut m = Maintainer::new(MaintenanceConfig::default());

        for r in 0..4u64 {
            let d: Vec<u64> = (r * W..(r + 1) * W).collect();
            strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1).unwrap();
            m.run_cycle(&mut db).unwrap();
            db.check_consistency(tid).unwrap();
            let audit = crate::audit::audit_catalog(&db, tid).unwrap();
            assert!(audit.is_clean(), "{:?}", audit.findings);
            for k in N + r * W..N + (r + 1) * W {
                db.insert(tid, &row(k)).unwrap();
            }
        }
        // One settling cycle: pages freed during the last cycle recycle in
        // the next one.
        m.run_cycle(&mut db).unwrap();
        m.run_cycle(&mut db).unwrap();

        let rep = *m.report();
        assert!(rep.cycles >= 6);
        assert!(rep.pages_reclaimed > 0, "{rep:?}");
        assert!(rep.subtrees_packed > 0, "{rep:?}");
        assert!(rep.heap_pages_released > 0, "{rep:?}");
        assert!(rep.pages_prewarmed > 0, "{rep:?}");

        // Steady state: the whole file (live pages + recyclable slack) stays
        // within 2x of a freshly loaded copy of the same live rows, instead
        // of accumulating four rounds of leaked windows.
        let live_keys = 4 * W..N + 4 * W;
        let (fresh, _) = db_with_keys(live_keys);
        let (total, fresh_total) = (file_pages(&db), file_pages(&fresh));
        assert!(
            total <= fresh_total * 2,
            "steady-state file is {total} pages vs freshly loaded {fresh_total}"
        );

        // And the allocator actually draws from the recycled set: another
        // window of inserts must not grow the file page-for-page.
        let before = file_pages(&db);
        let reusable = db.pool().n_reusable();
        for k in N + 4 * W..N + 4 * W + 500 {
            db.insert(tid, &row(k)).unwrap();
        }
        let grown = file_pages(&db) - before;
        assert!(
            grown == 0 || reusable == 0,
            "file grew by {grown} pages while {reusable} recycled pages sat idle"
        );
    }

    #[test]
    fn recycled_pages_pass_erasure_verification() {
        let (mut db, tid) = db_with_keys((0..2000).map(skey));
        // Delete rows carrying a sensitive middle band of attribute-0 keys.
        let sensitive: Vec<u64> = (500..1500).map(skey).collect();
        strategy::vertical_auto(&mut db, tid, 0, &sensitive, ReorgPolicy::FreeAtEmpty, 1).unwrap();
        let mut m = Maintainer::new(MaintenanceConfig::default());
        m.run_cycle(&mut db).unwrap();
        assert!(m.report().pages_reclaimed > 0);
        // Scrub live-page residue, then prove deletion: the recycled pages
        // were zeroed through the durable write path, so no deleted value
        // survives anywhere — including pages the allocator already reused.
        crate::erasure::scrub_database(&mut db).unwrap();
        let report = crate::erasure::verify_erasure(&db, &sensitive, &[]).unwrap();
        assert!(report.is_clean(), "residue: {:?}", report.residue);
        db.check_consistency(tid).unwrap();
    }

    #[test]
    fn paused_maintenance_leaves_a_consistent_database() {
        let (mut db, tid) = db_with_keys(0..3000);
        let d: Vec<u64> = (0..3000u64).filter(|k| k % 3 != 0).collect();
        strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1).unwrap();

        let mut m = Maintainer::new(MaintenanceConfig {
            pack_subtrees: 1,
            prewarm_pages: 16,
        });
        // Stop after every single round: each stop is a consistent state.
        let mut rounds = 0;
        loop {
            let done = m.run_round(&mut db).unwrap();
            db.check_consistency(tid).unwrap();
            let audit = crate::audit::audit_catalog(&db, tid).unwrap();
            assert!(audit.is_clean(), "{:?}", audit.findings);
            rounds += 1;
            assert!(rounds < 10_000, "maintenance does not converge");
            if done {
                break;
            }
        }
        assert!(rounds > 1, "expected a multi-round incremental pass");
    }
}
