//! The delete strategies the paper compares.
//!
//! * [`horizontal`] — the traditional record-at-a-time executor: probe the
//!   index on the delete attribute per key, delete the record from the
//!   heap, and "immediately remove it from all indices", each removal a
//!   root-to-leaf traversal. With `presort = true` this is the paper's
//!   `sorted/trad` series; with `false`, `not sorted/trad`.
//! * [`drop_create`] — drop all secondary indices, run the (sorted)
//!   traditional delete against the remaining probe index, then rebuild the
//!   dropped indices by scan + sort + bulk load (the Fig. 1/8 baseline).
//! * [`vertical`] — the paper's contribution: delete *per structure*, one
//!   set-oriented `⋈̄` at a time, following a [`DeletePlan`].
//!
//! The vertical and drop&create strategies run on the
//! [`PhaseExecutor`](crate::executor::PhaseExecutor): the serial prefix
//! (sort `D`, the key-predicate `⋈̄`, the table pass, and §3.1's
//! unique-index arms) in plan order, then one independent arm per remaining
//! secondary index and hash index. Every entry point takes a
//! `workers: usize` — `1` runs the arms on the caller's thread, `> 1`
//! dispatches them to worker threads; because each arm touches only its own
//! structure's pages, the physical result is identical to the serial run —
//! only the critical-path clock shrinks. (The historical `*_parallel`
//! twins survive as deprecated shims.)
//!
//! Every strategy returns the same [`DeleteOutcome`] and leaves the table
//! and indices in exactly equivalent states (property-tested, and audited
//! serial-vs-parallel).

use std::sync::Arc;
use std::sync::Mutex;

use bd_btree::{bulk_delete_by_keys, bulk_delete_probe, bulk_delete_sorted, Key, ReorgPolicy};
use bd_exec::{range_partitions, sort_all, ByRid, RidSet, BYTES_PER_RID};
use bd_storage::{BufferPool, MemoryBudget, Rid, StorageResult, StructureId};

use crate::catalog::{HashIdx, Index, IndexDef};
use crate::db::{Database, TableId};
use crate::error::{DbError, DbResult};
use crate::executor::{PhaseExecutor, PhaseTask};
use crate::plan::{DeletePlan, IndexMethod, TableMethod};
use crate::planner::plan_sort_merge;
use crate::report::{measure, DegradeEvent, PhaseRow, RunReport};
use crate::tuple::{Schema, Tuple};

/// What a strategy deleted, plus its cost report.
#[derive(Debug)]
pub struct DeleteOutcome {
    /// Cost report (simulated time, I/O counters).
    pub report: RunReport,
    /// The deleted rows, in the order the strategy removed them from the
    /// heap (available for archiving or bulk re-insertion).
    pub deleted: Vec<(Rid, Tuple)>,
}

/// What the table-and-index passes of a strategy hand back to `measure`:
/// the deleted rows, the per-phase I/O rows the executor recorded, and any
/// graceful-degradation events.
type RowsAndPhases = (Vec<(Rid, Tuple)>, Vec<PhaseRow>, Vec<DegradeEvent>);

/// The planner's per-index steps, as `(position in catalog, ⋈̄ method)`.
type IndexSteps = Vec<(usize, IndexMethod)>;

fn probe_pos(indices: &[Index], attr: usize) -> DbResult<usize> {
    indices
        .iter()
        .position(|i| i.def.attr == attr)
        .ok_or(DbError::NoProbeIndex { attr })
}

/// Traditional horizontal delete (`sorted/trad` when `presort`, else
/// `not sorted/trad`).
pub fn horizontal(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    presort: bool,
) -> DbResult<DeleteOutcome> {
    let (parts, ws, pool) = db.parts(tid)?;
    let pos = probe_pos(parts.indices, probe_attr)?;
    let schema = parts.schema;
    let heap = parts.heap;
    let indices = parts.indices;
    let hash_indices = parts.hash_indices;
    let label = if presort {
        "sorted/trad"
    } else {
        "not sorted/trad"
    };

    let (deleted, mut report) = measure(&pool, label, || {
        let keys: Vec<Key> = if presort {
            sort_all(
                pool.clone(),
                d_keys.iter().copied(),
                ws.capacity().max(4096),
            )?
            .0
        } else {
            d_keys.to_vec()
        };
        let mut deleted: Vec<(Rid, Tuple)> = Vec::new();
        for &key in &keys {
            // Find the victims through the probe index, then delete the
            // record and immediately remove it from every index —
            // one root-to-leaf traversal per index per record.
            let rids = indices[pos].tree.search(key)?;
            for rid in rids {
                let bytes = heap.delete(rid)?;
                for index in indices.iter_mut() {
                    let k = schema.attr_of(&bytes, index.def.attr);
                    let existed = index.tree.delete_one(k, rid)?;
                    debug_assert!(existed, "index entry missing for rid {rid}");
                }
                for h in hash_indices.iter_mut() {
                    h.index.delete(schema.attr_of(&bytes, h.def.attr), rid)?;
                }
                deleted.push((rid, schema.decode(&bytes)));
            }
        }
        Ok(deleted)
    })?;
    report.deleted = deleted.len();
    Ok(DeleteOutcome { report, deleted })
}

/// How `drop & create` rebuilds the dropped indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildMode {
    /// Scan + external sort + bottom-up bulk load (what a modern system,
    /// and the commercial RDBMS of Fig. 1, does).
    BulkLoad,
    /// Record-at-a-time inserts into a fresh tree (the paper's prototype:
    /// "Apparently, creating indices is slower in our prototype than in
    /// the commercial database system" — Fig. 8's drop&create series).
    InsertEach,
}

/// The *drop & create* baseline: drop secondary indices, delete with the
/// probe index only (sorted traditional), rebuild the dropped indices.
///
/// With `workers > 1` the rebuild arms are dispatched to up to `workers`
/// threads — each dropped index is rebuilt independently (scan + sort +
/// load touch only that index's pages and scratch segments); `workers = 1`
/// runs everything on the caller's thread.
pub fn drop_create(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    rebuild: RebuildMode,
    workers: usize,
) -> DbResult<DeleteOutcome> {
    let (parts, ws, pool) = db.parts(tid)?;
    probe_pos(parts.indices, probe_attr)?; // validate before measuring
    let schema = parts.schema;
    let heap = parts.heap;
    let indices = parts.indices;
    let hash_indices = parts.hash_indices;

    let ((deleted, phases, events), mut report) = measure(&pool, "drop&create", || {
        execute_drop_create(
            &pool,
            &ws,
            tid,
            schema,
            heap,
            indices,
            hash_indices,
            probe_attr,
            d_keys,
            rebuild,
            workers,
        )
    })?;
    report.deleted = deleted.len();
    report.phases = phases;
    report.workers = workers.max(1);
    report.events = events;
    Ok(DeleteOutcome { report, deleted })
}

#[allow(clippy::too_many_arguments)] // split borrows of one table
fn execute_drop_create(
    pool: &Arc<BufferPool>,
    ws: &Arc<MemoryBudget>,
    tid: TableId,
    schema: Schema,
    heap: &mut bd_storage::HeapFile,
    indices: &mut Vec<Index>,
    hash_indices: &mut [HashIdx],
    probe_attr: usize,
    d_keys: &[Key],
    rebuild: RebuildMode,
    workers: usize,
) -> StorageResult<RowsAndPhases> {
    let ws_bytes = ws.capacity().max(4096);
    let mut exec = PhaseExecutor::new(workers);

    // Drop every index except the probe index (still needed to find the
    // records to delete). Catalog-only: no I/O, no phase row.
    let mut dropped: Vec<IndexDef> = Vec::new();
    let mut i = 0;
    while i < indices.len() {
        if indices[i].def.attr != probe_attr {
            dropped.push(indices.remove(i).def);
        } else {
            i += 1;
        }
    }
    let pos = indices
        .iter()
        .position(|ix| ix.def.attr == probe_attr)
        .expect("probe index kept");
    debug_assert!(pos == 0 || pos < indices.len());

    // Sorted traditional delete against heap + probe index.
    let keys: Vec<Key> = exec.serial("sort(D)", || {
        Ok(sort_all(pool.clone(), d_keys.iter().copied(), ws_bytes)?.0)
    })?;
    let deleted: Vec<(Rid, Tuple)> = exec.serial("trad delete (probe+heap)", || {
        let mut deleted: Vec<(Rid, Tuple)> = Vec::new();
        for &key in &keys {
            let rids = indices[pos].tree.search(key)?;
            for rid in rids {
                let bytes = heap.delete(rid)?;
                let k = schema.attr_of(&bytes, probe_attr);
                indices[pos].tree.delete_one(k, rid)?;
                for h in hash_indices.iter_mut() {
                    h.index.delete(schema.attr_of(&bytes, h.def.attr), rid)?;
                }
                deleted.push((rid, schema.decode(&bytes)));
            }
        }
        Ok(deleted)
    })?;

    // Re-create the dropped indices — one independent arm per index. Each
    // arm scans the (now immutable) heap and builds only its own tree, so
    // the arms are safe to dispatch concurrently.
    let n_arms = dropped.len();
    if n_arms > 0 {
        let concurrency = workers.clamp(1, n_arms);
        let arm_bytes = if concurrency > 1 {
            (ws_bytes / concurrency).max(4096)
        } else {
            ws_bytes
        };
        let heap: &bd_storage::HeapFile = heap;
        let slots: Vec<Mutex<Option<Index>>> = (0..n_arms).map(|_| Mutex::new(None)).collect();
        let mut tasks: Vec<PhaseTask> = Vec::new();
        for (slot, def) in slots.iter().zip(dropped) {
            let tag = match rebuild {
                RebuildMode::BulkLoad => "bulk load",
                RebuildMode::InsertEach => "insert each",
            };
            let name = format!("rebuild {} ({tag})", def.name);
            let pool = pool.clone();
            tasks.push(PhaseTask::new(name, move || {
                let tree = match rebuild {
                    RebuildMode::BulkLoad => {
                        let mut scan = heap.scan();
                        let entries =
                            (&mut scan).map(|(rid, bytes)| (schema.attr_of(&bytes, def.attr), rid));
                        let (sorted, _) = sort_all(pool.clone(), entries, arm_bytes)?;
                        // A fused scan would rebuild the index without the
                        // unread pages' records — abort instead.
                        if let Some(e) = scan.take_error() {
                            return Err(e);
                        }
                        bd_btree::bulk_load(
                            pool.clone(),
                            def.config,
                            &sorted,
                            def.fill,
                            StructureId::index_of(tid, def.attr),
                        )?
                    }
                    RebuildMode::InsertEach => {
                        let mut tree = bd_btree::BTree::create(
                            pool.clone(),
                            def.config,
                            StructureId::index_of(tid, def.attr),
                        )?;
                        for (rid, bytes) in heap.dump()? {
                            tree.insert(schema.attr_of(&bytes, def.attr), rid)?;
                        }
                        tree
                    }
                };
                // Clone: the body is `FnMut` so a degradation re-run can
                // rebuild from scratch; `def` must survive the first call.
                *slot.lock().expect("rebuild slot lock") = Some(Index {
                    def: def.clone(),
                    tree,
                });
                Ok(())
            }));
        }
        exec.fan_out(tasks)?;
        for slot in slots {
            let index = slot
                .into_inner()
                .expect("rebuild slot lock")
                .expect("rebuild arm completed");
            indices.push(index);
        }
    }
    let (rows, events) = exec.into_parts();
    Ok((deleted, rows, events))
}

/// The vertical (set-oriented) bulk delete, following `plan`.
///
/// With `workers > 1` the independent `⋈̄` arms (non-unique secondary
/// indices and hash indices) are dispatched to up to `workers` threads;
/// `workers = 1` runs them on the caller's thread.
///
/// §3.1's ordering is preserved either way: unique-index arms run first,
/// serially, so they come back online before the fan-out. The physical end
/// state is identical to the serial run; the report additionally carries
/// the critical-path clock ([`RunReport::critical_path_ms`]).
pub fn vertical(
    db: &mut Database,
    tid: TableId,
    d_keys: &[Key],
    plan: &DeletePlan,
    policy: ReorgPolicy,
    workers: usize,
) -> DbResult<DeleteOutcome> {
    let (parts, ws, pool) = db.parts(tid)?;
    let pos = probe_pos(parts.indices, plan.probe_attr)?;
    // Resolve index-step positions up front (plan may be stale).
    let step_pos: Vec<(usize, IndexMethod)> = plan
        .index_steps
        .iter()
        .map(|s| {
            parts
                .indices
                .iter()
                .position(|i| i.def.attr == s.attr)
                .map(|p| (p, s.method))
                .ok_or(DbError::NoSuchIndex { attr: s.attr })
        })
        .collect::<DbResult<_>>()?;
    let schema = parts.schema;
    let heap = parts.heap;
    let indices = parts.indices;
    let hash_indices = parts.hash_indices;
    let table_method = plan.table;

    let ((deleted, phases, events), mut report) = measure(&pool, "bulk delete", || {
        execute_vertical(
            &pool,
            &ws,
            schema,
            heap,
            indices,
            hash_indices,
            pos,
            &step_pos,
            table_method,
            d_keys,
            policy,
            workers,
        )
    })?;
    report.deleted = deleted.len();
    report.phases = phases;
    report.workers = workers.max(1);
    report.events = events;
    Ok(DeleteOutcome { report, deleted })
}

/// One downstream index `⋈̄` arm: consume the deleted-record stream and
/// remove the matching entries from `index` by `method`. Runs unchanged on
/// the caller's thread (serial phases, unique arms) or on a worker.
#[allow(clippy::too_many_arguments)] // one arm's full environment, passed by value to workers
fn run_index_arm(
    pool: &Arc<BufferPool>,
    ws: &MemoryBudget,
    sort_bytes: usize,
    schema: Schema,
    index: &mut Index,
    method: IndexMethod,
    deleted_rows: &[(Rid, Vec<u8>)],
    policy: ReorgPolicy,
) -> StorageResult<()> {
    let attr = index.def.attr;
    let tree = &mut index.tree;
    match method {
        IndexMethod::SortMerge { presort } => {
            let pairs: Vec<(Key, Rid)> = if presort {
                let proj = deleted_rows
                    .iter()
                    .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid));
                sort_all(pool.clone(), proj, sort_bytes)?.0
            } else {
                // Clustered downstream index: RID order implies key
                // order, so the projection arrives sorted.
                let pairs: Vec<(Key, Rid)> = deleted_rows
                    .iter()
                    .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid))
                    .collect();
                debug_assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
                pairs
            };
            bulk_delete_sorted(tree, &pairs, policy)?;
        }
        IndexMethod::ClassicHash => {
            // "On a single-processor machine the same hash table can be
            // used" — we rebuild it per index; the footprint is
            // identical and the build is CPU-only. Concurrent arms each
            // hold a reservation against the shared workspace budget, so
            // oversubscription fails honestly instead of silently.
            let set = RidSet::build(ws, deleted_rows.iter().map(|e| e.0))?;
            bulk_delete_probe(tree, set.as_set(), None, policy)?;
        }
        IndexMethod::PartitionedHash { .. } => {
            let proj = deleted_rows
                .iter()
                .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid));
            let (pairs, _) = sort_all(pool.clone(), proj, sort_bytes)?;
            let per_part = (sort_bytes / BYTES_PER_RID).max(1);
            for part in range_partitions(&pairs, per_part) {
                let set = RidSet::build(ws, part.rids())?;
                bulk_delete_probe(tree, set.as_set(), Some((part.lo, part.hi)), policy)?;
            }
        }
    }
    Ok(())
}

fn method_tag(method: IndexMethod) -> &'static str {
    match method {
        IndexMethod::SortMerge { .. } => "sort/merge",
        IndexMethod::ClassicHash => "hash probe",
        IndexMethod::PartitionedHash { .. } => "partitioned hash",
    }
}

#[allow(clippy::too_many_arguments)] // split borrows of one table
fn execute_vertical(
    pool: &Arc<BufferPool>,
    ws: &Arc<MemoryBudget>,
    schema: Schema,
    heap: &mut bd_storage::HeapFile,
    indices: &mut [Index],
    hash_indices: &mut [HashIdx],
    probe: usize,
    steps: &[(usize, IndexMethod)],
    table_method: TableMethod,
    d_keys: &[Key],
    policy: ReorgPolicy,
    workers: usize,
) -> StorageResult<RowsAndPhases> {
    let ws_bytes = ws.capacity().max(4096);
    let mut exec = PhaseExecutor::new(workers);

    // Step 1: sort D on the probe key (sort_D in Fig. 3).
    let keys: Vec<Key> = exec.serial("sort(D)", || {
        Ok(sort_all(pool.clone(), d_keys.iter().copied(), ws_bytes)?.0)
    })?;

    // Step 2: D ⋈̄ I_A — key-predicate sort/merge bulk delete; its output is
    // the list of (A, RID) entries removed.
    let deleted_a = exec.serial(
        format!("bd {} (key merge)", indices[probe].def.name),
        || bulk_delete_by_keys(&mut indices[probe].tree, &keys, policy),
    )?;

    // Step 3: ⋈̄ R — delete the records from the base table.
    let deleted_rows: Vec<(Rid, Vec<u8>)> = exec.serial("bd R (table)", || match table_method {
        TableMethod::Merge { presort } => {
            let rids: Vec<Rid> = if presort {
                let (sorted, _) = sort_all(
                    pool.clone(),
                    deleted_a.iter().map(|&(k, r)| ByRid(r, k)),
                    ws_bytes,
                )?;
                sorted.into_iter().map(|b| b.0).collect()
            } else {
                // Clustered probe index: already in RID order.
                let rids: Vec<Rid> = deleted_a.iter().map(|e| e.1).collect();
                debug_assert!(rids.windows(2).all(|w| w[0] <= w[1]));
                rids
            };
            heap.bulk_delete_sorted(&rids)
        }
        TableMethod::HashProbe => {
            let set = RidSet::build(ws, deleted_a.iter().map(|e| e.1))?;
            heap.bulk_delete_probe(set.as_set())
        }
    })?;

    // Step 4: pipe the deleted rows into one ⋈̄ per remaining index.
    //
    // §3.1: unique indices first, serially — they can be brought back
    // online before anything else runs. The planner already orders them
    // first in `index_steps`; the partition below keeps that guarantee
    // even against a hand-built plan.
    let (unique_steps, fan_steps): (IndexSteps, IndexSteps) = steps
        .iter()
        .copied()
        .partition(|&(ipos, _)| indices[ipos].def.unique);

    for &(ipos, method) in &unique_steps {
        let name = format!("bd {} ({})", indices[ipos].def.name, method_tag(method));
        let index = &mut indices[ipos];
        let deleted_rows = &deleted_rows;
        exec.serial(name, || {
            run_index_arm(
                pool,
                ws,
                ws_bytes,
                schema,
                index,
                method,
                deleted_rows,
                policy,
            )
        })?;
    }

    // The fan-out group: one arm per remaining secondary index, plus one
    // per hash index ("updated in the traditional way" — the chain walks
    // of one hash index are independent of every other structure). Arms
    // borrow disjoint structures, so the group can run on worker threads.
    let n_arms = fan_steps.len() + hash_indices.len();
    if n_arms > 0 {
        let concurrency = workers.clamp(1, n_arms);
        // Concurrent arms split the sort workspace; the serial path keeps
        // the full budget (bit-identical to the pre-executor behaviour).
        let arm_bytes = if concurrency > 1 {
            (ws_bytes / concurrency).max(4096)
        } else {
            ws_bytes
        };

        // Disjoint `&mut Index` borrows for the fan-out arms, re-ordered
        // to match plan order (iter_mut yields catalog order).
        let rank_of = |ipos: usize| fan_steps.iter().position(|&(p, _)| p == ipos);
        let mut arm_indices: Vec<(usize, &mut Index)> = indices
            .iter_mut()
            .enumerate()
            .filter_map(|(i, ix)| rank_of(i).map(|r| (r, ix)))
            .collect();
        arm_indices.sort_by_key(|&(r, _)| r);

        let deleted_rows = &deleted_rows;
        let ws: &MemoryBudget = ws;
        let mut tasks: Vec<PhaseTask> = Vec::new();
        for ((_, index), &(_, method)) in arm_indices.into_iter().zip(fan_steps.iter()) {
            let name = format!("bd {} ({})", index.def.name, method_tag(method));
            let pool = pool.clone();
            tasks.push(PhaseTask::new(name, move || {
                run_index_arm(
                    &pool,
                    ws,
                    arm_bytes,
                    schema,
                    index,
                    method,
                    deleted_rows,
                    policy,
                )
            }));
        }
        for h in hash_indices.iter_mut() {
            let name = format!("{} (traditional)", h.def.name);
            let attr = h.def.attr;
            tasks.push(PhaseTask::new(name, move || {
                let entries: Vec<(Key, Rid)> = deleted_rows
                    .iter()
                    .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid))
                    .collect();
                h.index.bulk_delete(&entries)?;
                Ok(())
            }));
        }
        exec.fan_out(tasks)?;
    }

    let (rows, events) = exec.into_parts();
    Ok((
        deleted_rows
            .into_iter()
            .map(|(rid, bytes)| (rid, schema.decode(&bytes)))
            .collect(),
        rows,
        events,
    ))
}

/// Plan with the optimizer, then run [`vertical`] with `workers` arms.
/// Returns the plan used.
pub fn vertical_auto(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    policy: ReorgPolicy,
    workers: usize,
) -> DbResult<(DeletePlan, DeleteOutcome)> {
    let ws_bytes = db.workspace().capacity();
    let plan = crate::planner::plan_delete(db.table(tid)?, probe_attr, d_keys.len(), ws_bytes)?;
    let outcome = vertical(db, tid, d_keys, &plan, policy, workers)?;
    Ok((plan, outcome))
}

/// Vertical bulk delete with referential-integrity enforcement: every
/// registered constraint on `(tid, probe_attr)` is processed *vertically
/// and early* — one read-only sorted merge per child index — before any
/// destructive pass, "so that no work needs to be undone if an integrity
/// constraint fails" (§2.2).
///
/// CASCADE closure is computed by [`crate::erasure::plan_cascade`]'s
/// worklist fixpoint, so constraint *cycles* (self-referencing tables,
/// mutually referencing tables) terminate with the complete delete set —
/// the previous depth-first walk guarded revisits with a visited set and
/// silently dropped keys discovered on a second visit, leaving dangling
/// references. Execution order is children first, root last, and a
/// RESTRICT anywhere in the graph aborts during planning with nothing
/// modified. Returns the root table's outcome.
pub fn vertical_with_constraints(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    policy: ReorgPolicy,
) -> DbResult<DeleteOutcome> {
    let plan = crate::erasure::plan_cascade(db, tid, probe_attr, d_keys)?;
    let root = plan
        .root_pos(tid, probe_attr)
        .expect("root step always present");
    let mut outcomes = crate::erasure::run_cascade(db, &plan, policy)?;
    Ok(outcomes.swap_remove(root))
}

/// The paper's benchmark configuration: vertical with sort/merge `⋈̄`s
/// everywhere ("We will only present results that were obtained using
/// sorting and merging"), with `workers` `⋈̄` arms (see [`vertical`]).
pub fn vertical_sort_merge(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    workers: usize,
) -> DbResult<DeleteOutcome> {
    let plan = plan_sort_merge(db.table(tid)?, probe_attr)?;
    vertical(db, tid, d_keys, &plan, ReorgPolicy::FreeAtEmpty, workers)
}

// ---------------------------------------------------------------------------
// Deprecated shims: the serial/parallel entry-point pairs collapsed into the
// base names above (which now take `workers`). Kept so downstream code and
// old examples keep compiling; new code should call the base names.

/// Deprecated alias for [`drop_create`] with an explicit worker count.
#[deprecated(since = "0.10.0", note = "call `drop_create` with `workers`")]
pub fn drop_create_parallel(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    rebuild: RebuildMode,
    workers: usize,
) -> DbResult<DeleteOutcome> {
    drop_create(db, tid, probe_attr, d_keys, rebuild, workers)
}

/// Deprecated alias for [`vertical`] with an explicit worker count.
#[deprecated(since = "0.10.0", note = "call `vertical` with `workers`")]
pub fn vertical_parallel(
    db: &mut Database,
    tid: TableId,
    d_keys: &[Key],
    plan: &DeletePlan,
    policy: ReorgPolicy,
    workers: usize,
) -> DbResult<DeleteOutcome> {
    vertical(db, tid, d_keys, plan, policy, workers)
}

/// Deprecated alias for [`vertical_auto`] with an explicit worker count.
#[deprecated(since = "0.10.0", note = "call `vertical_auto` with `workers`")]
pub fn vertical_auto_parallel(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    policy: ReorgPolicy,
    workers: usize,
) -> DbResult<(DeletePlan, DeleteOutcome)> {
    vertical_auto(db, tid, probe_attr, d_keys, policy, workers)
}

/// Deprecated alias for [`vertical_sort_merge`] with an explicit worker
/// count.
#[deprecated(since = "0.10.0", note = "call `vertical_sort_merge` with `workers`")]
pub fn vertical_sort_merge_parallel(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    workers: usize,
) -> DbResult<DeleteOutcome> {
    vertical_sort_merge(db, tid, probe_attr, d_keys, workers)
}
