//! Bulk UPDATE via bulk delete + bulk insert on the affected indices.
//!
//! §1: "The techniques presented in this paper can also be applied to speed
//! up UPDATE statements; for instance, increasing the salary of
//! above-average Employees involves carrying out a bulk delete (and bulk
//! insert) on the Emp.salary index."
//!
//! [`bulk_update`] applies a tuple transformation to every row matching a
//! key list, rewriting heap records *in place* (fixed-size records keep
//! their RIDs) and maintaining only the indices whose keys actually
//! changed: one set-oriented bulk delete of the old entries followed by the
//! inserts of the new ones.

use std::collections::HashSet;

use bd_btree::{bulk_delete_sorted, lookup_keys_sorted, Key, ReorgPolicy};
use bd_storage::Rid;

use crate::db::{Database, TableId};
use crate::error::{DbError, DbResult};
use crate::report::{measure, RunReport};
use crate::tuple::Tuple;

/// Result of a bulk update.
#[derive(Debug)]
pub struct UpdateOutcome {
    /// Cost report.
    pub report: RunReport,
    /// Number of rows updated.
    pub updated: usize,
    /// Index entries moved (old entry deleted + new entry inserted),
    /// summed over all indices.
    pub index_entries_moved: usize,
}

/// `UPDATE <table> SET ... WHERE <probe_attr> IN (<keys>)`.
///
/// `transform` receives each matching tuple and mutates it. Unique
/// constraints are validated *before* any modification (set-internal swaps
/// are allowed; collisions with untouched rows are not). Returns an error
/// and changes nothing on violation.
pub fn bulk_update(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    keys: &[Key],
    transform: impl Fn(&mut Tuple),
) -> DbResult<UpdateOutcome> {
    let mut keys = keys.to_vec();
    keys.sort_unstable();
    keys.dedup();

    // Read-only victim resolution (sorted merge on the probe index).
    let (rids, old_rows, new_rows) = {
        let table = db.table(tid)?;
        let index = table
            .index_on(probe_attr)
            .ok_or(DbError::NoProbeIndex { attr: probe_attr })?;
        let mut rids: Vec<Rid> = lookup_keys_sorted(&index.tree, &keys)
            .map_err(DbError::Storage)?
            .into_iter()
            .map(|(_, rid)| rid)
            .collect();
        rids.sort_unstable();
        let mut old_rows = Vec::with_capacity(rids.len());
        let mut new_rows = Vec::with_capacity(rids.len());
        for &rid in &rids {
            let bytes = table.heap.get(rid).map_err(DbError::Storage)?;
            let old = table.schema.decode(&bytes);
            let mut new = old.clone();
            transform(&mut new);
            if new.attrs.len() != table.schema.n_attrs {
                return Err(DbError::SchemaMismatch {
                    expected: table.schema.n_attrs,
                    got: new.attrs.len(),
                });
            }
            old_rows.push(old);
            new_rows.push(new);
        }
        (rids, old_rows, new_rows)
    };

    // Validate unique constraints before touching anything.
    {
        let table = db.table(tid)?;
        let updated_rids: HashSet<Rid> = rids.iter().copied().collect();
        for index in table.indices.iter().filter(|i| i.def.unique) {
            let attr = index.def.attr;
            let mut seen: HashSet<Key> = HashSet::new();
            for (i, new) in new_rows.iter().enumerate() {
                let old_k = old_rows[i].attr(attr);
                let new_k = new.attr(attr);
                if !seen.insert(new_k) {
                    return Err(DbError::DuplicateKey { attr, key: new_k });
                }
                if new_k == old_k {
                    continue;
                }
                // Collision with a row outside the update set?
                for rid in index.tree.search(new_k).map_err(DbError::Storage)? {
                    if !updated_rids.contains(&rid) {
                        return Err(DbError::DuplicateKey { attr, key: new_k });
                    }
                }
            }
        }
    }

    let (parts, _, pool) = db.parts(tid)?;
    let schema = parts.schema;
    let heap = parts.heap;
    let indices = parts.indices;
    let hash_indices = parts.hash_indices;
    let ((updated, moved), mut report) = measure(&pool, "bulk update", || {
        // Rewrite the heap records in place (RID order, so the pass is
        // one sequential sweep over the affected pages).
        for (i, &rid) in rids.iter().enumerate() {
            let bytes = schema.encode(&new_rows[i]).expect("validated schema");
            heap.update(rid, &bytes)?;
        }
        // Per index: bulk delete the changed old entries, insert the new.
        let mut moved = 0usize;
        for index in indices.iter_mut() {
            let attr = index.def.attr;
            let mut old_pairs: Vec<(Key, Rid)> = Vec::new();
            let mut new_pairs: Vec<(Key, Rid)> = Vec::new();
            for (i, &rid) in rids.iter().enumerate() {
                let (ok, nk) = (old_rows[i].attr(attr), new_rows[i].attr(attr));
                if ok != nk {
                    old_pairs.push((ok, rid));
                    new_pairs.push((nk, rid));
                }
            }
            if old_pairs.is_empty() {
                continue; // this index's keys did not change
            }
            old_pairs.sort_unstable();
            new_pairs.sort_unstable();
            let deleted =
                bulk_delete_sorted(&mut index.tree, &old_pairs, ReorgPolicy::FreeAtEmpty)?;
            debug_assert_eq!(deleted.len(), old_pairs.len());
            for &(k, rid) in &new_pairs {
                index.tree.insert(k, rid)?;
            }
            moved += new_pairs.len();
        }
        for h in hash_indices.iter_mut() {
            let attr = h.def.attr;
            for (i, &rid) in rids.iter().enumerate() {
                let (ok, nk) = (old_rows[i].attr(attr), new_rows[i].attr(attr));
                if ok != nk {
                    h.index.delete(ok, rid)?;
                    h.index.insert(nk, rid)?;
                    moved += 1;
                }
            }
        }
        Ok((rids.len(), moved))
    })?;
    report.deleted = 0;
    Ok(UpdateOutcome {
        report,
        updated,
        index_entries_moved: moved,
    })
}
