//! The phase-task executor: runs a delete plan as a DAG of [`PhaseTask`]s.
//!
//! §2.2's observation is that the vertical strategy decomposes a bulk
//! delete into *independent per-structure operations*: after the base-table
//! pass produced the deleted-record stream, the `⋈̄` on each remaining
//! index touches pages no other arm touches. The executor exploits exactly
//! that independence:
//!
//! * **serial phases** (`sort D`, the key-predicate probe `⋈̄`, the table
//!   `⋈̄`, and unique-index arms, which §3.1 sequences first) run in plan
//!   order on the calling thread;
//! * **fan-out groups** — one [`PhaseTask`] per remaining secondary index
//!   and per hash index — run concurrently on scoped worker threads
//!   against the shared, thread-safe `Arc<BufferPool>`.
//!
//! Every task runs under its own [`IoScope`], so the report can show both
//! the *serial* simulated clock (the disk's global sum — the 1999 cost
//! model is untouched per arm) and the *critical-path* clock (concurrent
//! arms overlap; each group costs its slowest arm).
//!
//! Error handling joins cleanly: the first failing arm trips the group's
//! [`CancelToken`]; sibling arms abort at their next disk access with
//! `StorageError::Cancelled`; queued arms never start. All workers are
//! joined before the original (non-`Cancelled`, lowest task index) error
//! surfaces, so no page pin outlives the run and the pool is never
//! poisoned. Phase rows are recorded at fixed slots, so the breakdown
//! order is independent of arm completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bd_storage::{CancelToken, IoScope, StorageError, StorageResult};

use crate::report::{PhaseRow, PhaseTimer};

/// Boxed body of one task, movable to a worker thread.
type TaskBody<'env> = Box<dyn FnOnce() -> StorageResult<()> + Send + 'env>;

/// One schedulable unit of the delete DAG: a named body that may be
/// dispatched to a worker thread. Bodies own (or exclusively borrow) the
/// structure they mutate — dispatching an arm hands that structure to one
/// worker, which is what makes the fan-out safe.
pub struct PhaseTask<'env> {
    name: String,
    body: TaskBody<'env>,
}

impl<'env> PhaseTask<'env> {
    /// A task running `body` under the label `name`.
    pub fn new(
        name: impl Into<String>,
        body: impl FnOnce() -> StorageResult<()> + Send + 'env,
    ) -> Self {
        PhaseTask {
            name: name.into(),
            body: Box::new(body),
        }
    }

    /// The task's display label.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Executes the phase DAG of one strategy run: serial phases in order,
/// fan-out groups on up to `workers` scoped threads.
pub struct PhaseExecutor {
    timer: PhaseTimer,
    workers: usize,
    next_group: u32,
}

impl PhaseExecutor {
    /// An executor allowed `workers` concurrent arms (1 = fully serial;
    /// fan-out groups then run their arms sequentially in task order,
    /// which produces the identical physical state).
    pub fn new(workers: usize) -> Self {
        PhaseExecutor {
            timer: PhaseTimer::new(),
            workers: workers.max(1),
            next_group: 0,
        }
    }

    /// Worker budget of this executor.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run one serial phase on the calling thread.
    pub fn serial<T>(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce() -> StorageResult<T>,
    ) -> StorageResult<T> {
        self.timer.phase(name, body)
    }

    /// Run a group of independent arms, concurrently when `workers > 1`.
    ///
    /// On failure every sibling is cancelled, all threads are joined, and
    /// the lowest-index non-`Cancelled` error is returned. Rows for every
    /// task (including cancelled/skipped ones, with zero I/O) are recorded
    /// in submission order.
    pub fn fan_out(&mut self, tasks: Vec<PhaseTask<'_>>) -> StorageResult<()> {
        let group = self.next_group;
        self.next_group += 1;
        if tasks.is_empty() {
            return Ok(());
        }
        let workers = self.workers.min(tasks.len());
        let cancel = CancelToken::new();

        if workers <= 1 {
            // Serial execution of the group: same task order, same physical
            // result, rows still tagged with the group id (the group is a
            // unit of *potential* concurrency).
            let mut first_err: Option<StorageError> = None;
            for task in tasks {
                if first_err.is_some() {
                    // A failed arm aborts the rest of the group, exactly as
                    // cancellation does in the concurrent case.
                    self.timer.push_row(PhaseRow {
                        name: task.name,
                        io: Default::default(),
                        group: Some(group),
                    });
                    continue;
                }
                let scope = IoScope::new();
                let result = {
                    let _guard = scope.enter();
                    (task.body)()
                };
                self.timer.push_row(PhaseRow {
                    name: task.name,
                    io: scope.stats(),
                    group: Some(group),
                });
                if let Err(e) = result {
                    first_err = Some(e);
                }
            }
            return match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }

        let n = tasks.len();
        let mut names = Vec::with_capacity(n);
        let cells: Vec<Mutex<Option<TaskBody<'_>>>> = tasks
            .into_iter()
            .map(|t| {
                names.push(t.name);
                Mutex::new(Some(t.body))
            })
            .collect();
        let stats: Vec<Mutex<Option<bd_storage::DiskStats>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let failures: Mutex<Vec<(usize, StorageError)>> = Mutex::new(Vec::new());
        let next = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    if cancel.is_cancelled() {
                        continue; // skip queued arms after a failure
                    }
                    let body = cells[i]
                        .lock()
                        .expect("task cell lock")
                        .take()
                        .expect("task claimed once");
                    let scope = IoScope::with_cancel(cancel.clone());
                    let result = {
                        let _guard = scope.enter();
                        body()
                    };
                    *stats[i].lock().expect("stats slot lock") = Some(scope.stats());
                    if let Err(e) = result {
                        cancel.cancel();
                        failures.lock().expect("failure lock").push((i, e));
                    }
                });
            }
        });

        for (i, name) in names.into_iter().enumerate() {
            let io = stats[i]
                .lock()
                .expect("stats slot lock")
                .take()
                .unwrap_or_default();
            self.timer.push_row(PhaseRow {
                name,
                io,
                group: Some(group),
            });
        }

        let mut failures = failures.into_inner().expect("failure lock");
        if failures.is_empty() {
            return Ok(());
        }
        // Deterministic error selection: the originating failure, not the
        // Cancelled echoes of aborted siblings; ties by task order.
        failures.sort_by_key(|(i, e)| (*e == StorageError::Cancelled, *i));
        Err(failures.remove(0).1)
    }

    /// Consume the executor, yielding the phase rows in plan order.
    pub fn into_rows(self) -> Vec<PhaseRow> {
        self.timer.into_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{BufferPool, CostModel, SimDisk};
    use std::sync::Arc;

    fn pool_with_pages(n: usize) -> (Arc<BufferPool>, u32) {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(n);
        (BufferPool::new(disk, n.max(2)), first)
    }

    #[test]
    fn fan_out_runs_every_arm_and_orders_rows() {
        let (pool, first) = pool_with_pages(16);
        let mut exec = PhaseExecutor::new(4);
        let tasks: Vec<PhaseTask> = (0..4u32)
            .map(|t| {
                let pool = pool.clone();
                PhaseTask::new(format!("arm {t}"), move || {
                    for i in 0..=t {
                        let _ = pool.pin_read(first + t * 4 + i)?;
                    }
                    Ok(())
                })
            })
            .collect();
        exec.fan_out(tasks).unwrap();
        let rows = exec.into_rows();
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["arm 0", "arm 1", "arm 2", "arm 3"]);
        for (t, row) in rows.iter().enumerate() {
            assert_eq!(row.io.pages_read, t as u64 + 1, "per-arm attribution");
            assert_eq!(row.group, Some(0));
        }
    }

    #[test]
    fn failing_arm_cancels_siblings_and_surfaces_original_error() {
        let (pool, first) = pool_with_pages(64);
        pool.with_disk(|d| d.fail_reads_at(Some(first + 32)));
        let mut exec = PhaseExecutor::new(2);
        let spinner = {
            let pool = pool.clone();
            PhaseTask::new("spinner", move || {
                // Keeps issuing disk reads until the sibling's failure
                // cancels it (bounded to avoid hanging on regression).
                for round in 0..10_000 {
                    pool.clear_cache()?;
                    let _ = pool.pin_read(first + (round % 8) as u32)?;
                    std::thread::yield_now();
                }
                Ok(())
            })
        };
        let failer = {
            let pool = pool.clone();
            PhaseTask::new("failer", move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                let _ = pool.pin_read(first + 32)?;
                Ok(())
            })
        };
        let err = exec.fan_out(vec![spinner, failer]).unwrap_err();
        assert_eq!(err, StorageError::InjectedFault(first + 32));
        assert_eq!(pool.pinned_frames(), 0, "no pins survive the abort");
        let rows = exec.into_rows();
        assert_eq!(rows.len(), 2, "both arms reported");
        // The pool still works after the abort.
        pool.with_disk(|d| d.fail_reads_at(None));
        let _ = pool.pin_read(first).unwrap();
    }

    #[test]
    fn serial_fallback_matches_task_order_and_stops_after_error() {
        let (pool, first) = pool_with_pages(8);
        pool.with_disk(|d| d.fail_reads_at(Some(first + 1)));
        let mut exec = PhaseExecutor::new(1);
        let mk = |pid: u32| {
            let pool = pool.clone();
            PhaseTask::new(format!("arm {pid}"), move || {
                let _ = pool.pin_read(pid)?;
                Ok(())
            })
        };
        let err = exec
            .fan_out(vec![mk(first), mk(first + 1), mk(first + 2)])
            .unwrap_err();
        assert_eq!(err, StorageError::InjectedFault(first + 1));
        let rows = exec.into_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].io.pages_read, 0, "arm after the failure skipped");
    }
}
