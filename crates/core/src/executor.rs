//! The phase-task executor: runs a delete plan as a DAG of [`PhaseTask`]s.
//!
//! §2.2's observation is that the vertical strategy decomposes a bulk
//! delete into *independent per-structure operations*: after the base-table
//! pass produced the deleted-record stream, the `⋈̄` on each remaining
//! index touches pages no other arm touches. The executor exploits exactly
//! that independence:
//!
//! * **serial phases** (`sort D`, the key-predicate probe `⋈̄`, the table
//!   `⋈̄`, and unique-index arms, which §3.1 sequences first) run in plan
//!   order on the calling thread;
//! * **fan-out groups** — one [`PhaseTask`] per remaining secondary index
//!   and per hash index — run concurrently on scoped worker threads
//!   against the shared, thread-safe `Arc<BufferPool>`.
//!
//! Every task runs under its own [`IoScope`], so the report can show both
//! the *serial* simulated clock (the disk's global sum — the 1999 cost
//! model is untouched per arm) and the *critical-path* clock (concurrent
//! arms overlap; each group costs its slowest arm).
//!
//! Error handling joins cleanly: the first failing arm trips the group's
//! [`CancelToken`]; sibling arms abort at their next disk access with
//! `StorageError::Cancelled`; queued arms never start. All workers are
//! joined before anything else happens, so no page pin outlives the run
//! and the pool is never poisoned. Phase rows are recorded at fixed slots,
//! so the breakdown order is independent of arm completion order.
//!
//! **Cooperative pacing**: the executor snapshots the
//! [`Pacer`](bd_storage::Pacer)s installed on the calling thread
//! ([`bd_storage::pacer::installed`]) and re-installs them on every worker
//! it spawns, so a statement driver that wraps the whole strategy call in
//! [`Pacer::enter`](bd_storage::Pacer::enter) can pause or cancel the
//! serial phases *and* the dispatched arms from one handle. Degradation
//! re-runs inherit the pacer too: a pause mid-recovery just parks, and a
//! cancel fails the re-run with `Cancelled` — correct, since the whole
//! statement is being abandoned.
//!
//! After the join the executor **degrades gracefully** (unless built with
//! [`PhaseExecutor::without_degradation`]): every arm that did not complete
//! cleanly — the failed arm itself, cancelled siblings, and queued arms
//! that never started — is re-run *serially* in plan order, off the
//! cancellation path. Task bodies are `FnMut` and must be idempotent under
//! re-execution (the `⋈̄` passes are: keys already deleted simply aren't
//! found again). A transient fault thus costs a [`DegradeEvent`] in the
//! report instead of the whole statement; a persistent fault fails the
//! serial re-run too and surfaces as before.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bd_storage::{CancelToken, DiskStats, IoScope, StorageError, StorageResult};

use crate::report::{DegradeEvent, PhaseRow, PhaseTimer};

/// Boxed body of one task, movable to a worker thread. `FnMut` (not
/// `FnOnce`) so the degradation path can re-run an unfinished arm.
type TaskBody<'env> = Box<dyn FnMut() -> StorageResult<()> + Send + 'env>;

/// One schedulable unit of the delete DAG: a named body that may be
/// dispatched to a worker thread. Bodies own (or exclusively borrow) the
/// structure they mutate — dispatching an arm hands that structure to one
/// worker, which is what makes the fan-out safe.
pub struct PhaseTask<'env> {
    name: String,
    body: TaskBody<'env>,
}

impl<'env> PhaseTask<'env> {
    /// A task running `body` under the label `name`. The body may be
    /// invoked more than once (degradation re-runs unfinished arms), so it
    /// must be restartable: re-deleting an already-deleted key is a no-op
    /// for every `⋈̄` pass.
    pub fn new(
        name: impl Into<String>,
        body: impl FnMut() -> StorageResult<()> + Send + 'env,
    ) -> Self {
        PhaseTask {
            name: name.into(),
            body: Box::new(body),
        }
    }

    /// The task's display label.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Executes the phase DAG of one strategy run: serial phases in order,
/// fan-out groups on up to `workers` scoped threads.
pub struct PhaseExecutor {
    timer: PhaseTimer,
    workers: usize,
    next_group: u32,
    degrade: bool,
    events: Vec<DegradeEvent>,
}

impl PhaseExecutor {
    /// An executor allowed `workers` concurrent arms (1 = fully serial;
    /// fan-out groups then run their arms sequentially in task order,
    /// which produces the identical physical state). Graceful degradation
    /// is on by default.
    pub fn new(workers: usize) -> Self {
        PhaseExecutor {
            timer: PhaseTimer::new(),
            workers: workers.max(1),
            next_group: 0,
            degrade: true,
            events: Vec::new(),
        }
    }

    /// Disable the serial re-run of unfinished arms: the first failure
    /// fails the group, as before. The WAL driver uses this — its recovery
    /// protocol, not the executor, owns fault handling there.
    pub fn without_degradation(mut self) -> Self {
        self.degrade = false;
        self
    }

    /// Worker budget of this executor.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Degradation events recorded so far.
    pub fn events(&self) -> &[DegradeEvent] {
        &self.events
    }

    /// Run one serial phase on the calling thread.
    pub fn serial<T>(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce() -> StorageResult<T>,
    ) -> StorageResult<T> {
        self.timer.phase(name, body)
    }

    /// Run a group of independent arms, concurrently when `workers > 1`.
    ///
    /// On failure every sibling is cancelled, all threads are joined, and
    /// the lowest-index non-`Cancelled` error is returned. Rows for every
    /// task (including cancelled/skipped ones, with zero I/O) are recorded
    /// in submission order.
    pub fn fan_out(&mut self, tasks: Vec<PhaseTask<'_>>) -> StorageResult<()> {
        let group = self.next_group;
        self.next_group += 1;
        if tasks.is_empty() {
            return Ok(());
        }
        let workers = self.workers.min(tasks.len());
        let cancel = CancelToken::new();

        if workers <= 1 {
            // Serial execution of the group: same task order, same physical
            // result, rows still tagged with the group id (the group is a
            // unit of *potential* concurrency).
            let mut first_err: Option<StorageError> = None;
            for mut task in tasks {
                if first_err.is_some() {
                    // A failed arm aborts the rest of the group, exactly as
                    // cancellation does in the concurrent case.
                    self.timer.push_row(PhaseRow {
                        name: task.name,
                        io: Default::default(),
                        group: Some(group),
                    });
                    continue;
                }
                let scope = IoScope::new();
                let result = {
                    let _guard = scope.enter();
                    (task.body)()
                };
                self.timer.push_row(PhaseRow {
                    name: task.name,
                    io: scope.stats(),
                    group: Some(group),
                });
                if let Err(e) = result {
                    first_err = Some(e);
                }
            }
            return match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }

        let n = tasks.len();
        let mut names = Vec::with_capacity(n);
        // Bodies stay in their cells after running (claimed via `as_mut`,
        // not `take`) so the degradation path can re-invoke them.
        let cells: Vec<Mutex<Option<TaskBody<'_>>>> = tasks
            .into_iter()
            .map(|t| {
                names.push(t.name);
                Mutex::new(Some(t.body))
            })
            .collect();
        let stats: Vec<Mutex<Option<DiskStats>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let failures: Mutex<Vec<(usize, StorageError)>> = Mutex::new(Vec::new());
        let next = AtomicUsize::new(0);

        // Hand the calling thread's pacers to every worker: arms must stay
        // pausable/cancellable from the statement's handle even though they
        // run on fresh threads with empty thread-local stacks.
        let pacers = bd_storage::pacer::installed();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let pacers = &pacers;
                s.spawn(|| {
                    let _pace: Vec<_> = pacers.iter().map(|p| p.enter()).collect();
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= n {
                            break;
                        }
                        if cancel.is_cancelled() {
                            continue; // skip queued arms after a failure
                        }
                        // Each index is claimed by exactly one worker (the
                        // atomic counter), so holding the cell lock for the
                        // body's whole run is uncontended.
                        let mut cell = cells[i].lock().expect("task cell lock");
                        let body = cell.as_mut().expect("task body present");
                        let scope = IoScope::with_cancel(cancel.clone());
                        let result = {
                            let _guard = scope.enter();
                            body()
                        };
                        drop(cell);
                        *stats[i].lock().expect("stats slot lock") = Some(scope.stats());
                        if let Err(e) = result {
                            cancel.cancel();
                            failures.lock().expect("failure lock").push((i, e));
                        }
                    }
                });
            }
        });

        let mut failures = failures.into_inner().expect("failure lock");
        // Deterministic error selection: the originating failure, not the
        // Cancelled echoes of aborted siblings; ties by task order.
        failures.sort_by_key(|(i, e)| (*e == StorageError::Cancelled, *i));

        let mut outcome = Ok(());
        if let Some((failed_idx, orig_err)) = failures.first().cloned() {
            if self.degrade {
                outcome = self.degrade_group(
                    group, failed_idx, orig_err, &names, &failures, &cells, &stats,
                );
            } else {
                outcome = Err(orig_err);
            }
        }

        for (i, name) in names.into_iter().enumerate() {
            let io = stats[i]
                .lock()
                .expect("stats slot lock")
                .take()
                .unwrap_or_default();
            self.timer.push_row(PhaseRow {
                name,
                io,
                group: Some(group),
            });
        }
        outcome
    }

    /// Serial re-run of every arm that did not finish cleanly: the failed
    /// arm, cancelled siblings, and queued arms that never started. Runs in
    /// plan order off the cancellation path; re-run I/O is merged into each
    /// arm's stats slot so the phase rows stay truthful. Records a
    /// [`DegradeEvent`] either way; returns the re-run's first error (a
    /// persistent fault strikes twice) or `Ok` when the group recovered.
    #[allow(clippy::too_many_arguments)] // internal splitting of fan_out
    fn degrade_group(
        &mut self,
        group: u32,
        failed_idx: usize,
        orig_err: StorageError,
        names: &[String],
        failures: &[(usize, StorageError)],
        cells: &[Mutex<Option<TaskBody<'_>>>],
        stats: &[Mutex<Option<DiskStats>>],
    ) -> StorageResult<()> {
        let failed_set: HashSet<usize> = failures.iter().map(|&(i, _)| i).collect();
        let mut reran = Vec::new();
        let mut rerun_err: Option<StorageError> = None;
        for (i, name) in names.iter().enumerate() {
            let finished_ok =
                !failed_set.contains(&i) && stats[i].lock().expect("stats slot lock").is_some();
            if finished_ok || rerun_err.is_some() {
                continue;
            }
            reran.push(name.clone());
            let scope = IoScope::new();
            let result = {
                let _guard = scope.enter();
                let mut cell = cells[i].lock().expect("task cell lock");
                (cell.as_mut().expect("task body present"))()
            };
            let mut slot = stats[i].lock().expect("stats slot lock");
            let mut io = slot.take().unwrap_or_default();
            io.merge(&scope.stats());
            *slot = Some(io);
            if let Err(e) = result {
                rerun_err = Some(e);
            }
        }
        let recovered = rerun_err.is_none();
        self.events.push(DegradeEvent {
            group,
            failed_arm: names[failed_idx].clone(),
            error: orig_err.to_string(),
            reran,
            recovered,
        });
        match rerun_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Consume the executor, yielding the phase rows in plan order.
    pub fn into_rows(self) -> Vec<PhaseRow> {
        self.timer.into_rows()
    }

    /// Consume the executor, yielding phase rows and degradation events.
    pub fn into_parts(self) -> (Vec<PhaseRow>, Vec<DegradeEvent>) {
        (self.timer.into_rows(), self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{BufferPool, CostModel, FaultPlan, FaultSpec, SimDisk, StructureId};
    use std::sync::Arc;

    fn pool_with_pages(n: usize) -> (Arc<BufferPool>, u32) {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(n, StructureId::Table);
        (BufferPool::new(disk, n.max(2)), first)
    }

    #[test]
    fn fan_out_runs_every_arm_and_orders_rows() {
        let (pool, first) = pool_with_pages(16);
        let mut exec = PhaseExecutor::new(4);
        let tasks: Vec<PhaseTask> = (0..4u32)
            .map(|t| {
                let pool = pool.clone();
                PhaseTask::new(format!("arm {t}"), move || {
                    for i in 0..=t {
                        let _ = pool.pin_read(first + t * 4 + i)?;
                    }
                    Ok(())
                })
            })
            .collect();
        exec.fan_out(tasks).unwrap();
        let rows = exec.into_rows();
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["arm 0", "arm 1", "arm 2", "arm 3"]);
        for (t, row) in rows.iter().enumerate() {
            assert_eq!(row.io.pages_read, t as u64 + 1, "per-arm attribution");
            assert_eq!(row.group, Some(0));
        }
    }

    #[test]
    fn failing_arm_cancels_siblings_and_surfaces_original_error() {
        let (pool, first) = pool_with_pages(64);
        pool.with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(first + 32)))
        });
        pool.set_retry_policy(bd_storage::RetryPolicy::none());
        let mut exec = PhaseExecutor::new(2).without_degradation();
        let waiter = {
            let pool = pool.clone();
            PhaseTask::new("waiter", move || {
                let _ = pool.pin_read(first)?;
                // Park (condvar wait, not a spin) until the sibling's
                // failure trips the group token; the bound only guards
                // against a regression that never cancels.
                if bd_storage::io_scope::wait_cancelled_for(std::time::Duration::from_secs(30)) {
                    return Err(StorageError::Cancelled);
                }
                Ok(())
            })
        };
        let failer = {
            let pool = pool.clone();
            PhaseTask::new("failer", move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                let _ = pool.pin_read(first + 32)?;
                Ok(())
            })
        };
        let err = exec.fan_out(vec![waiter, failer]).unwrap_err();
        assert_eq!(err, StorageError::InjectedFault(first + 32));
        assert_eq!(pool.pinned_frames(), 0, "no pins survive the abort");
        let rows = exec.into_rows();
        assert_eq!(rows.len(), 2, "both arms reported");
        // The pool still works after the abort.
        pool.with_disk(|d| d.clear_fault_plan());
        let _ = pool.pin_read(first).unwrap();
    }

    #[test]
    fn cancelled_sibling_wakes_from_its_parked_wait_promptly() {
        // Regression for the old busy spin: a task waiting on sibling
        // cancellation must wake via the token's condvar (milliseconds),
        // not sit out its full timeout or burn a core polling.
        let (pool, first) = pool_with_pages(8);
        pool.with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(first + 4)))
        });
        pool.set_retry_policy(bd_storage::RetryPolicy::none());
        let mut exec = PhaseExecutor::new(2).without_degradation();
        let waiter = PhaseTask::new("waiter", move || {
            if bd_storage::io_scope::wait_cancelled_for(std::time::Duration::from_secs(60)) {
                return Err(StorageError::Cancelled);
            }
            Ok(())
        });
        let failer = {
            let pool = pool.clone();
            PhaseTask::new("failer", move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                let _ = pool.pin_read(first + 4)?;
                Ok(())
            })
        };
        let start = std::time::Instant::now();
        let err = exec.fan_out(vec![waiter, failer]).unwrap_err();
        assert_eq!(err, StorageError::InjectedFault(first + 4));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "waiter must wake on cancel, not ride out its 60 s timeout"
        );
    }

    #[test]
    fn pacer_pauses_fan_out_arms_at_a_pin_free_point() {
        use bd_storage::Pacer;
        let (pool, first) = pool_with_pages(32);
        let pacer = Pacer::new();
        pacer.pause();
        let controller = pacer.clone();
        let worker_pool = pool.clone();
        let run = std::thread::spawn(move || {
            // The driver installs the pacer once; fan_out re-installs it on
            // every worker thread it spawns.
            let _g = pacer.enter();
            let mut exec = PhaseExecutor::new(2);
            let tasks: Vec<PhaseTask> = (0..2u32)
                .map(|t| {
                    let pool = worker_pool.clone();
                    PhaseTask::new(format!("arm {t}"), move || {
                        for i in 0..8 {
                            bd_storage::pacer::checkpoint()?;
                            let _ = pool.pin_read(first + t * 8 + i)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            exec.fan_out(tasks)
        });
        assert!(
            controller.wait_parked(2, std::time::Duration::from_secs(10)),
            "both arms must park at their first checkpoint"
        );
        assert_eq!(pool.pinned_frames(), 0, "paused arms hold no pins");
        controller.resume();
        run.join().unwrap().unwrap();
    }

    #[test]
    fn pacer_cancel_aborts_fan_out_arms() {
        use bd_storage::Pacer;
        let (pool, first) = pool_with_pages(8);
        let pacer = Pacer::new();
        pacer.cancel();
        let _g = pacer.enter();
        let mut exec = PhaseExecutor::new(2).without_degradation();
        let mk = |pid: u32| {
            let pool = pool.clone();
            PhaseTask::new(format!("arm {pid}"), move || {
                bd_storage::pacer::checkpoint()?;
                let _ = pool.pin_read(pid)?;
                Ok(())
            })
        };
        let err = exec.fan_out(vec![mk(first), mk(first + 1)]).unwrap_err();
        assert_eq!(err, StorageError::Cancelled);
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    fn serial_fallback_matches_task_order_and_stops_after_error() {
        let (pool, first) = pool_with_pages(8);
        pool.with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(first + 1)))
        });
        pool.set_retry_policy(bd_storage::RetryPolicy::none());
        let mut exec = PhaseExecutor::new(1);
        let mk = |pid: u32| {
            let pool = pool.clone();
            PhaseTask::new(format!("arm {pid}"), move || {
                let _ = pool.pin_read(pid)?;
                Ok(())
            })
        };
        let err = exec
            .fan_out(vec![mk(first), mk(first + 1), mk(first + 2)])
            .unwrap_err();
        assert_eq!(err, StorageError::InjectedFault(first + 1));
        let rows = exec.into_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].io.pages_read, 0, "arm after the failure skipped");
    }

    #[test]
    fn degradation_rides_out_a_fault_that_outlasts_pool_retries() {
        let (pool, first) = pool_with_pages(8);
        // 5 consecutive failures: the concurrent attempt burns its initial
        // try plus the pool's 3 retries (4 total) and still fails; the
        // serial re-run consumes the 5th and succeeds on its first retry.
        pool.with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(first + 4).transient(5)))
        });
        let mut exec = PhaseExecutor::new(2);
        let steady = {
            let pool = pool.clone();
            PhaseTask::new("steady", move || {
                let _ = pool.pin_read(first)?;
                Ok(())
            })
        };
        let flaky = {
            let pool = pool.clone();
            PhaseTask::new("flaky", move || {
                let _ = pool.pin_read(first + 4)?;
                Ok(())
            })
        };
        exec.fan_out(vec![steady, flaky])
            .expect("degradation must absorb the transient fault");
        let (rows, events) = exec.into_parts();
        assert_eq!(rows.len(), 2);
        assert_eq!(events.len(), 1);
        let event = &events[0];
        assert_eq!(event.failed_arm, "flaky");
        assert!(event.recovered, "serial re-run succeeded");
        assert!(event.reran.iter().any(|n| n == "flaky"));
        let flaky_row = rows.iter().find(|r| r.name == "flaky").unwrap();
        assert!(flaky_row.io.retries > 0, "backoff retries attributed");
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    fn persistent_fault_defeats_degradation_and_surfaces_the_error() {
        let (pool, first) = pool_with_pages(8);
        pool.with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(first + 2)))
        });
        pool.set_retry_policy(bd_storage::RetryPolicy::none());
        let mut exec = PhaseExecutor::new(2);
        let mk = |pid: u32| {
            let pool = pool.clone();
            PhaseTask::new(format!("arm {pid}"), move || {
                let _ = pool.pin_read(pid)?;
                Ok(())
            })
        };
        let err = exec.fan_out(vec![mk(first), mk(first + 2)]).unwrap_err();
        assert_eq!(err, StorageError::InjectedFault(first + 2));
        let (_, events) = exec.into_parts();
        assert_eq!(events.len(), 1);
        assert!(!events[0].recovered, "re-run hit the fault again");
    }
}
