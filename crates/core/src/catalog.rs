//! Tables, indices, and their metadata.

use bd_btree::{BTree, BTreeConfig};
use bd_hashidx::HashIndex;
use bd_storage::HeapFile;

use crate::tuple::{attr_name, Schema};

/// Metadata of one index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    /// Display name, e.g. `I_A`.
    pub name: String,
    /// Attribute the index is keyed on (0 = `A`).
    pub attr: usize,
    /// Unique constraint — processed first and brought back online early
    /// during concurrent bulk deletes (§3.1).
    pub unique: bool,
    /// True when the base table is physically ordered by this attribute,
    /// so RID order implies key order (Experiment 5).
    pub clustered: bool,
    /// Node fanout configuration (Experiment 3's height knob).
    pub config: BTreeConfig,
    /// Bulk-load fill factor used when (re)building the index.
    pub fill: f64,
}

impl IndexDef {
    /// A non-unique, unclustered index on `attr` with default fanout.
    pub fn secondary(attr: usize) -> Self {
        IndexDef {
            name: format!("I_{}", attr_name(attr)),
            attr,
            unique: false,
            clustered: false,
            config: BTreeConfig::default(),
            fill: 1.0,
        }
    }

    /// Mark unique.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// Mark clustered.
    pub fn clustered(mut self) -> Self {
        self.clustered = true;
        self
    }

    /// Override the fanout configuration.
    pub fn with_config(mut self, config: BTreeConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the bulk-load fill factor.
    pub fn with_fill(mut self, fill: f64) -> Self {
        self.fill = fill;
        self
    }
}

/// One index: metadata plus the backing B-link tree.
pub struct Index {
    /// Index metadata.
    pub def: IndexDef,
    /// The tree.
    pub tree: BTree,
}

/// Metadata of one hash index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashIndexDef {
    /// Display name, e.g. `H_D`.
    pub name: String,
    /// Attribute the index is keyed on (0 = `A`).
    pub attr: usize,
}

/// One hash index: metadata plus the backing structure. The bulk-delete
/// algorithms are B-tree-only ("this work was restricted to B+-trees");
/// hash indices are "updated in the traditional way" — one chain walk per
/// record — by every strategy.
pub struct HashIdx {
    /// Index metadata.
    pub def: HashIndexDef,
    /// The hash table.
    pub index: HashIndex,
}

/// One table: schema, heap file, and indices.
pub struct Table {
    /// Display name.
    pub name: String,
    /// Record layout.
    pub schema: Schema,
    /// Base storage (the paper's `R(RID, A, B, C, ...)`).
    pub heap: HeapFile,
    /// B-tree indices (bulk-deletable).
    pub indices: Vec<Index>,
    /// Hash indices (always maintained record-at-a-time).
    pub hash_indices: Vec<HashIdx>,
}

impl Table {
    /// Find the index on `attr`.
    pub fn index_on(&self, attr: usize) -> Option<&Index> {
        self.indices.iter().find(|i| i.def.attr == attr)
    }

    /// Find the index on `attr`, mutably.
    pub fn index_on_mut(&mut self, attr: usize) -> Option<&mut Index> {
        self.indices.iter_mut().find(|i| i.def.attr == attr)
    }

    /// Position of the index on `attr` in `indices`.
    pub fn index_pos(&self, attr: usize) -> Option<usize> {
        self.indices.iter().position(|i| i.def.attr == attr)
    }

    /// Find the hash index on `attr`.
    pub fn hash_index_on(&self, attr: usize) -> Option<&HashIdx> {
        self.hash_indices.iter().find(|i| i.def.attr == attr)
    }
}
