//! Run reports: simulated time and I/O counters per strategy execution.

use std::sync::Arc;

use bd_storage::{BufferPool, DiskStats, StorageResult};

pub use crate::audit::{AuditFinding, AuditReport};

/// Outcome of one delete-strategy execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy label, e.g. `sorted/trad` or `bulk delete`.
    pub strategy: String,
    /// Records deleted from the base table.
    pub deleted: usize,
    /// Disk counters accumulated by the run (after a cold-cache reset).
    pub io: DiskStats,
    /// Per-phase I/O breakdown (vertical runs only): one entry per `⋈̄`
    /// step and sort, in execution order.
    pub phases: Vec<(String, DiskStats)>,
}

impl RunReport {
    /// Simulated elapsed milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.io.sim_ms
    }

    /// Simulated elapsed minutes — the unit the paper's figures report.
    pub fn sim_minutes(&self) -> f64 {
        self.io.sim_ms / 60_000.0
    }

    /// Multi-line phase breakdown (empty string when not instrumented).
    pub fn phase_breakdown(&self) -> String {
        let mut out = String::new();
        for (name, io) in &self.phases {
            out.push_str(&format!(
                "    {:<28} {:>8.2} s  ios {:>8} (random {:>6})\n",
                name,
                io.sim_ms / 1000.0,
                io.total_ios(),
                io.total_random(),
            ));
        }
        out
    }

    /// One summary line.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} deleted {:>8}  sim {:>9.2} min  ios {:>9} (random {:>8}, read {:>9}, write {:>9})",
            self.strategy,
            self.deleted,
            self.sim_minutes(),
            self.io.total_ios(),
            self.io.total_random(),
            self.io.pages_read,
            self.io.pages_written,
        )
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Run `body` against a cold cache and account its I/O (including the final
/// flush of dirty pages, which belongs to the run).
pub fn measure<T>(
    pool: &Arc<BufferPool>,
    strategy: &str,
    body: impl FnOnce() -> StorageResult<T>,
) -> StorageResult<(T, RunReport)> {
    pool.clear_cache()?;
    pool.reset_stats();
    let before = pool.disk_stats();
    let value = body()?;
    pool.flush_all()?;
    let io = pool.disk_stats().since(&before);
    Ok((
        value,
        RunReport {
            strategy: strategy.to_string(),
            deleted: 0,
            io,
            phases: Vec::new(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{CostModel, SimDisk};

    #[test]
    fn measure_accounts_io_and_flush() {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(4);
        let pool = BufferPool::new(disk, 8);
        let (_, report) = measure(&pool, "probe", || {
            let mut w = pool.pin_write(first)?;
            w[0] = 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(report.io.pages_read, 1);
        assert_eq!(report.io.pages_written, 1, "flush counted");
        assert!(report.sim_ms() > 0.0);
        assert!(report.summary().contains("probe"));
    }

    #[test]
    fn measure_starts_cold() {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(2);
        let pool = BufferPool::new(disk, 8);
        let _ = pool.pin_read(first).unwrap();
        let (_, report) = measure(&pool, "x", || {
            let _ = pool.pin_read(first)?;
            Ok(())
        })
        .unwrap();
        // The pre-measure pin must not make the in-measure pin a cache hit.
        assert_eq!(report.io.pages_read, 1);
    }
}
