//! Run reports: simulated time and I/O counters per strategy execution.
//!
//! A run carries two simulated clocks:
//!
//! * the **serial** clock — the sum of every disk charge, exactly what the
//!   1999 cost model accumulates (the paper's y-axis);
//! * the **critical-path** clock — what the run would cost if the arms of
//!   each fan-out group truly overlapped: serial phases sum, concurrent
//!   phases contribute only their maximum.
//!
//! The per-arm cost model is untouched; the critical path simply removes
//! the overlap of independent per-structure `⋈̄` arms.

use std::sync::Arc;

use bd_storage::{BufferPool, DiskStats, IoScope, PoolStats, StorageResult};

pub use crate::audit::{AuditFinding, AuditReport};

/// A graceful-degradation event: one fan-out arm died, the executor
/// cancelled its siblings and re-ran every unfinished arm serially instead
/// of failing the whole statement.
#[derive(Debug, Clone)]
pub struct DegradeEvent {
    /// Fan-out group the failure occurred in.
    pub group: u32,
    /// Label of the arm whose failure triggered degradation.
    pub failed_arm: String,
    /// Display form of the originating error.
    pub error: String,
    /// Labels of the arms re-run serially (in plan order; includes the
    /// failed arm itself, which gets one more chance off the fault path).
    pub reran: Vec<String>,
    /// Whether every serial re-run completed — `true` means the statement
    /// survived the fault; `false` means the re-run hit it again (a
    /// persistent fault) and the statement failed after all.
    pub recovered: bool,
}

impl std::fmt::Display for DegradeEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "group {}: arm `{}` failed ({}); re-ran {} arm(s) serially — {}",
            self.group,
            self.failed_arm,
            self.error,
            self.reran.len(),
            if self.recovered {
                "recovered"
            } else {
                "not recovered"
            },
        )
    }
}

/// One phase (task) of a strategy execution: a named unit of work with the
/// I/O its [`IoScope`] attributed to it.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase label, e.g. `sort(D)` or `bd I_B (sort/merge)`.
    pub name: String,
    /// I/O attributed to this phase's scope.
    pub io: DiskStats,
    /// Fan-out group id: rows sharing a group are independent arms that
    /// run concurrently when the executor is given workers. `None` marks a
    /// serial phase.
    pub group: Option<u32>,
}

/// Records one [`PhaseRow`] per executed phase, each under its own
/// [`IoScope`] — correct under concurrency, unlike the global
/// stats-delta closure it replaces (concurrent arms would attribute each
/// other's I/O to whichever phase read the counters last).
#[derive(Debug, Default)]
pub struct PhaseTimer {
    rows: Vec<PhaseRow>,
}

impl PhaseTimer {
    /// An empty timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Run `body` as one serial phase, attributing its I/O via a fresh
    /// [`IoScope`]. The row is recorded even when `body` fails, so partial
    /// runs still render a truthful breakdown.
    pub fn phase<T>(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce() -> StorageResult<T>,
    ) -> StorageResult<T> {
        let scope = IoScope::new();
        let result = {
            let _guard = scope.enter();
            body()
        };
        self.rows.push(PhaseRow {
            name: name.into(),
            io: scope.stats(),
            group: None,
        });
        result
    }

    /// Append an externally produced row (the executor's fan-out arms).
    pub fn push_row(&mut self, row: PhaseRow) {
        self.rows.push(row);
    }

    /// Rows recorded so far.
    pub fn rows(&self) -> &[PhaseRow] {
        &self.rows
    }

    /// Consume the timer, yielding its rows in execution order.
    pub fn into_rows(self) -> Vec<PhaseRow> {
        self.rows
    }
}

/// Outcome of one delete-strategy execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy label, e.g. `sorted/trad` or `bulk delete`.
    pub strategy: String,
    /// Records deleted from the base table.
    pub deleted: usize,
    /// Disk counters accumulated by the run (after a cold-cache reset).
    pub io: DiskStats,
    /// Per-phase I/O breakdown: one row per task of the phase DAG, in plan
    /// order (stable regardless of arm completion order).
    pub phases: Vec<PhaseRow>,
    /// Worker threads the phase-task executor was allowed (1 = serial).
    pub workers: usize,
    /// Buffer-pool counters for the run (hits, misses, prefetched pins,
    /// writebacks) — the cache-warmth side of the same I/O story `io` tells.
    pub pool: PoolStats,
    /// Graceful-degradation events: fan-out arms that died and were re-run
    /// serially. Empty on a fault-free run.
    pub events: Vec<DegradeEvent>,
}

impl RunReport {
    /// Simulated elapsed milliseconds — the *serial* clock (sum of every
    /// disk charge, as the paper's single-disk cost model accumulates it).
    pub fn sim_ms(&self) -> f64 {
        self.io.sim_ms
    }

    /// Simulated elapsed minutes — the unit the paper's figures report.
    pub fn sim_minutes(&self) -> f64 {
        self.io.sim_ms / 60_000.0
    }

    /// Simulated milliseconds along the critical path: serial phases sum;
    /// each fan-out group contributes only its slowest arm. Equal to
    /// [`RunReport::sim_ms`] when the run was serial (`workers <= 1`).
    pub fn critical_path_ms(&self) -> f64 {
        if self.workers <= 1 {
            return self.io.sim_ms;
        }
        let mut saved = 0.0;
        let groups: Vec<u32> = {
            let mut g: Vec<u32> = self.phases.iter().filter_map(|p| p.group).collect();
            g.dedup();
            g
        };
        for gid in groups {
            let arms = self.phases.iter().filter(|p| p.group == Some(gid));
            let (mut sum, mut max) = (0.0f64, 0.0f64);
            for arm in arms {
                sum += arm.io.sim_ms;
                max = max.max(arm.io.sim_ms);
            }
            saved += sum - max;
        }
        self.io.sim_ms - saved
    }

    /// Critical-path simulated minutes.
    pub fn critical_path_minutes(&self) -> f64 {
        self.critical_path_ms() / 60_000.0
    }

    /// Multi-line phase breakdown (empty string when not instrumented).
    /// Concurrent arms are marked with `∥`.
    pub fn phase_breakdown(&self) -> String {
        let mut out = String::new();
        for row in &self.phases {
            let marker = if row.group.is_some() { "∥ " } else { "  " };
            out.push_str(&format!(
                "  {}{:<28} {:>8.2} s  ios {:>8} (random {:>6})\n",
                marker,
                row.name,
                row.io.sim_ms / 1000.0,
                row.io.total_ios(),
                row.io.total_random(),
            ));
            if row.io.retries > 0 {
                out.push_str(&format!("      ({} I/O retries)\n", row.io.retries));
            }
        }
        for event in &self.events {
            out.push_str(&format!("  !! degraded: {event}\n"));
        }
        out
    }

    /// One summary line (adds the critical-path clock for parallel runs).
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{:<16} deleted {:>8}  sim {:>9.2} min  ios {:>9} (random {:>8}, read {:>9}, write {:>9})",
            self.strategy,
            self.deleted,
            self.sim_minutes(),
            self.io.total_ios(),
            self.io.total_random(),
            self.io.pages_read,
            self.io.pages_written,
        );
        if self.workers > 1 {
            line.push_str(&format!(
                "  crit-path {:>9.2} min ({} workers)",
                self.critical_path_minutes(),
                self.workers,
            ));
        }
        if self.io.retries > 0 {
            line.push_str(&format!("  retries {}", self.io.retries));
        }
        if !self.events.is_empty() {
            line.push_str(&format!("  DEGRADED x{}", self.events.len()));
        }
        line
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Run `body` against a cold cache and account its I/O (including the final
/// flush of dirty pages, which belongs to the run).
pub fn measure<T>(
    pool: &Arc<BufferPool>,
    strategy: &str,
    body: impl FnOnce() -> StorageResult<T>,
) -> StorageResult<(T, RunReport)> {
    pool.clear_cache()?;
    pool.reset_stats();
    let before = pool.disk_stats();
    let value = body()?;
    pool.flush_all()?;
    let io = pool.disk_stats().since(&before);
    Ok((
        value,
        RunReport {
            strategy: strategy.to_string(),
            deleted: 0,
            io,
            phases: Vec::new(),
            workers: 1,
            pool: pool.pool_stats(),
            events: Vec::new(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{CostModel, SimDisk, StructureId};

    #[test]
    fn measure_accounts_io_and_flush() {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(4, StructureId::Table);
        let pool = BufferPool::new(disk, 8);
        let (_, report) = measure(&pool, "probe", || {
            let mut w = pool.pin_write(first)?;
            w[0] = 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(report.io.pages_read, 1);
        assert_eq!(report.io.pages_written, 1, "flush counted");
        assert!(report.sim_ms() > 0.0);
        assert!(report.summary().contains("probe"));
    }

    #[test]
    fn measure_starts_cold() {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(2, StructureId::Table);
        let pool = BufferPool::new(disk, 8);
        let _ = pool.pin_read(first).unwrap();
        let (_, report) = measure(&pool, "x", || {
            let _ = pool.pin_read(first)?;
            Ok(())
        })
        .unwrap();
        // The pre-measure pin must not make the in-measure pin a cache hit.
        assert_eq!(report.io.pages_read, 1);
    }

    #[test]
    fn phase_timer_attributes_io_per_phase() {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(4, StructureId::Table);
        let pool = BufferPool::new(disk, 8);
        let mut timer = PhaseTimer::new();
        timer
            .phase("one", || {
                let _ = pool.pin_read(first)?;
                Ok(())
            })
            .unwrap();
        timer
            .phase("two", || {
                let _ = pool.pin_read(first + 1)?;
                let _ = pool.pin_read(first + 2)?;
                Ok(())
            })
            .unwrap();
        let rows = timer.into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].io.pages_read, 1);
        assert_eq!(rows[1].io.pages_read, 2);
        assert!(rows.iter().all(|r| r.group.is_none()));
    }

    #[test]
    fn critical_path_removes_group_overlap() {
        fn ms(sim_ms: f64) -> DiskStats {
            DiskStats {
                sim_ms,
                ..DiskStats::default()
            }
        }
        let report = RunReport {
            strategy: "x".into(),
            deleted: 0,
            io: ms(100.0),
            phases: vec![
                PhaseRow {
                    name: "serial".into(),
                    io: ms(40.0),
                    group: None,
                },
                PhaseRow {
                    name: "arm a".into(),
                    io: ms(35.0),
                    group: Some(0),
                },
                PhaseRow {
                    name: "arm b".into(),
                    io: ms(25.0),
                    group: Some(0),
                },
            ],
            workers: 2,
            pool: PoolStats::default(),
            events: Vec::new(),
        };
        // saved = (35 + 25) - 35 = 25; crit = 100 - 25 = 75.
        assert!((report.critical_path_ms() - 75.0).abs() < 1e-9);
        let serial = RunReport {
            workers: 1,
            ..report.clone()
        };
        assert!((serial.critical_path_ms() - serial.sim_ms()).abs() < 1e-9);
    }
}
