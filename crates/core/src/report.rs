//! Run reports: simulated time and I/O counters per strategy execution.
//!
//! A run carries two simulated clocks:
//!
//! * the **serial** clock — the sum of every disk charge, exactly what the
//!   1999 cost model accumulates (the paper's y-axis);
//! * the **critical-path** clock — what the run would cost if the arms of
//!   each fan-out group truly overlapped: serial phases sum, concurrent
//!   phases contribute only their maximum.
//!
//! The per-arm cost model is untouched; the critical path simply removes
//! the overlap of independent per-structure `⋈̄` arms.

use std::sync::Arc;

use bd_storage::{BufferPool, DiskStats, IoScope, PoolStats, StorageResult};

pub use crate::audit::{AuditFinding, AuditReport};

/// A graceful-degradation event: one fan-out arm died, the executor
/// cancelled its siblings and re-ran every unfinished arm serially instead
/// of failing the whole statement.
#[derive(Debug, Clone)]
pub struct DegradeEvent {
    /// Fan-out group the failure occurred in.
    pub group: u32,
    /// Label of the arm whose failure triggered degradation.
    pub failed_arm: String,
    /// Display form of the originating error.
    pub error: String,
    /// Labels of the arms re-run serially (in plan order; includes the
    /// failed arm itself, which gets one more chance off the fault path).
    pub reran: Vec<String>,
    /// Whether every serial re-run completed — `true` means the statement
    /// survived the fault; `false` means the re-run hit it again (a
    /// persistent fault) and the statement failed after all.
    pub recovered: bool,
}

impl std::fmt::Display for DegradeEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "group {}: arm `{}` failed ({}); re-ran {} arm(s) serially — {}",
            self.group,
            self.failed_arm,
            self.error,
            self.reran.len(),
            if self.recovered {
                "recovered"
            } else {
                "not recovered"
            },
        )
    }
}

/// One phase (task) of a strategy execution: a named unit of work with the
/// I/O its [`IoScope`] attributed to it.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase label, e.g. `sort(D)` or `bd I_B (sort/merge)`.
    pub name: String,
    /// I/O attributed to this phase's scope.
    pub io: DiskStats,
    /// Fan-out group id: rows sharing a group are independent arms that
    /// run concurrently when the executor is given workers. `None` marks a
    /// serial phase.
    pub group: Option<u32>,
}

/// Records one [`PhaseRow`] per executed phase, each under its own
/// [`IoScope`] — correct under concurrency, unlike the global
/// stats-delta closure it replaces (concurrent arms would attribute each
/// other's I/O to whichever phase read the counters last).
#[derive(Debug, Default)]
pub struct PhaseTimer {
    rows: Vec<PhaseRow>,
}

impl PhaseTimer {
    /// An empty timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Run `body` as one serial phase, attributing its I/O via a fresh
    /// [`IoScope`]. The row is recorded even when `body` fails, so partial
    /// runs still render a truthful breakdown.
    pub fn phase<T>(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce() -> StorageResult<T>,
    ) -> StorageResult<T> {
        let scope = IoScope::new();
        let result = {
            let _guard = scope.enter();
            body()
        };
        self.rows.push(PhaseRow {
            name: name.into(),
            io: scope.stats(),
            group: None,
        });
        result
    }

    /// Append an externally produced row (the executor's fan-out arms).
    pub fn push_row(&mut self, row: PhaseRow) {
        self.rows.push(row);
    }

    /// Rows recorded so far.
    pub fn rows(&self) -> &[PhaseRow] {
        &self.rows
    }

    /// Consume the timer, yielding its rows in execution order.
    pub fn into_rows(self) -> Vec<PhaseRow> {
        self.rows
    }
}

/// Sub-buckets per power of two: 2^3 = 8 gives ≤ 12.5% relative error on
/// reported percentiles, at 8 counters per octave.
const HIST_SUB_BITS: u32 = 3;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;
/// Buckets 0..HIST_SUB hold the exact values 0..8 µs; above that, one
/// octave per power of two up to u64::MAX.
const HIST_BUCKETS: usize = HIST_SUB * (64 - HIST_SUB_BITS as usize + 1);

/// Log-bucketed latency histogram (microseconds).
///
/// Fixed footprint, mergeable across threads, percentile queries with
/// bounded (≤ 12.5%) relative error — the usual shape for foreground
/// latency reporting, where exact values matter less than stable tails.
/// Workload workers each record into their own histogram and the driver
/// [`LatencyHistogram::merge`]s them on join, mirroring how [`IoScope`]
/// shards merge.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50_us", &self.percentile(50.0))
            .field("p99_us", &self.percentile(99.0))
            .field("max_us", &self.max)
            .finish()
    }
}

fn hist_bucket(v: u64) -> usize {
    if v < HIST_SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - HIST_SUB_BITS)) & (HIST_SUB as u64 - 1)) as usize;
    (msb - HIST_SUB_BITS + 1) as usize * HIST_SUB + sub
}

/// Inclusive upper edge of a bucket (what percentile queries report).
fn hist_edge(bucket: usize) -> u64 {
    if bucket < HIST_SUB {
        return bucket as u64;
    }
    let octave = (bucket / HIST_SUB) as u32 - 1 + HIST_SUB_BITS;
    let sub = (bucket % HIST_SUB) as u64;
    let base = 1u64 << octave;
    let step = base >> HIST_SUB_BITS;
    // (base - 1) first: the top octave's last edge is exactly u64::MAX and
    // `base + 8 * step` would wrap.
    (base - 1) + (sub + 1) * step
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one latency sample, in microseconds.
    pub fn record(&mut self, micros: u64) {
        self.counts[hist_bucket(micros)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(micros);
        self.max = self.max.max(micros);
    }

    /// Fold `other`'s samples into this histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded sample (exact, not bucketed), in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// Mean of all samples, in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `p`-th percentile (0 < p ≤ 100), in microseconds: the upper
    /// edge of the first bucket whose cumulative count covers `p` percent
    /// of samples, clamped to the exact observed maximum. Returns 0 on an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let need = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= need {
                return hist_edge(bucket).min(self.max);
            }
        }
        self.max
    }
}

/// Foreground latency percentiles per operation class, observed while a
/// bulk delete ran under live traffic.
#[derive(Debug, Clone, Default)]
pub struct ForegroundReport {
    /// `(op class, histogram)` in first-recorded order, e.g.
    /// `point_read`, `range_scan`, `insert`.
    pub classes: Vec<(String, LatencyHistogram)>,
}

impl ForegroundReport {
    /// An empty report.
    pub fn new() -> Self {
        ForegroundReport::default()
    }

    /// The histogram for `class`, created on first use.
    pub fn class_mut(&mut self, class: &str) -> &mut LatencyHistogram {
        if let Some(i) = self.classes.iter().position(|(n, _)| n == class) {
            return &mut self.classes[i].1;
        }
        self.classes
            .push((class.to_string(), LatencyHistogram::new()));
        &mut self.classes.last_mut().expect("just pushed").1
    }

    /// The histogram for `class`, if any samples were recorded.
    pub fn class(&self, class: &str) -> Option<&LatencyHistogram> {
        self.classes
            .iter()
            .find(|(n, _)| n == class)
            .map(|(_, h)| h)
    }

    /// Fold every class of `other` into this report.
    pub fn merge(&mut self, other: &ForegroundReport) {
        for (name, hist) in &other.classes {
            self.class_mut(name).merge(hist);
        }
    }

    /// Total samples across all classes.
    pub fn total_ops(&self) -> u64 {
        self.classes.iter().map(|(_, h)| h.count()).sum()
    }

    /// Rendered percentile table, one line per op class.
    pub fn table(&self) -> String {
        let mut out = String::new();
        for (name, h) in &self.classes {
            out.push_str(&format!(
                "  fg {:<12} n {:>7}  p50 {:>7} µs  p95 {:>7} µs  p99 {:>7} µs  max {:>8} µs\n",
                name,
                h.count(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max_us(),
            ));
        }
        out
    }
}

/// Outcome of one delete-strategy execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy label, e.g. `sorted/trad` or `bulk delete`.
    pub strategy: String,
    /// Records deleted from the base table.
    pub deleted: usize,
    /// Disk counters accumulated by the run (after a cold-cache reset).
    pub io: DiskStats,
    /// Per-phase I/O breakdown: one row per task of the phase DAG, in plan
    /// order (stable regardless of arm completion order).
    pub phases: Vec<PhaseRow>,
    /// Worker threads the phase-task executor was allowed (1 = serial).
    pub workers: usize,
    /// Buffer-pool counters for the run (hits, misses, prefetched pins,
    /// writebacks) — the cache-warmth side of the same I/O story `io` tells.
    pub pool: PoolStats,
    /// Graceful-degradation events: fan-out arms that died and were re-run
    /// serially. Empty on a fault-free run.
    pub events: Vec<DegradeEvent>,
    /// Foreground latency percentiles per op class, when the run executed
    /// under live traffic (`None` for offline runs).
    pub foreground: Option<ForegroundReport>,
}

impl RunReport {
    /// Simulated elapsed milliseconds — the *serial* clock (sum of every
    /// disk charge, as the paper's single-disk cost model accumulates it).
    pub fn sim_ms(&self) -> f64 {
        self.io.sim_ms
    }

    /// Simulated elapsed minutes — the unit the paper's figures report.
    pub fn sim_minutes(&self) -> f64 {
        self.io.sim_ms / 60_000.0
    }

    /// Simulated milliseconds along the critical path: serial phases sum;
    /// each fan-out group contributes only its slowest arm. Equal to
    /// [`RunReport::sim_ms`] when the run was serial (`workers <= 1`).
    pub fn critical_path_ms(&self) -> f64 {
        if self.workers <= 1 {
            return self.io.sim_ms;
        }
        let mut saved = 0.0;
        let groups: Vec<u32> = {
            let mut g: Vec<u32> = self.phases.iter().filter_map(|p| p.group).collect();
            g.dedup();
            g
        };
        for gid in groups {
            let arms = self.phases.iter().filter(|p| p.group == Some(gid));
            let (mut sum, mut max) = (0.0f64, 0.0f64);
            for arm in arms {
                sum += arm.io.sim_ms;
                max = max.max(arm.io.sim_ms);
            }
            saved += sum - max;
        }
        self.io.sim_ms - saved
    }

    /// Critical-path simulated minutes.
    pub fn critical_path_minutes(&self) -> f64 {
        self.critical_path_ms() / 60_000.0
    }

    /// Multi-line phase breakdown (empty string when not instrumented).
    /// Concurrent arms are marked with `∥`.
    pub fn phase_breakdown(&self) -> String {
        let mut out = String::new();
        for row in &self.phases {
            let marker = if row.group.is_some() { "∥ " } else { "  " };
            out.push_str(&format!(
                "  {}{:<28} {:>8.2} s  ios {:>8} (random {:>6})\n",
                marker,
                row.name,
                row.io.sim_ms / 1000.0,
                row.io.total_ios(),
                row.io.total_random(),
            ));
            if row.io.retries > 0 {
                out.push_str(&format!("      ({} I/O retries)\n", row.io.retries));
            }
        }
        for event in &self.events {
            out.push_str(&format!("  !! degraded: {event}\n"));
        }
        if let Some(fg) = &self.foreground {
            out.push_str(&fg.table());
        }
        out
    }

    /// One summary line (adds the critical-path clock for parallel runs).
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{:<16} deleted {:>8}  sim {:>9.2} min  ios {:>9} (random {:>8}, read {:>9}, write {:>9})",
            self.strategy,
            self.deleted,
            self.sim_minutes(),
            self.io.total_ios(),
            self.io.total_random(),
            self.io.pages_read,
            self.io.pages_written,
        );
        if self.workers > 1 {
            line.push_str(&format!(
                "  crit-path {:>9.2} min ({} workers)",
                self.critical_path_minutes(),
                self.workers,
            ));
        }
        if self.io.retries > 0 {
            line.push_str(&format!("  retries {}", self.io.retries));
        }
        if !self.events.is_empty() {
            line.push_str(&format!("  DEGRADED x{}", self.events.len()));
        }
        line
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Run `body` against a cold cache and account its I/O (including the final
/// flush of dirty pages, which belongs to the run).
pub fn measure<T>(
    pool: &Arc<BufferPool>,
    strategy: &str,
    body: impl FnOnce() -> StorageResult<T>,
) -> StorageResult<(T, RunReport)> {
    pool.clear_cache()?;
    pool.reset_stats();
    let before = pool.disk_stats();
    let value = body()?;
    pool.flush_all()?;
    let io = pool.disk_stats().since(&before);
    Ok((
        value,
        RunReport {
            strategy: strategy.to_string(),
            deleted: 0,
            io,
            phases: Vec::new(),
            workers: 1,
            pool: pool.pool_stats(),
            events: Vec::new(),
            foreground: None,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{CostModel, SimDisk, StructureId};

    #[test]
    fn measure_accounts_io_and_flush() {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(4, StructureId::Table);
        let pool = BufferPool::new(disk, 8);
        let (_, report) = measure(&pool, "probe", || {
            let mut w = pool.pin_write(first)?;
            w[0] = 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(report.io.pages_read, 1);
        assert_eq!(report.io.pages_written, 1, "flush counted");
        assert!(report.sim_ms() > 0.0);
        assert!(report.summary().contains("probe"));
    }

    #[test]
    fn measure_starts_cold() {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(2, StructureId::Table);
        let pool = BufferPool::new(disk, 8);
        let _ = pool.pin_read(first).unwrap();
        let (_, report) = measure(&pool, "x", || {
            let _ = pool.pin_read(first)?;
            Ok(())
        })
        .unwrap();
        // The pre-measure pin must not make the in-measure pin a cache hit.
        assert_eq!(report.io.pages_read, 1);
    }

    #[test]
    fn phase_timer_attributes_io_per_phase() {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(4, StructureId::Table);
        let pool = BufferPool::new(disk, 8);
        let mut timer = PhaseTimer::new();
        timer
            .phase("one", || {
                let _ = pool.pin_read(first)?;
                Ok(())
            })
            .unwrap();
        timer
            .phase("two", || {
                let _ = pool.pin_read(first + 1)?;
                let _ = pool.pin_read(first + 2)?;
                Ok(())
            })
            .unwrap();
        let rows = timer.into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].io.pages_read, 1);
        assert_eq!(rows[1].io.pages_read, 2);
        assert!(rows.iter().all(|r| r.group.is_none()));
    }

    #[test]
    fn histogram_percentiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max_us(), 10_000);
        for (p, exact) in [(50.0, 5_000u64), (95.0, 9_500), (99.0, 9_900)] {
            let got = h.percentile(p);
            assert!(
                got >= exact && got as f64 <= exact as f64 * 1.125 + 1.0,
                "p{p}: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.percentile(100.0), 10_000);
        assert!((h.mean_us() - 5_000.5).abs() < 1e-6);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.percentile(20.0), 0);
        assert_eq!(h.percentile(100.0), 7);
        assert_eq!(h.percentile(60.0), 2);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        let mut x = 12345u64;
        for i in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x % 1_000_000;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max_us(), all.max_us());
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(a.percentile(p), all.percentile(p), "p{p}");
        }
    }

    #[test]
    fn histogram_extremes_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert_eq!(h.percentile(1.0), 0);
        let empty = LatencyHistogram::new();
        assert_eq!(empty.percentile(99.0), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn foreground_report_merges_and_renders_per_class() {
        let mut a = ForegroundReport::new();
        a.class_mut("point_read").record(120);
        a.class_mut("insert").record(340);
        let mut b = ForegroundReport::new();
        b.class_mut("point_read").record(90);
        b.class_mut("range_scan").record(1000);
        a.merge(&b);
        assert_eq!(a.total_ops(), 4);
        assert_eq!(a.class("point_read").unwrap().count(), 2);
        let table = a.table();
        for class in ["point_read", "insert", "range_scan"] {
            assert!(table.contains(class), "{table}");
        }
    }

    #[test]
    fn critical_path_removes_group_overlap() {
        fn ms(sim_ms: f64) -> DiskStats {
            DiskStats {
                sim_ms,
                ..DiskStats::default()
            }
        }
        let report = RunReport {
            strategy: "x".into(),
            deleted: 0,
            io: ms(100.0),
            phases: vec![
                PhaseRow {
                    name: "serial".into(),
                    io: ms(40.0),
                    group: None,
                },
                PhaseRow {
                    name: "arm a".into(),
                    io: ms(35.0),
                    group: Some(0),
                },
                PhaseRow {
                    name: "arm b".into(),
                    io: ms(25.0),
                    group: Some(0),
                },
            ],
            workers: 2,
            pool: PoolStats::default(),
            events: Vec::new(),
            foreground: None,
        };
        // saved = (35 + 25) - 35 = 25; crit = 100 - 25 = 75.
        assert!((report.critical_path_ms() - 75.0).abs() < 1e-9);
        let serial = RunReport {
            workers: 1,
            ..report.clone()
        };
        assert!((serial.critical_path_ms() - serial.sim_ms()).abs() < 1e-9);
    }
}
