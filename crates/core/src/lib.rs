#![warn(missing_docs)]

//! Bulk-delete engine — the primary contribution of *"Efficient Bulk
//! Deletes in Relational Databases"* (Gaertner, Kemper, Kossmann, Zeller;
//! ICDE 2001), rebuilt as a Rust library.
//!
//! A [`db::Database`] holds tables (heap files with slotted pages) and
//! B-link-tree indices over a simulated disk with an honest 1999-era cost
//! model. `DELETE FROM R WHERE R.A IN (SELECT D.A FROM D)` can then be
//! executed four ways:
//!
//! * [`strategy::horizontal`] — the traditional record-at-a-time executor
//!   (`sorted/trad` and `not sorted/trad` in the paper's figures);
//! * [`strategy::drop_create`] — drop secondary indices, delete, rebuild;
//! * [`strategy::vertical`] — the paper's set-oriented bulk delete, driven
//!   by a [`plan::DeletePlan`];
//! * [`planner::plan_delete`] — the optimizer choosing ⋈̄ method
//!   (sort/merge vs. classic hash vs. partitioned hash), ⋈̄ order (unique
//!   indices first), and primary ⋈̄ predicate (key vs. RID).
//!
//! ```
//! use bd_core::prelude::*;
//!
//! let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
//! let tid = db.create_table("R", Schema::new(3, 64));
//! db.create_index(tid, IndexDef::secondary(0).unique()).unwrap();
//! db.create_index(tid, IndexDef::secondary(1)).unwrap();
//! for i in 0..1000u64 {
//!     db.insert(tid, &Tuple::new(vec![i, i % 31, i % 7])).unwrap();
//! }
//! // DELETE FROM R WHERE R.A IN (0, 2, 4, ...)
//! let d: Vec<u64> = (0..1000).step_by(2).collect();
//! let (plan, outcome) = strategy::vertical_auto(
//!     &mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1).unwrap();
//! println!("{}", plan.render(db.table(tid).unwrap()));
//! assert_eq!(outcome.deleted.len(), 500);
//! db.check_consistency(tid).unwrap();
//! ```

pub mod audit;
pub mod catalog;
pub mod constraint;
pub mod cost;
pub mod db;
pub mod engine;
pub mod erasure;
pub mod error;
pub mod executor;
pub mod maintain;
pub mod plan;
pub mod planner;
pub mod report;
pub mod strategy;
pub mod tuple;
pub mod update;

pub use audit::{
    audit_catalog, audit_equivalence, audit_equivalence_with, audit_table, AuditFinding,
    AuditOptions, AuditReport, ShadowDb,
};
pub use catalog::{HashIdx, HashIndexDef, Index, IndexDef, Table};
pub use constraint::{ForeignKey, RefAction};
pub use cost::{horizontal_cost, plan_cost, CostEnv, CostEstimate};
pub use db::{Database, DatabaseConfig, TableId};
pub use engine::{audit_engine_equivalence, BtreeEngine, EngineStats, TableEngine};
pub use erasure::{
    collect_sensitive, plan_cascade, run_cascade, run_cascade_step, scrub_database, verify_erasure,
    CascadePlan, CascadeStep, ErasureReport, Residue, ScrubReport,
};
pub use error::{DbError, DbResult};
pub use executor::{PhaseExecutor, PhaseTask};
pub use maintain::{Maintainer, MaintenanceConfig, MaintenanceReport};
pub use plan::{DeletePlan, IndexMethod, IndexStep, TableMethod};
pub use planner::{plan_delete, plan_delete_costed, plan_sort_merge};
pub use report::{
    measure, DegradeEvent, ForegroundReport, LatencyHistogram, PhaseRow, PhaseTimer, RunReport,
};
pub use strategy::{DeleteOutcome, RebuildMode};
pub use tuple::{attr_name, Schema, Tuple};
pub use update::{bulk_update, UpdateOutcome};

/// Common imports for examples and downstream crates.
pub mod prelude {
    pub use crate::audit::{
        audit_catalog, audit_equivalence, audit_equivalence_with, audit_table, AuditOptions,
        AuditReport, ShadowDb,
    };
    pub use crate::catalog::IndexDef;
    pub use crate::db::{Database, DatabaseConfig, TableId};
    pub use crate::engine::{audit_engine_equivalence, BtreeEngine, TableEngine};
    pub use crate::error::{DbError, DbResult};
    pub use crate::plan::DeletePlan;
    pub use crate::strategy::{self, DeleteOutcome};
    pub use crate::tuple::{Schema, Tuple};
    pub use bd_btree::{BTreeConfig, Key, ReorgPolicy};
    pub use bd_storage::{CostModel, Rid};
}
