//! Differential audit harness.
//!
//! The paper's correctness claim is that every delete strategy — horizontal,
//! drop&create, and the vertical set-oriented plans — is a drop-in
//! replacement for the others. [`Database::check_consistency`] asserts a
//! *single* database agrees with itself; this module goes further:
//!
//! * [`ShadowDb`] — a tiny in-memory model database that mirrors every
//!   insert, update and delete. [`ShadowDb::diff`] compares the model
//!   against the real engine structure by structure (heap record multiset,
//!   exact B-tree entry lists plus all structural invariants, FSM-vs-page
//!   occupancy, hash-chain contents) and reports each divergence.
//! * [`audit_equivalence`] — a differential checker asserting that two
//!   databases, typically the same workload executed under two different
//!   delete strategies, are in equivalent physical state.
//! * [`AuditReport`] — the structured result: one [`AuditFinding`] per
//!   divergence, naming the structure and describing the diff.
//!
//! Unlike `check_consistency`, nothing here panics on divergence: the
//! harness accumulates findings so a single run reports *every* broken
//! structure, which is what makes planted-corruption self-tests and
//! `repro --audit` useful.

use std::collections::BTreeMap;
use std::fmt;

use bd_btree::{verify, verify::TreeAudit, Key};
use bd_storage::Rid;

use crate::db::{Database, TableId};
use crate::error::DbResult;
use crate::tuple::{attr_name, Schema, Tuple};

/// Maximum diverging items quoted per finding (the full counts are always
/// reported; samples keep reports readable at scale).
const SAMPLE: usize = 5;

/// One divergence found by the audit harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// The structure that diverged, e.g. `heap`, `btree I_B`, `hash H_D`,
    /// `fsm`, `catalog`.
    pub structure: String,
    /// Human-readable description of the diff.
    pub detail: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.structure, self.detail)
    }
}

/// Structured result of an audit: empty means the compared states are
/// equivalent (or the audited database matches its model).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Every divergence found, in structure order.
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// True when no divergence was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Record a finding against `structure`.
    pub fn push(&mut self, structure: impl Into<String>, detail: impl Into<String>) {
        self.findings.push(AuditFinding {
            structure: structure.into(),
            detail: detail.into(),
        });
    }

    /// Render the report for humans (one line per finding).
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "audit clean: no divergence".to_string();
        }
        let mut out = format!("audit found {} divergence(s):\n", self.findings.len());
        for f in &self.findings {
            out.push_str(&format!("  {f}\n"));
        }
        out
    }

    /// Turn a clean report into `Ok(())` and a dirty one into `Err(self)`
    /// (test-friendly: `.into_result().unwrap()`).
    pub fn into_result(self) -> Result<(), AuditReport> {
        if self.is_clean() {
            Ok(())
        } else {
            Err(self)
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl std::error::Error for AuditReport {}

/// Describe how two sorted multisets diverge: counts plus a bounded sample
/// of the elements unique to each side. `None` when they are equal.
fn diff_sorted<T: Ord + Clone + fmt::Debug>(
    ours: &[T],
    theirs: &[T],
    our_name: &str,
    their_name: &str,
) -> Option<String> {
    if ours == theirs {
        return None;
    }
    let mut only_ours = Vec::new();
    let mut only_theirs = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < ours.len() || j < theirs.len() {
        match (ours.get(i), theirs.get(j)) {
            (Some(a), Some(b)) if a == b => {
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                only_ours.push(a.clone());
                i += 1;
            }
            (Some(_), Some(b)) => {
                only_theirs.push(b.clone());
                j += 1;
            }
            (Some(a), None) => {
                only_ours.push(a.clone());
                i += 1;
            }
            (None, Some(b)) => {
                only_theirs.push(b.clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    let mut msg = format!(
        "{our_name} has {} entries, {their_name} has {}",
        ours.len(),
        theirs.len()
    );
    if !only_ours.is_empty() {
        msg.push_str(&format!(
            "; {} only in {our_name}, e.g. {:?}",
            only_ours.len(),
            &only_ours[..only_ours.len().min(SAMPLE)]
        ));
    }
    if !only_theirs.is_empty() {
        msg.push_str(&format!(
            "; {} only in {their_name}, e.g. {:?}",
            only_theirs.len(),
            &only_theirs[..only_theirs.len().min(SAMPLE)]
        ));
    }
    Some(msg)
}

/// Audit the internal consistency of one table: B-tree invariants,
/// FSM-vs-occupancy, hash-chain structure, and index-vs-heap agreement.
/// This is the structured (non-panicking) sibling of
/// [`Database::check_consistency`]; both the shadow diff and the
/// equivalence check run it on each side first.
pub fn audit_table(db: &Database, tid: TableId) -> DbResult<AuditReport> {
    let mut report = AuditReport::default();
    let table = db.table(tid)?;
    let heap_rows: Vec<(Rid, Tuple)> = table
        .heap
        .dump()?
        .into_iter()
        .map(|(rid, bytes)| (rid, table.schema.decode(&bytes)))
        .collect();

    // FSM vs actual page occupancy.
    for m in table.heap.audit_fsm()? {
        report.push(
            "fsm",
            format!(
                "page {}: recorded {:?} free bytes, actual {}",
                m.page, m.recorded, m.actual
            ),
        );
    }

    // Every B-tree: structural invariants + entries match the heap.
    for index in &table.indices {
        let name = format!("btree {}", index.def.name);
        match verify::audit(&index.tree) {
            Err(v) => report.push(&name, v.to_string()),
            Ok(audit) => {
                let mut expect: Vec<(Key, Rid)> = heap_rows
                    .iter()
                    .map(|(rid, t)| (t.attr(index.def.attr), *rid))
                    .collect();
                expect.sort_unstable();
                if let Some(diff) = diff_sorted(&audit.entries, &expect, "index", "heap") {
                    report.push(&name, diff);
                }
            }
        }
    }

    // Every hash index: chain invariants + entries match the heap.
    for h in &table.hash_indices {
        let name = format!("hash {}", h.def.name);
        let audit = h.index.audit()?;
        for v in &audit.violations {
            report.push(&name, v.clone());
        }
        let mut got = audit.entries();
        got.sort_unstable();
        let mut expect: Vec<(Key, Rid)> = heap_rows
            .iter()
            .map(|(rid, t)| (t.attr(h.def.attr), *rid))
            .collect();
        expect.sort_unstable();
        if let Some(diff) = diff_sorted(&got, &expect, "index", "heap") {
            report.push(&name, diff);
        }
    }

    // Heap record counter.
    if table.heap.len() != heap_rows.len() {
        report.push(
            "heap",
            format!(
                "record counter says {} but {} records are on disk",
                table.heap.len(),
                heap_rows.len()
            ),
        );
    }
    Ok(report)
}

/// Audit the page catalog against reality for one table.
///
/// Walks every structure's real page set — the heap's page list, each
/// B-tree's child-pointer reachability, each hash index's bucket chains —
/// and checks the invariants media recovery depends on:
///
/// * every reachable page is catalogued to exactly the structure that
///   reaches it (so a torn page condemns the right structure);
/// * no page is reachable from two structures;
/// * every catalog-*free* page is unreachable (so healing a free page
///   without a rebuild is always safe);
/// * the heap's FSM tracks exactly the walked heap pages (the catalog, the
///   FSM, and the page walk agree on what the table owns).
///
/// Owned-but-unreachable pages are legal and not reported: leaf compaction
/// and base-node packing abandon pages without freeing them, and a
/// collapsed root stays catalogued so checkpoint restores stay valid.
pub fn audit_catalog(db: &Database, tid: TableId) -> DbResult<AuditReport> {
    use bd_storage::{PageId, StructureId};
    let mut report = AuditReport::default();
    let table = db.table(tid)?;
    let catalog = db.pool().catalog();

    let mut reachable: BTreeMap<PageId, StructureId> = BTreeMap::new();
    let mut claim = |report: &mut AuditReport, pid: PageId, owner: StructureId| {
        if let Some(prev) = reachable.insert(pid, owner) {
            if prev != owner {
                report.push(
                    "catalog",
                    format!("page {pid} is reachable from both {prev} and {owner}"),
                );
            }
        }
    };
    for &pid in table.heap.page_ids() {
        claim(&mut report, pid, StructureId::Table);
    }
    for index in &table.indices {
        let owner = StructureId::index_of(tid, index.def.attr);
        for pid in index.tree.pages()? {
            claim(&mut report, pid, owner);
        }
    }
    for h in &table.hash_indices {
        let owner = StructureId::hash_of(tid, h.def.attr);
        for pid in h.index.pages()? {
            claim(&mut report, pid, owner);
        }
    }

    // Reachable ⇒ owned by exactly that structure.
    for (&pid, &owner) in &reachable {
        match catalog.owner(pid) {
            Some(o) if o == owner => {}
            Some(o) => report.push(
                "catalog",
                format!("page {pid} is reachable from {owner} but catalogued as {o}"),
            ),
            None => report.push(
                "catalog",
                format!("page {pid} is reachable from {owner} but catalogued as free"),
            ),
        }
    }
    // Free ⇒ unreachable (the dual; covers free pages nothing walks).
    for pid in catalog.free_pages() {
        if let Some(owner) = reachable.get(&pid) {
            report.push(
                "catalog",
                format!("page {pid} is catalogued as free but reachable from {owner}"),
            );
        }
    }
    // FSM ↔ page walk: every heap page has a free-space entry.
    for &pid in table.heap.page_ids() {
        if table.heap.fsm_free(pid).is_none() {
            report.push(
                "catalog",
                format!("heap page {pid} is missing from the free-space map"),
            );
        }
    }
    // The dual: every FSM entry names a current heap page. A stale entry
    // for a released (possibly recycled) page would let `find_page` steer
    // an insert into a page the table no longer owns.
    {
        let heap_pages: std::collections::BTreeSet<PageId> =
            table.heap.page_ids().iter().copied().collect();
        for pid in table.heap.fsm_pages() {
            if !heap_pages.contains(&pid) {
                report.push(
                    "catalog",
                    format!("free-space map tracks page {pid}, which is not a heap page"),
                );
            }
        }
    }
    Ok(report)
}

/// What [`audit_equivalence_with`] compares beyond logical content.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditOptions {
    /// Also compare each matched B-tree's *physical shape* — height,
    /// per-leaf fill profile, and detached-empty-leaf count from
    /// [`TreeAudit`] (never page ids, which are allocator-dependent).
    ///
    /// Two different strategies legitimately produce different layouts for
    /// the same logical state (incremental maintenance vs. a packed bulk
    /// load), so this is off by default; turn it on for *same-strategy
    /// determinism* checks, where the runs must be physically identical.
    pub physical_shape: bool,
}

impl AuditOptions {
    /// Logical content only (the default).
    pub fn logical() -> Self {
        AuditOptions::default()
    }

    /// Logical content plus physical B-tree shape.
    pub fn with_physical_shape() -> Self {
        AuditOptions {
            physical_shape: true,
        }
    }
}

/// Describe how two tree shapes diverge (height, leaf-fill profile,
/// detached empty leaves). `None` when the shapes agree. Page ids are
/// deliberately ignored: two identical delete histories may still place
/// leaves on different physical pages.
fn shape_diff(a: &TreeAudit, b: &TreeAudit, a_name: &str, b_name: &str) -> Option<String> {
    if a.height != b.height {
        return Some(format!(
            "{a_name} has height {}, {b_name} has {}",
            a.height, b.height
        ));
    }
    if a.detached_empty_leaves != b.detached_empty_leaves {
        return Some(format!(
            "{a_name} has {} detached empty leaves, {b_name} has {}",
            a.detached_empty_leaves, b.detached_empty_leaves
        ));
    }
    if a.leaf_fill != b.leaf_fill {
        if a.leaf_fill.len() != b.leaf_fill.len() {
            return Some(format!(
                "{a_name} has {} reachable leaves, {b_name} has {}",
                a.leaf_fill.len(),
                b.leaf_fill.len()
            ));
        }
        let (i, (fa, fb)) = a
            .leaf_fill
            .iter()
            .zip(&b.leaf_fill)
            .enumerate()
            .find(|(_, (x, y))| x != y)
            .expect("profiles differ");
        return Some(format!(
            "leaf fill profiles diverge at leaf {i}: {a_name} holds {fa} entries, {b_name} {fb}"
        ));
    }
    None
}

/// Differential physical-state equivalence between two databases holding
/// the same table — typically the same build + workload executed under two
/// different delete strategies. Checks, per structure:
///
/// * the exact heap record multiset `(rid, bytes)`;
/// * each B-tree's exact entry list (after verifying all invariants on
///   both sides) — physical node layout is allowed to differ, the logical
///   content is not;
/// * each hash index's entry multiset and chain invariants;
/// * FSM-vs-occupancy consistency on both sides;
/// * the catalogs describe the same set of indices.
pub fn audit_equivalence(db_a: &Database, db_b: &Database, tid: TableId) -> DbResult<AuditReport> {
    audit_equivalence_with(db_a, db_b, tid, AuditOptions::logical())
}

/// [`audit_equivalence`] with explicit [`AuditOptions`]; the physical-shape
/// mode additionally diffs each matched B-tree's [`TreeAudit`] layout.
pub fn audit_equivalence_with(
    db_a: &Database,
    db_b: &Database,
    tid: TableId,
    opts: AuditOptions,
) -> DbResult<AuditReport> {
    let mut report = AuditReport::default();
    let ta = db_a.table(tid)?;
    let tb = db_b.table(tid)?;

    // Per-side internal consistency first: a divergence between two sides
    // is uninterpretable if one side is internally broken.
    for (side, db) in [("A", db_a), ("B", db_b)] {
        for f in audit_table(db, tid)?.findings {
            report.push(f.structure, format!("side {side}: {}", f.detail));
        }
    }

    // Exact heap record multiset, in RID order.
    let heap_a = ta.heap.dump()?;
    let heap_b = tb.heap.dump()?;
    if heap_a != heap_b {
        let rids_a: Vec<Rid> = heap_a.iter().map(|&(r, _)| r).collect();
        let rids_b: Vec<Rid> = heap_b.iter().map(|&(r, _)| r).collect();
        if let Some(diff) = diff_sorted(&rids_a, &rids_b, "A", "B") {
            report.push("heap", diff);
        } else {
            // Same RIDs, different bytes: quote the first differing record.
            for ((rid, a), (_, b)) in heap_a.iter().zip(&heap_b) {
                if a != b {
                    report.push(
                        "heap",
                        format!(
                            "record {rid} differs: A={:?}.. B={:?}..",
                            &a[..a.len().min(16)],
                            &b[..b.len().min(16)]
                        ),
                    );
                    break;
                }
            }
        }
    }

    // Catalogs must describe the same indices.
    let names_a: Vec<&str> = ta.indices.iter().map(|i| i.def.name.as_str()).collect();
    let names_b: Vec<&str> = tb.indices.iter().map(|i| i.def.name.as_str()).collect();
    if names_a != names_b {
        report.push(
            "catalog",
            format!("A has B-tree indices {names_a:?}, B has {names_b:?}"),
        );
    }

    // Exact entry lists per matched B-tree.
    for ia in &ta.indices {
        let Some(ib) = tb.index_on(ia.def.attr) else {
            continue; // already reported as a catalog divergence
        };
        let name = format!("btree {}", ia.def.name);
        let (aa, ab) = match (verify::audit(&ia.tree), verify::audit(&ib.tree)) {
            (Ok(a), Ok(b)) => (a, b),
            // Invariant violations were already reported per side.
            _ => continue,
        };
        if let Some(diff) = diff_sorted(&aa.entries, &ab.entries, "A", "B") {
            report.push(&name, diff);
        }
        if opts.physical_shape {
            if let Some(diff) = shape_diff(&aa, &ab, "A", "B") {
                report.push(format!("{name} (shape)"), diff);
            }
        }
    }

    // Hash index entry multisets.
    let hnames_a: Vec<&str> = ta
        .hash_indices
        .iter()
        .map(|h| h.def.name.as_str())
        .collect();
    let hnames_b: Vec<&str> = tb
        .hash_indices
        .iter()
        .map(|h| h.def.name.as_str())
        .collect();
    if hnames_a != hnames_b {
        report.push(
            "catalog",
            format!("A has hash indices {hnames_a:?}, B has {hnames_b:?}"),
        );
    }
    for ha in &ta.hash_indices {
        let Some(hb) = tb.hash_index_on(ha.def.attr) else {
            continue;
        };
        let name = format!("hash {}", ha.def.name);
        let mut ea = ha.index.scan()?;
        let mut eb = hb.index.scan()?;
        ea.sort_unstable();
        eb.sort_unstable();
        if let Some(diff) = diff_sorted(&ea, &eb, "A", "B") {
            report.push(&name, diff);
        }
    }

    Ok(report)
}

/// Shadow model of one table: the rows the engine *should* hold, keyed by
/// RID, plus which attributes are indexed.
#[derive(Debug, Clone, Default)]
struct ShadowTable {
    schema: Option<Schema>,
    rows: BTreeMap<Rid, Tuple>,
    btree_attrs: Vec<usize>,
    hash_attrs: Vec<usize>,
}

/// In-memory model database for differential testing.
///
/// Mirror every mutation you apply to the real [`Database`] (the engine's
/// `insert` returns the [`Rid`] to mirror with), then call
/// [`ShadowDb::diff`]: it independently derives the expected state of every
/// structure from the model and compares it against what the engine's
/// heap, B-trees, FSM and hash chains actually hold.
#[derive(Debug, Clone, Default)]
pub struct ShadowDb {
    tables: Vec<ShadowTable>,
}

impl ShadowDb {
    /// Empty model.
    pub fn new() -> Self {
        ShadowDb::default()
    }

    /// Snapshot the current state of `db`'s table `tid` into a fresh model
    /// (convenient starting point when the build phase is already trusted).
    pub fn mirror_of(db: &Database, tid: TableId) -> DbResult<ShadowDb> {
        let mut shadow = ShadowDb::new();
        let table = db.table(tid)?;
        while shadow.tables.len() <= tid {
            shadow.tables.push(ShadowTable::default());
        }
        let st = &mut shadow.tables[tid];
        st.schema = Some(table.schema);
        st.btree_attrs = table.indices.iter().map(|i| i.def.attr).collect();
        st.hash_attrs = table.hash_indices.iter().map(|h| h.def.attr).collect();
        for (rid, bytes) in table.heap.dump()? {
            st.rows.insert(rid, table.schema.decode(&bytes));
        }
        Ok(shadow)
    }

    fn table_mut(&mut self, tid: TableId) -> &mut ShadowTable {
        while self.tables.len() <= tid {
            self.tables.push(ShadowTable::default());
        }
        &mut self.tables[tid]
    }

    /// Mirror of [`Database::create_table`].
    pub fn create_table(&mut self, tid: TableId, schema: Schema) {
        self.table_mut(tid).schema = Some(schema);
    }

    /// Mirror of [`Database::create_index`].
    pub fn create_index(&mut self, tid: TableId, attr: usize) {
        self.table_mut(tid).btree_attrs.push(attr);
    }

    /// Mirror of [`Database::create_hash_index`].
    pub fn create_hash_index(&mut self, tid: TableId, attr: usize) {
        self.table_mut(tid).hash_attrs.push(attr);
    }

    /// Mirror of [`Database::insert`] (pass the RID the engine returned).
    pub fn insert(&mut self, tid: TableId, rid: Rid, tuple: Tuple) {
        self.table_mut(tid).rows.insert(rid, tuple);
    }

    /// Mirror of an in-place update.
    pub fn update(&mut self, tid: TableId, rid: Rid, tuple: Tuple) {
        self.table_mut(tid).rows.insert(rid, tuple);
    }

    /// Mirror of a single-record delete.
    pub fn delete(&mut self, tid: TableId, rid: Rid) -> Option<Tuple> {
        self.table_mut(tid).rows.remove(&rid)
    }

    /// Mirror of `DELETE FROM tid WHERE attr IN keys` — the model's own
    /// semantics, computed independently of any engine strategy. Returns
    /// the deleted rows in RID order.
    pub fn delete_in(&mut self, tid: TableId, attr: usize, keys: &[Key]) -> Vec<(Rid, Tuple)> {
        let keyset: std::collections::HashSet<Key> = keys.iter().copied().collect();
        let st = self.table_mut(tid);
        let victims: Vec<Rid> = st
            .rows
            .iter()
            .filter(|(_, t)| keyset.contains(&t.attr(attr)))
            .map(|(&rid, _)| rid)
            .collect();
        victims
            .into_iter()
            .map(|rid| (rid, st.rows.remove(&rid).expect("victim exists")))
            .collect()
    }

    /// Mirror of [`crate::bulk_update`]: apply `transform` to every row
    /// whose `probe_attr` value is in `keys`, in place (RIDs are stable —
    /// the engine rewrites fixed-size records without moving them).
    /// Returns the number of rows the model updated.
    pub fn bulk_update(
        &mut self,
        tid: TableId,
        probe_attr: usize,
        keys: &[Key],
        transform: impl Fn(&mut Tuple),
    ) -> usize {
        let keyset: std::collections::HashSet<Key> = keys.iter().copied().collect();
        let st = self.table_mut(tid);
        let mut updated = 0;
        for tuple in st.rows.values_mut() {
            if keyset.contains(&tuple.attr(probe_attr)) {
                transform(tuple);
                updated += 1;
            }
        }
        updated
    }

    /// Rows the model holds for `tid`, in RID order.
    pub fn rows(&self, tid: TableId) -> Vec<(Rid, Tuple)> {
        self.tables
            .get(tid)
            .map(|t| t.rows.iter().map(|(&r, t)| (r, t.clone())).collect())
            .unwrap_or_default()
    }

    /// Number of rows the model holds for `tid`.
    pub fn len(&self, tid: TableId) -> usize {
        self.tables.get(tid).map(|t| t.rows.len()).unwrap_or(0)
    }

    /// True when the model holds no rows for `tid`.
    pub fn is_empty(&self, tid: TableId) -> bool {
        self.len(tid) == 0
    }

    /// Diff the model against the real engine, structure by structure:
    /// heap record multiset, each B-tree's exact entries (plus structural
    /// invariants), FSM-vs-occupancy, and hash-chain contents.
    pub fn diff(&self, db: &Database, tid: TableId) -> DbResult<AuditReport> {
        // Internal-consistency findings (invariants, FSM, counters) first.
        let mut report = audit_table(db, tid)?;
        let table = db.table(tid)?;
        let empty = ShadowTable::default();
        let st = self.tables.get(tid).unwrap_or(&empty);

        // Heap: exact (rid, tuple) list in RID order.
        let got_rows: Vec<(Rid, Tuple)> = table
            .heap
            .dump()?
            .into_iter()
            .map(|(rid, bytes)| (rid, table.schema.decode(&bytes)))
            .collect();
        let want_rows: Vec<(Rid, Tuple)> = st.rows.iter().map(|(&r, t)| (r, t.clone())).collect();
        if got_rows != want_rows {
            let got_rids: Vec<Rid> = got_rows.iter().map(|&(r, _)| r).collect();
            let want_rids: Vec<Rid> = want_rows.iter().map(|&(r, _)| r).collect();
            if let Some(diff) = diff_sorted(&got_rids, &want_rids, "engine", "model") {
                report.push("heap", diff);
            } else {
                for ((rid, a), (_, b)) in got_rows.iter().zip(&want_rows) {
                    if a != b {
                        report.push(
                            "heap",
                            format!("record {rid} differs: engine={a:?}, model={b:?}"),
                        );
                        break;
                    }
                }
            }
        }

        // Catalog: the engine must index exactly the attrs the model says.
        let got_attrs: Vec<usize> = table.indices.iter().map(|i| i.def.attr).collect();
        if got_attrs != st.btree_attrs {
            report.push(
                "catalog",
                format!(
                    "engine has B-trees on attrs {got_attrs:?}, model expects {:?}",
                    st.btree_attrs
                ),
            );
        }
        let got_hash: Vec<usize> = table.hash_indices.iter().map(|h| h.def.attr).collect();
        if got_hash != st.hash_attrs {
            report.push(
                "catalog",
                format!(
                    "engine has hash indices on attrs {got_hash:?}, model expects {:?}",
                    st.hash_attrs
                ),
            );
        }

        // Each index the model expects: derive the exact entry multiset.
        for &attr in &st.btree_attrs {
            let name = format!("btree I_{}", attr_name(attr));
            let Some(index) = table.index_on(attr) else {
                continue; // reported above
            };
            let Ok(audit) = verify::audit(&index.tree) else {
                continue; // invariant violation already reported by audit_table
            };
            let mut expect: Vec<(Key, Rid)> = st
                .rows
                .iter()
                .map(|(&rid, t)| (t.attr(attr), rid))
                .collect();
            expect.sort_unstable();
            if let Some(diff) = diff_sorted(&audit.entries, &expect, "engine", "model") {
                report.push(&name, diff);
            }
        }
        for &attr in &st.hash_attrs {
            let name = format!("hash H_{}", attr_name(attr));
            let Some(h) = table.hash_index_on(attr) else {
                continue;
            };
            let mut got = h.index.scan()?;
            got.sort_unstable();
            let mut expect: Vec<(Key, Rid)> = st
                .rows
                .iter()
                .map(|(&rid, t)| (t.attr(attr), rid))
                .collect();
            expect.sort_unstable();
            if let Some(diff) = diff_sorted(&got, &expect, "engine", "model") {
                report.push(&name, diff);
            }
        }

        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_btree::{BTree, BTreeConfig};
    use bd_storage::{BufferPool, CostModel, SimDisk, StructureId};

    fn tree_with(keys: impl Iterator<Item = Key>) -> BTree {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 128);
        let mut tree =
            BTree::create(pool, BTreeConfig::with_fanout(8), StructureId::Index(0)).unwrap();
        for k in keys {
            tree.insert(k, Rid::new(0, (k % 1000) as u16)).unwrap();
        }
        tree
    }

    #[test]
    fn shape_diff_ignores_page_ids_but_sees_layout() {
        // Same (key, rid) set, same insertion order: identical shape.
        let a = verify::audit(&tree_with(0..400)).unwrap();
        let b = verify::audit(&tree_with(0..400)).unwrap();
        assert_eq!(shape_diff(&a, &b, "A", "B"), None);

        // Same (key, rid) set, reversed insertion order: identical logical
        // entries, but the split history packs the leaves differently.
        let c = verify::audit(&tree_with((0..400).rev())).unwrap();
        assert_eq!(a.entries, c.entries, "logical content agrees");
        let diff = shape_diff(&a, &c, "A", "B").expect("layouts must differ");
        assert!(diff.contains("leaf"), "diff names the layout: {diff}");
    }

    #[test]
    fn shape_diff_reports_height_first() {
        let small = verify::audit(&tree_with(0..8)).unwrap();
        let tall = verify::audit(&tree_with(0..400)).unwrap();
        let diff = shape_diff(&small, &tall, "A", "B").unwrap();
        assert!(diff.contains("height"), "{diff}");
    }

    fn catalog_db() -> (Database, TableId) {
        let mut db = Database::new(crate::db::DatabaseConfig::default());
        let schema = Schema::new(3, 64);
        let tid = db.create_table("t", schema);
        for i in 0..500u64 {
            db.insert(tid, &Tuple::new(vec![i * 10, i * 7, i * 3]))
                .unwrap();
        }
        db.create_index(tid, crate::catalog::IndexDef::secondary(0))
            .unwrap();
        db.create_index(tid, crate::catalog::IndexDef::secondary(1))
            .unwrap();
        db.create_hash_index(tid, 2).unwrap();
        (db, tid)
    }

    #[test]
    fn catalog_audit_is_clean_after_build_and_bulk_delete() {
        let (mut db, tid) = catalog_db();
        audit_catalog(&db, tid).unwrap().into_result().unwrap();
        let keys: Vec<Key> = (0..500u64).step_by(2).map(|i| i * 10).collect();
        db.delete_in(tid, 0, &keys).unwrap();
        audit_catalog(&db, tid).unwrap().into_result().unwrap();
    }

    #[test]
    fn catalog_audit_flags_a_reachable_page_marked_free() {
        let (db, tid) = catalog_db();
        let pid = db.table(tid).unwrap().indices[0].tree.root_page();
        db.pool().free_page(pid);
        let report = audit_catalog(&db, tid).unwrap();
        assert!(
            report.findings.iter().any(|f| f.detail.contains("free")),
            "freeing a live root must be caught: {report}"
        );
    }

    #[test]
    fn catalog_audit_flags_a_page_owned_by_the_wrong_structure() {
        let (db, tid) = catalog_db();
        let pid = db.table(tid).unwrap().indices[0].tree.root_page();
        db.pool()
            .with_disk(|d| d.set_page_owner(pid, StructureId::Hash(9)));
        let report = audit_catalog(&db, tid).unwrap();
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.detail.contains("catalogued as hash(9)")),
            "wrong owner must be caught: {report}"
        );
    }

    #[test]
    fn catalog_audit_allows_owned_but_unreachable_pages() {
        let (mut db, tid) = catalog_db();
        // Delete everything: trees collapse, abandoning owned pages.
        let keys: Vec<Key> = (0..500u64).map(|i| i * 10).collect();
        db.delete_in(tid, 0, &keys).unwrap();
        audit_catalog(&db, tid).unwrap().into_result().unwrap();
    }
}
