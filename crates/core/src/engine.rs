//! Engine-generic table interface.
//!
//! The paper's design-space argument — horizontal vs vertical vs
//! drop-and-create — was made over B-tree storage. Replaying it onto other
//! storage layouts (an LSM tree, where bulk delete becomes tombstone writes
//! plus delete-aware compaction) needs a seam between "a keyed table of
//! tuples" and "the structure that stores it". [`TableEngine`] is that
//! seam: build/bulk-load, point and range lookup, full scan, bulk delete
//! (by key and by range), stats, and the audit hooks the differential
//! harness drives.
//!
//! The contract is a *keyed* table: attribute 0 is the primary key, keys
//! are unique (inserting a duplicate is [`DbError::DuplicateKey`]), and
//! every read returns rows in key order. That makes two engines directly
//! comparable: [`audit_engine_equivalence`] diffs their sorted logical
//! dumps row by row and folds in each engine's own structural self-audit,
//! the same shape as [`audit_equivalence`](crate::audit::audit_equivalence)
//! between two B-tree databases.
//!
//! [`BtreeEngine`] adapts the existing [`Database`] (heap + B-link tree
//! indices, vertical bulk deletes) to the trait; the `bd-lsm` crate
//! provides the delete-aware LSM implementation.

use bd_btree::Key;

use crate::audit::{audit_catalog, audit_table, AuditReport};
use crate::db::{Database, DatabaseConfig, TableId};
use crate::error::{DbError, DbResult};
use crate::report::RunReport;
use crate::strategy;
use crate::tuple::{Schema, Tuple};

/// Size and shape of an engine's physical state, for reports and benches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Live logical rows.
    pub rows: usize,
    /// Pages currently owned by the engine's structures.
    pub pages: usize,
    /// Engine-specific shape, e.g. `"2 indices"` or `"3 levels, 5 runs,
    /// 120 tombstones"`. Free-form; not compared across engines.
    pub detail: String,
}

/// A storage engine serving one keyed table of [`Tuple`]s.
///
/// Attribute 0 is the unique primary key. Implementations charge all I/O
/// to the shared [`BufferPool`](bd_storage::BufferPool) cost model and
/// call [`bd_storage::pacer::checkpoint`] between page visits in their
/// long passes, so engines are comparable under `measure` and pausable
/// under a [`Pacer`](bd_storage::Pacer).
pub trait TableEngine {
    /// Short stable name for reports ("btree", "lsm").
    fn name(&self) -> &'static str;

    /// The table's record layout.
    fn schema(&self) -> Schema;

    /// Insert one row. Duplicate keys are [`DbError::DuplicateKey`].
    fn insert(&mut self, tuple: &Tuple) -> DbResult<()>;

    /// Bulk-build from rows (any order, keys unique). The engine may use
    /// a faster path than repeated [`TableEngine::insert`].
    fn bulk_load(&mut self, rows: &[Tuple]) -> DbResult<()> {
        for t in rows {
            self.insert(t)?;
        }
        Ok(())
    }

    /// Point lookup: the row with key `key`, if live.
    fn lookup(&mut self, key: Key) -> DbResult<Option<Tuple>>;

    /// Range lookup: live rows with `lo <= key <= hi`, in key order.
    fn range_lookup(&mut self, lo: Key, hi: Key) -> DbResult<Vec<Tuple>>;

    /// Full scan: every live row, in key order.
    fn scan(&mut self) -> DbResult<Vec<Tuple>> {
        self.range_lookup(Key::MIN, Key::MAX)
    }

    /// Bulk delete by key list (absent keys are no-ops). Returns the
    /// measured cost report with [`RunReport::deleted`] set to the number
    /// of rows that existed and were deleted.
    fn bulk_delete(&mut self, keys: &[Key]) -> DbResult<RunReport>;

    /// Bulk delete every row with `lo <= key <= hi`.
    fn delete_range(&mut self, lo: Key, hi: Key) -> DbResult<RunReport>;

    /// Current size/shape.
    fn stats(&mut self) -> DbResult<EngineStats>;

    /// The engine's logical contents for differential comparison: every
    /// live row, key-sorted. Unlike [`TableEngine::scan`] this must bypass
    /// caches of convenience (it is the ground truth the audit trusts).
    fn audit_dump(&mut self) -> DbResult<Vec<Tuple>>;

    /// The engine's own structural invariants (tree/run shape, page
    /// catalog agreement). Clean report = internally consistent.
    fn audit_self(&mut self) -> DbResult<AuditReport>;
}

/// Logical `audit_equivalence` between two engines: identical sorted
/// dumps, plus each side's structural self-audit folded into the report
/// under `"<name> self-audit"` findings.
pub fn audit_engine_equivalence<'e>(
    a: &'e mut dyn TableEngine,
    b: &'e mut dyn TableEngine,
) -> DbResult<AuditReport> {
    let mut report = AuditReport::default();
    let rows_a = a.audit_dump()?;
    let rows_b = b.audit_dump()?;
    if rows_a != rows_b {
        let only_a: Vec<&Tuple> = rows_a.iter().filter(|t| !rows_b.contains(t)).collect();
        let only_b: Vec<&Tuple> = rows_b.iter().filter(|t| !rows_a.contains(t)).collect();
        let sample = |v: &[&Tuple]| -> String {
            v.iter()
                .take(3)
                .map(|t| format!("{:?}", t.attrs))
                .collect::<Vec<_>>()
                .join(", ")
        };
        report.push(
            "engine dump",
            format!(
                "{} has {} rows, {} has {} rows; {} only in {} (e.g. {}), {} only in {} (e.g. {})",
                a.name(),
                rows_a.len(),
                b.name(),
                rows_b.len(),
                only_a.len(),
                a.name(),
                sample(&only_a),
                only_b.len(),
                b.name(),
                sample(&only_b),
            ),
        );
    }
    for (engine, side) in [(a, "a"), (b, "b")] {
        let name = engine.name();
        for f in engine.audit_self()?.findings {
            report.push(
                format!("{name}({side}) self-audit: {}", f.structure),
                f.detail,
            );
        }
    }
    Ok(report)
}

/// The B-tree engine: a one-table [`Database`] (heap + unique B-link tree
/// on the key attribute) behind the [`TableEngine`] interface. Bulk
/// deletes run the paper's vertical sort/merge plan.
pub struct BtreeEngine {
    db: Database,
    tid: TableId,
    workers: usize,
}

impl BtreeEngine {
    /// A fresh engine: one table of `schema`, a unique index on attribute
    /// 0, `total_memory` bytes of simulated memory, `workers` bulk-delete
    /// arms.
    pub fn new(schema: Schema, total_memory: usize, workers: usize) -> DbResult<BtreeEngine> {
        let mut db = Database::new(DatabaseConfig::with_total_memory(total_memory));
        let tid = db.create_table("engine", schema);
        db.create_index(tid, crate::catalog::IndexDef::secondary(0).unique())?;
        Ok(BtreeEngine { db, tid, workers })
    }

    /// Wrap an existing database table (it must have a unique index on
    /// attribute 0 — the probe index every strategy needs).
    pub fn from_db(db: Database, tid: TableId, workers: usize) -> BtreeEngine {
        BtreeEngine { db, tid, workers }
    }

    /// The wrapped database (for the richer B-tree-only audits).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the wrapped database.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The wrapped table id.
    pub fn tid(&self) -> TableId {
        self.tid
    }
}

impl TableEngine for BtreeEngine {
    fn name(&self) -> &'static str {
        "btree"
    }

    fn schema(&self) -> Schema {
        self.db.table(self.tid).expect("engine table exists").schema
    }

    fn insert(&mut self, tuple: &Tuple) -> DbResult<()> {
        self.db.insert(self.tid, tuple).map(|_| ())
    }

    fn lookup(&mut self, key: Key) -> DbResult<Option<Tuple>> {
        let table = self.db.table(self.tid)?;
        let tree = &table
            .index_on(0)
            .ok_or(DbError::NoProbeIndex { attr: 0 })?
            .tree;
        let rids = tree.search(key).map_err(DbError::Storage)?;
        match rids.first() {
            Some(&rid) => {
                let bytes = table.heap.get(rid).map_err(DbError::Storage)?;
                Ok(Some(table.schema.decode(&bytes)))
            }
            None => Ok(None),
        }
    }

    fn range_lookup(&mut self, lo: Key, hi: Key) -> DbResult<Vec<Tuple>> {
        let table = self.db.table(self.tid)?;
        let tree = &table
            .index_on(0)
            .ok_or(DbError::NoProbeIndex { attr: 0 })?
            .tree;
        let entries = tree.range(lo, hi).map_err(DbError::Storage)?;
        let mut rows = Vec::with_capacity(entries.len());
        for (_, rid) in entries {
            let bytes = table.heap.get(rid).map_err(DbError::Storage)?;
            rows.push(table.schema.decode(&bytes));
        }
        Ok(rows)
    }

    fn bulk_delete(&mut self, keys: &[Key]) -> DbResult<RunReport> {
        let out = strategy::vertical_sort_merge(&mut self.db, self.tid, 0, keys, self.workers)?;
        Ok(out.report)
    }

    fn delete_range(&mut self, lo: Key, hi: Key) -> DbResult<RunReport> {
        let keys: Vec<Key> = {
            let table = self.db.table(self.tid)?;
            let tree = &table
                .index_on(0)
                .ok_or(DbError::NoProbeIndex { attr: 0 })?
                .tree;
            tree.range(lo, hi)
                .map_err(DbError::Storage)?
                .into_iter()
                .map(|(k, _)| k)
                .collect()
        };
        self.bulk_delete(&keys)
    }

    fn stats(&mut self) -> DbResult<EngineStats> {
        let table = self.db.table(self.tid)?;
        let mut pages = table.heap.num_pages();
        for index in &table.indices {
            pages += index.tree.pages().map_err(DbError::Storage)?.len();
        }
        Ok(EngineStats {
            rows: table.heap.len(),
            pages,
            detail: format!("{} indices", table.indices.len()),
        })
    }

    fn audit_dump(&mut self) -> DbResult<Vec<Tuple>> {
        // Ground truth is the heap, not the index: a divergence between
        // them is the self-audit's job to flag, not the dump's to hide.
        let table = self.db.table(self.tid)?;
        let mut rows: Vec<Tuple> = table
            .heap
            .dump()
            .map_err(DbError::Storage)?
            .into_iter()
            .map(|(_, bytes)| table.schema.decode(&bytes))
            .collect();
        rows.sort_by(|x, y| x.attrs.cmp(&y.attrs));
        Ok(rows)
    }

    fn audit_self(&mut self) -> DbResult<AuditReport> {
        let mut report = audit_table(&self.db, self.tid)?;
        report
            .findings
            .extend(audit_catalog(&self.db, self.tid)?.findings);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: u64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![i * 2, i % 7, i])).collect()
    }

    fn engine(n: u64) -> BtreeEngine {
        let mut e = BtreeEngine::new(Schema::new(3, 64), 1 << 20, 1).unwrap();
        e.bulk_load(&rows(n)).unwrap();
        e
    }

    #[test]
    fn btree_engine_keyed_contract() {
        let mut e = engine(500);
        assert_eq!(e.lookup(10).unwrap(), Some(Tuple::new(vec![10, 5, 5])));
        assert_eq!(e.lookup(11).unwrap(), None, "odd keys never inserted");
        let mid = e.range_lookup(100, 110).unwrap();
        assert_eq!(
            mid.iter().map(|t| t.attr(0)).collect::<Vec<_>>(),
            vec![100, 102, 104, 106, 108, 110]
        );
        let err = e.insert(&Tuple::new(vec![10, 0, 0])).unwrap_err();
        assert_eq!(err, DbError::DuplicateKey { attr: 0, key: 10 });
        assert_eq!(e.scan().unwrap().len(), 500);
        assert_eq!(e.stats().unwrap().rows, 500);
    }

    #[test]
    fn btree_engine_deletes_and_self_audits() {
        let mut e = engine(400);
        let report = e.bulk_delete(&[0, 2, 4, 999]).unwrap();
        assert_eq!(report.deleted, 3, "999 is absent");
        let report = e.delete_range(100, 198).unwrap();
        assert_eq!(report.deleted, 50);
        assert_eq!(e.scan().unwrap().len(), 400 - 3 - 50);
        assert!(e.audit_self().unwrap().is_clean());
    }

    #[test]
    fn identical_engines_are_equivalent_and_divergence_is_reported() {
        let mut a = engine(300);
        let mut b = engine(300);
        let eq = audit_engine_equivalence(&mut a, &mut b).unwrap();
        assert!(eq.is_clean(), "{eq}");

        b.bulk_delete(&[42]).unwrap();
        let eq = audit_engine_equivalence(&mut a, &mut b).unwrap();
        assert!(!eq.is_clean(), "a still holds key 42");
        assert!(eq.render().contains("engine dump"));
    }
}
