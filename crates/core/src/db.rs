//! The `Database` facade: pool + workspace + tables.

use std::sync::Arc;

use bd_btree::{bulk_load, BTree, Key, LeafScan};
use bd_exec::sort_all;
use bd_storage::{BufferPool, CostModel, MemoryBudget, Rid, SimDisk, StructureId};

use crate::catalog::{Index, IndexDef, Table};
use crate::constraint::ForeignKey;
use crate::error::{DbError, DbResult};
use crate::tuple::{Schema, Tuple};

/// Identifier of a table within a [`Database`].
pub type TableId = usize;

/// Memory and cost-model configuration.
///
/// The paper's prototype shares one allotment between page caching and sort
/// workspace ("this main memory [is used] not only for caching but also to
/// carry out sorting"). [`DatabaseConfig::with_total_memory`] splits a total
/// budget 3/4 buffer pool, 1/4 sort/hash workspace; both halves can also be
/// set explicitly.
#[derive(Debug, Clone, Copy)]
pub struct DatabaseConfig {
    /// Bytes for the buffer pool (page cache).
    pub pool_bytes: usize,
    /// Bytes for sort runs and hash tables.
    pub workspace_bytes: usize,
    /// Simulated-disk cost model.
    pub cost: CostModel,
}

impl DatabaseConfig {
    /// Split `bytes` into 3/4 pool, 1/4 workspace.
    pub fn with_total_memory(bytes: usize) -> Self {
        DatabaseConfig {
            pool_bytes: bytes / 4 * 3,
            workspace_bytes: bytes / 4,
            cost: CostModel::default(),
        }
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        // The paper's default: 10 MB total.
        DatabaseConfig::with_total_memory(10 << 20)
    }
}

/// An embedded single-node database over the simulated disk.
pub struct Database {
    pool: Arc<BufferPool>,
    workspace: Arc<MemoryBudget>,
    tables: Vec<Table>,
    foreign_keys: Vec<ForeignKey>,
}

impl Database {
    /// Fresh database with the given memory configuration.
    pub fn new(config: DatabaseConfig) -> Self {
        let disk = SimDisk::new(config.cost);
        Database {
            pool: BufferPool::with_byte_budget(disk, config.pool_bytes),
            workspace: Arc::new(MemoryBudget::new(config.workspace_bytes)),
            tables: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The sort/hash workspace budget.
    pub fn workspace(&self) -> &Arc<MemoryBudget> {
        &self.workspace
    }

    /// Create an empty table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> TableId {
        let heap = bd_storage::HeapFile::create(self.pool.clone());
        self.tables.push(Table {
            name: name.to_string(),
            schema,
            heap,
            indices: Vec::new(),
            hash_indices: Vec::new(),
        });
        self.tables.len() - 1
    }

    /// Number of tables in the catalog.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Access a table.
    pub fn table(&self, id: TableId) -> DbResult<&Table> {
        self.tables.get(id).ok_or(DbError::NoSuchTable(id))
    }

    /// Access a table mutably.
    pub fn table_mut(&mut self, id: TableId) -> DbResult<&mut Table> {
        self.tables.get_mut(id).ok_or(DbError::NoSuchTable(id))
    }

    /// Insert a tuple, maintaining every index. Enforces unique
    /// constraints. Returns the new RID.
    pub fn insert(&mut self, id: TableId, tuple: &Tuple) -> DbResult<Rid> {
        let table = self.tables.get_mut(id).ok_or(DbError::NoSuchTable(id))?;
        let bytes = table.schema.encode(tuple)?;
        for index in &table.indices {
            if index.def.unique && !index.tree.search(tuple.attr(index.def.attr))?.is_empty() {
                return Err(DbError::DuplicateKey {
                    attr: index.def.attr,
                    key: tuple.attr(index.def.attr),
                });
            }
        }
        let rid = table.heap.insert(&bytes)?;
        for index in &mut table.indices {
            index.tree.insert(tuple.attr(index.def.attr), rid)?;
        }
        for h in &mut table.hash_indices {
            h.index.insert(tuple.attr(h.def.attr), rid)?;
        }
        Ok(rid)
    }

    /// Read the tuple at `rid`.
    pub fn get(&self, id: TableId, rid: Rid) -> DbResult<Tuple> {
        let table = self.table(id)?;
        let bytes = table.heap.get(rid)?;
        Ok(table.schema.decode(&bytes))
    }

    /// Look up RIDs by key through the index on `attr`.
    pub fn lookup(&self, id: TableId, attr: usize, key: Key) -> DbResult<Vec<Rid>> {
        let table = self.table(id)?;
        let index = table.index_on(attr).ok_or(DbError::NoSuchIndex { attr })?;
        Ok(index.tree.search(key)?)
    }

    /// Build an index described by `def` over the current table contents:
    /// heap scan → external sort → bottom-up bulk load.
    pub fn create_index(&mut self, id: TableId, def: IndexDef) -> DbResult<()> {
        let workspace = self.workspace.clone();
        let pool = self.pool.clone();
        let table = self.tables.get_mut(id).ok_or(DbError::NoSuchTable(id))?;
        if table.index_on(def.attr).is_some() {
            return Err(DbError::IndexExists { attr: def.attr });
        }
        let schema = table.schema;
        let mut scan = table.heap.scan();
        let entries = (&mut scan).map(|(rid, bytes)| (schema.attr_of(&bytes, def.attr), rid));
        let (sorted, _) = sort_all(pool.clone(), entries, workspace.capacity().max(4096))?;
        // A fused scan means the sorted entry list is missing records: the
        // index must not be built from it.
        if let Some(e) = scan.take_error() {
            return Err(DbError::Storage(e));
        }
        let tree = bulk_load(
            pool,
            def.config,
            &sorted,
            def.fill,
            StructureId::index_of(id, def.attr),
        )?;
        table.indices.push(Index { def, tree });
        Ok(())
    }

    /// Build a hash index on `attr` over the current table contents. Hash
    /// indices are always maintained record-at-a-time ("updated in the
    /// traditional way"); the bulk-delete operators never touch them.
    pub fn create_hash_index(&mut self, id: TableId, attr: usize) -> DbResult<()> {
        let pool = self.pool.clone();
        let table = self.tables.get_mut(id).ok_or(DbError::NoSuchTable(id))?;
        if table.hash_index_on(attr).is_some() {
            return Err(DbError::IndexExists { attr });
        }
        let schema = table.schema;
        let mut index = bd_hashidx::HashIndex::with_capacity(
            pool,
            table.heap.len().max(64),
            StructureId::hash_of(id, attr),
        )?;
        for (rid, bytes) in table.heap.dump()? {
            index.insert(schema.attr_of(&bytes, attr), rid)?;
        }
        table.hash_indices.push(crate::catalog::HashIdx {
            def: crate::catalog::HashIndexDef {
                name: format!("H_{}", crate::tuple::attr_name(attr)),
                attr,
            },
            index,
        });
        Ok(())
    }

    /// Drop the index on `attr`, returning all of its catalogued pages to
    /// the free set. Returns the dropped definition for later re-creation.
    pub fn drop_index(&mut self, id: TableId, attr: usize) -> DbResult<IndexDef> {
        let table = self.tables.get_mut(id).ok_or(DbError::NoSuchTable(id))?;
        let pos = table.index_pos(attr).ok_or(DbError::NoSuchIndex { attr })?;
        let def = table.indices.remove(pos).def;
        self.pool.free_owned(StructureId::index_of(id, attr));
        Ok(def)
    }

    /// Register a referential constraint (checked by
    /// [`crate::strategy::vertical_with_constraints`]).
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.foreign_keys.push(fk);
    }

    /// Constraints whose *parent* side is `(tid, attr)`.
    pub fn foreign_keys_on(&self, tid: TableId, attr: usize) -> Vec<ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.parent == tid && fk.parent_attr == attr)
            .cloned()
            .collect()
    }

    /// Constraints whose *parent* side is any attribute of `tid`.
    pub fn foreign_keys_on_table(&self, tid: TableId) -> Vec<ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.parent == tid)
            .cloned()
            .collect()
    }

    /// `DELETE FROM <table> WHERE <attr> IN (<keys>)` — the crate's
    /// front-door API: plans with the optimizer, enforces registered
    /// referential constraints vertically and early, then executes the
    /// vertical bulk delete.
    pub fn delete_in(
        &mut self,
        id: TableId,
        attr: usize,
        keys: &[Key],
    ) -> DbResult<crate::strategy::DeleteOutcome> {
        crate::strategy::vertical_with_constraints(
            self,
            id,
            attr,
            keys,
            bd_btree::ReorgPolicy::FreeAtEmpty,
        )
    }

    /// Full consistency check: every index holds exactly one entry per heap
    /// record, keyed by that record's attribute value. Expensive; used by
    /// tests and after recovery.
    pub fn check_consistency(&self, id: TableId) -> DbResult<()> {
        let table = self.table(id)?;
        let mut heap_rows: Vec<(Rid, Tuple)> = table
            .heap
            .dump()?
            .into_iter()
            .map(|(rid, bytes)| (rid, table.schema.decode(&bytes)))
            .collect();
        heap_rows.sort_by_key(|(rid, _)| *rid);
        for index in &table.indices {
            let mut expect: Vec<(Key, Rid)> = heap_rows
                .iter()
                .map(|(rid, t)| (t.attr(index.def.attr), *rid))
                .collect();
            expect.sort_unstable();
            let got: Vec<(Key, Rid)> = LeafScan::new(&index.tree)
                .map_err(DbError::Storage)?
                .collect();
            assert_eq!(
                got.len(),
                expect.len(),
                "index {} has {} entries, heap has {} records",
                index.def.name,
                got.len(),
                expect.len()
            );
            assert_eq!(got, expect, "index {} diverges from heap", index.def.name);
            assert_eq!(index.tree.len(), got.len(), "index len counter wrong");
        }
        for h in &table.hash_indices {
            let mut expect: Vec<(Key, Rid)> = heap_rows
                .iter()
                .map(|(rid, t)| (t.attr(h.def.attr), *rid))
                .collect();
            expect.sort_unstable();
            let mut got = h.index.scan().map_err(DbError::Storage)?;
            got.sort_unstable();
            assert_eq!(got, expect, "hash index {} diverges from heap", h.def.name);
            assert_eq!(h.index.len(), got.len(), "hash index len counter wrong");
        }
        Ok(())
    }
}

/// Borrow the pieces a delete strategy needs from one table, splitting the
/// borrow so heap and indices can be mutated independently.
pub struct TableParts<'a> {
    /// Record layout.
    pub schema: Schema,
    /// The heap.
    pub heap: &'a mut bd_storage::HeapFile,
    /// All B-tree indices.
    pub indices: &'a mut Vec<Index>,
    /// All hash indices (maintained record-at-a-time by every strategy).
    pub hash_indices: &'a mut Vec<crate::catalog::HashIdx>,
}

impl Database {
    /// Split-borrow a table for strategy execution.
    pub fn parts(
        &mut self,
        id: TableId,
    ) -> DbResult<(TableParts<'_>, Arc<MemoryBudget>, Arc<BufferPool>)> {
        let workspace = self.workspace.clone();
        let pool = self.pool.clone();
        let table = self.tables.get_mut(id).ok_or(DbError::NoSuchTable(id))?;
        Ok((
            TableParts {
                schema: table.schema,
                heap: &mut table.heap,
                indices: &mut table.indices,
                hash_indices: &mut table.hash_indices,
            },
            workspace,
            pool,
        ))
    }
}

/// Direct access to a tree for tests.
pub fn tree_of(table: &Table, attr: usize) -> &BTree {
    &table.index_on(attr).expect("index exists").tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> (Database, TableId) {
        let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
        let tid = db.create_table("R", Schema::new(3, 64));
        (db, tid)
    }

    fn row(a: u64, b: u64, c: u64) -> Tuple {
        Tuple::new(vec![a, b, c])
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let (mut db, tid) = small_db();
        db.create_index(tid, IndexDef::secondary(0).unique())
            .unwrap();
        db.create_index(tid, IndexDef::secondary(1)).unwrap();
        let rid = db.insert(tid, &row(1, 10, 100)).unwrap();
        assert_eq!(db.get(tid, rid).unwrap(), row(1, 10, 100));
        assert_eq!(db.lookup(tid, 0, 1).unwrap(), vec![rid]);
        assert_eq!(db.lookup(tid, 1, 10).unwrap(), vec![rid]);
        db.check_consistency(tid).unwrap();
    }

    #[test]
    fn unique_constraint_enforced() {
        let (mut db, tid) = small_db();
        db.create_index(tid, IndexDef::secondary(0).unique())
            .unwrap();
        db.insert(tid, &row(5, 1, 1)).unwrap();
        let err = db.insert(tid, &row(5, 2, 2)).unwrap_err();
        assert_eq!(err, DbError::DuplicateKey { attr: 0, key: 5 });
        // Non-unique attribute duplicates are fine.
        db.insert(tid, &row(6, 1, 1)).unwrap();
        db.check_consistency(tid).unwrap();
    }

    #[test]
    fn create_index_over_existing_data() {
        let (mut db, tid) = small_db();
        for i in 0..500u64 {
            db.insert(tid, &row(i, i % 13, i % 7)).unwrap();
        }
        db.create_index(tid, IndexDef::secondary(1)).unwrap();
        let rids = db.lookup(tid, 1, 5).unwrap();
        assert_eq!(rids.len(), (0..500u64).filter(|i| i % 13 == 5).count());
        db.check_consistency(tid).unwrap();
    }

    #[test]
    fn duplicate_index_rejected() {
        let (mut db, tid) = small_db();
        db.create_index(tid, IndexDef::secondary(0)).unwrap();
        assert_eq!(
            db.create_index(tid, IndexDef::secondary(0)).unwrap_err(),
            DbError::IndexExists { attr: 0 }
        );
    }

    #[test]
    fn drop_index_returns_def() {
        let (mut db, tid) = small_db();
        db.create_index(tid, IndexDef::secondary(2)).unwrap();
        let def = db.drop_index(tid, 2).unwrap();
        assert_eq!(def.attr, 2);
        assert!(db.lookup(tid, 2, 0).is_err());
        assert_eq!(
            db.drop_index(tid, 2).unwrap_err(),
            DbError::NoSuchIndex { attr: 2 }
        );
    }

    #[test]
    fn bad_table_id() {
        let (db, _) = small_db();
        assert!(matches!(db.table(9), Err(DbError::NoSuchTable(9))));
    }
}
