//! I/O cost estimation for delete plans.
//!
//! §2.1 says the `⋈̄` method/order/predicate decisions are made "by the
//! query optimizer depending on the size of the table/index, the number of
//! records to be deleted, and the size of the main memory buffer pool", and
//! that a dynamic-programming optimizer "can easily be extended for this
//! purpose". This module supplies the cost side of that statement: page-I/O
//! estimates for every `⋈̄` method and for the traditional plan, priced
//! through the same [`CostModel`] the simulated disk charges, so estimated
//! and measured simulated time are directly comparable.

use bd_storage::{CostModel, PAGE_SIZE};

use crate::catalog::{Index, Table};
use crate::error::{DbError, DbResult};
use crate::plan::{DeletePlan, IndexMethod, TableMethod};

/// Pages moved per chained I/O (mirrors the scan chunk used by the
/// executors).
const CHAIN: f64 = 8.0;

/// An I/O estimate, decomposed the same way [`bd_storage::DiskStats`]
/// reports measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostEstimate {
    /// Estimated page transfers (reads).
    pub pages_read: f64,
    /// Estimated page transfers (writes).
    pub pages_written: f64,
    /// Estimated positioning operations (random accesses).
    pub positionings: f64,
}

impl CostEstimate {
    /// Price this estimate in simulated milliseconds under `cm`.
    pub fn sim_ms(&self, cm: &CostModel) -> f64 {
        self.positionings * cm.positioning_ms()
            + (self.pages_read + self.pages_written) * cm.transfer_ms
    }

    /// Component-wise sum.
    pub fn plus(self, other: CostEstimate) -> CostEstimate {
        CostEstimate {
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
            positionings: self.positionings + other.positionings,
        }
    }
}

/// Table- and workload-level quantities the formulas share.
#[derive(Debug, Clone, Copy)]
pub struct CostEnv {
    /// Records to delete.
    pub n_delete: usize,
    /// Live records in the table.
    pub n_rows: usize,
    /// Heap pages.
    pub heap_pages: usize,
    /// Sort/hash workspace bytes.
    pub workspace_bytes: usize,
    /// Buffer-pool bytes (drives cache-hit estimates for the traditional
    /// plan).
    pub pool_bytes: usize,
}

impl CostEnv {
    /// Derive the environment from a table.
    pub fn of(table: &Table, n_delete: usize, workspace_bytes: usize, pool_bytes: usize) -> Self {
        CostEnv {
            n_delete,
            n_rows: table.heap.len(),
            heap_pages: table.heap.num_pages().max(1),
            workspace_bytes: workspace_bytes.max(1),
            pool_bytes,
        }
    }

    /// Deleted fraction of the table.
    fn fraction(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            (self.n_delete as f64 / self.n_rows as f64).min(1.0)
        }
    }

    /// Expected fraction of pages holding `per_page` records that contain
    /// at least one victim: `1 - (1 - f)^per_page`.
    fn affected(&self, per_page: f64) -> f64 {
        1.0 - (1.0 - self.fraction()).powf(per_page)
    }
}

fn leaves_of(index: &Index) -> f64 {
    (index.tree.len() as f64 / index.def.config.leaf_cap as f64).max(1.0)
}

/// Sequential pass over `pages` with chained reads plus clustered
/// write-back of the `dirty` fraction.
fn sequential_pass(pages: f64, dirty_fraction: f64) -> CostEstimate {
    let dirty = pages * dirty_fraction;
    CostEstimate {
        pages_read: pages,
        pages_written: dirty,
        // One positioning per chain of reads; dirty pages are written in
        // clustered batches whose runs shorten as the dirty set thins out.
        positionings: pages / CHAIN + dirty / (CHAIN * dirty_fraction.max(0.125)),
    }
}

/// Cost of sorting `items` fixed-size records under the workspace budget
/// (zero I/O when everything fits in memory; two sequential passes per
/// merge level otherwise).
pub fn sort_cost(items: usize, item_bytes: usize, env: &CostEnv) -> CostEstimate {
    let bytes = items * item_bytes;
    if bytes <= env.workspace_bytes {
        return CostEstimate::default();
    }
    let pages = (bytes as f64 / PAGE_SIZE as f64).ceil();
    let runs = (bytes as f64 / env.workspace_bytes as f64).ceil();
    let fan_in = (env.workspace_bytes as f64 / (32.0 * 1024.0)).max(2.0);
    let levels = 1.0 + (runs.ln() / fan_in.ln()).ceil().max(0.0);
    CostEstimate {
        pages_read: pages * levels,
        pages_written: pages * levels,
        positionings: 2.0 * levels * pages / CHAIN,
    }
}

/// Cost of one `⋈̄` over an index with the given method.
pub fn index_bd_cost(index: &Index, method: IndexMethod, env: &CostEnv) -> CostEstimate {
    let leaves = leaves_of(index);
    let per_leaf = index.def.config.leaf_cap as f64;
    let dirty = env.affected(per_leaf);
    match method {
        IndexMethod::SortMerge { presort } => {
            // Random keys span the whole leaf level: the merge pass visits
            // every leaf.
            let sort = if presort {
                sort_cost(env.n_delete, 16, env)
            } else {
                CostEstimate::default()
            };
            sort.plus(sequential_pass(leaves, dirty))
        }
        IndexMethod::ClassicHash => {
            // Full leaf scan probing the shared RID hash table.
            sequential_pass(leaves, dirty)
        }
        IndexMethod::PartitionedHash { partitions } => {
            // Each partition descends once, then scans its leaf range.
            let descents = partitions as f64 * (index.tree.height() as f64 - 1.0);
            sequential_pass(leaves, dirty).plus(CostEstimate {
                pages_read: descents,
                pages_written: 0.0,
                positionings: descents,
            })
        }
    }
}

/// Cost of the base-table `⋈̄`.
pub fn table_bd_cost(table_method: TableMethod, env: &CostEnv) -> CostEstimate {
    let per_page = env.n_rows as f64 / env.heap_pages as f64;
    let dirty = env.affected(per_page);
    match table_method {
        TableMethod::Merge { presort } => {
            // Only affected pages are pinned; runs of affected pages are
            // chained, gaps cost a positioning.
            let affected = env.heap_pages as f64 * dirty;
            let sort = if presort {
                sort_cost(env.n_delete, 16, env)
            } else {
                CostEstimate::default()
            };
            // Expected run length of consecutive affected pages is
            // geometric, 1/(1-dirty), capped by the chaining window.
            let run = (1.0 / (1.0 - dirty).max(1.0 / CHAIN)).min(CHAIN);
            sort.plus(CostEstimate {
                pages_read: affected,
                pages_written: affected,
                positionings: 2.0 * affected / run,
            })
        }
        TableMethod::HashProbe => sequential_pass(env.heap_pages as f64, dirty),
    }
}

/// Estimated cost of a whole vertical plan (probe-index key merge + table
/// step + one `⋈̄` per downstream index).
pub fn plan_cost(table: &Table, plan: &DeletePlan, env: &CostEnv) -> DbResult<CostEstimate> {
    let probe = table
        .index_on(plan.probe_attr)
        .ok_or(DbError::NoProbeIndex {
            attr: plan.probe_attr,
        })?;
    // Sort D (8-byte keys), then key-merge over the probe index.
    let mut total = sort_cost(env.n_delete, 8, env);
    total = total.plus(index_bd_cost(
        probe,
        IndexMethod::SortMerge { presort: false },
        env,
    ));
    total = total.plus(table_bd_cost(plan.table, env));
    for step in &plan.index_steps {
        let index = table
            .index_on(step.attr)
            .ok_or(DbError::NoSuchIndex { attr: step.attr })?;
        total = total.plus(index_bd_cost(index, step.method, env));
    }
    Ok(total)
}

/// Estimated cost of the traditional (horizontal) plan: one probe-index
/// descent per key, a random heap read+write per record, and one
/// root-to-leaf traversal per index per record. Sorting D first converts
/// the probe-leaf accesses into a near-sequential sweep.
pub fn horizontal_cost(table: &Table, presort: bool, env: &CostEnv) -> CostEstimate {
    let n = env.n_delete as f64;
    // The pool is shared by every index's leaves plus the heap's hot set;
    // credit each structure a proportional slice.
    let pool_pages =
        (env.pool_bytes as f64 / PAGE_SIZE as f64).max(1.0) / (table.indices.len() as f64 + 1.0);
    let mut total = if presort {
        sort_cost(env.n_delete, 8, env)
    } else {
        CostEstimate::default()
    };
    for index in &table.indices {
        let leaves = leaves_of(index);
        // Inner nodes stay cached; leaf hit rate depends on pool size (and
        // on sortedness for the probe index's access pattern).
        let probe_like = presort && index.def.attr == 0;
        let leaf_miss = if probe_like || index.def.clustered {
            // Sorted keys walk the leaves nearly in order: each leaf is
            // missed once.
            (leaves / n).min(1.0)
        } else {
            (1.0 - pool_pages / leaves).max(0.0)
        };
        let per_leaf = index.def.config.leaf_cap as f64;
        let dirty_leaves = leaves * env.affected(per_leaf);
        total = total.plus(CostEstimate {
            pages_read: n * leaf_miss,
            pages_written: dirty_leaves,
            positionings: n * leaf_miss + dirty_leaves / CHAIN,
        });
    }
    // Heap: a random read per record (sorted D does not sort RIDs), plus
    // clustered write-back of affected pages.
    let per_page = env.n_rows as f64 / env.heap_pages as f64;
    let heap_hit = (pool_pages / env.heap_pages as f64).min(1.0);
    let affected = env.heap_pages as f64 * env.affected(per_page);
    total.plus(CostEstimate {
        pages_read: n * (1.0 - heap_hit),
        pages_written: affected,
        positionings: n * (1.0 - heap_hit) + affected / CHAIN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_pricing_matches_components() {
        let e = CostEstimate {
            pages_read: 100.0,
            pages_written: 50.0,
            positionings: 10.0,
        };
        let cm = CostModel::default();
        let expect = 10.0 * cm.positioning_ms() + 150.0 * cm.transfer_ms;
        assert!((e.sim_ms(&cm) - expect).abs() < 1e-9);
    }

    #[test]
    fn sort_cost_zero_when_in_memory() {
        let env = CostEnv {
            n_delete: 1000,
            n_rows: 10_000,
            heap_pages: 100,
            workspace_bytes: 1 << 20,
            pool_bytes: 1 << 20,
        };
        assert_eq!(sort_cost(1000, 8, &env), CostEstimate::default());
        // Spilling sorts cost more with more data.
        let small = sort_cost(200_000, 8, &env);
        let big = sort_cost(800_000, 8, &env);
        assert!(big.pages_read > small.pages_read);
    }

    #[test]
    fn affected_fraction_saturates() {
        let env = CostEnv {
            n_delete: 5_000,
            n_rows: 10_000,
            heap_pages: 1_250,
            workspace_bytes: 1 << 20,
            pool_bytes: 1 << 20,
        };
        // 50% deletes, 8 records/page => nearly every page affected.
        assert!(env.affected(8.0) > 0.99);
        let env0 = CostEnv { n_delete: 0, ..env };
        assert_eq!(env0.affected(8.0), 0.0);
    }
}
