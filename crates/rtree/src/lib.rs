#![warn(missing_docs)]

//! Page-based R-tree with a one-pass bulk delete.
//!
//! §5 of the paper leaves as future work "algorithms to delete records in
//! bulk from other index structures such as hash tables, R-trees, or grid
//! files". This crate realizes the R-tree case:
//!
//! * a classic R-tree over `(x, y)` points: choose-subtree by least MBR
//!   enlargement, sort-based node splits, window queries;
//! * a **traditional** delete ([`RTree::delete`]) — one root-to-leaf search
//!   per record, shrinking MBRs on the way back up;
//! * a **bulk** delete ([`RTree::bulk_delete_probe`]) — the vertical idea
//!   transplanted: one depth-first pass over the whole tree probes every
//!   leaf entry against a RID hash set, rewrites leaves in place, drops
//!   emptied subtrees (free-at-empty), and tightens ancestor MBRs on the
//!   way back up. Each page is visited exactly once, instead of one
//!   root-to-leaf traversal per record.
//!
//! Node page layout:
//!
//! ```text
//! 0..2   node_type (u16)  0 = leaf, 1 = inner
//! 2..4   n_entries (u16)
//! 4..16  reserved
//! 16..   entries:
//!   leaf : (x u64, y u64, rid u64)                      24 bytes
//!   inner: (x_lo u64, y_lo u64, x_hi u64, y_hi u64, child u32)  36 bytes
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use bd_storage::page::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use bd_storage::{BufferPool, PageId, Rid, StorageResult, StructureId, PAGE_SIZE};

/// Coordinate type.
pub type Coord = u64;

/// A point entry in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PointEntry {
    /// X coordinate.
    pub x: Coord,
    /// Y coordinate.
    pub y: Coord,
    /// Record id.
    pub rid: Rid,
}

/// An axis-aligned rectangle (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Lower x bound.
    pub x_lo: Coord,
    /// Lower y bound.
    pub y_lo: Coord,
    /// Upper x bound.
    pub x_hi: Coord,
    /// Upper y bound.
    pub y_hi: Coord,
}

impl Rect {
    /// A degenerate rectangle at a point.
    pub fn point(x: Coord, y: Coord) -> Rect {
        Rect {
            x_lo: x,
            y_lo: y,
            x_hi: x,
            y_hi: y,
        }
    }

    /// A rectangle from corners.
    pub fn new(x_lo: Coord, y_lo: Coord, x_hi: Coord, y_hi: Coord) -> Rect {
        debug_assert!(x_lo <= x_hi && y_lo <= y_hi);
        Rect {
            x_lo,
            y_lo,
            x_hi,
            y_hi,
        }
    }

    /// Smallest rectangle covering both.
    pub fn union(self, other: Rect) -> Rect {
        Rect {
            x_lo: self.x_lo.min(other.x_lo),
            y_lo: self.y_lo.min(other.y_lo),
            x_hi: self.x_hi.max(other.x_hi),
            y_hi: self.y_hi.max(other.y_hi),
        }
    }

    /// Area (in u128 to avoid overflow of u64 coordinates).
    pub fn area(self) -> u128 {
        (self.x_hi - self.x_lo) as u128 * (self.y_hi - self.y_lo) as u128
    }

    /// Area growth needed to absorb `other`.
    pub fn enlargement(self, other: Rect) -> u128 {
        self.union(other).area() - self.area()
    }

    /// True if the rectangles overlap (inclusive).
    pub fn intersects(self, other: Rect) -> bool {
        self.x_lo <= other.x_hi
            && other.x_lo <= self.x_hi
            && self.y_lo <= other.y_hi
            && other.y_lo <= self.y_hi
    }

    /// True if `self` contains `other` entirely.
    pub fn contains(self, other: Rect) -> bool {
        self.x_lo <= other.x_lo
            && self.y_lo <= other.y_lo
            && self.x_hi >= other.x_hi
            && self.y_hi >= other.y_hi
    }
}

const PAYLOAD: usize = 16;
const LEAF_ENTRY: usize = 24;
const INNER_ENTRY: usize = 36;

/// Maximum leaf entries per page.
pub const MAX_LEAF_CAP: usize = (PAGE_SIZE - PAYLOAD) / LEAF_ENTRY;
/// Maximum inner entries per page.
pub const MAX_INNER_CAP: usize = (PAGE_SIZE - PAYLOAD) / INNER_ENTRY;

fn is_leaf(buf: &[u8]) -> bool {
    get_u16(buf, 0) == 0
}

fn set_kind(buf: &mut [u8], leaf: bool) {
    put_u16(buf, 0, if leaf { 0 } else { 1 });
}

fn n_of(buf: &[u8]) -> usize {
    get_u16(buf, 2) as usize
}

fn set_n(buf: &mut [u8], n: usize) {
    put_u16(buf, 2, n as u16);
}

fn leaf_entry(buf: &[u8], i: usize) -> PointEntry {
    let off = PAYLOAD + i * LEAF_ENTRY;
    PointEntry {
        x: get_u64(buf, off),
        y: get_u64(buf, off + 8),
        rid: Rid::from_u64(get_u64(buf, off + 16)),
    }
}

fn set_leaf_entry(buf: &mut [u8], i: usize, e: PointEntry) {
    let off = PAYLOAD + i * LEAF_ENTRY;
    put_u64(buf, off, e.x);
    put_u64(buf, off + 8, e.y);
    put_u64(buf, off + 16, e.rid.to_u64());
}

fn inner_entry(buf: &[u8], i: usize) -> (Rect, PageId) {
    let off = PAYLOAD + i * INNER_ENTRY;
    (
        Rect {
            x_lo: get_u64(buf, off),
            y_lo: get_u64(buf, off + 8),
            x_hi: get_u64(buf, off + 16),
            y_hi: get_u64(buf, off + 24),
        },
        get_u32(buf, off + 32),
    )
}

fn set_inner_entry(buf: &mut [u8], i: usize, r: Rect, child: PageId) {
    let off = PAYLOAD + i * INNER_ENTRY;
    put_u64(buf, off, r.x_lo);
    put_u64(buf, off + 8, r.y_lo);
    put_u64(buf, off + 16, r.x_hi);
    put_u64(buf, off + 24, r.y_hi);
    put_u32(buf, off + 32, child);
}

/// Node capacities (lowered in tests to force deep trees).
#[derive(Debug, Clone, Copy)]
pub struct RTreeConfig {
    /// Max entries per leaf.
    pub leaf_cap: usize,
    /// Max entries per inner node.
    pub inner_cap: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            leaf_cap: MAX_LEAF_CAP,
            inner_cap: MAX_INNER_CAP,
        }
    }
}

impl RTreeConfig {
    /// Cap both node kinds at `fanout`.
    pub fn with_fanout(fanout: usize) -> Self {
        RTreeConfig {
            leaf_cap: fanout.clamp(2, MAX_LEAF_CAP),
            inner_cap: fanout.clamp(2, MAX_INNER_CAP),
        }
    }
}

/// A point R-tree over a buffer pool.
pub struct RTree {
    pool: Arc<BufferPool>,
    cfg: RTreeConfig,
    root: PageId,
    height: usize,
    n_entries: usize,
    owner: StructureId,
}

enum InsertResult {
    /// Child absorbed the entry; its new MBR.
    Fit(Rect),
    /// Child split; its new MBR plus the new sibling's (rect, page).
    Split(Rect, Rect, PageId),
}

impl RTree {
    /// Create an empty tree whose pages are catalogued under `owner`.
    pub fn create(
        pool: Arc<BufferPool>,
        cfg: RTreeConfig,
        owner: StructureId,
    ) -> StorageResult<Self> {
        let (root, mut w) = pool.new_page(owner)?;
        set_kind(&mut w[..], true);
        set_n(&mut w[..], 0);
        drop(w);
        Ok(RTree {
            pool,
            cfg,
            root,
            height: 1,
            n_entries: 0,
            owner,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.n_entries
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Insert a point entry.
    pub fn insert(&mut self, e: PointEntry) -> StorageResult<()> {
        match self.insert_rec(self.root, e)? {
            InsertResult::Fit(_) => {}
            InsertResult::Split(left_rect, right_rect, right_pid) => {
                // Grow a new root.
                let (new_root, mut w) = self.pool.new_page(self.owner)?;
                set_kind(&mut w[..], false);
                set_n(&mut w[..], 2);
                set_inner_entry(&mut w[..], 0, left_rect, self.root);
                set_inner_entry(&mut w[..], 1, right_rect, right_pid);
                drop(w);
                self.root = new_root;
                self.height += 1;
            }
        }
        self.n_entries += 1;
        Ok(())
    }

    fn insert_rec(&mut self, pid: PageId, e: PointEntry) -> StorageResult<InsertResult> {
        let point = Rect::point(e.x, e.y);
        // Read what we need, then release the pin before recursing.
        let (leaf, n) = {
            let r = self.pool.pin_read(pid)?;
            (is_leaf(&r[..]), n_of(&r[..]))
        };
        if leaf {
            if n < self.cfg.leaf_cap {
                let mut w = self.pool.pin_write(pid)?;
                set_leaf_entry(&mut w[..], n, e);
                set_n(&mut w[..], n + 1);
                let mbr = Self::leaf_mbr(&w[..]);
                return Ok(InsertResult::Fit(mbr));
            }
            // Split: sort by x (then y), halve.
            let mut entries: Vec<PointEntry> = {
                let r = self.pool.pin_read(pid)?;
                (0..n).map(|i| leaf_entry(&r[..], i)).collect()
            };
            entries.push(e);
            entries.sort_unstable_by_key(|p| (p.x, p.y));
            let mid = entries.len() / 2;
            let (left, right) = entries.split_at(mid);
            let mut w = self.pool.pin_write(pid)?;
            set_n(&mut w[..], left.len());
            for (i, &le) in left.iter().enumerate() {
                set_leaf_entry(&mut w[..], i, le);
            }
            let left_mbr = Self::leaf_mbr(&w[..]);
            drop(w);
            let (new_pid, mut nw) = self.pool.new_page(self.owner)?;
            set_kind(&mut nw[..], true);
            set_n(&mut nw[..], right.len());
            for (i, &re) in right.iter().enumerate() {
                set_leaf_entry(&mut nw[..], i, re);
            }
            let right_mbr = Self::leaf_mbr(&nw[..]);
            return Ok(InsertResult::Split(left_mbr, right_mbr, new_pid));
        }

        // Inner: choose the child needing least enlargement.
        let (best_i, best_child) = {
            let r = self.pool.pin_read(pid)?;
            let mut best = (0usize, u128::MAX, u128::MAX);
            for i in 0..n {
                let (rect, _) = inner_entry(&r[..], i);
                let grow = rect.enlargement(point);
                let area = rect.area();
                if (grow, area) < (best.1, best.2) {
                    best = (i, grow, area);
                }
            }
            let (_, child) = inner_entry(&r[..], best.0);
            (best.0, child)
        };
        match self.insert_rec(best_child, e)? {
            InsertResult::Fit(child_mbr) => {
                let mut w = self.pool.pin_write(pid)?;
                set_inner_entry(&mut w[..], best_i, child_mbr, best_child);
                Ok(InsertResult::Fit(Self::inner_mbr(&w[..])))
            }
            InsertResult::Split(left_rect, right_rect, right_pid) => {
                let mut w = self.pool.pin_write(pid)?;
                set_inner_entry(&mut w[..], best_i, left_rect, best_child);
                let n = n_of(&w[..]);
                if n < self.cfg.inner_cap {
                    set_inner_entry(&mut w[..], n, right_rect, right_pid);
                    set_n(&mut w[..], n + 1);
                    return Ok(InsertResult::Fit(Self::inner_mbr(&w[..])));
                }
                // Split the inner node: sort children by rect.x_lo, halve.
                let mut children: Vec<(Rect, PageId)> =
                    (0..n).map(|i| inner_entry(&w[..], i)).collect();
                children.push((right_rect, right_pid));
                children.sort_unstable_by_key(|(r, _)| (r.x_lo, r.y_lo));
                let mid = children.len() / 2;
                let (left, right) = children.split_at(mid);
                set_n(&mut w[..], left.len());
                for (i, &(r, c)) in left.iter().enumerate() {
                    set_inner_entry(&mut w[..], i, r, c);
                }
                let left_mbr = Self::inner_mbr(&w[..]);
                drop(w);
                let (new_pid, mut nw) = self.pool.new_page(self.owner)?;
                set_kind(&mut nw[..], false);
                set_n(&mut nw[..], right.len());
                for (i, &(r, c)) in right.iter().enumerate() {
                    set_inner_entry(&mut nw[..], i, r, c);
                }
                let right_mbr = Self::inner_mbr(&nw[..]);
                Ok(InsertResult::Split(left_mbr, right_mbr, new_pid))
            }
        }
    }

    fn leaf_mbr(buf: &[u8]) -> Rect {
        let n = n_of(buf);
        debug_assert!(n > 0);
        let e0 = leaf_entry(buf, 0);
        let mut mbr = Rect::point(e0.x, e0.y);
        for i in 1..n {
            let e = leaf_entry(buf, i);
            mbr = mbr.union(Rect::point(e.x, e.y));
        }
        mbr
    }

    fn inner_mbr(buf: &[u8]) -> Rect {
        let n = n_of(buf);
        debug_assert!(n > 0);
        let (mut mbr, _) = inner_entry(buf, 0);
        for i in 1..n {
            mbr = mbr.union(inner_entry(buf, i).0);
        }
        mbr
    }

    /// All entries inside `window` (inclusive).
    pub fn search_window(&self, window: Rect) -> StorageResult<Vec<PointEntry>> {
        let mut out = Vec::new();
        self.search_rec(self.root, window, &mut out)?;
        out.sort_unstable();
        Ok(out)
    }

    fn search_rec(
        &self,
        pid: PageId,
        window: Rect,
        out: &mut Vec<PointEntry>,
    ) -> StorageResult<()> {
        let (leaf, n, children) = {
            let r = self.pool.pin_read(pid)?;
            if is_leaf(&r[..]) {
                for i in 0..n_of(&r[..]) {
                    let e = leaf_entry(&r[..], i);
                    if window.intersects(Rect::point(e.x, e.y)) {
                        out.push(e);
                    }
                }
                (true, 0, Vec::new())
            } else {
                let n = n_of(&r[..]);
                let children: Vec<PageId> = (0..n)
                    .filter(|&i| inner_entry(&r[..], i).0.intersects(window))
                    .map(|i| inner_entry(&r[..], i).1)
                    .collect();
                (false, n, children)
            }
        };
        let _ = n;
        if !leaf {
            for c in children {
                self.search_rec(c, window, out)?;
            }
        }
        Ok(())
    }

    /// Traditional delete: one root-to-leaf search per record, MBRs
    /// tightened on the way back up. Returns `true` if the entry existed.
    pub fn delete(&mut self, e: PointEntry) -> StorageResult<bool> {
        let found = self.delete_rec(self.root, e)?.is_some();
        if found {
            self.n_entries -= 1;
            self.collapse_root()?;
        }
        Ok(found)
    }

    /// Returns the node's new MBR (None = node emptied and should be
    /// dropped by the parent) wrapped in Some if the delete happened.
    fn delete_rec(&mut self, pid: PageId, e: PointEntry) -> StorageResult<Option<Option<Rect>>> {
        let point = Rect::point(e.x, e.y);
        let leaf = {
            let r = self.pool.pin_read(pid)?;
            is_leaf(&r[..])
        };
        if leaf {
            let mut w = self.pool.pin_write(pid)?;
            let n = n_of(&w[..]);
            for i in 0..n {
                if leaf_entry(&w[..], i) == e {
                    let last = leaf_entry(&w[..], n - 1);
                    set_leaf_entry(&mut w[..], i, last);
                    set_n(&mut w[..], n - 1);
                    let mbr = (n > 1).then(|| Self::leaf_mbr(&w[..]));
                    return Ok(Some(mbr));
                }
            }
            return Ok(None);
        }
        let candidates: Vec<(usize, Rect, PageId)> = {
            let r = self.pool.pin_read(pid)?;
            (0..n_of(&r[..]))
                .map(|i| {
                    let (rect, child) = inner_entry(&r[..], i);
                    (i, rect, child)
                })
                .filter(|(_, rect, _)| rect.contains(point))
                .collect()
        };
        for (i, _, child) in candidates {
            if let Some(child_mbr) = self.delete_rec(child, e)? {
                let mut w = self.pool.pin_write(pid)?;
                match child_mbr {
                    Some(rect) => set_inner_entry(&mut w[..], i, rect, child),
                    None => {
                        // Free-at-empty: drop the child entry (swap-remove).
                        let n = n_of(&w[..]);
                        let last = inner_entry(&w[..], n - 1);
                        set_inner_entry(&mut w[..], i, last.0, last.1);
                        set_n(&mut w[..], n - 1);
                    }
                }
                let n = n_of(&w[..]);
                let mbr = (n > 0).then(|| Self::inner_mbr(&w[..]));
                return Ok(Some(mbr));
            }
        }
        Ok(None)
    }

    fn collapse_root(&mut self) -> StorageResult<()> {
        loop {
            let r = self.pool.pin_read(self.root)?;
            if !is_leaf(&r[..]) && n_of(&r[..]) == 1 {
                let (_, only) = inner_entry(&r[..], 0);
                drop(r);
                self.root = only;
                self.height -= 1;
            } else if !is_leaf(&r[..]) && n_of(&r[..]) == 0 {
                // Tree emptied: fresh leaf root.
                drop(r);
                let (new_root, mut w) = self.pool.new_page(self.owner)?;
                set_kind(&mut w[..], true);
                set_n(&mut w[..], 0);
                drop(w);
                self.root = new_root;
                self.height = 1;
            } else {
                return Ok(());
            }
        }
    }

    /// **Bulk delete** (the paper's future work, realized): one depth-first
    /// pass probes every leaf entry against the RID set, rewrites leaves in
    /// place, drops emptied subtrees, and tightens every ancestor MBR on
    /// the way back up — each page visited exactly once, instead of one
    /// root-to-leaf traversal per victim.
    pub fn bulk_delete_probe(&mut self, victims: &HashSet<Rid>) -> StorageResult<Vec<PointEntry>> {
        let mut deleted = Vec::new();
        self.bulk_rec(self.root, victims, &mut deleted)?;
        self.n_entries -= deleted.len();
        self.collapse_root()?;
        deleted.sort_unstable();
        Ok(deleted)
    }

    /// Returns the node's new MBR, or None if it emptied.
    fn bulk_rec(
        &mut self,
        pid: PageId,
        victims: &HashSet<Rid>,
        deleted: &mut Vec<PointEntry>,
    ) -> StorageResult<Option<Rect>> {
        let leaf = {
            let r = self.pool.pin_read(pid)?;
            is_leaf(&r[..])
        };
        if leaf {
            let mut w = self.pool.pin_write(pid)?;
            let n = n_of(&w[..]);
            let mut kept = 0usize;
            for i in 0..n {
                let e = leaf_entry(&w[..], i);
                if victims.contains(&e.rid) {
                    deleted.push(e);
                } else {
                    set_leaf_entry(&mut w[..], kept, e);
                    kept += 1;
                }
            }
            set_n(&mut w[..], kept);
            return Ok((kept > 0).then(|| Self::leaf_mbr(&w[..])));
        }
        let children: Vec<(Rect, PageId)> = {
            let r = self.pool.pin_read(pid)?;
            (0..n_of(&r[..])).map(|i| inner_entry(&r[..], i)).collect()
        };
        let mut kept: Vec<(Rect, PageId)> = Vec::with_capacity(children.len());
        for (_, child) in children {
            if let Some(mbr) = self.bulk_rec(child, victims, deleted)? {
                kept.push((mbr, child));
            }
        }
        let mut w = self.pool.pin_write(pid)?;
        set_n(&mut w[..], kept.len());
        for (i, &(r, c)) in kept.iter().enumerate() {
            set_inner_entry(&mut w[..], i, r, c);
        }
        Ok((!kept.is_empty()).then(|| Self::inner_mbr(&w[..])))
    }

    /// Verify MBR-containment invariants and entry count; returns all
    /// entries (sorted).
    pub fn verify(&self) -> StorageResult<Vec<PointEntry>> {
        let mut out = Vec::new();
        self.verify_rec(self.root, None, &mut out)?;
        assert_eq!(out.len(), self.n_entries, "entry count mismatch");
        out.sort_unstable();
        Ok(out)
    }

    fn verify_rec(
        &self,
        pid: PageId,
        bound: Option<Rect>,
        out: &mut Vec<PointEntry>,
    ) -> StorageResult<()> {
        let r = self.pool.pin_read(pid)?;
        if is_leaf(&r[..]) {
            for i in 0..n_of(&r[..]) {
                let e = leaf_entry(&r[..], i);
                if let Some(b) = bound {
                    assert!(
                        b.contains(Rect::point(e.x, e.y)),
                        "leaf entry outside parent MBR"
                    );
                }
                out.push(e);
            }
            return Ok(());
        }
        let entries: Vec<(Rect, PageId)> =
            (0..n_of(&r[..])).map(|i| inner_entry(&r[..], i)).collect();
        drop(r);
        for (rect, child) in entries {
            if let Some(b) = bound {
                assert!(b.contains(rect), "child MBR outside parent MBR");
            }
            self.verify_rec(child, Some(rect), out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{CostModel, SimDisk};

    fn pool() -> Arc<BufferPool> {
        BufferPool::new(SimDisk::new(CostModel::default()), 2048)
    }

    fn pt(x: Coord, y: Coord, i: u32) -> PointEntry {
        PointEntry {
            x,
            y,
            rid: Rid::new(i, 0),
        }
    }

    fn grid_points(side: u64) -> Vec<PointEntry> {
        (0..side * side)
            .map(|i| pt((i % side) * 10, (i / side) * 10, i as u32))
            .collect()
    }

    #[test]
    fn insert_and_window_search() {
        let mut t =
            RTree::create(pool(), RTreeConfig::with_fanout(8), StructureId::Spatial(0)).unwrap();
        for e in grid_points(20) {
            t.insert(e).unwrap();
        }
        assert_eq!(t.len(), 400);
        assert!(t.height() > 1);
        let hits = t.search_window(Rect::new(0, 0, 35, 35)).unwrap();
        assert_eq!(hits.len(), 16); // 4x4 grid cells
        let all = t
            .search_window(Rect::new(0, 0, u64::MAX, u64::MAX))
            .unwrap();
        assert_eq!(all.len(), 400);
        t.verify().unwrap();
    }

    #[test]
    fn traditional_delete_shrinks_mbrs() {
        let mut t =
            RTree::create(pool(), RTreeConfig::with_fanout(6), StructureId::Spatial(0)).unwrap();
        let pts = grid_points(12);
        for &e in &pts {
            t.insert(e).unwrap();
        }
        for &e in pts.iter().step_by(3) {
            assert!(t.delete(e).unwrap(), "{e:?}");
        }
        assert!(!t.delete(pts[0]).unwrap(), "double delete");
        assert_eq!(t.len(), pts.len() - pts.len().div_ceil(3));
        t.verify().unwrap();
        // Survivors still findable.
        let hits = t
            .search_window(Rect::new(0, 0, u64::MAX, u64::MAX))
            .unwrap();
        assert_eq!(hits.len(), t.len());
    }

    #[test]
    fn bulk_delete_matches_traditional() {
        let pts = grid_points(16);
        let victims: Vec<PointEntry> = pts.iter().copied().step_by(2).collect();

        let mut trad =
            RTree::create(pool(), RTreeConfig::with_fanout(8), StructureId::Spatial(0)).unwrap();
        let mut bulk =
            RTree::create(pool(), RTreeConfig::with_fanout(8), StructureId::Spatial(0)).unwrap();
        for &e in &pts {
            trad.insert(e).unwrap();
            bulk.insert(e).unwrap();
        }
        for &e in &victims {
            assert!(trad.delete(e).unwrap());
        }
        let set: HashSet<Rid> = victims.iter().map(|e| e.rid).collect();
        let deleted = bulk.bulk_delete_probe(&set).unwrap();
        assert_eq!(deleted.len(), victims.len());

        let a = trad.verify().unwrap();
        let b = bulk.verify().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_delete_everything() {
        let mut t =
            RTree::create(pool(), RTreeConfig::with_fanout(5), StructureId::Spatial(0)).unwrap();
        let pts = grid_points(10);
        for &e in &pts {
            t.insert(e).unwrap();
        }
        let set: HashSet<Rid> = pts.iter().map(|e| e.rid).collect();
        let deleted = t.bulk_delete_probe(&set).unwrap();
        assert_eq!(deleted.len(), 100);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        // Still usable.
        t.insert(pt(5, 5, 9999)).unwrap();
        assert_eq!(t.search_window(Rect::point(5, 5)).unwrap().len(), 1);
        t.verify().unwrap();
    }

    #[test]
    fn bulk_delete_visits_each_page_once() {
        let mut t = RTree::create(pool(), RTreeConfig::default(), StructureId::Spatial(0)).unwrap();
        let pts = grid_points(50); // 2500 points
        for &e in &pts {
            t.insert(e).unwrap();
        }
        let victims: HashSet<Rid> = pts.iter().step_by(4).map(|e| e.rid).collect();

        // Traditional: one traversal per victim.
        let mut trad =
            RTree::create(pool(), RTreeConfig::default(), StructureId::Spatial(0)).unwrap();
        for &e in &pts {
            trad.insert(e).unwrap();
        }
        let p_bulk = t.pool.clone();
        let p_trad = trad.pool.clone();
        p_bulk.clear_cache().unwrap();
        p_bulk.reset_stats();
        t.bulk_delete_probe(&victims).unwrap();
        let bulk_reads = p_bulk.pool_stats().misses;

        p_trad.clear_cache().unwrap();
        p_trad.reset_stats();
        for e in pts.iter().step_by(4) {
            trad.delete(*e).unwrap();
        }
        let _trad_reads = p_trad.pool_stats().misses;
        // Bulk touches each page once: misses bounded by page count.
        assert!(bulk_reads <= 64, "bulk read {bulk_reads} pages");
        t.verify().unwrap();
        trad.verify().unwrap();
    }

    #[test]
    fn random_points_model_check() {
        let mut t =
            RTree::create(pool(), RTreeConfig::with_fanout(7), StructureId::Spatial(0)).unwrap();
        let mut x = 1234u64;
        let mut model = Vec::new();
        for i in 0..1500u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = pt(x % 10_000, (x >> 32) % 10_000, i);
            t.insert(e).unwrap();
            model.push(e);
        }
        // Window query cross-check.
        let win = Rect::new(2000, 2000, 6000, 6000);
        let mut expect: Vec<PointEntry> = model
            .iter()
            .copied()
            .filter(|e| win.intersects(Rect::point(e.x, e.y)))
            .collect();
        expect.sort_unstable();
        assert_eq!(t.search_window(win).unwrap(), expect);
        // Bulk delete the window contents.
        let set: HashSet<Rid> = expect.iter().map(|e| e.rid).collect();
        let deleted = t.bulk_delete_probe(&set).unwrap();
        assert_eq!(deleted, expect);
        assert!(t.search_window(win).unwrap().is_empty());
        t.verify().unwrap();
    }
}
