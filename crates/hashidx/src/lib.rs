#![warn(missing_docs)]

//! Static hash index with overflow chains.
//!
//! The paper restricts its bulk-delete algorithms to B⁺-trees and states
//! that "in our prototype, other kinds of indices are updated in the
//! traditional way" (§5), naming hash tables first among the structures
//! left to future work. This crate supplies that other kind of index: a
//! bucket-array hash index whose entries the engine maintains
//! record-at-a-time — including during a vertical bulk delete, exactly as
//! the paper's prototype did.
//!
//! Layout: a fixed bucket directory (catalog metadata) points at bucket
//! pages; each bucket page holds `(key, rid)` entries and an overflow
//! pointer:
//!
//! ```text
//! 0..2   n_entries (u16)
//! 2..4   reserved
//! 4..8   overflow page (u32, NO_PAGE if none)
//! 8..    entries of (key u64, rid u64), 16 bytes each, unordered
//! ```

use std::sync::Arc;

use bd_storage::page::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use bd_storage::{BufferPool, PageId, Rid, StorageResult, StructureId, PAGE_SIZE};

/// Key type (matches the B-tree's).
pub type Key = u64;

const NO_PAGE: u32 = u32::MAX;
const HDR: usize = 8;
const ENTRY: usize = 16;

/// Entries per bucket page.
pub const BUCKET_CAP: usize = (PAGE_SIZE - HDR) / ENTRY;

fn entry_off(i: usize) -> usize {
    HDR + i * ENTRY
}

fn page_n(buf: &[u8]) -> usize {
    get_u16(buf, 0) as usize
}

fn page_set_n(buf: &mut [u8], n: usize) {
    put_u16(buf, 0, n as u16);
}

fn page_overflow(buf: &[u8]) -> Option<PageId> {
    let p = get_u32(buf, 4);
    (p != NO_PAGE).then_some(p)
}

fn page_set_overflow(buf: &mut [u8], p: Option<PageId>) {
    put_u32(buf, 4, p.unwrap_or(NO_PAGE));
}

fn page_entry(buf: &[u8], i: usize) -> (Key, Rid) {
    (
        get_u64(buf, entry_off(i)),
        Rid::from_u64(get_u64(buf, entry_off(i) + 8)),
    )
}

fn page_set_entry(buf: &mut [u8], i: usize, e: (Key, Rid)) {
    put_u64(buf, entry_off(i), e.0);
    put_u64(buf, entry_off(i) + 8, e.1.to_u64());
}

/// Multiplicative hash (Fibonacci hashing) — good spread for the
/// workload's integer keys.
fn bucket_of(key: Key, n_buckets: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n_buckets
}

/// A static hash index of `(key, rid)` entries.
pub struct HashIndex {
    pool: Arc<BufferPool>,
    buckets: Vec<PageId>,
    n_entries: usize,
    owner: StructureId,
}

impl HashIndex {
    /// Create an index with `n_buckets` bucket pages (allocated
    /// contiguously), owned by `owner` in the page catalog.
    pub fn create(
        pool: Arc<BufferPool>,
        n_buckets: usize,
        owner: StructureId,
    ) -> StorageResult<Self> {
        assert!(n_buckets > 0);
        let first = pool.allocate_contiguous(n_buckets, owner);
        pool.with_disk(|disk| {
            disk.write_chain(first, n_buckets, |_, page| {
                page_set_n(&mut page[..], 0);
                page_set_overflow(&mut page[..], None);
            })
        })?;
        Ok(HashIndex {
            pool,
            buckets: (0..n_buckets as PageId).map(|i| first + i).collect(),
            n_entries: 0,
            owner,
        })
    }

    /// Size the bucket count for an expected entry count at ~70% fill.
    pub fn with_capacity(
        pool: Arc<BufferPool>,
        expected: usize,
        owner: StructureId,
    ) -> StorageResult<Self> {
        let buckets = (expected as f64 / (BUCKET_CAP as f64 * 0.7))
            .ceil()
            .max(1.0) as usize;
        HashIndex::create(pool, buckets, owner)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.n_entries
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Number of bucket pages (excluding overflow pages).
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The structure this index's pages are catalogued under.
    pub fn owner(&self) -> StructureId {
        self.owner
    }

    /// Every page the index owns: bucket pages plus their overflow chains,
    /// in chain-walk order. Media recovery uses this to classify a corrupt
    /// page id as belonging to a specific hash index.
    pub fn pages(&self) -> StorageResult<Vec<PageId>> {
        let mut out = Vec::with_capacity(self.buckets.len());
        for &bucket in &self.buckets {
            let mut pid = Some(bucket);
            while let Some(p) = pid {
                let r = self.pool.pin_read(p)?;
                out.push(p);
                pid = page_overflow(&r[..]);
            }
        }
        Ok(out)
    }

    /// Insert an entry (duplicates allowed).
    pub fn insert(&mut self, key: Key, rid: Rid) -> StorageResult<()> {
        let mut pid = self.buckets[bucket_of(key, self.buckets.len())];
        loop {
            let mut w = self.pool.pin_write(pid)?;
            let n = page_n(&w[..]);
            if n < BUCKET_CAP {
                page_set_entry(&mut w[..], n, (key, rid));
                page_set_n(&mut w[..], n + 1);
                self.n_entries += 1;
                return Ok(());
            }
            match page_overflow(&w[..]) {
                Some(next) => {
                    drop(w);
                    pid = next;
                }
                None => {
                    // Chain a fresh overflow page.
                    let (new_pid, mut nw) = self.pool.new_page(self.owner)?;
                    page_set_n(&mut nw[..], 1);
                    page_set_overflow(&mut nw[..], None);
                    page_set_entry(&mut nw[..], 0, (key, rid));
                    drop(nw);
                    page_set_overflow(&mut w[..], Some(new_pid));
                    self.n_entries += 1;
                    return Ok(());
                }
            }
        }
    }

    /// All RIDs under `key`.
    pub fn search(&self, key: Key) -> StorageResult<Vec<Rid>> {
        let mut out = Vec::new();
        let mut pid = Some(self.buckets[bucket_of(key, self.buckets.len())]);
        while let Some(p) = pid {
            let r = self.pool.pin_read(p)?;
            for i in 0..page_n(&r[..]) {
                let (k, rid) = page_entry(&r[..], i);
                if k == key {
                    out.push(rid);
                }
            }
            pid = page_overflow(&r[..]);
        }
        Ok(out)
    }

    /// Delete exactly `(key, rid)` — one chain walk, the "traditional way".
    /// Returns `true` if the entry existed.
    pub fn delete(&mut self, key: Key, rid: Rid) -> StorageResult<bool> {
        let mut pid = Some(self.buckets[bucket_of(key, self.buckets.len())]);
        while let Some(p) = pid {
            // Pause point: between chain pages, no pin held (the previous
            // iteration's write guard dropped at the end of its block).
            bd_storage::pacer::checkpoint()?;
            let mut w = self.pool.pin_write(p)?;
            let n = page_n(&w[..]);
            for i in 0..n {
                if page_entry(&w[..], i) == (key, rid) {
                    // Swap-remove with the last entry of this page.
                    let last = page_entry(&w[..], n - 1);
                    page_set_entry(&mut w[..], i, last);
                    page_set_n(&mut w[..], n - 1);
                    self.n_entries -= 1;
                    return Ok(true);
                }
            }
            pid = page_overflow(&w[..]);
        }
        Ok(false)
    }

    /// Delete every `(key, rid)` entry of `entries` — the hash-index arm
    /// of a bulk delete. Each entry still costs one chain walk (hash
    /// indices are "updated in the traditional way"; the bulk-delete
    /// operator "was restricted to B+-trees"), but the whole arm is one
    /// entry point on an owned, `Send` handle, so the executor can
    /// dispatch it to a worker thread. Returns how many entries existed.
    pub fn bulk_delete(&mut self, entries: &[(Key, Rid)]) -> StorageResult<usize> {
        let mut removed = 0;
        for &(key, rid) in entries {
            if self.delete(key, rid)? {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// All entries, in arbitrary order (consistency checks).
    pub fn scan(&self) -> StorageResult<Vec<(Key, Rid)>> {
        let mut out = Vec::with_capacity(self.n_entries);
        for &bucket in &self.buckets {
            let mut pid = Some(bucket);
            while let Some(p) = pid {
                // Pause point: between chain pages, no pin held.
                bd_storage::pacer::checkpoint()?;
                let r = self.pool.pin_read(p)?;
                for i in 0..page_n(&r[..]) {
                    out.push(page_entry(&r[..], i));
                }
                pid = page_overflow(&r[..]);
            }
        }
        Ok(out)
    }

    /// Recount entries from the disk state (fixes the in-memory counter
    /// after crash recovery, like the heap's and trees' recounts).
    pub fn recount(&mut self) -> StorageResult<usize> {
        let n = self.scan()?.len();
        self.n_entries = n;
        Ok(n)
    }

    /// Dump every bucket's overflow chain and check the structure's
    /// invariants: every entry must hash to the bucket whose chain holds it,
    /// chain pages must respect [`BUCKET_CAP`], and the in-memory entry
    /// counter must match the on-disk entry count. Violations are returned
    /// as human-readable strings (the audit harness folds them into its
    /// report); I/O failures surface as errors.
    pub fn audit(&self) -> StorageResult<HashAudit> {
        let mut chains = Vec::with_capacity(self.buckets.len());
        let mut violations = Vec::new();
        let mut total = 0usize;
        for (b, &bucket) in self.buckets.iter().enumerate() {
            let mut pages = Vec::new();
            let mut entries = Vec::new();
            let mut pid = Some(bucket);
            while let Some(p) = pid {
                let r = self.pool.pin_read(p)?;
                let n = page_n(&r[..]);
                if n > BUCKET_CAP {
                    violations.push(format!("bucket {b} page {p} holds {n} > cap {BUCKET_CAP}"));
                }
                for i in 0..n.min(BUCKET_CAP) {
                    let (k, rid) = page_entry(&r[..], i);
                    if bucket_of(k, self.buckets.len()) != b {
                        violations.push(format!(
                            "bucket {b} page {p} holds key {k} that hashes to bucket {}",
                            bucket_of(k, self.buckets.len())
                        ));
                    }
                    entries.push((k, rid));
                }
                pages.push(p);
                pid = page_overflow(&r[..]);
                if pages.len() > 1_000_000 {
                    violations.push(format!("bucket {b} chain does not terminate"));
                    break;
                }
            }
            total += entries.len();
            chains.push(BucketChain {
                bucket: b,
                pages,
                entries,
            });
        }
        if total != self.n_entries {
            violations.push(format!(
                "entry counter says {} but chains hold {total}",
                self.n_entries
            ));
        }
        Ok(HashAudit { chains, violations })
    }

    /// Scrub every chain page: zero all bytes beyond the live entry region.
    /// [`HashIndex::delete`] swap-removes, so the former last entry's
    /// `(key, rid)` image survives beyond `n_entries` until this pass
    /// destroys it. Returns the number of pages that held stale bytes.
    pub fn scrub(&mut self) -> StorageResult<usize> {
        let mut dirtied = 0;
        for &bucket in &self.buckets {
            let mut pid = Some(bucket);
            while let Some(p) = pid {
                // Pause point: between chain pages, no pin held.
                bd_storage::pacer::checkpoint()?;
                let mut w = self.pool.pin_write(p)?;
                let buf = &mut w[..];
                let n = page_n(buf);
                let tail = entry_off(n.min(BUCKET_CAP));
                if buf[tail..].iter().any(|&b| b != 0) {
                    buf[tail..].fill(0);
                    dirtied += 1;
                }
                pid = page_overflow(buf);
            }
        }
        Ok(dirtied)
    }

    /// Longest overflow chain (diagnostics).
    pub fn max_chain_len(&self) -> StorageResult<usize> {
        let mut max = 0;
        for &bucket in &self.buckets {
            let mut len = 0;
            let mut pid = Some(bucket);
            while let Some(p) = pid {
                len += 1;
                let r = self.pool.pin_read(p)?;
                pid = page_overflow(&r[..]);
            }
            max = max.max(len);
        }
        Ok(max)
    }
}

/// One bucket's chain as found on disk by [`HashIndex::audit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketChain {
    /// Bucket number.
    pub bucket: usize,
    /// Pages of the chain, bucket page first.
    pub pages: Vec<PageId>,
    /// Entries in chain order.
    pub entries: Vec<(Key, Rid)>,
}

/// Result of [`HashIndex::audit`]: the full chain dump plus any violated
/// invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashAudit {
    /// Per-bucket chain contents.
    pub chains: Vec<BucketChain>,
    /// Human-readable invariant violations (empty = structurally sound).
    pub violations: Vec<String>,
}

impl HashAudit {
    /// All entries across every chain, unsorted.
    pub fn entries(&self) -> Vec<(Key, Rid)> {
        self.chains.iter().flat_map(|c| c.entries.clone()).collect()
    }
}

// Hash-index arms are dispatched to worker threads by the phase-task
// executor; the handle must stay `Send` (see the matching assertion on
// `bd_btree::BTree`).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<HashIndex>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{CostModel, SimDisk};

    fn pool() -> Arc<BufferPool> {
        BufferPool::new(SimDisk::new(CostModel::default()), 128)
    }

    fn rid(i: u64) -> Rid {
        Rid::new(i as u32, (i % 7) as u16)
    }

    #[test]
    fn insert_search_delete() {
        let mut h = HashIndex::create(pool(), 4, StructureId::Hash(0)).unwrap();
        for k in 0..100u64 {
            h.insert(k, rid(k)).unwrap();
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.search(42).unwrap(), vec![rid(42)]);
        assert_eq!(h.search(1000).unwrap(), Vec::<Rid>::new());
        assert!(h.delete(42, rid(42)).unwrap());
        assert!(!h.delete(42, rid(42)).unwrap());
        assert_eq!(h.search(42).unwrap(), Vec::<Rid>::new());
        assert_eq!(h.len(), 99);
    }

    #[test]
    fn duplicates_supported() {
        let mut h = HashIndex::create(pool(), 2, StructureId::Hash(0)).unwrap();
        for i in 0..5u16 {
            h.insert(7, Rid::new(1, i)).unwrap();
        }
        let mut rids = h.search(7).unwrap();
        rids.sort();
        assert_eq!(rids.len(), 5);
        assert!(h.delete(7, Rid::new(1, 2)).unwrap());
        assert_eq!(h.search(7).unwrap().len(), 4);
    }

    #[test]
    fn pages_lists_buckets_and_overflow_chains() {
        let mut h = HashIndex::create(pool(), 2, StructureId::Hash(0)).unwrap();
        assert_eq!(h.pages().unwrap().len(), 2, "bucket pages only");
        // One bucket overflows: pages() must pick up the chained page.
        let n = (BUCKET_CAP * 2 + BUCKET_CAP / 2) as u64;
        for k in 0..n {
            h.insert(k, rid(k)).unwrap();
        }
        let pages = h.pages().unwrap();
        assert!(pages.len() > 2, "overflow pages included: {pages:?}");
        let audit = h.audit().unwrap();
        let mut from_audit: Vec<PageId> =
            audit.chains.iter().flat_map(|c| c.pages.clone()).collect();
        let mut got = pages.clone();
        from_audit.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, from_audit, "pages() agrees with the audit dump");
    }

    #[test]
    fn overflow_chains_grow_and_shrink_logically() {
        // One bucket forces overflow beyond BUCKET_CAP entries.
        let mut h = HashIndex::create(pool(), 1, StructureId::Hash(0)).unwrap();
        let n = (BUCKET_CAP * 3) as u64;
        for k in 0..n {
            h.insert(k, rid(k)).unwrap();
        }
        assert!(h.max_chain_len().unwrap() >= 3);
        for k in 0..n {
            assert_eq!(h.search(k).unwrap(), vec![rid(k)], "key {k}");
        }
        for k in 0..n {
            assert!(h.delete(k, rid(k)).unwrap());
        }
        assert!(h.is_empty());
        assert_eq!(h.scan().unwrap(), Vec::<(Key, Rid)>::new());
    }

    #[test]
    fn paused_mid_chain_delete_holds_no_pins_and_matches_uninterrupted() {
        // One bucket forces a long overflow chain, so every delete walks
        // several pages and crosses a checkpoint per page: a pause trip
        // lands mid-hash-chain. Parked ⇒ zero pinned frames; resumed ⇒ the
        // exact state an uninterrupted run produces.
        let n = (BUCKET_CAP * 4) as u64;
        let mut reference = HashIndex::create(pool(), 1, StructureId::Hash(0)).unwrap();
        let p = pool();
        let mut h = HashIndex::create(p.clone(), 1, StructureId::Hash(0)).unwrap();
        for k in 0..n {
            reference.insert(k, rid(k)).unwrap();
            h.insert(k, rid(k)).unwrap();
        }
        let victims: Vec<Key> = (0..n).step_by(2).collect();
        for &k in &victims {
            assert!(reference.delete(k, rid(k)).unwrap());
        }

        let pacer = bd_storage::Pacer::new();
        pacer.pause_after(7);
        std::thread::scope(|s| {
            let worker = s.spawn(|| {
                let _g = pacer.enter();
                for &k in &victims {
                    assert!(h.delete(k, rid(k)).unwrap());
                }
            });
            assert!(
                pacer.wait_parked(1, std::time::Duration::from_secs(10)),
                "delete never parked mid-chain"
            );
            assert_eq!(p.pinned_frames(), 0, "parked mid-chain with a pin held");
            pacer.resume();
            worker.join().unwrap();
        });

        assert_eq!(h.len(), reference.len());
        let mut got = h.scan().unwrap();
        let mut expect = reference.scan().unwrap();
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect, "resumed delete diverged");
    }

    #[test]
    fn scrub_destroys_swap_removed_entry_images() {
        let tag = |i: u64| 0xFEED_FACE_0000_0000u64 | (i * 0x0101);
        let mut h = HashIndex::create(pool(), 2, StructureId::Hash(0)).unwrap();
        let n = (BUCKET_CAP + BUCKET_CAP / 2) as u64;
        for i in 0..n {
            h.insert(tag(i), rid(i)).unwrap();
        }
        let victims: Vec<u64> = (0..n).step_by(2).collect();
        for &i in &victims {
            assert!(h.delete(tag(i), rid(i)).unwrap());
        }
        // Swap-remove leaves stale images beyond n_entries on some page.
        let dirtied = h.scrub().unwrap();
        assert!(dirtied > 0, "delete left no residue to scrub?");
        h.pool.flush_all().unwrap();
        // Logical state intact, physical images gone.
        for i in 0..n {
            let expect = if i % 2 == 0 { vec![] } else { vec![rid(i)] };
            assert_eq!(h.search(tag(i)).unwrap(), expect, "key {i}");
        }
        let pages = h.pages().unwrap();
        h.pool.with_disk(|d| {
            for &p in &pages {
                let img = d.peek(p).unwrap();
                for &i in &victims {
                    let t = tag(i).to_le_bytes();
                    assert!(
                        !img.windows(8).any(|w| w == t),
                        "victim key {i} survives on page {p}"
                    );
                }
            }
        });
        assert_eq!(h.scrub().unwrap(), 0, "second scrub finds nothing");
    }

    #[test]
    fn scan_returns_every_entry_once() {
        let mut h = HashIndex::with_capacity(pool(), 1000, StructureId::Hash(0)).unwrap();
        for k in 0..1000u64 {
            h.insert(k * 3, rid(k)).unwrap();
        }
        let mut scanned = h.scan().unwrap();
        scanned.sort_unstable();
        let mut expect: Vec<(Key, Rid)> = (0..1000u64).map(|k| (k * 3, rid(k))).collect();
        expect.sort_unstable();
        assert_eq!(scanned, expect);
    }

    #[test]
    fn with_capacity_keeps_chains_short() {
        let mut h = HashIndex::with_capacity(pool(), 10_000, StructureId::Hash(0)).unwrap();
        for k in 0..10_000u64 {
            h.insert(k, rid(k)).unwrap();
        }
        assert!(
            h.max_chain_len().unwrap() <= 3,
            "chains: {}",
            h.max_chain_len().unwrap()
        );
    }

    #[test]
    fn audit_dumps_chains_and_flags_misplaced_entries() {
        let mut h = HashIndex::create(pool(), 4, StructureId::Hash(0)).unwrap();
        for k in 0..200u64 {
            h.insert(k, rid(k)).unwrap();
        }
        let audit = h.audit().unwrap();
        assert!(audit.violations.is_empty(), "{:?}", audit.violations);
        let mut got = audit.entries();
        got.sort_unstable();
        let mut expect = h.scan().unwrap();
        expect.sort_unstable();
        assert_eq!(got, expect);

        // Plant a misplaced entry: write a key into a bucket it does not
        // hash to, behind the index's back.
        let misplaced = (0u64..).find(|&k| bucket_of(k, 4) != 0).unwrap();
        let p0 = h.buckets[0];
        {
            let mut w = h.pool.pin_write(p0).unwrap();
            let n = page_n(&w[..]);
            assert!(n < BUCKET_CAP);
            page_set_entry(&mut w[..], n, (misplaced, Rid::new(7, 7)));
            page_set_n(&mut w[..], n + 1);
        }
        h.n_entries += 1;
        let audit = h.audit().unwrap();
        assert!(
            audit
                .violations
                .iter()
                .any(|v| v.contains("hashes to bucket")),
            "{:?}",
            audit.violations
        );
    }

    #[test]
    fn audit_flags_counter_drift() {
        let mut h = HashIndex::create(pool(), 2, StructureId::Hash(0)).unwrap();
        for k in 0..20u64 {
            h.insert(k, rid(k)).unwrap();
        }
        h.n_entries += 1; // simulate a lost update to the counter
        let audit = h.audit().unwrap();
        assert!(
            audit.violations.iter().any(|v| v.contains("counter")),
            "{:?}",
            audit.violations
        );
    }

    #[test]
    fn model_equivalence_under_mixed_ops() {
        use std::collections::HashSet;
        let mut h = HashIndex::create(pool(), 8, StructureId::Hash(0)).unwrap();
        let mut model: HashSet<(Key, Rid)> = HashSet::new();
        let mut x = 99u64;
        for _ in 0..3000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 200;
            let r = rid(x % 50);
            if x.is_multiple_of(3) {
                let existed = h.delete(k, r).unwrap();
                assert_eq!(existed, model.remove(&(k, r)));
            } else if model.insert((k, r)) {
                h.insert(k, r).unwrap();
            }
        }
        let mut scanned = h.scan().unwrap();
        scanned.sort_unstable();
        let mut expect: Vec<(Key, Rid)> = model.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(scanned, expect);
    }
}
