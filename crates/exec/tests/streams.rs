//! Additional exec-layer tests: streaming behaviour, statistics, and
//! budget interactions of the external sorter.

use std::sync::Arc;

use bd_exec::{sort_all, ByRid, ExternalSorter, Rec};
use bd_storage::{BufferPool, CostModel, Rid, SimDisk};

fn pool() -> Arc<BufferPool> {
    BufferPool::new(SimDisk::new(CostModel::default()), 64)
}

fn lcg(n: usize, seed: u64) -> Vec<u64> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        })
        .collect()
}

#[test]
fn sorted_stream_is_a_lazy_iterator() {
    let mut s = ExternalSorter::<u64>::new(pool(), 16 * 1024);
    s.extend(lcg(20_000, 3)).unwrap();
    let (stream, stats) = s.finish().unwrap();
    assert!(stats.runs > 1, "{stats:?}");
    // Take only a prefix: must be the global minimum prefix, in order.
    let prefix: Vec<u64> = stream.take(100).collect();
    assert!(prefix.windows(2).all(|w| w[0] <= w[1]));
    let mut all = lcg(20_000, 3);
    all.sort_unstable();
    assert_eq!(prefix, all[..100]);
}

#[test]
fn stats_count_items_runs_and_passes() {
    let items = lcg(100_000, 8);
    let (_, stats) = sort_all(pool(), items, 32 * 1024).unwrap();
    assert_eq!(stats.items, 100_000);
    // 32 KiB budget = 4096 u64s/run => ~25 runs; fan-in 2 => several passes.
    assert!(stats.runs >= 24, "{stats:?}");
    assert!(stats.merge_passes >= 3, "{stats:?}");
}

#[test]
fn presorted_input_stays_sorted() {
    let items: Vec<u64> = (0..50_000).collect();
    let (sorted, _) = sort_all(pool(), items.clone(), 16 * 1024).unwrap();
    assert_eq!(sorted, items);
}

#[test]
fn reverse_sorted_input() {
    let items: Vec<u64> = (0..50_000).rev().collect();
    let (sorted, _) = sort_all(pool(), items, 16 * 1024).unwrap();
    let expect: Vec<u64> = (0..50_000).collect();
    assert_eq!(sorted, expect);
}

#[test]
fn all_equal_items() {
    let items = vec![7u64; 30_000];
    let (sorted, _) = sort_all(pool(), items.clone(), 8 * 1024).unwrap();
    assert_eq!(sorted, items);
}

#[test]
fn merge_read_error_fuses_and_is_recorded() {
    // Regression: the Iterator impl used to map a spilled-run read error to
    // `None` (`.ok().flatten()`), silently truncating the sorted output
    // mid-merge. It must fuse and record the error instead.
    let p = pool();
    let mut s = ExternalSorter::<u64>::new(p.clone(), 64 * 1024);
    s.extend(lcg(60_000, 21)).unwrap();
    let (mut stream, stats) = s.finish().unwrap();
    assert!(stats.runs > 1, "{stats:?}");
    // All pages on this pool belong to spilled runs; failing the last
    // allocated page guarantees the fault sits in a run the final merge
    // still has to read (the first chunk of each run is already buffered).
    let bad = p.with_disk(|d| {
        let last = d.num_pages() as u32 - 1;
        d.set_fault_plan(
            bd_storage::FaultPlan::new().inject(bd_storage::FaultSpec::read_page(last)),
        );
        last
    });
    let truncated: Vec<u64> = (&mut stream).collect();
    assert!(truncated.len() < 60_000, "fault did not hit the merge path");
    assert_eq!(
        stream.take_error(),
        Some(bd_storage::StorageError::InjectedFault(bad)),
        "stream must record the merge read error"
    );
    assert_eq!(stream.take_error(), None, "error is taken once");
    assert_eq!(stream.next(), None, "fused after error");
}

#[test]
fn into_vec_propagates_merge_read_error() {
    let p = pool();
    let mut s = ExternalSorter::<u64>::new(p.clone(), 64 * 1024);
    s.extend(lcg(60_000, 22)).unwrap();
    let (stream, _) = s.finish().unwrap();
    let bad = p.with_disk(|d| {
        let last = d.num_pages() as u32 - 1;
        d.set_fault_plan(
            bd_storage::FaultPlan::new().inject(bd_storage::FaultSpec::read_page(last)),
        );
        last
    });
    assert_eq!(
        stream.into_vec().unwrap_err(),
        bd_storage::StorageError::InjectedFault(bad)
    );
}

#[test]
fn byrid_encoding_roundtrips() {
    let b = ByRid(Rid::new(123_456, 789), 0xDEAD_BEEF_DEAD_BEEF);
    let mut buf = [0u8; 16];
    b.encode(&mut buf);
    assert_eq!(ByRid::decode(&buf), b);
}

#[test]
fn key_rid_encoding_roundtrips() {
    let e = (u64::MAX - 5, Rid::new(u32::MAX - 1, 65_000));
    let mut buf = [0u8; 16];
    e.encode(&mut buf);
    assert_eq!(<(u64, Rid)>::decode(&buf), e);
}

#[test]
fn spilled_sort_budget_is_transient() {
    // The sorter's in-memory buffer is bounded by the budget; verify the
    // output is complete and the temp segments were fully consumed.
    let p = pool();
    let items = lcg(60_000, 12);
    let (sorted, stats) = sort_all(p.clone(), items.clone(), 24 * 1024).unwrap();
    assert_eq!(sorted.len(), items.len());
    assert!(stats.runs > 0);
    // Workspace budget (tracked separately by MemoryBudget in the engine)
    // is untouched here; this sorter only bounds its own buffer.
    let mut expect = items;
    expect.sort_unstable();
    assert_eq!(sorted, expect);
}
