//! Range partitioning for the partitioned-hash `⋈̄` plan (Fig. 5).
//!
//! "If the RID list is very large and the size of the hash table exceeds
//! the size of the available main memory, then range partitioning can be
//! applied ... partition the RID-list into partitions that fit into main
//! memory and then carry out the bulk delete for each partition
//! individually." Because the target index is ordered by key, each key
//! range maps to a contiguous leaf range — "I_B and I_C can be range
//! partitioned without any cost".

use bd_storage::Rid;

use bd_btree::Key;

/// One key-range partition of a delete list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Lowest key in the partition.
    pub lo: Key,
    /// Highest key in the partition (inclusive).
    pub hi: Key,
    /// The `(key, rid)` pairs of the partition (sorted).
    pub entries: Vec<(Key, Rid)>,
}

impl Partition {
    /// The RIDs of this partition (probe-set input).
    pub fn rids(&self) -> impl Iterator<Item = Rid> + '_ {
        self.entries.iter().map(|e| e.1)
    }
}

/// Split a *sorted* `(key, rid)` list into partitions of at most
/// `max_per_partition` entries. Returns partitions in key order covering
/// every input entry exactly once.
///
/// Adjacent partitions may share a boundary key when duplicates straddle a
/// cut; the probe is by RID, so overlap in key ranges is harmless.
pub fn range_partitions(sorted: &[(Key, Rid)], max_per_partition: usize) -> Vec<Partition> {
    assert!(
        max_per_partition > 0,
        "partitions must hold at least 1 entry"
    );
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input unsorted");
    sorted
        .chunks(max_per_partition)
        .map(|chunk| Partition {
            lo: chunk[0].0,
            hi: chunk[chunk.len() - 1].0,
            entries: chunk.to_vec(),
        })
        .collect()
}

/// Number of partitions needed so each fits `budget_bytes` at
/// `bytes_per_entry` of hash-table footprint.
pub fn partitions_needed(n_entries: usize, bytes_per_entry: usize, budget_bytes: usize) -> usize {
    if n_entries == 0 {
        return 0;
    }
    let per_part = (budget_bytes / bytes_per_entry).max(1);
    n_entries.div_ceil(per_part)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: u64) -> Vec<(Key, Rid)> {
        (0..n).map(|k| (k, Rid::new(k as u32, 0))).collect()
    }

    #[test]
    fn partitions_cover_everything_in_order() {
        let input = entries(100);
        let parts = range_partitions(&input, 30);
        assert_eq!(parts.len(), 4);
        let flat: Vec<_> = parts.iter().flat_map(|p| p.entries.clone()).collect();
        assert_eq!(flat, input);
        // Key ranges are ordered and non-overlapping for unique keys.
        for w in parts.windows(2) {
            assert!(w[0].hi < w[1].lo);
        }
    }

    #[test]
    fn single_partition_when_it_fits() {
        let input = entries(10);
        let parts = range_partitions(&input, 100);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].lo, 0);
        assert_eq!(parts[0].hi, 9);
    }

    #[test]
    fn empty_input_no_partitions() {
        assert!(range_partitions(&[], 10).is_empty());
    }

    #[test]
    fn duplicate_keys_may_straddle() {
        let input: Vec<(Key, Rid)> = (0..10u16).map(|s| (5, Rid::new(0, s))).collect();
        let parts = range_partitions(&input, 4);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.lo == 5 && p.hi == 5));
        let total: usize = parts.iter().map(|p| p.entries.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn partitions_needed_math() {
        assert_eq!(partitions_needed(0, 24, 1000), 0);
        assert_eq!(partitions_needed(100, 24, 2400), 1);
        assert_eq!(partitions_needed(101, 24, 2400), 2);
        assert_eq!(partitions_needed(1000, 24, 24), 1000);
    }
}
