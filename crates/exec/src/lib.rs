#![warn(missing_docs)]

//! Query-execution substrate for the bulk-delete operator.
//!
//! The paper treats bulk deletion as join processing: "the bulk delete
//! operator carries out pointer based joins" and can be implemented by
//! sorting/merging, classic hashing, or hashing with range partitioning.
//! This crate supplies those building blocks with honest resource bounds:
//!
//! * [`sort`] — external merge sort under a byte budget, spilling to
//!   sequential temp segments;
//! * [`hash`] — RID / entry hash sets whose footprint is reserved against a
//!   [`bd_storage::MemoryBudget`];
//! * [`partition`] — key-range partitioning of sorted delete lists.

pub mod hash;
pub mod partition;
pub mod sort;

pub use hash::{rid_set_bytes, EntrySet, RidSet, BYTES_PER_ENTRY, BYTES_PER_RID};
pub use partition::{partitions_needed, range_partitions, Partition};
pub use sort::{sort_all, ByRid, ExternalSorter, Rec, SortStats, SortedStream};
