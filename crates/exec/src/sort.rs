//! External merge sort with a bounded memory budget.
//!
//! The vertical plans sort "the (small) lists of keys and RIDs" (§2.2.1)
//! before merging them into tables and indices. In the paper's experiments
//! the delete list usually fits in memory ("table D can always be sorted in
//! one pass in main memory"), but the sorter also handles the spill case:
//! quicksorted runs are written to [`TempSegment`]s (sequential, bypassing
//! the buffer pool) and merged k-way, with multi-pass merging when the
//! fan-in exceeds what the budget can buffer.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use bd_storage::{
    BufferPool, Rid, SegmentReader, SegmentWriter, StorageError, StorageResult, TempSegment,
};

use bd_btree::Key;

/// Fixed-size record that can live in a sort run.
pub trait Rec: Copy + Ord {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Serialize into `dst` (exactly `SIZE` bytes).
    fn encode(&self, dst: &mut [u8]);
    /// Deserialize from `src` (exactly `SIZE` bytes).
    fn decode(src: &[u8]) -> Self;
}

impl Rec for u64 {
    const SIZE: usize = 8;
    fn encode(&self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.to_le_bytes());
    }
    fn decode(src: &[u8]) -> Self {
        u64::from_le_bytes(src.try_into().expect("8 bytes"))
    }
}

impl Rec for (Key, Rid) {
    const SIZE: usize = 16;
    fn encode(&self, dst: &mut [u8]) {
        dst[..8].copy_from_slice(&self.0.to_le_bytes());
        dst[8..].copy_from_slice(&self.1.to_u64().to_le_bytes());
    }
    fn decode(src: &[u8]) -> Self {
        (
            u64::from_le_bytes(src[..8].try_into().expect("8 bytes")),
            Rid::from_u64(u64::from_le_bytes(src[8..].try_into().expect("8 bytes"))),
        )
    }
}

/// Sort by RID first (used to order delete lists in table-scan order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ByRid(pub Rid, pub Key);

impl Rec for ByRid {
    const SIZE: usize = 16;
    fn encode(&self, dst: &mut [u8]) {
        dst[..8].copy_from_slice(&self.0.to_u64().to_le_bytes());
        dst[8..].copy_from_slice(&self.1.to_le_bytes());
    }
    fn decode(src: &[u8]) -> Self {
        ByRid(
            Rid::from_u64(u64::from_le_bytes(src[..8].try_into().expect("8 bytes"))),
            u64::from_le_bytes(src[8..].try_into().expect("8 bytes")),
        )
    }
}

/// Counters describing one sort execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Items sorted.
    pub items: usize,
    /// Spilled runs generated (0 = fully in memory).
    pub runs: usize,
    /// Extra merge passes beyond the final one.
    pub merge_passes: usize,
}

/// Bounded-memory external sorter.
pub struct ExternalSorter<T: Rec> {
    pool: Arc<BufferPool>,
    budget_bytes: usize,
    buf: Vec<T>,
    runs: Vec<TempSegment>,
    stats: SortStats,
}

impl<T: Rec> ExternalSorter<T> {
    /// Sorter allowed to hold `budget_bytes` of items in memory at once.
    pub fn new(pool: Arc<BufferPool>, budget_bytes: usize) -> Self {
        let cap = (budget_bytes / T::SIZE).max(64);
        ExternalSorter {
            pool,
            budget_bytes,
            buf: Vec::with_capacity(cap.min(1 << 20)),
            runs: Vec::new(),
            stats: SortStats::default(),
        }
    }

    /// Items the in-memory buffer may hold.
    fn mem_items(&self) -> usize {
        (self.budget_bytes / T::SIZE).max(64)
    }

    /// Add one item.
    pub fn push(&mut self, item: T) -> StorageResult<()> {
        self.buf.push(item);
        self.stats.items += 1;
        if self.buf.len() >= self.mem_items() {
            self.spill()?;
        }
        Ok(())
    }

    /// Add many items.
    pub fn extend(&mut self, items: impl IntoIterator<Item = T>) -> StorageResult<()> {
        for i in items {
            self.push(i)?;
        }
        Ok(())
    }

    fn spill(&mut self) -> StorageResult<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        // Pause point: before writing a run (temp segments bypass the
        // buffer pool, so no pin is ever held here).
        bd_storage::pacer::checkpoint()?;
        self.buf.sort_unstable();
        let mut w = SegmentWriter::new(self.pool.clone());
        let mut enc = vec![0u8; T::SIZE];
        for item in &self.buf {
            item.encode(&mut enc);
            w.write(&enc)?;
        }
        self.runs.push(w.finish()?);
        self.stats.runs += 1;
        self.buf.clear();
        Ok(())
    }

    /// Merge fan-in the budget can buffer (each open run double-buffers
    /// ~64 KiB of chained reads).
    fn fan_in(&self) -> usize {
        (self.budget_bytes / (64 * 1024)).max(2)
    }

    /// Finish and return the sorted stream plus stats.
    pub fn finish(mut self) -> StorageResult<(SortedStream<T>, SortStats)> {
        if self.runs.is_empty() {
            // Everything fit in memory: one in-place sort.
            self.buf.sort_unstable();
            let stats = self.stats;
            return Ok((
                SortedStream {
                    inner: StreamInner::Mem(std::mem::take(&mut self.buf).into_iter()),
                    error: None,
                    fused: false,
                },
                stats,
            ));
        }
        self.spill()?;
        // Multi-pass merge down to a final fan-in.
        let fan_in = self.fan_in();
        while self.runs.len() > fan_in {
            let batch: Vec<TempSegment> = self.runs.drain(..fan_in).collect();
            let mut merge: KWayMerge<T> = KWayMerge::new(&self.pool, batch)?;
            let mut w = SegmentWriter::new(self.pool.clone());
            let mut enc = vec![0u8; T::SIZE];
            while let Some(item) = merge.next_item()? {
                item.encode(&mut enc);
                w.write(&enc)?;
            }
            self.runs.push(w.finish()?);
            self.stats.merge_passes += 1;
        }
        let merge = KWayMerge::new(&self.pool, std::mem::take(&mut self.runs))?;
        let stats = self.stats;
        Ok((
            SortedStream {
                inner: StreamInner::Merge(merge),
                error: None,
                fused: false,
            },
            stats,
        ))
    }
}

impl<T: Rec> Drop for ExternalSorter<T> {
    /// Runs not handed off to a merge (an abandoned sorter, or a `finish`
    /// that failed partway) must not leak their temp pages.
    fn drop(&mut self) {
        for run in &self.runs {
            run.free(&self.pool);
        }
    }
}

enum StreamInner<T: Rec> {
    /// Fully in-memory result.
    Mem(std::vec::IntoIter<T>),
    /// Streaming k-way merge over spilled runs.
    Merge(KWayMerge<T>),
}

/// Sorted output of an [`ExternalSorter`].
///
/// The spilled-run path does real I/O, so iteration can fail mid-merge.
/// [`SortedStream::into_vec`] is the loss-free path: it surfaces any read
/// error as a `Result`. The `Iterator` impl (needed by merge-join style
/// consumers) cannot return errors through its items; instead it *fuses and
/// records*: on the first error the stream permanently ends and the error is
/// held for the caller to retrieve via [`SortedStream::take_error`]. It is a
/// bug for a caller to drain the iterator without checking `take_error()` —
/// a recorded error means the sorted output was truncated mid-merge.
pub struct SortedStream<T: Rec> {
    inner: StreamInner<T>,
    error: Option<StorageError>,
    /// Set when an error ended iteration; stays set after `take_error` so
    /// the stream never resumes past a known-lost item.
    fused: bool,
}

impl<T: Rec> SortedStream<T> {
    /// Drain the stream into a vector.
    pub fn into_vec(mut self) -> StorageResult<Vec<T>> {
        if self.fused {
            // The stream already lost items to an error; never hand back a
            // truncated vector, even if the error was taken separately.
            return Err(self.error.take().unwrap_or(StorageError::SegmentExhausted));
        }
        match self.inner {
            StreamInner::Mem(it) => Ok(it.collect()),
            StreamInner::Merge(mut m) => {
                let mut out = Vec::new();
                while let Some(item) = m.next_item()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
    }

    /// The error that fused the stream, if any.
    pub fn error(&self) -> Option<&StorageError> {
        self.error.as_ref()
    }

    /// Take the error that fused the stream. Callers draining via the
    /// `Iterator` impl must check this after exhaustion: `Some(_)` means
    /// the stream ended early and the sorted output is incomplete.
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }
}

impl<T: Rec> Iterator for SortedStream<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.fused {
            return None;
        }
        match &mut self.inner {
            StreamInner::Mem(it) => it.next(),
            StreamInner::Merge(m) => match m.next_item() {
                Ok(item) => item,
                Err(e) => {
                    self.error = Some(e);
                    self.fused = true;
                    None
                }
            },
        }
    }
}

struct RunCursor<T: Rec> {
    pool: Arc<BufferPool>,
    reader: SegmentReader,
    /// The run being consumed; taken (and its pages freed) on exhaustion.
    seg: Option<TempSegment>,
    buf: Vec<u8>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Rec> RunCursor<T> {
    fn next(&mut self) -> StorageResult<Option<T>> {
        if self.reader.remaining() == 0 {
            self.release();
            return Ok(None);
        }
        self.reader.read_exact(&mut self.buf)?;
        Ok(Some(T::decode(&self.buf)))
    }

    /// Return the run's temp pages to the catalog (idempotent).
    fn release(&mut self) {
        if let Some(seg) = self.seg.take() {
            seg.free(&self.pool);
        }
    }
}

impl<T: Rec> Drop for RunCursor<T> {
    /// A merge dropped mid-stream (an abandoned [`SortedStream`], a failed
    /// merge pass) still frees every run it was consuming.
    fn drop(&mut self) {
        self.release();
    }
}

/// Streaming k-way merge over sorted runs.
pub struct KWayMerge<T: Rec> {
    cursors: Vec<RunCursor<T>>,
    heap: BinaryHeap<Reverse<(T, usize)>>,
}

impl<T: Rec> KWayMerge<T> {
    fn new(pool: &Arc<BufferPool>, runs: Vec<TempSegment>) -> StorageResult<Self> {
        let mut cursors: Vec<RunCursor<T>> = runs
            .into_iter()
            .map(|seg| RunCursor {
                pool: pool.clone(),
                reader: seg.reader(pool.clone()),
                seg: Some(seg),
                buf: vec![0u8; T::SIZE],
                _marker: std::marker::PhantomData,
            })
            .collect();
        let mut heap = BinaryHeap::with_capacity(cursors.len());
        for (i, c) in cursors.iter_mut().enumerate() {
            if let Some(item) = c.next()? {
                heap.push(Reverse((item, i)));
            }
        }
        Ok(KWayMerge { cursors, heap })
    }

    fn next_item(&mut self) -> StorageResult<Option<T>> {
        // Pause point: between merge outputs; run cursors read through
        // temp segments, never through pinned frames.
        bd_storage::pacer::checkpoint()?;
        match self.heap.pop() {
            None => Ok(None),
            Some(Reverse((item, i))) => {
                if let Some(next) = self.cursors[i].next()? {
                    self.heap.push(Reverse((next, i)));
                }
                Ok(Some(item))
            }
        }
    }
}

/// Convenience: sort `items` under `budget_bytes`, returning a vector.
pub fn sort_all<T: Rec>(
    pool: Arc<BufferPool>,
    items: impl IntoIterator<Item = T>,
    budget_bytes: usize,
) -> StorageResult<(Vec<T>, SortStats)> {
    let mut s = ExternalSorter::new(pool, budget_bytes);
    s.extend(items)?;
    let (stream, stats) = s.finish()?;
    Ok((stream.into_vec()?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{CostModel, SimDisk};

    fn pool() -> Arc<BufferPool> {
        BufferPool::new(SimDisk::new(CostModel::default()), 64)
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x
            })
            .collect()
    }

    #[test]
    fn in_memory_sort() {
        let items = pseudo_random(1000, 7);
        let (sorted, stats) = sort_all(pool(), items.clone(), 1 << 20).unwrap();
        let mut expect = items;
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert_eq!(stats.runs, 0);
    }

    #[test]
    fn spilling_sort_matches_in_memory() {
        let items = pseudo_random(50_000, 42);
        // 64 KiB budget => 8192 u64s per run => ~7 runs.
        let (sorted, stats) = sort_all(pool(), items.clone(), 64 * 1024).unwrap();
        let mut expect = items;
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert!(stats.runs >= 6, "expected spills, got {stats:?}");
    }

    #[test]
    fn multi_pass_merge_under_tiny_budget() {
        let items = pseudo_random(200_000, 3);
        // 64 KiB budget: fan-in = 2, ~25 runs => multiple merge passes.
        let (sorted, stats) = sort_all(pool(), items.clone(), 64 * 1024).unwrap();
        let mut expect = items;
        expect.sort_unstable();
        assert_eq!(sorted.len(), expect.len());
        assert_eq!(sorted, expect);
        assert!(stats.merge_passes > 0, "{stats:?}");
    }

    #[test]
    fn duplicates_survive() {
        let mut items = pseudo_random(10_000, 9);
        items.extend_from_slice(&items.clone()); // every item twice
        let (sorted, _) = sort_all(pool(), items.clone(), 32 * 1024).unwrap();
        let mut expect = items;
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn key_rid_pairs_sort_composite() {
        let mut items: Vec<(Key, Rid)> = Vec::new();
        for i in (0..5000u64).rev() {
            items.push((i % 100, Rid::new(i as u32, (i % 5) as u16)));
        }
        let (sorted, _) = sort_all(pool(), items.clone(), 16 * 1024).unwrap();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sorted.len(), items.len());
    }

    #[test]
    fn by_rid_orders_by_rid_first() {
        let items = vec![
            ByRid(Rid::new(5, 0), 1),
            ByRid(Rid::new(1, 2), 9),
            ByRid(Rid::new(1, 1), 3),
        ];
        let (sorted, _) = sort_all(pool(), items, 1 << 16).unwrap();
        let rids: Vec<Rid> = sorted.iter().map(|b| b.0).collect();
        assert_eq!(rids, vec![Rid::new(1, 1), Rid::new(1, 2), Rid::new(5, 0)]);
    }

    #[test]
    fn empty_input() {
        let (sorted, stats) = sort_all::<u64>(pool(), [], 1024).unwrap();
        assert!(sorted.is_empty());
        assert_eq!(stats.items, 0);
    }

    #[test]
    fn spilling_sort_frees_every_temp_page() {
        use bd_storage::StructureId;
        let p = pool();
        let items = pseudo_random(50_000, 42);
        let (sorted, stats) = sort_all(p.clone(), items, 64 * 1024).unwrap();
        assert!(stats.runs >= 6, "must actually spill: {stats:?}");
        assert_eq!(sorted.len(), 50_000);
        assert!(
            p.catalog().pages_of(StructureId::Temp).is_empty(),
            "spilled sort runs must not leak Temp pages"
        );
    }

    #[test]
    fn multi_pass_merge_frees_intermediate_runs() {
        use bd_storage::StructureId;
        let p = pool();
        let items = pseudo_random(200_000, 3);
        let (_, stats) = sort_all(p.clone(), items, 64 * 1024).unwrap();
        assert!(stats.merge_passes > 0, "{stats:?}");
        assert!(
            p.catalog().pages_of(StructureId::Temp).is_empty(),
            "intermediate merge runs must be freed as they are drained"
        );
    }

    #[test]
    fn dropped_stream_frees_unconsumed_runs() {
        use bd_storage::StructureId;
        let p = pool();
        let mut sorter = ExternalSorter::new(p.clone(), 64 * 1024);
        sorter.extend(pseudo_random(50_000, 11)).unwrap();
        let (mut stream, stats) = sorter.finish().unwrap();
        assert!(stats.runs >= 2);
        // Consume a few items, then abandon the stream mid-merge.
        for _ in 0..10 {
            let _ = stream.next();
        }
        drop(stream);
        assert!(
            p.catalog().pages_of(StructureId::Temp).is_empty(),
            "an abandoned merge must free its runs"
        );
    }

    #[test]
    fn abandoned_sorter_frees_spilled_runs() {
        use bd_storage::StructureId;
        let p = pool();
        let mut sorter = ExternalSorter::new(p.clone(), 64 * 1024);
        sorter.extend(pseudo_random(30_000, 13)).unwrap();
        assert!(!p.catalog().pages_of(StructureId::Temp).is_empty());
        drop(sorter);
        assert!(
            p.catalog().pages_of(StructureId::Temp).is_empty(),
            "a sorter dropped before finish() must free its spills"
        );
    }

    #[test]
    fn spill_io_is_sequential() {
        let p = pool();
        p.reset_stats();
        let items = pseudo_random(100_000, 5);
        let _ = sort_all(p.clone(), items, 64 * 1024).unwrap();
        let s = p.disk_stats();
        assert!(
            s.total_random() * 4 <= s.total_ios(),
            "sort spill should be mostly chained: {s:?}"
        );
    }
}
