//! Byte-accounted hash workspaces for the hash-based `⋈̄` plans.
//!
//! The classic-hash plan (Fig. 4) "is particularly attractive if the hash
//! table really fits into physical main memory; in fact, it is only
//! necessary that the RIDs (without any keys) fit into main memory".
//! [`RidSet`] is that structure: a RID hash set whose construction reserves
//! its footprint against a [`MemoryBudget`], so the optimizer's fits-in-
//! memory decision is enforced rather than assumed.

use std::collections::HashSet;

use bd_storage::budget::Reservation;
use bd_storage::{MemoryBudget, Rid, StorageResult};

use bd_btree::Key;

/// Estimated bytes per RID entry in a hash set (payload + table overhead).
pub const BYTES_PER_RID: usize = 24;

/// Estimated bytes per `(key, rid)` entry in a hash set.
pub const BYTES_PER_ENTRY: usize = 32;

/// Footprint a [`RidSet`] over `n` RIDs will reserve.
pub fn rid_set_bytes(n: usize) -> usize {
    n * BYTES_PER_RID
}

/// A RID hash set holding a budget reservation for its lifetime.
#[derive(Debug)]
pub struct RidSet<'a> {
    set: HashSet<Rid>,
    _reservation: Reservation<'a>,
}

impl<'a> RidSet<'a> {
    /// Build from an iterator of RIDs, reserving against `budget`.
    pub fn build(
        budget: &'a MemoryBudget,
        rids: impl IntoIterator<Item = Rid>,
    ) -> StorageResult<Self> {
        let set: HashSet<Rid> = rids.into_iter().collect();
        let reservation = budget.reserve(rid_set_bytes(set.len()))?;
        Ok(RidSet {
            set,
            _reservation: reservation,
        })
    }

    /// Membership probe.
    pub fn contains(&self, rid: Rid) -> bool {
        self.set.contains(&rid)
    }

    /// Number of RIDs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Access the raw set (for handing to index-side probe operators).
    pub fn as_set(&self) -> &HashSet<Rid> {
        &self.set
    }
}

/// A `(key, rid)` hash set with budget accounting — the key-predicate probe
/// workspace (§2.1's alternative primary ⋈̄ predicate).
pub struct EntrySet<'a> {
    set: HashSet<(Key, Rid)>,
    _reservation: Reservation<'a>,
}

impl<'a> EntrySet<'a> {
    /// Build from an iterator of entries, reserving against `budget`.
    pub fn build(
        budget: &'a MemoryBudget,
        entries: impl IntoIterator<Item = (Key, Rid)>,
    ) -> StorageResult<Self> {
        let set: HashSet<(Key, Rid)> = entries.into_iter().collect();
        let reservation = budget.reserve(set.len() * BYTES_PER_ENTRY)?;
        Ok(EntrySet {
            set,
            _reservation: reservation,
        })
    }

    /// Membership probe.
    pub fn contains(&self, key: Key, rid: Rid) -> bool {
        self.set.contains(&(key, rid))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::StorageError;

    #[test]
    fn rid_set_probes() {
        let budget = MemoryBudget::new(1 << 20);
        let rids = [Rid::new(1, 0), Rid::new(2, 3)];
        let set = RidSet::build(&budget, rids).unwrap();
        assert!(set.contains(Rid::new(1, 0)));
        assert!(!set.contains(Rid::new(1, 1)));
        assert_eq!(set.len(), 2);
        assert_eq!(budget.used(), rid_set_bytes(2));
    }

    #[test]
    fn rid_set_respects_budget() {
        let budget = MemoryBudget::new(10 * BYTES_PER_RID);
        let rids: Vec<Rid> = (0..11u32).map(|i| Rid::new(i, 0)).collect();
        let err = RidSet::build(&budget, rids).unwrap_err();
        assert!(matches!(err, StorageError::BudgetExceeded { .. }));
        // Nothing leaks on failure.
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn releasing_set_frees_budget() {
        let budget = MemoryBudget::new(1 << 16);
        {
            let _set = RidSet::build(&budget, (0..100u32).map(|i| Rid::new(i, 0))).unwrap();
            assert!(budget.used() > 0);
        }
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn entry_set_probes_composite() {
        let budget = MemoryBudget::new(1 << 20);
        let set = EntrySet::build(&budget, [(7u64, Rid::new(1, 0))]).unwrap();
        assert!(set.contains(7, Rid::new(1, 0)));
        assert!(!set.contains(7, Rid::new(1, 1)));
        assert!(!set.contains(8, Rid::new(1, 0)));
    }

    #[test]
    fn duplicate_rids_counted_once() {
        let budget = MemoryBudget::new(1 << 20);
        let rids = vec![Rid::new(1, 0); 50];
        let set = RidSet::build(&budget, rids).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(budget.used(), rid_set_bytes(1));
    }
}
