//! Slotted page layout for heap pages.
//!
//! Layout:
//!
//! ```text
//! 0..2   n_slots   (u16)  number of slot directory entries (incl. empty)
//! 2..4   free_end  (u16)  offset where the record area begins (grows down)
//! 4..    slot directory: per slot [offset u16][len u16]; len == 0 => empty
//! ...    free space
//! ...    records, packed from the page end downwards
//! ```
//!
//! Deleting a record only clears its slot (len = 0); record bytes stay until
//! [`SlottedPage::compact`] runs. Slot numbers are stable across unrelated
//! deletions, which is what keeps RIDs valid.

use crate::disk::PAGE_SIZE;
use crate::error::{StorageError, StorageResult};
use crate::page::{get_u16, put_u16};

const HDR: usize = 4;
const SLOT: usize = 4;

/// Mutable view of a page interpreted as a slotted page.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Interpret an existing page (zeroed pages are valid empty slotted
    /// pages except `free_end`, which [`SlottedPage::init`] must set).
    pub fn new(buf: &'a mut [u8]) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        SlottedPage { buf }
    }

    /// Format the page as an empty slotted page.
    pub fn init(buf: &'a mut [u8]) -> Self {
        let mut p = SlottedPage::new(buf);
        p.set_n_slots(0);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    fn n_slots(&self) -> usize {
        get_u16(self.buf, 0) as usize
    }

    fn set_n_slots(&mut self, n: u16) {
        put_u16(self.buf, 0, n);
    }

    fn free_end(&self) -> usize {
        get_u16(self.buf, 2) as usize
    }

    fn set_free_end(&mut self, v: u16) {
        put_u16(self.buf, 2, v);
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let base = HDR + i * SLOT;
        (
            get_u16(self.buf, base) as usize,
            get_u16(self.buf, base + 2) as usize,
        )
    }

    fn set_slot(&mut self, i: usize, off: usize, len: usize) {
        let base = HDR + i * SLOT;
        put_u16(self.buf, base, off as u16);
        put_u16(self.buf, base + 2, len as u16);
    }

    /// Number of live (non-deleted) records.
    pub fn live_records(&self) -> usize {
        (0..self.n_slots()).filter(|&i| self.slot(i).1 != 0).count()
    }

    /// Number of slot directory entries, including empty ones.
    pub fn slot_count(&self) -> usize {
        self.n_slots()
    }

    /// Contiguous free bytes between the slot directory and the record area.
    pub fn contiguous_free(&self) -> usize {
        self.free_end() - (HDR + self.n_slots() * SLOT)
    }

    /// Free bytes available after a hypothetical compaction (counts holes
    /// left by deleted records).
    pub fn usable_free(&self) -> usize {
        let live: usize = (0..self.n_slots()).map(|i| self.slot(i).1).sum();
        PAGE_SIZE - HDR - self.n_slots() * SLOT - live
    }

    /// Largest record insertable into a fresh page.
    pub fn max_record_len() -> usize {
        PAGE_SIZE - HDR - SLOT
    }

    fn find_empty_slot(&self) -> Option<usize> {
        (0..self.n_slots()).find(|&i| self.slot(i).1 == 0)
    }

    /// Insert a record, reusing an empty slot if one exists. Returns the
    /// slot number. Compacts the page if fragmentation is the only obstacle.
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<u16> {
        if record.is_empty() || record.len() > Self::max_record_len() {
            return Err(StorageError::RecordTooLarge {
                len: record.len(),
                max: Self::max_record_len(),
            });
        }
        let reuse = self.find_empty_slot();
        let dir_growth = if reuse.is_some() { 0 } else { SLOT };
        if record.len() + dir_growth > self.usable_free() {
            return Err(StorageError::PageFull);
        }
        if record.len() + dir_growth > self.contiguous_free() {
            self.compact();
        }
        let off = self.free_end() - record.len();
        self.buf[off..off + record.len()].copy_from_slice(record);
        self.set_free_end(off as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.n_slots();
                self.set_n_slots(s as u16 + 1);
                s
            }
        };
        self.set_slot(slot, off, record.len());
        Ok(slot as u16)
    }

    /// Read the record in `slot`.
    pub fn get(&self, slot: u16) -> StorageResult<&[u8]> {
        let i = slot as usize;
        if i >= self.n_slots() {
            return Err(StorageError::SlotOutOfBounds(crate::rid::Rid::new(0, slot)));
        }
        let (off, len) = self.slot(i);
        if len == 0 {
            return Err(StorageError::SlotEmpty(crate::rid::Rid::new(0, slot)));
        }
        Ok(&self.buf[off..off + len])
    }

    /// Delete the record in `slot`, returning its bytes.
    pub fn delete(&mut self, slot: u16) -> StorageResult<Vec<u8>> {
        let bytes = self.get(slot)?.to_vec();
        self.set_slot(slot as usize, 0, 0);
        Ok(bytes)
    }

    /// Overwrite a live record with same-length bytes, in place.
    pub fn overwrite(&mut self, slot: u16, record: &[u8]) -> StorageResult<()> {
        let i = slot as usize;
        if i >= self.n_slots() {
            return Err(StorageError::SlotOutOfBounds(crate::rid::Rid::new(0, slot)));
        }
        let (off, len) = self.slot(i);
        if len == 0 {
            return Err(StorageError::SlotEmpty(crate::rid::Rid::new(0, slot)));
        }
        assert_eq!(len, record.len(), "overwrite requires equal length");
        self.buf[off..off + len].copy_from_slice(record);
        Ok(())
    }

    /// True if `slot` currently holds a record.
    pub fn is_live(&self, slot: u16) -> bool {
        let i = slot as usize;
        i < self.n_slots() && self.slot(i).1 != 0
    }

    /// Move all live records to the end of the page, eliminating holes.
    /// Slot numbers are unchanged.
    pub fn compact(&mut self) {
        let n = self.n_slots();
        let mut live: Vec<(usize, usize, usize)> = (0..n)
            .filter_map(|i| {
                let (off, len) = self.slot(i);
                (len != 0).then_some((i, off, len))
            })
            .collect();
        // Repack from the page end in descending offset order so moves never
        // overwrite bytes that are still needed.
        live.sort_by_key(|&(_, off, _)| std::cmp::Reverse(off));
        let mut end = PAGE_SIZE;
        for (i, off, len) in live {
            end -= len;
            self.buf.copy_within(off..off + len, end);
            self.set_slot(i, end, len);
        }
        self.set_free_end(end as u16);
    }

    /// Destroy every byte the page holds that no live record covers: zero
    /// each gap between the slot directory and the page end that no live
    /// record extent claims. Deleting a record only clears its slot entry,
    /// and [`SlottedPage::compact`] leaves stale images behind in vacated
    /// areas — after this pass the only record bytes on the page belong to
    /// live records. Returns how many (non-zero) bytes were zeroed.
    ///
    /// Deliberately **non-moving**: live records stay at their offsets, so
    /// the scrubbed image differs from the pre-scrub image only in dead
    /// bytes. A torn write of a scrub (half old, half new) therefore still
    /// yields a logically identical page — crash recovery just re-runs the
    /// scrub — whereas a torn compaction could leave a live record
    /// half-moved and unrecoverable.
    pub fn scrub(&mut self) -> usize {
        let n = self.n_slots();
        let mut live: Vec<(usize, usize)> = (0..n)
            .filter_map(|i| {
                let (off, len) = self.slot(i);
                (len != 0).then_some((off, len))
            })
            .collect();
        live.sort_unstable();
        let mut dirty = 0;
        let mut pos = HDR + n * SLOT;
        let mut zero_gap = |buf: &mut [u8], a: usize, b: usize| {
            if a < b {
                dirty += buf[a..b].iter().filter(|&&x| x != 0).count();
                buf[a..b].fill(0);
            }
        };
        for (off, len) in live {
            zero_gap(self.buf, pos, off.max(pos));
            pos = pos.max(off + len);
        }
        zero_gap(self.buf, pos, PAGE_SIZE);
        dirty
    }
}

/// Read-only access to a slotted page image (no `&mut` required).
pub mod read {
    use super::{HDR, SLOT};
    use crate::error::{StorageError, StorageResult};
    use crate::page::get_u16;
    use crate::rid::Rid;

    /// Number of slot directory entries, including empty ones.
    pub fn slot_count(buf: &[u8]) -> usize {
        get_u16(buf, 0) as usize
    }

    /// True if `slot` holds a record.
    pub fn is_live(buf: &[u8], slot: u16) -> bool {
        let i = slot as usize;
        i < slot_count(buf) && get_u16(buf, HDR + i * SLOT + 2) != 0
    }

    /// Record bytes in `slot`.
    pub fn get(buf: &[u8], slot: u16) -> StorageResult<&[u8]> {
        let i = slot as usize;
        if i >= slot_count(buf) {
            return Err(StorageError::SlotOutOfBounds(Rid::new(0, slot)));
        }
        let off = get_u16(buf, HDR + i * SLOT) as usize;
        let len = get_u16(buf, HDR + i * SLOT + 2) as usize;
        if len == 0 {
            return Err(StorageError::SlotEmpty(Rid::new(0, slot)));
        }
        Ok(&buf[off..off + len])
    }

    /// Number of live records on the page.
    pub fn live_records(buf: &[u8]) -> usize {
        (0..slot_count(buf) as u16)
            .filter(|&s| is_live(buf, s))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed;

    #[test]
    fn read_module_matches_mut_view() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"beta").unwrap();
        p.delete(a).unwrap();
        assert_eq!(read::slot_count(&buf[..]), 2);
        assert!(!read::is_live(&buf[..], a));
        assert!(read::is_live(&buf[..], b));
        assert_eq!(read::get(&buf[..], b).unwrap(), b"beta");
        assert!(read::get(&buf[..], a).is_err());
        assert_eq!(read::live_records(&buf[..]), 1);
    }

    #[test]
    fn insert_get_delete() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.delete(a).unwrap(), b"hello");
        assert!(matches!(p.get(a), Err(StorageError::SlotEmpty(_))));
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.live_records(), 1);
    }

    #[test]
    fn deleted_slot_is_reused() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let a = p.insert(b"one").unwrap();
        let _b = p.insert(b"two").unwrap();
        p.delete(a).unwrap();
        let c = p.insert(b"three").unwrap();
        assert_eq!(c, a, "empty slot should be reused");
        assert_eq!(p.get(c).unwrap(), b"three");
    }

    #[test]
    fn fills_with_fixed_records_then_reports_full() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let rec = [0xABu8; 512];
        let mut n = 0;
        while p.insert(&rec).is_ok() {
            n += 1;
        }
        // 4096 bytes: header 4 + n*(4 slot + 512 record) => 7 records.
        assert_eq!(n, 7);
        assert!(matches!(p.insert(&rec), Err(StorageError::PageFull)));
    }

    #[test]
    fn compaction_recovers_holes() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let rec = [1u8; 512];
        let mut slots = Vec::new();
        while let Ok(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Delete every other record, then a 1000-byte record only fits after
        // compaction (contiguous free is fragmented).
        for &s in slots.iter().step_by(2) {
            p.delete(s).unwrap();
        }
        let big = [2u8; 1000];
        let s = p.insert(&big).unwrap();
        assert_eq!(p.get(s).unwrap(), &big[..]);
        // Remaining odd-slot records survived compaction intact.
        for &s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn scrub_destroys_deleted_record_bytes() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let secret = [0xEEu8; 64];
        let keeper = [0x11u8; 64];
        let s = p.insert(&secret).unwrap();
        let k = p.insert(&keeper).unwrap();
        p.delete(s).unwrap();
        // The deleted record's bytes are still physically on the page.
        assert!(buf.windows(64).any(|w| w == secret));
        let mut p = SlottedPage::new(&mut buf[..]);
        let zeroed_bytes = p.scrub();
        assert!(zeroed_bytes >= 64, "zeroed {zeroed_bytes}");
        assert!(
            !buf.windows(8).any(|w| w == &secret[..8]),
            "secret bytes survive scrub"
        );
        let p = SlottedPage::new(&mut buf[..]);
        assert_eq!(p.get(k).unwrap(), &keeper[..], "live record intact");
        assert_eq!(p.live_records(), 1);
        // Second scrub finds nothing left to zero.
        let mut p = SlottedPage::new(&mut buf[..]);
        assert_eq!(p.scrub(), 0);
    }

    #[test]
    fn scrub_zeroes_holes_without_moving_live_records() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let secret = [0xD7u8; 512];
        let mut slots = Vec::new();
        for _ in 0..7 {
            slots.push(p.insert(&secret).unwrap());
        }
        for &s in &slots[..6] {
            p.delete(s).unwrap();
        }
        let live = *slots.last().unwrap();
        let live_off = {
            let p = SlottedPage::new(&mut buf[..]);
            let rec = p.get(live).unwrap();
            rec.as_ptr() as usize
        };
        let mut p = SlottedPage::new(&mut buf[..]);
        p.scrub();
        let occurrences = buf.windows(16).filter(|w| *w == &secret[..16]).count();
        // Only the single live record's interior windows remain.
        assert!(occurrences <= 512 - 15, "stale copies remain");
        // Non-moving: the survivor is still at its original offset, and
        // every byte outside the directory and that extent is zero.
        let off = live_off - buf.as_ptr() as usize;
        assert_eq!(off, PAGE_SIZE - 7 * 512);
        let p = SlottedPage::new(&mut buf[..]);
        assert_eq!(p.get(live).unwrap(), &secret[..]);
        for (i, &b) in buf.iter().enumerate() {
            let in_dir = i < HDR + slots.len() * SLOT;
            let in_live = (off..off + 512).contains(&i);
            assert!(in_dir || in_live || b == 0, "byte {i} not scrubbed");
        }
    }

    #[test]
    fn oversized_record_rejected() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let too_big = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&too_big),
            Err(StorageError::RecordTooLarge { .. })
        ));
        assert!(matches!(
            p.insert(&[]),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn overwrite_replaces_in_place() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let a = p.insert(b"aaaa").unwrap();
        let b = p.insert(b"bbbb").unwrap();
        p.overwrite(a, b"AAAA").unwrap();
        assert_eq!(p.get(a).unwrap(), b"AAAA");
        assert_eq!(p.get(b).unwrap(), b"bbbb");
        // Deleted and out-of-range slots are rejected.
        p.delete(a).unwrap();
        assert!(matches!(
            p.overwrite(a, b"XXXX"),
            Err(StorageError::SlotEmpty(_))
        ));
        assert!(matches!(
            p.overwrite(99, b"XXXX"),
            Err(StorageError::SlotOutOfBounds(_))
        ));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn overwrite_length_mismatch_panics() {
        let mut buf = zeroed();
        let mut p = SlottedPage::init(&mut buf[..]);
        let a = p.insert(b"aaaa").unwrap();
        let _ = p.overwrite(a, b"toolong");
    }

    #[test]
    fn out_of_bounds_slot() {
        let mut buf = zeroed();
        let p = SlottedPage::init(&mut buf[..]);
        assert!(matches!(p.get(99), Err(StorageError::SlotOutOfBounds(_))));
    }
}
