//! Simulated disk with a seek/rotation/transfer cost model.
//!
//! The unit of transfer is a 4 KiB page, matching the paper's prototype
//! ("The page size for tables and indices is 4096 bytes"). The simulator
//! keeps an explicit head position: an access to the page following the head
//! is *sequential* and pays transfer time only; any other access is *random*
//! and additionally pays average seek plus average rotational latency.
//! Multi-page chained reads ("chained I/O ... to read chunks of several
//! pages from disk", §4.1) pay one positioning cost for the whole chunk.
//!
//! The default [`CostModel`] approximates the paper's 1998-era 7200 rpm
//! Seagate Medialist Pro: 8 ms average seek, 4.17 ms average rotational
//! latency (half a revolution at 7200 rpm), and 0.4 ms to transfer one 4 KiB
//! page (~10 MB/s sustained).

use std::collections::BTreeSet;

use crate::error::{StorageError, StorageResult};
use crate::fault::{FaultOp, FaultOutcome, FaultPlan};
use crate::owner::{PageCatalog, StructureId};

/// Size of one disk page in bytes.
pub const PAGE_SIZE: usize = 4096;

use crate::page::checksum as page_checksum;

/// Checksum of an all-zero (freshly allocated) page.
const ZERO_PAGE_CK: u32 = page_checksum(&[0u8; PAGE_SIZE]);

/// Identifier of a page on the simulated disk.
pub type PageId = u32;

/// Cost model charged by [`SimDisk`] for each page access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Average seek time in milliseconds, charged once per random access.
    pub seek_ms: f64,
    /// Average rotational latency in milliseconds, charged once per random
    /// access.
    pub rotation_ms: f64,
    /// Transfer time for one page in milliseconds, charged for every page.
    pub transfer_ms: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seek_ms: 8.0,
            rotation_ms: 4.17,
            transfer_ms: 0.4,
        }
    }
}

impl CostModel {
    /// A cost model where every access costs the same (useful to isolate
    /// algorithmic page counts from locality effects in ablations).
    pub fn flat(ms_per_page: f64) -> Self {
        CostModel {
            seek_ms: 0.0,
            rotation_ms: 0.0,
            transfer_ms: ms_per_page,
        }
    }

    /// Positioning cost (seek + rotation) of one random access.
    pub fn positioning_ms(&self) -> f64 {
        self.seek_ms + self.rotation_ms
    }
}

/// Counters accumulated by the simulated disk.
///
/// `random_*` counts positioning operations; `pages_read`/`pages_written`
/// count transferred pages (a chained read of 8 pages is one random read and
/// eight pages read).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskStats {
    /// Read accesses that required repositioning the head.
    pub random_reads: u64,
    /// Read accesses that continued at the head position.
    pub sequential_reads: u64,
    /// Write accesses that required repositioning the head.
    pub random_writes: u64,
    /// Write accesses that continued at the head position.
    pub sequential_writes: u64,
    /// Total pages transferred by reads.
    pub pages_read: u64,
    /// Total pages transferred by writes.
    pub pages_written: u64,
    /// Accesses re-issued by the buffer pool after a transient fault.
    pub retries: u64,
    /// Mirror writes to the replica copy (one per acknowledged write access
    /// while replicas are enabled). Charged separately from the primary
    /// counters: the replica lives on independent media, so its positioning
    /// and transfer time are real.
    pub replica_writes: u64,
    /// Accumulated simulated time in milliseconds.
    pub sim_ms: f64,
}

impl DiskStats {
    /// Add `other`'s counters into `self` (shard merging, scope roll-up).
    pub fn merge(&mut self, other: &DiskStats) {
        self.random_reads += other.random_reads;
        self.sequential_reads += other.sequential_reads;
        self.random_writes += other.random_writes;
        self.sequential_writes += other.sequential_writes;
        self.pages_read += other.pages_read;
        self.pages_written += other.pages_written;
        self.retries += other.retries;
        self.replica_writes += other.replica_writes;
        self.sim_ms += other.sim_ms;
    }

    /// Stats accumulated since `earlier` was captured.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            random_reads: self.random_reads - earlier.random_reads,
            sequential_reads: self.sequential_reads - earlier.sequential_reads,
            random_writes: self.random_writes - earlier.random_writes,
            sequential_writes: self.sequential_writes - earlier.sequential_writes,
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            retries: self.retries - earlier.retries,
            replica_writes: self.replica_writes - earlier.replica_writes,
            sim_ms: self.sim_ms - earlier.sim_ms,
        }
    }

    /// Total page transfers in both directions.
    pub fn total_ios(&self) -> u64 {
        self.pages_read + self.pages_written
    }

    /// Total positioning operations (random accesses).
    pub fn total_random(&self) -> u64 {
        self.random_reads + self.random_writes
    }
}

/// In-memory page store that charges a [`CostModel`] per access.
///
/// The simulator mimics *direct I/O* (the paper disables the OS cache): every
/// read and write issued against it is charged; caching is the buffer pool's
/// job.
pub struct SimDisk {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Checksum of each page's last acknowledged content (the disk's
    /// end-to-end integrity metadata; torn writes leave it pointing at the
    /// *intended* image so the corruption surfaces on the next read).
    checksums: Vec<u32>,
    /// Optional second physical copy of every page (a software mirror).
    /// Each write lands intact on the replica even when the primary copy
    /// tears — the model assumes independent media failures, so a single
    /// torn write never hits both copies.
    replicas: Option<Vec<Box<[u8; PAGE_SIZE]>>>,
    /// Page the head would read next without repositioning.
    head: Option<PageId>,
    /// Page → owner map, maintained on every allocate/free. Disk metadata:
    /// survives buffer-pool crashes (frame caches are volatile, the catalog
    /// is not) and is what media recovery consults to classify torn pages.
    catalog: PageCatalog,
    /// Free pages that have been durably zeroed by [`SimDisk::reclaim_page`]
    /// and may be handed out again by the allocator. A catalog-free page
    /// *not* in this set is quarantined: its stale bytes may still sit in a
    /// live sibling chain (free-at-empty detaches lazily), so the
    /// maintenance daemon must reclaim it explicitly before reuse. Disk
    /// metadata like the catalog: survives buffer-pool crashes (the zeroing
    /// write is durable the instant it is acknowledged).
    reusable: BTreeSet<PageId>,
    cost: CostModel,
    stats: DiskStats,
    /// Programmed faults and crash point.
    plan: FaultPlan,
    /// Accesses issued so far (each read/write/chain call is one access,
    /// counted whether or not it succeeds).
    accesses: u64,
}

impl SimDisk {
    /// Create an empty disk with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        SimDisk {
            pages: Vec::new(),
            checksums: Vec::new(),
            replicas: None,
            head: None,
            catalog: PageCatalog::new(),
            reusable: BTreeSet::new(),
            cost,
            stats: DiskStats::default(),
            plan: FaultPlan::default(),
            accesses: 0,
        }
    }

    /// Install a programmed [`FaultPlan`], replacing any previous one.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Remove every programmed fault and crash point.
    pub fn clear_fault_plan(&mut self) {
        self.plan = FaultPlan::default();
    }

    /// Disk accesses issued so far (1-based access numbers; failed and
    /// crashed accesses count too). The crash-at-every-I/O campaign sweeps
    /// its crash point over this counter.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Evaluate the fault plan for one access, translating outcomes into
    /// errors. Returns `Ok(true)` when the access should proceed but
    /// persist the page image only partially (torn write).
    fn faulted(&mut self, op: FaultOp, first: PageId, n: u32) -> StorageResult<Option<PageId>> {
        self.accesses += 1;
        match self.plan.evaluate(op, first, n, self.accesses) {
            None => Ok(None),
            Some(FaultOutcome::Torn(pid)) => Ok(Some(pid)),
            Some(FaultOutcome::Fail(pid)) => Err(StorageError::InjectedFault(pid)),
            Some(FaultOutcome::Crash) => Err(StorageError::SimulatedCrash),
        }
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Allocate one zeroed page to `owner` and return its id. The allocator
    /// prefers a recycled page (zeroed by [`SimDisk::reclaim_page`], lowest
    /// id first) and only extends the file when the reusable set is empty.
    /// Allocation itself is free; the contents are charged when they are
    /// first written. The owner is recorded in the page catalog.
    pub fn allocate(&mut self, owner: StructureId) -> PageId {
        if let Some(&pid) = self.reusable.iter().next() {
            self.reusable.remove(&pid);
            self.catalog.set_owner(pid, owner);
            return pid;
        }
        let pid = self.pages.len() as PageId;
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        self.checksums.push(ZERO_PAGE_CK);
        if let Some(reps) = &mut self.replicas {
            reps.push(Box::new([0u8; PAGE_SIZE]));
        }
        self.catalog.note_alloc(pid, 1, owner);
        pid
    }

    /// Allocate `n` contiguous zeroed pages to `owner`, returning the first
    /// id. A run of `n` consecutive recycled pages is reused when one
    /// exists (extents stay physically contiguous either way, which is what
    /// the chained-I/O cost model rewards); otherwise the file is extended.
    pub fn allocate_contiguous(&mut self, n: usize, owner: StructureId) -> PageId {
        if n > 0 {
            if let Some(first) = self.find_reusable_run(n) {
                for pid in first..first + n as PageId {
                    self.reusable.remove(&pid);
                    self.catalog.set_owner(pid, owner);
                }
                return first;
            }
        }
        let first = self.pages.len() as PageId;
        for _ in 0..n {
            self.pages.push(Box::new([0u8; PAGE_SIZE]));
            self.checksums.push(ZERO_PAGE_CK);
            if let Some(reps) = &mut self.replicas {
                reps.push(Box::new([0u8; PAGE_SIZE]));
            }
        }
        self.catalog.note_alloc(first, n, owner);
        first
    }

    /// First page of the lowest run of `n` consecutive reusable pages, if
    /// any.
    fn find_reusable_run(&self, n: usize) -> Option<PageId> {
        let mut start = None;
        let mut len = 0usize;
        let mut prev: Option<PageId> = None;
        for &pid in &self.reusable {
            if prev.map(|p| p + 1) == Some(pid) {
                len += 1;
            } else {
                start = Some(pid);
                len = 1;
            }
            prev = Some(pid);
            if len == n {
                return start;
            }
        }
        None
    }

    /// Move a page to the catalog's free set. The page's primary bytes stay
    /// readable — a detached B-link leaf may still sit in a live sibling
    /// chain — so the page is *quarantined*, not yet reusable: the
    /// allocator only recycles it after [`SimDisk::reclaim_page`] has
    /// durably zeroed it. The replica mirror is cleared immediately: a
    /// freed page needs no repair copy, and keeping one would let the
    /// mirror resurrect key images the owner just discarded (`drop_index`,
    /// free-at-empty, rebuilds). Media recovery heals a torn free page
    /// without rebuilding anything.
    pub fn free_page(&mut self, pid: PageId) {
        self.catalog.free(pid);
        self.clear_replica_of(pid);
    }

    /// Zero a quarantined free page and make it reusable by the allocator.
    ///
    /// Returns `Ok(true)` when the page was reclaimed by this call,
    /// `Ok(false)` when there was nothing to do (the page is owned again —
    /// e.g. re-owned by recovery reconciliation — or already reusable).
    /// The zeroing is a real charged write that goes through the fault
    /// plan, so crash and torn-write campaigns sweep over reclaims too; on
    /// a torn zeroing the page stays quarantined (not reusable) and is
    /// simply re-reclaimed by the next maintenance pass. Zero-on-reclaim is
    /// what keeps erasure proofs valid across recycling: a reusable page
    /// never carries prior contents, so a recycled page can never leak
    /// erased values.
    ///
    /// Callers must only reclaim pages no structure can still reach through
    /// a stale chain pointer (an all-zero page decodes as a leaf whose
    /// right sibling is page 0). The maintenance daemon guarantees this by
    /// reclaiming a snapshot of the free set only after a full packing pass
    /// has rewritten the sibling chains.
    pub fn reclaim_page(&mut self, pid: PageId) -> StorageResult<bool> {
        self.check(pid)?;
        if self.catalog.owner(pid).is_some() || self.reusable.contains(&pid) {
            return Ok(false);
        }
        self.write(pid, &[0u8; PAGE_SIZE])?;
        // A torn zeroing is acknowledged but persists only half the image:
        // the platter still holds prior bytes, so the page must stay
        // quarantined (media recovery heals the tear, the next pass
        // re-reclaims).
        if self.pages[pid as usize].iter().any(|&b| b != 0) {
            return Ok(false);
        }
        self.reusable.insert(pid);
        Ok(true)
    }

    /// Catalog-free pages that are still quarantined (freed but not yet
    /// zeroed by [`SimDisk::reclaim_page`]), ascending.
    pub fn reclaimable_pages(&self) -> Vec<PageId> {
        self.catalog
            .free_pages()
            .into_iter()
            .filter(|pid| !self.reusable.contains(pid))
            .collect()
    }

    /// Number of zeroed pages the allocator can recycle.
    pub fn n_reusable(&self) -> usize {
        self.reusable.len()
    }

    /// Free every page currently owned by `owner` (dropping an index,
    /// discarding a damaged structure before its rebuild). Returns the
    /// freed page ids. Replica mirrors of the freed pages are cleared, as
    /// in [`SimDisk::free_page`].
    pub fn free_owned(&mut self, owner: StructureId) -> Vec<PageId> {
        let pages = self.catalog.pages_of(owner);
        for &pid in &pages {
            self.catalog.free(pid);
            self.clear_replica_of(pid);
        }
        pages
    }

    /// Zero the replica mirror of `pid` if replicas are enabled and the
    /// mirror holds anything. Charged as one mirror write — clearing is a
    /// real write to the replica device.
    fn clear_replica_of(&mut self, pid: PageId) {
        let dirty = match &mut self.replicas {
            Some(reps) if (pid as usize) < reps.len() => {
                let rep = &mut reps[pid as usize];
                let had_bytes = rep.iter().any(|&b| b != 0);
                if had_bytes {
                    rep.fill(0);
                }
                had_bytes
            }
            _ => false,
        };
        if dirty {
            self.charge_replica(1);
        }
    }

    /// The page → owner catalog.
    pub fn catalog(&self) -> &PageCatalog {
        &self.catalog
    }

    /// Force the catalog owner of `pid` (recovery reconciliation; see
    /// [`PageCatalog::set_owner`]).
    pub fn set_page_owner(&mut self, pid: PageId, owner: StructureId) {
        self.catalog.set_owner(pid, owner);
        self.reusable.remove(&pid);
    }

    /// Turn on per-page replicas: every page gains a second physical copy,
    /// seeded from the current primary image. From now on each acknowledged
    /// write also lands (intact) on the replica, so a torn primary can be
    /// repaired by [`SimDisk::recover_from_replica`]. Each mirror write is
    /// charged honestly as [`DiskStats::replica_writes`] — the replica is an
    /// independent device, so its positioning and transfer time are paid on
    /// top of the primary write.
    pub fn enable_replicas(&mut self) {
        if self.replicas.is_none() {
            self.replicas = Some(self.pages.clone());
        }
    }

    /// True when per-page replicas are enabled.
    pub fn replicas_enabled(&self) -> bool {
        self.replicas.is_some()
    }

    /// Repair a torn primary page from its replica: one charged random read
    /// of the mirror copy, verified against the acknowledged checksum, then
    /// copied over the primary image. Fails with
    /// [`StorageError::ChecksumMismatch`] when no replica exists or the
    /// replica is damaged too.
    pub fn recover_from_replica(&mut self, pid: PageId) -> StorageResult<()> {
        crate::io_scope::check_cancelled()?;
        self.check(pid)?;
        self.faulted(FaultOp::Read, pid, 1)?;
        // The replica lives at a different physical location: always pay
        // the positioning cost.
        self.head = None;
        self.charge(pid, 1, true);
        let Some(reps) = &self.replicas else {
            return Err(StorageError::ChecksumMismatch(pid));
        };
        let replica = &reps[pid as usize];
        if page_checksum(&replica[..]) != self.checksums[pid as usize] {
            return Err(StorageError::ChecksumMismatch(pid));
        }
        let img = *reps[pid as usize];
        self.pages[pid as usize].copy_from_slice(&img);
        Ok(())
    }

    fn charge(&mut self, first: PageId, n: u64, is_read: bool) {
        let sequential = self.head == Some(first);
        let mut delta = DiskStats::default();
        if !sequential {
            delta.sim_ms += self.cost.positioning_ms();
        }
        delta.sim_ms += self.cost.transfer_ms * n as f64;
        match (is_read, sequential) {
            (true, true) => delta.sequential_reads = 1,
            (true, false) => delta.random_reads = 1,
            (false, true) => delta.sequential_writes = 1,
            (false, false) => delta.random_writes = 1,
        }
        if is_read {
            delta.pages_read = n;
        } else {
            delta.pages_written = n;
        }
        self.stats.merge(&delta);
        crate::io_scope::record(&delta);
        self.head = Some(first + n as PageId);
    }

    /// Charge the mirror copy of an acknowledged write when replicas are
    /// enabled: one positioning (the replica is a separate device; its head
    /// is not modeled) plus the transfer, recorded as `replica_writes` so
    /// reports can separate mirror cost from primary I/O. The primary head
    /// position is untouched.
    fn charge_replica(&mut self, n: u64) {
        if self.replicas.is_none() {
            return;
        }
        let delta = DiskStats {
            replica_writes: n,
            sim_ms: self.cost.positioning_ms() + self.cost.transfer_ms * n as f64,
            ..DiskStats::default()
        };
        self.stats.merge(&delta);
        crate::io_scope::record(&delta);
    }

    fn check(&self, pid: PageId) -> StorageResult<()> {
        if (pid as usize) < self.pages.len() {
            Ok(())
        } else {
            Err(StorageError::PageOutOfBounds(pid))
        }
    }

    /// Verify the stored checksum of `pid` against its current content
    /// (detects torn writes at read time, like an end-to-end CRC).
    fn verify_checksum(&self, pid: PageId) -> StorageResult<()> {
        if page_checksum(&self.pages[pid as usize][..]) != self.checksums[pid as usize] {
            return Err(StorageError::ChecksumMismatch(pid));
        }
        Ok(())
    }

    /// Read one page into `dst`.
    pub fn read(&mut self, pid: PageId, dst: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        crate::io_scope::check_cancelled()?;
        self.check(pid)?;
        self.faulted(FaultOp::Read, pid, 1)?;
        self.charge(pid, 1, true);
        self.verify_checksum(pid)?;
        dst.copy_from_slice(&self.pages[pid as usize][..]);
        Ok(())
    }

    /// Chained read of `n` contiguous pages starting at `first`; the visitor
    /// receives each page in order. One positioning cost for the whole chain.
    pub fn read_chain(
        &mut self,
        first: PageId,
        n: usize,
        mut visit: impl FnMut(PageId, &[u8; PAGE_SIZE]),
    ) -> StorageResult<()> {
        if n == 0 {
            return Ok(());
        }
        crate::io_scope::check_cancelled()?;
        self.check(first + n as PageId - 1)?;
        self.faulted(FaultOp::Read, first, n as u32)?;
        self.charge(first, n as u64, true);
        for i in 0..n {
            self.verify_checksum(first + i as PageId)?;
        }
        for i in 0..n {
            let pid = first + i as PageId;
            visit(pid, &self.pages[pid as usize]);
        }
        Ok(())
    }

    /// Write one page.
    pub fn write(&mut self, pid: PageId, src: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        crate::io_scope::check_cancelled()?;
        self.check(pid)?;
        let torn = self.faulted(FaultOp::Write, pid, 1)?;
        self.charge(pid, 1, false);
        self.charge_replica(1);
        // The device acknowledges the full write (checksum of the intended
        // image), but a torn write persists only the first half.
        self.checksums[pid as usize] = page_checksum(src);
        let persisted = if torn.is_some() {
            PAGE_SIZE / 2
        } else {
            PAGE_SIZE
        };
        self.pages[pid as usize][..persisted].copy_from_slice(&src[..persisted]);
        if let Some(reps) = &mut self.replicas {
            // Independent media: the tear hits at most one copy, so the
            // replica always receives the intended image.
            reps[pid as usize].copy_from_slice(src);
        }
        Ok(())
    }

    /// Write `n` contiguous pages starting at `first` from the producer
    /// closure. One positioning cost for the whole chain.
    pub fn write_chain(
        &mut self,
        first: PageId,
        n: usize,
        mut produce: impl FnMut(PageId, &mut [u8; PAGE_SIZE]),
    ) -> StorageResult<()> {
        if n == 0 {
            return Ok(());
        }
        crate::io_scope::check_cancelled()?;
        self.check(first + n as PageId - 1)?;
        let torn = self.faulted(FaultOp::Write, first, n as u32)?;
        self.charge(first, n as u64, false);
        self.charge_replica(n as u64);
        for i in 0..n {
            let pid = first + i as PageId;
            let old_tail: Option<Vec<u8>> =
                (torn == Some(pid)).then(|| self.pages[pid as usize][PAGE_SIZE / 2..].to_vec());
            produce(pid, &mut self.pages[pid as usize]);
            self.checksums[pid as usize] = page_checksum(&self.pages[pid as usize][..]);
            if let Some(reps) = &mut self.replicas {
                // Mirror the intended image before the tear is applied to
                // the primary copy below.
                reps[pid as usize].copy_from_slice(&self.pages[pid as usize][..]);
            }
            if let Some(tail) = old_tail {
                // Tear the acknowledged image: the checksum covers the
                // intended content, but the tail never hits the platter.
                self.pages[pid as usize][PAGE_SIZE / 2..].copy_from_slice(&tail);
            }
        }
        Ok(())
    }

    /// Scrub pass: every page whose current image disagrees with its
    /// acknowledged checksum (a latent torn write). An out-of-band
    /// maintenance scan, not charged to the cost model.
    pub fn corrupt_pages(&self) -> Vec<PageId> {
        (0..self.pages.len() as PageId)
            .filter(|&pid| self.verify_checksum(pid).is_err())
            .collect()
    }

    /// Accept the current (possibly torn) image of `pid` as the page's
    /// content by rewriting its stored checksum — media recovery's first
    /// step, making the page readable again so the structure that owns it
    /// can be classified and rebuilt. Not charged (checksum metadata only).
    pub fn accept_torn_page(&mut self, pid: PageId) -> StorageResult<()> {
        self.check(pid)?;
        self.checksums[pid as usize] = page_checksum(&self.pages[pid as usize][..]);
        if let Some(reps) = &mut self.replicas {
            let img = *self.pages[pid as usize];
            reps[pid as usize].copy_from_slice(&img);
        }
        Ok(())
    }

    /// How many accesses the installed fault plan's programmed slots have
    /// hit so far (crash points excluded). See [`FaultPlan::fired`].
    pub fn fault_plan_fired(&self) -> u64 {
        self.plan.fired()
    }

    /// Forensic view of a page's current primary image: uncharged, no
    /// checksum verification, no head movement. This is the
    /// proof-of-deletion sweep's eye — it must see exactly what the platter
    /// holds, including torn or stale bytes a normal read would reject.
    pub fn peek(&self, pid: PageId) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(pid as usize).map(|p| &**p)
    }

    /// Forensic view of a page's replica mirror (None when replicas are
    /// disabled). Uncharged, like [`SimDisk::peek`].
    pub fn peek_replica(&self, pid: PageId) -> Option<&[u8; PAGE_SIZE]> {
        self.replicas
            .as_ref()
            .and_then(|reps| reps.get(pid as usize))
            .map(|p| &**p)
    }

    /// Overwrite `pid` with zeros on both copies: a charged write (plus the
    /// mirror charge) that destroys whatever the page held. The erasure
    /// campaign's free-page sweep uses this on pages nothing references any
    /// more; callers must drop any cached frame of the page afterwards.
    pub fn scrub_page(&mut self, pid: PageId) -> StorageResult<()> {
        self.write(pid, &[0u8; PAGE_SIZE])
    }

    /// Charge the simulated backoff of one buffer-pool retry: pure elapsed
    /// time (no transfer, no head movement), recorded in the stats and in
    /// every active [`IoScope`](crate::IoScope) so reports show retries
    /// honestly.
    pub fn charge_retry(&mut self, backoff_ms: f64) {
        let delta = DiskStats {
            retries: 1,
            sim_ms: backoff_ms,
            ..DiskStats::default()
        };
        self.stats.merge(&delta);
        crate::io_scope::record(&delta);
    }

    /// Snapshot of accumulated counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Reset counters (head position is kept).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Box<[u8; PAGE_SIZE]> {
        Box::new([byte; PAGE_SIZE])
    }

    #[test]
    fn roundtrip_single_page() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        d.write(pid, &page_of(7)).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        d.read(pid, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn out_of_bounds_is_error() {
        let mut d = SimDisk::new(CostModel::default());
        let mut buf = [0u8; PAGE_SIZE];
        assert_eq!(
            d.read(3, &mut buf).unwrap_err(),
            StorageError::PageOutOfBounds(3)
        );
    }

    #[test]
    fn sequential_access_is_cheaper_than_random() {
        let cost = CostModel::default();
        let mut d = SimDisk::new(cost);
        let first = d.allocate_contiguous(10, StructureId::Table);
        let mut buf = [0u8; PAGE_SIZE];
        // Sequential pass.
        for i in 0..10 {
            d.read(first + i, &mut buf).unwrap();
        }
        let seq = d.stats();
        assert_eq!(seq.random_reads, 1); // only the first access repositions
        assert_eq!(seq.sequential_reads, 9);
        d.reset_stats();
        // Random pass (stride 3 mod 10 visits all pages non-sequentially).
        for i in 0..10u32 {
            d.read(first + (i * 3) % 10, &mut buf).unwrap();
        }
        let rnd = d.stats();
        assert_eq!(rnd.random_reads + rnd.sequential_reads, 10);
        assert!(
            rnd.sim_ms > 3.0 * seq.sim_ms,
            "{} vs {}",
            rnd.sim_ms,
            seq.sim_ms
        );
    }

    #[test]
    fn chained_read_pays_one_positioning() {
        let mut d = SimDisk::new(CostModel::default());
        let first = d.allocate_contiguous(8, StructureId::Table);
        let mut seen = Vec::new();
        d.read_chain(first, 8, |pid, _| seen.push(pid)).unwrap();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        let s = d.stats();
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.pages_read, 8);
        let expected = CostModel::default().positioning_ms() + 8.0 * 0.4;
        assert!((s.sim_ms - expected).abs() < 1e-9);
    }

    #[test]
    fn head_tracks_across_read_write() {
        let mut d = SimDisk::new(CostModel::default());
        let first = d.allocate_contiguous(4, StructureId::Table);
        let mut buf = [0u8; PAGE_SIZE];
        d.read(first, &mut buf).unwrap();
        // Writing the next page continues sequentially.
        d.write(first + 1, &page_of(1)).unwrap();
        let s = d.stats();
        assert_eq!(s.sequential_writes, 1);
        assert_eq!(s.random_writes, 0);
    }

    #[test]
    fn stats_since_subtracts() {
        let mut d = SimDisk::new(CostModel::default());
        let p = d.allocate(StructureId::Table);
        d.write(p, &page_of(0)).unwrap();
        let before = d.stats();
        d.write(p, &page_of(1)).unwrap();
        let delta = d.stats().since(&before);
        assert_eq!(delta.pages_written, 1);
    }

    #[test]
    fn flat_cost_model_has_no_positioning() {
        let mut d = SimDisk::new(CostModel::flat(1.0));
        let first = d.allocate_contiguous(5, StructureId::Table);
        let mut buf = [0u8; PAGE_SIZE];
        for i in [4u32, 0, 3, 1, 2] {
            d.read(first + i, &mut buf).unwrap();
        }
        assert!((d.stats().sim_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn access_counter_counts_failed_accesses_too() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        let mut buf = [0u8; PAGE_SIZE];
        d.read(pid, &mut buf).unwrap();
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::read_page(pid)));
        assert_eq!(d.read(pid, &mut buf), Err(StorageError::InjectedFault(pid)));
        assert_eq!(d.accesses(), 2, "the failed read still counts");
    }

    #[test]
    fn transient_fault_heals_and_charges_nothing_until_then() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::read_page(pid).transient(2)));
        let mut buf = [0u8; PAGE_SIZE];
        assert!(d.read(pid, &mut buf).is_err());
        assert!(d.read(pid, &mut buf).is_err());
        assert_eq!(d.stats().pages_read, 0, "failed accesses are not charged");
        d.read(pid, &mut buf).unwrap();
        assert_eq!(d.stats().pages_read, 1);
    }

    #[test]
    fn crash_point_kills_every_later_access() {
        let mut d = SimDisk::new(CostModel::default());
        let first = d.allocate_contiguous(4, StructureId::Table);
        let mut buf = [0u8; PAGE_SIZE];
        d.set_fault_plan(FaultPlan::new().crash_at_access(2));
        d.read(first, &mut buf).unwrap();
        assert_eq!(
            d.write(first + 1, &page_of(1)),
            Err(StorageError::SimulatedCrash)
        );
        assert_eq!(d.read(first, &mut buf), Err(StorageError::SimulatedCrash));
        d.clear_fault_plan();
        d.read(first, &mut buf).unwrap();
    }

    #[test]
    fn torn_write_is_caught_by_checksum_on_read() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        d.write(pid, &page_of(3)).unwrap();
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::write_page(pid).torn()));
        d.write(pid, &page_of(9)).unwrap(); // acknowledged, silently torn
        let mut buf = [0u8; PAGE_SIZE];
        assert_eq!(
            d.read(pid, &mut buf),
            Err(StorageError::ChecksumMismatch(pid)),
            "latent corruption surfaces at read time"
        );
        // Rewriting the page (intact this time: TornWrite fires once)
        // heals the checksum.
        d.write(pid, &page_of(5)).unwrap();
        d.read(pid, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 5));
    }

    #[test]
    fn torn_chain_write_tears_only_the_programmed_page() {
        let mut d = SimDisk::new(CostModel::default());
        let first = d.allocate_contiguous(3, StructureId::Table);
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::write_page(first + 1).torn()));
        d.write_chain(first, 3, |_, page| page.fill(7)).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        d.read(first, &mut buf).unwrap();
        assert_eq!(
            d.read_chain(first, 3, |_, _| {}),
            Err(StorageError::ChecksumMismatch(first + 1))
        );
        d.read(first + 2, &mut buf).unwrap();
    }

    #[test]
    fn charge_retry_accumulates_time_and_retry_count() {
        let mut d = SimDisk::new(CostModel::default());
        d.charge_retry(1.0);
        d.charge_retry(2.0);
        let s = d.stats();
        assert_eq!(s.retries, 2);
        assert!((s.sim_ms - 3.0).abs() < 1e-9);
        assert_eq!(s.total_ios(), 0, "backoff moves no pages");
    }

    #[test]
    fn replica_repairs_a_torn_primary() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        d.enable_replicas();
        d.write(pid, &page_of(3)).unwrap();
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::write_page(pid).torn()));
        d.write(pid, &page_of(9)).unwrap(); // torn on the primary only
        let mut buf = [0u8; PAGE_SIZE];
        assert_eq!(
            d.read(pid, &mut buf),
            Err(StorageError::ChecksumMismatch(pid))
        );
        let before = d.stats();
        d.recover_from_replica(pid).unwrap();
        let delta = d.stats().since(&before);
        assert_eq!(delta.pages_read, 1, "the replica read is charged");
        assert_eq!(delta.random_reads, 1, "replica lives elsewhere: random");
        d.read(pid, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 9), "intended image restored");
    }

    #[test]
    fn recover_from_replica_without_replicas_is_mismatch() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::write_page(pid).torn()));
        d.write(pid, &page_of(1)).unwrap();
        assert_eq!(
            d.recover_from_replica(pid),
            Err(StorageError::ChecksumMismatch(pid))
        );
    }

    #[test]
    fn replicas_cover_pages_allocated_after_enabling() {
        let mut d = SimDisk::new(CostModel::default());
        let p0 = d.allocate(StructureId::Table);
        d.write(p0, &page_of(2)).unwrap();
        d.enable_replicas();
        let p1 = d.allocate_contiguous(2, StructureId::Table);
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::write_page(p1 + 1).torn()));
        d.write_chain(p1, 2, |_, page| page.fill(8)).unwrap();
        assert_eq!(d.corrupt_pages(), vec![p1 + 1]);
        d.recover_from_replica(p1 + 1).unwrap();
        assert!(d.corrupt_pages().is_empty());
        let mut buf = [0u8; PAGE_SIZE];
        d.read(p1 + 1, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 8));
    }

    #[test]
    fn accept_torn_page_makes_the_torn_image_readable() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        d.write(pid, &page_of(3)).unwrap();
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::write_page(pid).torn()));
        d.write(pid, &page_of(9)).unwrap();
        assert_eq!(d.corrupt_pages(), vec![pid]);
        assert_eq!(d.fault_plan_fired(), 1, "the torn slot fired");
        d.accept_torn_page(pid).unwrap();
        assert!(d.corrupt_pages().is_empty());
        let mut buf = [0u8; PAGE_SIZE];
        d.read(pid, &mut buf).unwrap();
        // First half is the new image, the tail kept the old content.
        assert!(buf[..PAGE_SIZE / 2].iter().all(|&b| b == 9));
        assert!(buf[PAGE_SIZE / 2..].iter().all(|&b| b == 3));
    }

    #[test]
    fn write_chain_fills_pages() {
        let mut d = SimDisk::new(CostModel::default());
        let first = d.allocate_contiguous(3, StructureId::Table);
        d.write_chain(first, 3, |pid, page| page[0] = pid as u8 + 1)
            .unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        for i in 0..3u32 {
            d.read(first + i, &mut buf).unwrap();
            assert_eq!(buf[0], i as u8 + 1);
        }
        assert_eq!(d.stats().random_writes, 1);
        assert_eq!(d.stats().pages_written, 3);
    }

    #[test]
    fn catalog_tracks_allocation_owners_and_frees() {
        let mut d = SimDisk::new(CostModel::default());
        let heap = d.allocate(StructureId::Table);
        let idx = d.allocate_contiguous(3, StructureId::Index(2));
        assert_eq!(d.catalog().owner(heap), Some(StructureId::Table));
        assert_eq!(d.catalog().owner(idx + 2), Some(StructureId::Index(2)));
        d.free_page(idx + 1);
        assert_eq!(d.catalog().owner(idx + 1), None);
        assert_eq!(d.catalog().free_pages(), vec![idx + 1]);
        let freed = d.free_owned(StructureId::Index(2));
        assert_eq!(freed, vec![idx, idx + 2]);
        assert_eq!(
            d.catalog().pages_of(StructureId::Index(2)),
            Vec::<PageId>::new()
        );
        assert_eq!(d.catalog().owner(heap), Some(StructureId::Table));
    }

    #[test]
    fn freeing_a_page_clears_its_replica_mirror() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Index(0));
        d.enable_replicas();
        d.write(pid, &page_of(0xAB)).unwrap();
        assert!(d.peek_replica(pid).unwrap().iter().all(|&b| b == 0xAB));
        let before = d.stats();
        d.free_page(pid);
        assert!(
            d.peek_replica(pid).unwrap().iter().all(|&b| b == 0),
            "freed page's mirror must not retain stale key images"
        );
        assert_eq!(
            d.stats().since(&before).replica_writes,
            1,
            "clearing the mirror is a charged replica write"
        );
        // Freeing again (or freeing an already-zero mirror) charges nothing.
        let before = d.stats();
        d.free_page(pid);
        assert_eq!(d.stats().since(&before).replica_writes, 0);
    }

    #[test]
    fn free_owned_clears_every_mirror() {
        let mut d = SimDisk::new(CostModel::default());
        let first = d.allocate_contiguous(3, StructureId::Index(4));
        d.enable_replicas();
        d.write_chain(first, 3, |_, page| page.fill(0x5C)).unwrap();
        d.free_owned(StructureId::Index(4));
        for i in 0..3 {
            assert!(
                d.peek_replica(first + i).unwrap().iter().all(|&b| b == 0),
                "page {i}"
            );
        }
    }

    #[test]
    fn peek_is_uncharged_and_sees_torn_bytes() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        d.write(pid, &page_of(3)).unwrap();
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::write_page(pid).torn()));
        d.write(pid, &page_of(9)).unwrap();
        let before = d.stats();
        let img = d.peek(pid).unwrap();
        assert!(img[..PAGE_SIZE / 2].iter().all(|&b| b == 9));
        assert!(img[PAGE_SIZE / 2..].iter().all(|&b| b == 3));
        assert_eq!(d.stats(), before, "peek charges nothing");
        assert!(d.peek(99).is_none());
    }

    #[test]
    fn scrub_page_zeroes_both_copies() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Temp);
        d.enable_replicas();
        d.write(pid, &page_of(0x77)).unwrap();
        d.scrub_page(pid).unwrap();
        assert!(d.peek(pid).unwrap().iter().all(|&b| b == 0));
        assert!(d.peek_replica(pid).unwrap().iter().all(|&b| b == 0));
        // The zeroed image is readable (checksum acknowledged).
        let mut buf = [0u8; PAGE_SIZE];
        d.read(pid, &mut buf).unwrap();
    }

    #[test]
    fn replica_mirror_writes_are_charged() {
        let mut d = SimDisk::new(CostModel::default());
        let first = d.allocate_contiguous(4, StructureId::Table);
        d.write(first, &page_of(1)).unwrap();
        assert_eq!(d.stats().replica_writes, 0, "no replicas, no charge");
        let without = d.stats().sim_ms;
        d.enable_replicas();
        d.write(first + 1, &page_of(2)).unwrap();
        assert_eq!(d.stats().replica_writes, 1);
        d.write_chain(first + 2, 2, |_, page| page.fill(3)).unwrap();
        let s = d.stats();
        assert_eq!(s.replica_writes, 3, "chain mirrors every page");
        assert_eq!(s.pages_written, 4, "primary counters unchanged");
        // Mirror cost is real simulated time: positioning + transfer per
        // acknowledged write access.
        let mirror_ms = 2.0 * CostModel::default().positioning_ms() + 3.0 * 0.4;
        assert!(
            s.sim_ms > without + mirror_ms,
            "{} vs {}",
            s.sim_ms,
            without + mirror_ms
        );
    }

    #[test]
    fn freed_pages_are_quarantined_until_reclaimed() {
        let mut d = SimDisk::new(CostModel::default());
        let first = d.allocate_contiguous(4, StructureId::Table);
        d.write(first + 1, &page_of(9)).unwrap();
        d.free_page(first + 1);
        // Freed but not reclaimed: the allocator must not hand it out.
        assert_eq!(d.n_reusable(), 0);
        assert_eq!(d.reclaimable_pages(), vec![first + 1]);
        let fresh = d.allocate(StructureId::Table);
        assert_eq!(fresh, first + 4, "quarantined page must not be recycled");
        // After reclaim the page is zeroed and reused, lowest id first.
        assert!(d.reclaim_page(first + 1).unwrap());
        assert!(d.reclaimable_pages().is_empty());
        assert_eq!(d.n_reusable(), 1);
        let reused = d.allocate(StructureId::Index(3));
        assert_eq!(reused, first + 1);
        assert_eq!(d.catalog().owner(reused), Some(StructureId::Index(3)));
        assert_eq!(d.n_reusable(), 0);
        assert!(
            d.peek(reused).unwrap().iter().all(|&b| b == 0),
            "recycled page must be zeroed"
        );
    }

    #[test]
    fn reclaim_is_a_noop_on_owned_or_already_reusable_pages() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        assert!(!d.reclaim_page(pid).unwrap(), "owned page stays put");
        d.free_page(pid);
        assert!(d.reclaim_page(pid).unwrap());
        assert!(!d.reclaim_page(pid).unwrap(), "double reclaim is a no-op");
        assert_eq!(d.n_reusable(), 1);
    }

    #[test]
    fn contiguous_allocation_reuses_a_consecutive_run() {
        let mut d = SimDisk::new(CostModel::default());
        let first = d.allocate_contiguous(8, StructureId::Table);
        // Free pages 1, 3, 4, 5, 7: the only run of three is 3..=5.
        for off in [1, 3, 4, 5, 7] {
            d.free_page(first + off);
            assert!(d.reclaim_page(first + off).unwrap());
        }
        let run = d.allocate_contiguous(3, StructureId::Index(2));
        assert_eq!(run, first + 3);
        for pid in run..run + 3 {
            assert_eq!(d.catalog().owner(pid), Some(StructureId::Index(2)));
        }
        assert_eq!(d.n_reusable(), 2);
        // No run of three remains: the file is extended instead.
        let ext = d.allocate_contiguous(3, StructureId::Index(2));
        assert_eq!(ext, first + 8);
        // Single-page allocation still drains the leftovers.
        assert_eq!(d.allocate(StructureId::Table), first + 1);
        assert_eq!(d.allocate(StructureId::Table), first + 7);
        assert_eq!(d.n_reusable(), 0);
    }

    #[test]
    fn torn_zeroing_leaves_the_page_quarantined() {
        let mut d = SimDisk::new(CostModel::default());
        let pid = d.allocate(StructureId::Table);
        d.write(pid, &page_of(0xAB)).unwrap();
        d.free_page(pid);
        d.set_fault_plan(FaultPlan::new().inject(crate::FaultSpec::write_page(pid).torn()));
        assert!(
            !d.reclaim_page(pid).unwrap(),
            "torn zeroing must not mark the page reusable"
        );
        assert_eq!(d.n_reusable(), 0, "page must stay quarantined");
        assert_eq!(d.reclaimable_pages(), vec![pid]);
        // The next maintenance pass re-reclaims it cleanly (the torn slot
        // fires once; recovery would heal the checksum, reclaim rewrites
        // the full image anyway).
        assert!(d.reclaim_page(pid).unwrap());
        assert_eq!(d.allocate(StructureId::Table), pid);
        assert!(d.peek(pid).unwrap().iter().all(|&b| b == 0));
    }
}
