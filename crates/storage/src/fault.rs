//! Programmable fault injection for the simulated disk.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultSpec`]s plus an optional
//! crash point. Every disk access (a `read`, `write`, `read_chain` or
//! `write_chain` call counts as one access) is evaluated against the plan
//! before it is charged:
//!
//! * a **crash point** makes the access — and every access after it — fail
//!   with [`StorageError::SimulatedCrash`], modelling process death at a
//!   precise point of the I/O stream (the crash-at-every-I/O campaign
//!   sweeps this point across a whole run);
//! * a matching **persistent** fault fails the access with
//!   [`StorageError::InjectedFault`] forever (a dead sector);
//! * a matching **transient** fault fails the next `failures` matching
//!   accesses, then heals (a timeout the buffer pool's bounded retry can
//!   ride out);
//! * a **torn write** lets the access succeed and be charged, but persists
//!   only a prefix of the page image while recording the checksum of the
//!   *intended* content — the corruption is latent until a later read
//!   fails with [`StorageError::ChecksumMismatch`].
//!
//! [`StorageError::SimulatedCrash`]: crate::StorageError::SimulatedCrash
//! [`StorageError::InjectedFault`]: crate::StorageError::InjectedFault
//! [`StorageError::ChecksumMismatch`]: crate::StorageError::ChecksumMismatch

use crate::disk::PageId;

/// Direction of the disk access a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// `read` / `read_chain`.
    Read,
    /// `write` / `write_chain`.
    Write,
}

/// What arms a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Any matching access touching this page (chains match if the page
    /// lies inside the chained range).
    Page(PageId),
    /// The n-th disk access overall, 1-based, counted across both ops.
    NthAccess(u64),
}

/// Failure mode of an armed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fails every matching access until the plan is cleared.
    Persistent,
    /// Fails the next `failures` matching accesses, then succeeds.
    Transient {
        /// How many matching accesses fail before the fault heals.
        failures: u32,
    },
    /// The next matching write is charged and acknowledged but persists
    /// only half the page; detected by checksum on a later read.
    TornWrite,
}

/// One programmed fault: trigger × op × kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What arms the fault.
    pub trigger: FaultTrigger,
    /// Which access direction it applies to.
    pub op: FaultOp,
    /// How it fails.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Persistent read fault on `pid` (the old `fail_reads_at` behaviour).
    pub fn read_page(pid: PageId) -> Self {
        FaultSpec {
            trigger: FaultTrigger::Page(pid),
            op: FaultOp::Read,
            kind: FaultKind::Persistent,
        }
    }

    /// Persistent write fault on `pid`.
    pub fn write_page(pid: PageId) -> Self {
        FaultSpec {
            trigger: FaultTrigger::Page(pid),
            op: FaultOp::Write,
            kind: FaultKind::Persistent,
        }
    }

    /// Fault armed on the n-th read access (1-based, global counter).
    pub fn read_at_access(n: u64) -> Self {
        FaultSpec {
            trigger: FaultTrigger::NthAccess(n),
            op: FaultOp::Read,
            kind: FaultKind::Persistent,
        }
    }

    /// Fault armed on the n-th write access (1-based, global counter).
    pub fn write_at_access(n: u64) -> Self {
        FaultSpec {
            trigger: FaultTrigger::NthAccess(n),
            op: FaultOp::Write,
            kind: FaultKind::Persistent,
        }
    }

    /// Make the fault transient: fail `failures` times, then heal.
    pub fn transient(mut self, failures: u32) -> Self {
        self.kind = FaultKind::Transient { failures };
        self
    }

    /// Make the fault a torn write (forces the op to `Write`).
    pub fn torn(mut self) -> Self {
        self.op = FaultOp::Write;
        self.kind = FaultKind::TornWrite;
        self
    }
}

/// Mutable state of one programmed fault inside the disk.
#[derive(Debug, Clone)]
struct FaultSlot {
    spec: FaultSpec,
    /// Matching accesses left to fail (transient / torn countdown;
    /// `u32::MAX` ≈ forever for persistent faults).
    remaining: u32,
}

/// What the plan decided for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultOutcome {
    /// Fail with `InjectedFault(pid)`.
    Fail(PageId),
    /// Proceed, but persist this page's image only partially.
    Torn(PageId),
    /// Fail with `SimulatedCrash` (and keep failing forever).
    Crash,
}

/// A programmable set of faults plus an optional crash point.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    slots: Vec<FaultSlot>,
    crash_at: Option<u64>,
    /// Slot firings so far (crash points excluded): how many accesses a
    /// programmed fault actually hit. The torn-write campaign uses this to
    /// tell a swept *write* access (the torn slot fired) from a read access
    /// the slot slid past.
    fired: u64,
}

impl FaultPlan {
    /// An empty plan (no faults, no crash point).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a programmed fault (builder style).
    pub fn inject(mut self, spec: FaultSpec) -> Self {
        let remaining = match spec.kind {
            FaultKind::Persistent => u32::MAX,
            FaultKind::Transient { failures } => failures,
            FaultKind::TornWrite => 1,
        };
        self.slots.push(FaultSlot { spec, remaining });
        self
    }

    /// Crash the disk at access number `n` (1-based): that access and every
    /// one after it fail with [`StorageError::SimulatedCrash`].
    ///
    /// [`StorageError::SimulatedCrash`]: crate::StorageError::SimulatedCrash
    pub fn crash_at_access(mut self, n: u64) -> Self {
        self.crash_at = Some(n);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty() && self.crash_at.is_none()
    }

    /// How many accesses a programmed fault slot has hit so far (torn
    /// writes, transient and persistent failures; crash points excluded).
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Decide the fate of one access covering pages `[first, first + n)`.
    /// `access` is the 1-based global access number.
    pub(crate) fn evaluate(
        &mut self,
        op: FaultOp,
        first: PageId,
        n: u32,
        access: u64,
    ) -> Option<FaultOutcome> {
        if let Some(c) = self.crash_at {
            if access >= c {
                return Some(FaultOutcome::Crash);
            }
        }
        let range = first..first + n;
        for slot in &mut self.slots {
            if slot.remaining == 0 || slot.spec.op != op {
                continue;
            }
            let hit = match slot.spec.trigger {
                FaultTrigger::Page(p) => range.contains(&p),
                FaultTrigger::NthAccess(k) => access == k,
            };
            if !hit {
                continue;
            }
            slot.remaining = slot.remaining.saturating_sub(1);
            self.fired += 1;
            let pid = match slot.spec.trigger {
                FaultTrigger::Page(p) => p,
                FaultTrigger::NthAccess(_) => first,
            };
            return Some(match slot.spec.kind {
                FaultKind::TornWrite => FaultOutcome::Torn(pid),
                _ => FaultOutcome::Fail(pid),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fault_heals_after_k_failures() {
        let mut plan = FaultPlan::new().inject(FaultSpec::read_page(7).transient(2));
        assert_eq!(
            plan.evaluate(FaultOp::Read, 7, 1, 1),
            Some(FaultOutcome::Fail(7))
        );
        assert_eq!(
            plan.evaluate(FaultOp::Read, 7, 1, 2),
            Some(FaultOutcome::Fail(7))
        );
        assert_eq!(plan.evaluate(FaultOp::Read, 7, 1, 3), None, "healed");
    }

    #[test]
    fn persistent_fault_never_heals_and_ignores_other_ops() {
        let mut plan = FaultPlan::new().inject(FaultSpec::read_page(3));
        for access in 1..50 {
            assert_eq!(plan.evaluate(FaultOp::Write, 3, 1, access), None);
            assert_eq!(
                plan.evaluate(FaultOp::Read, 3, 1, access),
                Some(FaultOutcome::Fail(3))
            );
        }
    }

    #[test]
    fn chain_access_matches_page_inside_range() {
        let mut plan = FaultPlan::new().inject(FaultSpec::read_page(10));
        assert_eq!(
            plan.evaluate(FaultOp::Read, 8, 2, 1),
            None,
            "chain ends at 9"
        );
        assert_eq!(
            plan.evaluate(FaultOp::Read, 8, 4, 2),
            Some(FaultOutcome::Fail(10))
        );
    }

    #[test]
    fn crash_point_is_persistent_from_that_access_on() {
        let mut plan = FaultPlan::new().crash_at_access(5);
        assert_eq!(plan.evaluate(FaultOp::Read, 0, 1, 4), None);
        assert_eq!(
            plan.evaluate(FaultOp::Write, 0, 1, 5),
            Some(FaultOutcome::Crash)
        );
        assert_eq!(
            plan.evaluate(FaultOp::Read, 0, 1, 6),
            Some(FaultOutcome::Crash)
        );
    }

    #[test]
    fn nth_access_trigger_fires_exactly_once() {
        let mut plan = FaultPlan::new().inject(FaultSpec::write_at_access(3));
        assert_eq!(plan.evaluate(FaultOp::Write, 1, 1, 2), None);
        assert_eq!(
            plan.evaluate(FaultOp::Write, 1, 1, 3),
            Some(FaultOutcome::Fail(1))
        );
        assert_eq!(plan.evaluate(FaultOp::Write, 1, 1, 4), None);
    }
}
