//! Heap file: the base table storage (the paper's relation `R`).
//!
//! Records live in slotted pages; a record's [`Rid`] is its physical
//! address and stays valid until that record is deleted. Pages are kept in
//! ascending page-id order (a recycled page is spliced back in at its id,
//! not appended), so iterating `pages` equals ascending-RID order — the
//! property the vertical sort/merge plan exploits ("relation R is clustered
//! (i.e., sorted) on RID values").
//!
//! Two bulk-delete primitives live here because they are pure storage
//! operations: a merge of a *sorted* RID list against the page sequence
//! (used by the Fig. 3 sort/merge plan) and a full scan probing a RID hash
//! set (used by the Fig. 4 hash plan).

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::disk::PageId;
use crate::error::{StorageError, StorageResult};
use crate::fsm::FreeSpaceMap;
use crate::owner::StructureId;
use crate::readahead::ReadAhead;
use crate::rid::Rid;
use crate::slotted::SlottedPage;

/// A heap file of records.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    /// Pages in ascending-id (= RID, = scan) order.
    pages: Vec<PageId>,
    fsm: FreeSpaceMap,
    n_records: usize,
}

impl HeapFile {
    /// Create an empty heap file on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        HeapFile {
            pool,
            pages: Vec::new(),
            fsm: FreeSpaceMap::new(),
            n_records: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.n_records
    }

    /// True if the heap holds no records.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Number of pages ever allocated to this heap.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The buffer pool this heap lives in.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Page ids in scan order.
    pub fn page_ids(&self) -> &[PageId] {
        &self.pages
    }

    fn new_heap_page(&mut self) -> StorageResult<PageId> {
        let (pid, mut w) = self.pool.new_page(StructureId::Table)?;
        SlottedPage::init(&mut w[..]);
        let free = SlottedPage::new(&mut w[..]).usable_free();
        drop(w);
        // The allocator may recycle a reclaimed page with a lower id than
        // the current tail; splice it in at its sorted position so the page
        // list stays in ascending-RID order.
        let idx = self.pages.partition_point(|&p| p < pid);
        self.pages.insert(idx, pid);
        self.fsm.update(pid, free);
        Ok(pid)
    }

    /// Append a record, returning its RID. Prefers the page the FSM finds;
    /// allocates a new page when nothing fits.
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<Rid> {
        let needed = record.len() + 4; // record + slot entry
        let pid = match self.fsm.find_page(needed) {
            Some(p) => p,
            None => self.new_heap_page()?,
        };
        let mut w = self.pool.pin_write(pid)?;
        let mut page = SlottedPage::new(&mut w[..]);
        let slot = page.insert(record)?;
        let free = page.usable_free();
        drop(w);
        self.fsm.update(pid, free);
        self.n_records += 1;
        Ok(Rid::new(pid, slot))
    }

    /// Read the record at `rid`.
    pub fn get(&self, rid: Rid) -> StorageResult<Vec<u8>> {
        let r = self.pool.pin_read(rid.page)?;
        let bytes = crate::slotted::read::get(&r[..], rid.slot)
            .map_err(|e| Self::rebind_rid(e, rid))?
            .to_vec();
        Ok(bytes)
    }

    fn rebind_rid(e: StorageError, rid: Rid) -> StorageError {
        match e {
            StorageError::SlotEmpty(_) => StorageError::SlotEmpty(rid),
            StorageError::SlotOutOfBounds(_) => StorageError::SlotOutOfBounds(rid),
            other => other,
        }
    }

    /// Overwrite the record at `rid` in place, returning the old bytes.
    /// The new record must have the same length (fixed-size records keep
    /// their RID across updates, so only changed index keys need index
    /// maintenance).
    pub fn update(&mut self, rid: Rid, record: &[u8]) -> StorageResult<Vec<u8>> {
        let mut w = self.pool.pin_write(rid.page)?;
        let mut page = SlottedPage::new(&mut w[..]);
        let old = page
            .get(rid.slot)
            .map_err(|e| Self::rebind_rid(e, rid))?
            .to_vec();
        if old.len() != record.len() {
            return Err(StorageError::RecordTooLarge {
                len: record.len(),
                max: old.len(),
            });
        }
        page.overwrite(rid.slot, record)?;
        Ok(old)
    }

    /// Delete the record at `rid`, returning its bytes.
    pub fn delete(&mut self, rid: Rid) -> StorageResult<Vec<u8>> {
        let mut w = self.pool.pin_write(rid.page)?;
        let mut page = SlottedPage::new(&mut w[..]);
        let bytes = page
            .delete(rid.slot)
            .map_err(|e| Self::rebind_rid(e, rid))?;
        let free = page.usable_free();
        drop(w);
        self.fsm.update(rid.page, free);
        self.n_records -= 1;
        Ok(bytes)
    }

    /// Sequential scan in RID order, using chained reads.
    ///
    /// The `Iterator` impl fuses-and-records on I/O failure; callers that
    /// must not lose records (index builds, consistency checks) check
    /// [`HeapScan::take_error`] after exhaustion, or use
    /// [`HeapFile::dump`] which does so for them.
    pub fn scan(&self) -> HeapScan {
        let mut ra = ReadAhead::new(self.pool.clone());
        ra.plan(self.pages.iter().copied());
        HeapScan {
            pool: self.pool.clone(),
            pages: self.pages.clone(),
            next_page: 0,
            current: VecDeque::new(),
            ra,
            error: None,
            fused: false,
        }
    }

    /// Scan the whole heap into a vector, propagating any I/O error
    /// (the loss-free counterpart of [`HeapFile::scan`]).
    pub fn dump(&self) -> StorageResult<Vec<(Rid, Vec<u8>)>> {
        let mut scan = self.scan();
        let out: Vec<(Rid, Vec<u8>)> = (&mut scan).collect();
        match scan.take_error() {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Delete every RID in `rids` (which must be sorted ascending) in one
    /// sequential pass over the affected pages. Returns `(rid, bytes)` for
    /// each deleted record, in RID order.
    ///
    /// This is the table-side `⋈̄` of the paper's Fig. 3 plan: the sorted RID
    /// list is merged against the heap's physical order, so each affected
    /// page is pinned exactly once and pages are visited monotonically — the
    /// exact shape [`ReadAhead`] wants, so the whole victim-page sequence is
    /// planned up front and streamed in via chained reads.
    pub fn bulk_delete_sorted(&mut self, rids: &[Rid]) -> StorageResult<Vec<(Rid, Vec<u8>)>> {
        debug_assert!(rids.windows(2).all(|w| w[0] <= w[1]), "rid list not sorted");
        let mut ra = ReadAhead::new(self.pool.clone());
        let mut prev = None;
        ra.plan(rids.iter().map(|r| r.page).filter(|&p| {
            let fresh = prev != Some(p);
            prev = Some(p);
            fresh
        }));
        let mut out = Vec::with_capacity(rids.len());
        let mut i = 0;
        while i < rids.len() {
            // Pause point: between pages, with no pin held.
            crate::pacer::checkpoint()?;
            let pid = rids[i].page;
            ra.before_pin(pid);
            let mut w = self.pool.pin_write(pid)?;
            let mut page = SlottedPage::new(&mut w[..]);
            while i < rids.len() && rids[i].page == pid {
                let rid = rids[i];
                let bytes = page
                    .delete(rid.slot)
                    .map_err(|e| Self::rebind_rid(e, rid))?;
                out.push((rid, bytes));
                self.n_records -= 1;
                i += 1;
            }
            let free = page.usable_free();
            drop(w);
            self.fsm.update(pid, free);
        }
        Ok(out)
    }

    /// Scan the whole heap, deleting every record whose RID is in `victims`.
    /// Returns deleted `(rid, bytes)` in RID order. This is the hash-probe
    /// table `⋈̄` of the paper's Fig. 4 plan.
    pub fn bulk_delete_probe(
        &mut self,
        victims: &HashSet<Rid>,
    ) -> StorageResult<Vec<(Rid, Vec<u8>)>> {
        let mut out = Vec::with_capacity(victims.len());
        let pages = self.pages.clone();
        let mut ra = ReadAhead::new(self.pool.clone());
        ra.plan(pages.iter().copied());
        for &pid in &pages {
            // Pause point: between pages, with no pin held.
            crate::pacer::checkpoint()?;
            ra.before_pin(pid);
            let mut w = self.pool.pin_write(pid)?;
            let mut page = SlottedPage::new(&mut w[..]);
            let mut free = None;
            for slot in 0..page.slot_count() as u16 {
                let rid = Rid::new(pid, slot);
                if page.is_live(slot) && victims.contains(&rid) {
                    let bytes = page.delete(slot)?;
                    out.push((rid, bytes));
                    self.n_records -= 1;
                    free = Some(page.usable_free());
                }
            }
            if let Some(f) = free {
                drop(w);
                self.fsm.update(pid, f);
            }
        }
        Ok(out)
    }

    /// Like [`HeapFile::bulk_delete_sorted`] but silently skips RIDs whose
    /// slot is already empty. Used by crash recovery, which *rolls the bulk
    /// delete forward*: re-running a partially completed pass must tolerate
    /// records that the pre-crash run already deleted and flushed.
    pub fn bulk_delete_sorted_lenient(
        &mut self,
        rids: &[Rid],
    ) -> StorageResult<Vec<(Rid, Vec<u8>)>> {
        debug_assert!(rids.windows(2).all(|w| w[0] <= w[1]), "rid list not sorted");
        let mut out = Vec::with_capacity(rids.len());
        let mut i = 0;
        while i < rids.len() {
            crate::pacer::checkpoint()?;
            let pid = rids[i].page;
            let mut w = self.pool.pin_write(pid)?;
            let mut page = SlottedPage::new(&mut w[..]);
            while i < rids.len() && rids[i].page == pid {
                let rid = rids[i];
                if page.is_live(rid.slot) {
                    let bytes = page.delete(rid.slot)?;
                    out.push((rid, bytes));
                    self.n_records -= 1;
                }
                i += 1;
            }
            let free = page.usable_free();
            drop(w);
            self.fsm.update(pid, free);
        }
        Ok(out)
    }

    /// Reconstruct a heap handle after a crash from its durable page list
    /// (the catalog's job in a real system). Counters and the FSM are
    /// rebuilt from the disk state by [`HeapFile::recount`].
    pub fn restore(pool: Arc<BufferPool>, pages: Vec<PageId>) -> StorageResult<Self> {
        let mut heap = HeapFile {
            pool,
            pages,
            fsm: FreeSpaceMap::new(),
            n_records: 0,
        };
        heap.recount()?;
        Ok(heap)
    }

    /// Recount live records and rebuild the FSM by scanning every page.
    /// Returns the live record count.
    pub fn recount(&mut self) -> StorageResult<usize> {
        let mut n = 0;
        let mut ra = ReadAhead::new(self.pool.clone());
        ra.plan(self.pages.iter().copied());
        for pos in 0..self.pages.len() {
            crate::pacer::checkpoint()?;
            let pid = self.pages[pos];
            ra.before_pin(pid);
            let r = self.pool.pin_read(pid)?;
            n += crate::slotted::read::live_records(&r[..]);
            let mut buf: crate::page::PageBuf = Box::new(*r);
            drop(r);
            let free = SlottedPage::new(&mut buf[..]).usable_free();
            self.fsm.update(pid, free);
        }
        self.n_records = n;
        Ok(n)
    }

    /// Scrub every heap page: compact and zero all bytes no live record
    /// covers (see [`SlottedPage::scrub`]). Deleted record images — the
    /// paper's delete only clears slot entries — are physically destroyed.
    /// One sequential write pass; returns `(pages visited, bytes zeroed)`.
    /// RIDs of live records are unchanged (slot numbers survive scrubbing).
    pub fn scrub(&mut self) -> StorageResult<(usize, usize)> {
        let mut zeroed = 0;
        for pos in 0..self.pages.len() {
            // Pause point: between pages, no pin held.
            crate::pacer::checkpoint()?;
            let pid = self.pages[pos];
            let mut w = self.pool.pin_write(pid)?;
            let mut page = SlottedPage::new(&mut w[..]);
            zeroed += page.scrub();
            let free = page.usable_free();
            drop(w);
            self.fsm.update(pid, free);
        }
        Ok((self.pages.len(), zeroed))
    }

    /// Free bytes the FSM records for `pid` (test/diagnostic hook).
    pub fn fsm_free(&self, pid: PageId) -> Option<usize> {
        self.fsm.free_bytes(pid)
    }

    /// Pages the FSM currently tracks, ascending. Audit hook: every entry
    /// must be a page of this heap — a freed page left in the FSM would let
    /// `find_page` hand it out as an insert target after recycling.
    pub fn fsm_pages(&self) -> Vec<PageId> {
        self.fsm.pages()
    }

    /// Give every record-free page back to the disk allocator: the page
    /// leaves the scan order and the FSM (so [`FreeSpaceMap::find_page`]
    /// can never offer a freed page as an insert target) and is
    /// catalog-freed for the maintenance daemon to zero and recycle.
    /// Returns the released ids, ascending. Paced: checkpoints between
    /// candidate pages with no pin held.
    pub fn release_empty_pages(&mut self) -> StorageResult<Vec<PageId>> {
        // A page whose records were all deleted has most of its bytes free
        // (only header and dead slot entries remain), so half a page is a
        // safe candidate filter; occupancy is then confirmed exactly.
        let mut candidates = self.fsm.pages_with_at_least(crate::disk::PAGE_SIZE / 2);
        candidates.sort_unstable();
        let mut released = Vec::new();
        for pid in candidates {
            crate::pacer::checkpoint()?;
            let r = self.pool.pin_read(pid)?;
            let live = crate::slotted::read::live_records(&r[..]);
            drop(r);
            if live != 0 {
                continue;
            }
            let idx = self.pages.partition_point(|&p| p < pid);
            debug_assert_eq!(self.pages.get(idx), Some(&pid), "fsm page not in heap");
            self.pages.remove(idx);
            self.fsm.remove(pid);
            self.pool.free_page(pid);
            released.push(pid);
        }
        Ok(released)
    }

    /// Compare every page's FSM entry against its actual slotted-page
    /// occupancy, returning each mismatch instead of panicking (the audit
    /// harness folds these into its report).
    pub fn audit_fsm(&self) -> StorageResult<Vec<FsmMismatch>> {
        let mut out = Vec::new();
        for &pid in &self.pages {
            let mut w = self.pool.pin_write(pid)?;
            let page = SlottedPage::new(&mut w[..]);
            let actual = page.usable_free();
            let recorded = self.fsm.free_bytes(pid);
            if recorded != Some(actual) {
                out.push(FsmMismatch {
                    page: pid,
                    recorded,
                    actual,
                });
            }
        }
        Ok(out)
    }

    /// Verify FSM entries against actual page occupancy; returns the number
    /// of checked pages. Test/diagnostic hook (panics on mismatch; use
    /// [`HeapFile::audit_fsm`] for a structured result).
    pub fn verify_fsm(&self) -> StorageResult<usize> {
        let mismatches = self.audit_fsm()?;
        assert!(mismatches.is_empty(), "fsm mismatches: {mismatches:?}");
        Ok(self.pages.len())
    }
}

/// One FSM-vs-occupancy divergence found by [`HeapFile::audit_fsm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmMismatch {
    /// Page whose record diverges.
    pub page: PageId,
    /// Free bytes the FSM recorded (`None` = page untracked).
    pub recorded: Option<usize>,
    /// Free bytes the slotted page actually has.
    pub actual: usize,
}

/// Iterator over `(Rid, record bytes)` in RID order.
///
/// Pinning a page can fail (pool exhaustion, I/O error); an `Iterator`
/// cannot return that through its items, and silently skipping the page
/// would hand an incomplete scan to index rebuilds. The iterator therefore
/// *fuses and records*: on the first pin failure the scan permanently ends
/// and the error is held for [`HeapScan::take_error`]. Callers that need
/// every record must check it after exhaustion (or use [`HeapFile::dump`]).
pub struct HeapScan {
    pool: Arc<BufferPool>,
    pages: Vec<PageId>,
    next_page: usize,
    current: VecDeque<(Rid, Vec<u8>)>,
    ra: ReadAhead,
    error: Option<StorageError>,
    /// Set when an error ended the scan; stays set after `take_error` so
    /// the scan never resumes past a known-lost page.
    fused: bool,
}

impl HeapScan {
    /// The error that fused the scan, if any.
    pub fn error(&self) -> Option<&StorageError> {
        self.error.as_ref()
    }

    /// Take the error that fused the scan. `Some(_)` means the scan ended
    /// early and at least one page's records were never yielded.
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }
}

impl Iterator for HeapScan {
    type Item = (Rid, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.current.pop_front() {
                return Some(item);
            }
            if self.fused || self.next_page >= self.pages.len() {
                return None;
            }
            // Pause point between pages; a pacer cancellation fuses the
            // scan exactly like a pin failure would.
            if let Err(e) = crate::pacer::checkpoint() {
                self.error = Some(e);
                self.fused = true;
                return None;
            }
            let pid = self.pages[self.next_page];
            self.next_page += 1;
            self.ra.before_pin(pid);
            match self.pool.pin_read(pid) {
                Ok(r) => {
                    for slot in 0..crate::slotted::read::slot_count(&r[..]) as u16 {
                        if crate::slotted::read::is_live(&r[..], slot) {
                            let bytes = crate::slotted::read::get(&r[..], slot)
                                .expect("live slot")
                                .to_vec();
                            self.current.push_back((Rid::new(pid, slot), bytes));
                        }
                    }
                }
                Err(e) => {
                    self.error = Some(e);
                    self.fused = true;
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{CostModel, SimDisk};
    use crate::fault::{FaultPlan, FaultSpec};

    fn heap(frames: usize) -> HeapFile {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), frames);
        HeapFile::create(pool)
    }

    fn record(tag: u64) -> Vec<u8> {
        let mut r = vec![0u8; 512];
        r[..8].copy_from_slice(&tag.to_le_bytes());
        r
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut h = heap(8);
        let rid = h.insert(&record(42)).unwrap();
        assert_eq!(h.get(rid).unwrap(), record(42));
        assert_eq!(h.delete(rid).unwrap(), record(42));
        assert!(h.get(rid).is_err());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn rids_are_stable_across_other_deletes() {
        let mut h = heap(8);
        let rids: Vec<Rid> = (0..20).map(|i| h.insert(&record(i)).unwrap()).collect();
        h.delete(rids[3]).unwrap();
        h.delete(rids[11]).unwrap();
        for (i, &rid) in rids.iter().enumerate() {
            if i == 3 || i == 11 {
                continue;
            }
            assert_eq!(h.get(rid).unwrap(), record(i as u64));
        }
    }

    #[test]
    fn scan_returns_all_records_in_rid_order() {
        let mut h = heap(8);
        let n = 100u64;
        for i in 0..n {
            h.insert(&record(i)).unwrap();
        }
        let scanned: Vec<(Rid, Vec<u8>)> = h.scan().collect();
        assert_eq!(scanned.len(), n as usize);
        assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
        for (i, (_, bytes)) in scanned.iter().enumerate() {
            assert_eq!(bytes[..8], (i as u64).to_le_bytes());
        }
    }

    #[test]
    fn scan_records_pin_failure_instead_of_skipping_page() {
        // Regression: HeapScan used to `if let Ok(..)` the pin and silently
        // drop the whole page's records — an index rebuilt from such a scan
        // would be missing entries. The scan must fuse and record instead.
        let mut h = heap(8);
        for i in 0..30u64 {
            h.insert(&record(i)).unwrap();
        }
        assert!(h.num_pages() >= 3);
        let bad = h.page_ids()[1];
        h.pool().clear_cache().unwrap();
        h.pool()
            .with_disk(|d| d.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(bad))));
        h.pool().set_retry_policy(crate::RetryPolicy::none());
        let mut scan = h.scan();
        let got: Vec<(Rid, Vec<u8>)> = (&mut scan).collect();
        // Everything up to the bad page was yielded; nothing after it.
        assert!(got.iter().all(|(rid, _)| rid.page < bad));
        assert_eq!(
            scan.take_error(),
            Some(StorageError::InjectedFault(bad)),
            "scan must record the pin failure"
        );
        assert_eq!(scan.take_error(), None, "error is taken once");
        assert_eq!(scan.next(), None, "fused after error");
        // dump() is the loss-free path: it propagates the same error.
        assert_eq!(h.dump().unwrap_err(), StorageError::InjectedFault(bad));
        // Clearing the fault restores a complete scan.
        h.pool().with_disk(|d| d.clear_fault_plan());
        assert_eq!(h.dump().unwrap().len(), 30);
    }

    #[test]
    fn scan_uses_chained_io() {
        let mut h = heap(32);
        for i in 0..200u64 {
            h.insert(&record(i)).unwrap();
        }
        h.pool().clear_cache().unwrap();
        h.pool().reset_stats();
        let n = h.scan().count();
        assert_eq!(n, 200);
        let s = h.pool().disk_stats();
        // ~29 pages at 7 records/page; chained in chunks => far fewer
        // positionings than pages.
        assert!(s.total_random() * 4 <= s.pages_read, "{s:?}");
    }

    #[test]
    fn bulk_delete_sorted_matches_single_deletes() {
        let mut h = heap(16);
        let rids: Vec<Rid> = (0..100).map(|i| h.insert(&record(i)).unwrap()).collect();
        let mut victims: Vec<Rid> = rids.iter().copied().step_by(3).collect();
        victims.sort();
        let deleted = h.bulk_delete_sorted(&victims).unwrap();
        assert_eq!(deleted.len(), victims.len());
        for ((rid, bytes), &v) in deleted.iter().zip(&victims) {
            assert_eq!(*rid, v);
            assert!(!bytes.is_empty());
        }
        assert_eq!(h.len(), 100 - victims.len());
        for &v in &victims {
            assert!(h.get(v).is_err());
        }
        h.verify_fsm().unwrap();
    }

    #[test]
    fn bulk_delete_probe_matches_sorted_variant() {
        let mut h1 = heap(16);
        let mut h2 = heap(16);
        let rids1: Vec<Rid> = (0..80).map(|i| h1.insert(&record(i)).unwrap()).collect();
        let rids2: Vec<Rid> = (0..80).map(|i| h2.insert(&record(i)).unwrap()).collect();
        assert_eq!(rids1, rids2);
        let victims: Vec<Rid> = rids1.iter().copied().filter(|r| r.slot % 2 == 0).collect();
        let a = h1.bulk_delete_sorted(&victims).unwrap();
        let set: HashSet<Rid> = victims.iter().copied().collect();
        let b = h2.bulk_delete_probe(&set).unwrap();
        assert_eq!(a, b);
        assert_eq!(h1.len(), h2.len());
    }

    #[test]
    fn bulk_delete_sorted_is_one_pass() {
        let mut h = heap(64);
        let rids: Vec<Rid> = (0..500).map(|i| h.insert(&record(i)).unwrap()).collect();
        let victims: Vec<Rid> = rids.iter().copied().step_by(2).collect();
        h.pool().clear_cache().unwrap();
        h.pool().reset_stats();
        h.bulk_delete_sorted(&victims).unwrap();
        let pool_stats = h.pool().pool_stats();
        // Every page pinned at most once plus prefetch: misses bounded by
        // page count.
        assert!(pool_stats.misses as usize <= h.num_pages());
    }

    #[test]
    fn deleting_missing_rid_is_error() {
        let mut h = heap(8);
        let rid = h.insert(&record(1)).unwrap();
        h.delete(rid).unwrap();
        assert_eq!(h.delete(rid).unwrap_err(), StorageError::SlotEmpty(rid));
    }

    #[test]
    fn update_rewrites_in_place() {
        let mut h = heap(8);
        let rid = h.insert(&record(1)).unwrap();
        let old = h.update(rid, &record(2)).unwrap();
        assert_eq!(old, record(1));
        assert_eq!(h.get(rid).unwrap(), record(2));
        assert_eq!(h.len(), 1);
        // Length mismatch is rejected.
        assert!(matches!(
            h.update(rid, &[1, 2, 3]),
            Err(StorageError::RecordTooLarge { .. })
        ));
        // Updating a deleted record fails.
        h.delete(rid).unwrap();
        assert!(matches!(
            h.update(rid, &record(3)),
            Err(StorageError::SlotEmpty(_))
        ));
    }

    #[test]
    fn lenient_bulk_delete_skips_missing() {
        let mut h = heap(8);
        let rids: Vec<Rid> = (0..30).map(|i| h.insert(&record(i)).unwrap()).collect();
        h.delete(rids[3]).unwrap();
        h.delete(rids[7]).unwrap();
        let mut victims = rids[..10].to_vec();
        victims.sort_unstable();
        let out = h.bulk_delete_sorted_lenient(&victims).unwrap();
        assert_eq!(out.len(), 8, "two were already gone");
        assert_eq!(h.len(), 20);
        // Strict variant would have failed on the same input.
    }

    #[test]
    fn restore_and_recount_match_reality() {
        let mut h = heap(16);
        let rids: Vec<Rid> = (0..60).map(|i| h.insert(&record(i)).unwrap()).collect();
        for r in rids.iter().step_by(3) {
            h.delete(*r).unwrap();
        }
        h.pool().flush_all().unwrap();
        let pool = h.pool().clone();
        let pages = h.page_ids().to_vec();
        drop(h);
        let restored = HeapFile::restore(pool, pages).unwrap();
        assert_eq!(restored.len(), 40);
        restored.verify_fsm().unwrap();
        for (i, r) in rids.iter().enumerate() {
            if i % 3 == 0 {
                assert!(restored.get(*r).is_err());
            } else {
                assert_eq!(restored.get(*r).unwrap(), record(i as u64));
            }
        }
    }

    #[test]
    fn scrub_destroys_deleted_records_and_keeps_live_ones() {
        // High-entropy tags: a physical byte-scan for them cannot collide
        // with slot-directory metadata or other small integers.
        let tag = |i: u64| 0xDEAD_BEEF_0000_0000u64 | (i * 0x0101);
        let mut h = heap(16);
        let rids: Vec<Rid> = (0..40)
            .map(|i| h.insert(&record(tag(i))).unwrap())
            .collect();
        let victims: Vec<Rid> = rids.iter().copied().step_by(2).collect();
        h.bulk_delete_sorted(&victims).unwrap();
        let (pages, zeroed) = h.scrub().unwrap();
        assert_eq!(pages, h.num_pages());
        assert!(zeroed >= victims.len() * 4, "zeroed {zeroed}");
        h.pool().flush_all().unwrap();
        // Survivors read back intact; victims stay gone; FSM consistent.
        for (i, &rid) in rids.iter().enumerate() {
            if i % 2 == 0 {
                assert!(h.get(rid).is_err());
            } else {
                assert_eq!(h.get(rid).unwrap(), record(tag(i as u64)));
            }
        }
        h.verify_fsm().unwrap();
        // No victim tag survives anywhere on the heap's disk pages.
        let page_ids = h.page_ids().to_vec();
        h.pool().with_disk(|d| {
            for &pid in &page_ids {
                let img = d.peek(pid).unwrap();
                for i in (0..40u64).step_by(2) {
                    let t = tag(i).to_le_bytes();
                    assert!(
                        !img.windows(8).any(|w| w == t),
                        "victim tag {i} survives on page {pid}"
                    );
                }
            }
        });
    }

    #[test]
    fn release_empty_pages_shrinks_heap_and_fsm() {
        let mut h = heap(16);
        let rids: Vec<Rid> = (0..35).map(|i| h.insert(&record(i)).unwrap()).collect();
        let n_pages = h.num_pages();
        assert!(n_pages >= 5);
        // Empty out the records of the second and fourth pages.
        let victims: Vec<PageId> = vec![h.page_ids()[1], h.page_ids()[3]];
        for &rid in &rids {
            if victims.contains(&rid.page) {
                h.delete(rid).unwrap();
            }
        }
        let released = h.release_empty_pages().unwrap();
        assert_eq!(released, victims);
        assert_eq!(h.num_pages(), n_pages - 2);
        for &pid in &victims {
            assert_eq!(h.fsm_free(pid), None, "released page left the FSM");
            assert!(!h.fsm_pages().contains(&pid));
        }
        // The survivors are all still there, scan order intact.
        let live: Vec<Rid> = h.scan().map(|(rid, _)| rid).collect();
        assert_eq!(live.len(), h.len());
        assert!(live.windows(2).all(|w| w[0] < w[1]));
        h.verify_fsm().unwrap();
        // After reclaim the released pages are recycled and spliced back
        // into the page list at their sorted positions.
        for &pid in &victims {
            assert!(h.pool().reclaim_page(pid).unwrap());
        }
        for i in 100..114u64 {
            h.insert(&record(i)).unwrap();
        }
        let ids = h.page_ids().to_vec();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "page list sorted: {ids:?}"
        );
        assert!(
            ids.contains(&victims[0]),
            "recycled page back in scan order"
        );
        let live: Vec<Rid> = h.scan().map(|(rid, _)| rid).collect();
        assert!(live.windows(2).all(|w| w[0] < w[1]), "RID order preserved");
        h.verify_fsm().unwrap();
    }

    #[test]
    fn freed_space_is_reused() {
        let mut h = heap(8);
        for i in 0..14 {
            h.insert(&record(i)).unwrap();
        }
        let pages_before = h.num_pages();
        let victim = Rid::new(h.page_ids()[0], 2);
        h.delete(victim).unwrap();
        let rid = h.insert(&record(99)).unwrap();
        assert_eq!(rid.page, victim.page, "freed slot page should be reused");
        assert_eq!(h.num_pages(), pages_before);
    }
}
