//! Windowed read-ahead over sorted page streams.
//!
//! The paper's traditional algorithm "reads chunks of several pages from
//! disk" so a scan pays one positioning cost per chunk instead of one per
//! page (§4.1). [`ReadAhead`] generalises that: any access path that knows
//! the *sorted* sequence of pages it is about to pin — a heap bulk-delete
//! merging sorted RIDs, a leaf walk over a bulk-loaded extent, a key probe
//! descending into consecutive leaves — registers that plan, and the
//! read-ahead keeps a window of upcoming pages staged in the buffer pool via
//! chained [`BufferPool::prefetch_run`] calls.
//!
//! Three decisions matter for the cost model:
//!
//! * **Coalescing.** A positioning costs ~30 pages of transfer, so reading a
//!   handful of unwanted gap pages to keep one chain going is far cheaper
//!   than splitting it. Plan entries closer than [`COALESCE_GAP`] pages are
//!   merged into a single chained read.
//! * **Hysteresis.** Topping the window up one page per pin would degrade
//!   every chain to length 1. The window refills only once fewer than half
//!   a window of pages is still staged ahead of the cursor, so fresh chains
//!   cover at least `window / 2` pages — and a chain starting where its
//!   predecessor ended is head-contiguous, costing transfer only.
//! * **Best effort.** Prefetch failures are swallowed: an injected fault or
//!   a torn page inside a staged chain must not abort the operation early.
//!   The page is simply not staged, and the eventual pin retries the read
//!   under the pool's [`RetryPolicy`](crate::buffer::RetryPolicy) — which
//!   also has the replica-repair path for checksum mismatches.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::disk::PageId;

/// Default read-ahead window in pages — the paper's scan chunk. Chains that
/// follow each other head-contiguously pay no positioning regardless of
/// their length, so a longer window buys nothing on a sweep; what it *does*
/// cost is pool frames, and staged-but-unpinned pages evicted under write
/// pressure must be re-read at a full positioning each. Eight pages keeps
/// the staged footprint below a tenth of even the smallest benched pool
/// (96 frames at the 5 MB-scaled budget).
pub const READ_AHEAD_WINDOW: usize = 8;

/// Maximum gap (in pages) bridged when coalescing two planned pages into one
/// chained read. The breakeven is the cost model's positioning/transfer
/// ratio: one repositioning costs ~12.2 ms, the same as transferring ~30
/// pages, so bridging any gap shorter than that is a strict win — and a
/// dense plan (a 5% delete touches every third heap page) degenerates into
/// one long sequential sweep, exactly the paper's chunked table scan.
const COALESCE_GAP: PageId = 30;

/// Windowed read-ahead over a sorted stream of upcoming page ids.
///
/// Feed it the pages the caller will pin, in ascending pin order, via
/// [`ReadAhead::plan`] / [`ReadAhead::over_extent`]; call
/// [`ReadAhead::before_pin`] immediately before each pin. The struct tracks
/// a cursor into the plan and keeps up to a window of upcoming pages staged.
pub struct ReadAhead {
    pool: Arc<BufferPool>,
    window: usize,
    /// Upcoming pages in pin order (ascending). Duplicates are harmless.
    plan: Vec<PageId>,
    /// Plan entries at indices < `consumed` are behind the cursor.
    consumed: usize,
    /// Plan entries at indices < `staged` have been offered to the pool.
    staged: usize,
    /// Exclusive end of the last chain issued: when the next planned entry
    /// is within [`COALESCE_GAP`] of it, the new chain starts *here* instead
    /// of at the entry, so consecutive chains stay head-contiguous and the
    /// disk charges no positioning between them.
    cover: Option<PageId>,
}

impl ReadAhead {
    /// Read-ahead with the default window, clamped to what the pool can
    /// stage without evicting its own working set.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        let window = READ_AHEAD_WINDOW.min(pool.max_prefetch());
        ReadAhead::with_window(pool, window)
    }

    /// Read-ahead with an explicit window (still clamped by the pool at
    /// issue time). A window of 0 disables prefetching entirely.
    pub fn with_window(pool: Arc<BufferPool>, window: usize) -> Self {
        ReadAhead {
            pool,
            window,
            plan: Vec::new(),
            consumed: 0,
            staged: 0,
            cover: None,
        }
    }

    /// Append upcoming pages to the plan. `pages` must be in the order the
    /// caller will pin them, and not precede already-planned pages.
    pub fn plan(&mut self, pages: impl IntoIterator<Item = PageId>) {
        self.plan.extend(pages);
        debug_assert!(self.plan.is_sorted(), "read-ahead plan must be sorted");
    }

    /// Convenience: plan a whole contiguous extent `(first, npages)`, e.g. a
    /// bulk-loaded leaf extent. `from` trims pages before the walk's entry
    /// point so a mid-extent start still prefetches from its first pin.
    pub fn over_extent(
        pool: Arc<BufferPool>,
        extent: Option<(PageId, usize)>,
        from: PageId,
    ) -> Self {
        let mut ra = ReadAhead::new(pool);
        if let Some((first, n)) = extent {
            let end = first + n as PageId;
            if from < end {
                ra.plan(from.max(first)..end);
            }
        }
        ra
    }

    /// Number of planned pages not yet behind the cursor.
    pub fn remaining(&self) -> usize {
        self.plan.len() - self.consumed
    }

    /// Note that the caller is about to pin `pid`. Advances the cursor past
    /// every planned page `< pid`, and tops the staged window up when fewer
    /// than half a window of *pages* (bridged gaps included) is still staged
    /// ahead of the pin. Pages outside the plan are ignored — interior
    /// B-tree nodes, FSM pages and other side reads pass through without
    /// disturbing the window.
    pub fn before_pin(&mut self, pid: PageId) {
        while self.consumed < self.plan.len() && self.plan[self.consumed] < pid {
            self.consumed += 1;
        }
        if self.consumed >= self.plan.len() || self.plan[self.consumed] != pid {
            return;
        }
        // Hysteresis in pages, not plan entries: a bridged chain occupies
        // pool frames for every page it covers, so budgeting by entry count
        // would let dense plans stage several chains' worth of frames and
        // evict each other before their pins arrive.
        let ahead = self.cover.map_or(0, |c| c.saturating_sub(pid)) as usize;
        if self.window > 0 && ahead < self.window.div_ceil(2) {
            self.top_up(pid);
        }
    }

    /// Stage planned pages falling within a window of pages after `pid`,
    /// batching near-adjacent entries into single chained reads. A chain
    /// whose predecessor ends within [`COALESCE_GAP`] continues from that
    /// end, so the disk head never repositions between them. Best effort:
    /// staging failures leave the pages to the pin-time retry path.
    fn top_up(&mut self, pid: PageId) {
        self.staged = self.staged.max(self.consumed);
        let budget_end = pid + self.window as PageId; // exclusive
        let max_run = self.pool.max_prefetch().max(1) as PageId;
        while self.staged < self.plan.len() {
            let next = self.plan[self.staged];
            if next >= budget_end {
                break;
            }
            // Continue from the previous chain's end when the next entry is
            // close: the chain start equals the head position, so the disk
            // charges transfer only.
            let start = match self.cover {
                Some(c) if c <= next && next - c <= COALESCE_GAP && next - c < max_run => c,
                _ => next,
            };
            let mut end = next; // inclusive last page of the chain
            self.staged += 1;
            while self.staged < self.plan.len() {
                let e = self.plan[self.staged];
                if e >= budget_end || e > end + COALESCE_GAP || e - start + 1 > max_run {
                    break;
                }
                end = e;
                self.staged += 1;
            }
            let n = ((end - start + 1) as usize).min(self.pool.max_prefetch());
            let _ = self.pool.prefetch_run(start, n);
            self.cover = Some(start + n as PageId);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{CostModel, SimDisk};
    use crate::owner::StructureId;

    fn pool(frames: usize, pages: usize) -> (Arc<BufferPool>, PageId) {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(pages, StructureId::Table);
        (BufferPool::new(disk, frames), first)
    }

    #[test]
    fn contiguous_plan_is_chained_not_per_page() {
        let (pool, first) = pool(64, 64);
        pool.reset_stats();
        let mut ra = ReadAhead::new(pool.clone());
        ra.plan(first..first + 64);
        for i in 0..64 {
            ra.before_pin(first + i);
            let _ = pool.pin_read(first + i).unwrap();
        }
        let d = pool.disk_stats();
        assert_eq!(d.pages_read, 64);
        // Refill chains continue from where the previous chain ended, so
        // after the cold start every chain begins at the head position and
        // the whole sweep pays one positioning.
        assert!(d.random_reads <= 2, "random_reads {}", d.random_reads);
        let s = pool.pool_stats();
        assert_eq!(s.misses, 0, "every pin was staged ahead of time");
        assert_eq!(s.prefetched, 64);
    }

    #[test]
    fn small_gaps_are_coalesced_large_gaps_split() {
        let (pool, first) = pool(64, 200);
        pool.reset_stats();
        let mut ra = ReadAhead::new(pool.clone());
        // Every third page: gaps of 2 coalesce into one chain.
        let near: Vec<PageId> = (0..10).map(|i| first + 3 * i).collect();
        // Then a jump of 100 pages: must start a fresh positioning.
        let far = first + 127;
        let mut plan = near.clone();
        plan.push(far);
        ra.plan(plan.clone());
        for pid in plan {
            ra.before_pin(pid);
            let _ = pool.pin_read(pid).unwrap();
        }
        let d = pool.disk_stats();
        // One chain over the near group (28 pages incl. gaps), one positioned
        // read for the far page.
        assert_eq!(d.random_reads, 2, "stats {d:?}");
        assert_eq!(pool.pool_stats().misses, 0);
    }

    #[test]
    fn unplanned_pages_pass_through_untouched() {
        let (pool, first) = pool(64, 64);
        let mut ra = ReadAhead::new(pool.clone());
        // The second entry sits past both the window and the coalesce gap,
        // so pinning the first entry must not stage anything near it.
        ra.plan([first, first + 60]);
        ra.before_pin(first);
        let _ = pool.pin_read(first).unwrap();
        pool.reset_stats();
        // An interior-node style side read between planned pins.
        ra.before_pin(first + 5);
        let _ = pool.pin_read(first + 5).unwrap();
        assert_eq!(pool.disk_stats().pages_read, 1, "no speculative staging");
        assert_eq!(ra.remaining(), 1, "cursor did not skip past the plan");
    }

    #[test]
    fn mid_stream_entry_fires_immediately() {
        let (pool, first) = pool(64, 64);
        pool.reset_stats();
        // Enter the extent at an unaligned page: the window must fire on the
        // first pin, not at the next chunk boundary.
        let entry = first + 5;
        let mut ra = ReadAhead::over_extent(pool.clone(), Some((first, 64)), entry);
        ra.before_pin(entry);
        let _ = pool.pin_read(entry).unwrap();
        let d = pool.disk_stats();
        assert_eq!(d.random_reads, 1);
        assert!(
            d.pages_read >= (READ_AHEAD_WINDOW / 2) as u64,
            "a real window, not one page: {d:?}"
        );
        assert_eq!(pool.pool_stats().misses, 0);
    }

    #[test]
    fn window_respects_pool_clamp() {
        let (pool, first) = pool(8, 64);
        pool.reset_stats();
        let mut ra = ReadAhead::new(pool.clone());
        assert_eq!(ra.window, pool.max_prefetch());
        ra.plan(first..first + 64);
        for i in 0..64 {
            ra.before_pin(first + i);
            let _ = pool.pin_read(first + i).unwrap();
        }
        assert_eq!(pool.disk_stats().pages_read, 64);
        assert_eq!(pool.pool_stats().misses, 0, "tiny pool still fully staged");
    }

    #[test]
    fn prefetch_fault_degrades_to_pin_time_retry() {
        use crate::fault::{FaultPlan, FaultSpec};
        let (pool, first) = pool(64, 64);
        let victim = first + 8;
        // 6 failures: prefetch burns 1 + 3 retries best-effort, the pin
        // burns the remaining 2 and succeeds.
        pool.with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(victim).transient(6)))
        });
        let mut ra = ReadAhead::new(pool.clone());
        ra.plan(first..first + 32);
        for i in 0..32 {
            ra.before_pin(first + i);
            let r = pool.pin_read(first + i).unwrap();
            drop(r);
        }
        assert_eq!(pool.pool_stats().misses, 1, "only the faulted page re-read");
    }
}
