//! Structure ownership: who does a page belong to?
//!
//! The paper's vertical strategies work "one storage structure at a time"
//! (§3), and media recovery wants the same granularity: a torn page should
//! condemn exactly the structure that owns it, not every B-tree in the
//! database. This module supplies the two pieces the rest of the workspace
//! threads through its allocation paths:
//!
//! * [`StructureId`] — the name of a storage structure. It used to live in
//!   `bd-wal` (the log needs it for `Progress`/`StructureDone` records), but
//!   allocation happens far below the WAL, so the type now lives here at the
//!   bottom of the dependency graph and is re-exported upward.
//! * [`PageCatalog`] — the persistent page → owner map kept by
//!   [`SimDisk`](crate::SimDisk). Every `allocate`/`allocate_contiguous`
//!   records an owner, frees move pages to the free set, and the WAL
//!   checkpoints a snapshot of the whole map so recovery can classify torn
//!   pages by lookup instead of by walking heap page lists and hash chains.
//!
//! Allocation in the simulated disk grows a dense page vector (so the
//! catalog is a dense vector indexed by page id), but freed pages *are*
//! recycled: once the maintenance daemon has zeroed a free page
//! ([`SimDisk::reclaim_page`](crate::SimDisk::reclaim_page)), the allocator
//! hands it out again via [`PageCatalog::set_owner`] before extending the
//! file.

use crate::disk::PageId;

/// A storage structure processed by a bulk delete, and — since every page
/// has an owner — the tag the page catalog records at allocation time.
///
/// The discriminants double as the WAL wire tags (pinned by
/// `bd-wal`'s `wire_format_is_stable_across_versions`): Probe=0, Table=1,
/// Index=2, Hash=3, Temp=4, Spatial=5, Lsm=6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureId {
    /// The probe index (`I_A`). This is a *phase role*, not a page owner:
    /// the probe index's pages are tagged [`StructureId::Index`] with its
    /// attribute, and the WAL maps damage to `Index(probe_attr)` back onto
    /// the probe phase.
    Probe,
    /// The base table (`R`): heap pages.
    Table,
    /// A B-tree index, by attribute number.
    Index(u16),
    /// A hash index, by attribute number (wire tag 3; decoders predating it
    /// reject the tag instead of misreading the record).
    Hash(u16),
    /// Scratch pages (external-sort spill segments). Never rebuilt: a torn
    /// temp page is healed and skipped, its contents are transient.
    Temp,
    /// A spatial (R-tree) index, by attribute number. Outside the bulk
    /// delete's phase set; owned pages exist so the catalog stays total.
    Spatial(u16),
    /// An LSM table's run pages, table-scoped like [`StructureId::index_of`]
    /// (wire tag 6; decoders predating it reject the tag instead of
    /// misreading the record). Outside the WAL bulk-delete phase set — LSM
    /// deletes are tombstone writes purged by compaction, not logged phases.
    Lsm(u16),
}

impl std::fmt::Display for StructureId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructureId::Probe => write!(f, "probe"),
            StructureId::Table => write!(f, "table"),
            StructureId::Index(a) if *a >= 256 => write!(f, "index({}.{})", a >> 8, a & 0xFF),
            StructureId::Index(a) => write!(f, "index({a})"),
            StructureId::Hash(a) if *a >= 256 => write!(f, "hash({}.{})", a >> 8, a & 0xFF),
            StructureId::Hash(a) => write!(f, "hash({a})"),
            StructureId::Temp => write!(f, "temp"),
            StructureId::Spatial(a) => write!(f, "spatial({a})"),
            StructureId::Lsm(a) if *a >= 256 => write!(f, "lsm({}.{})", a >> 8, a & 0xFF),
            StructureId::Lsm(a) => write!(f, "lsm({a})"),
        }
    }
}

/// Catalog wire tag for a free page (no owner).
const TAG_FREE: u8 = 0xFF;

impl StructureId {
    /// One-byte catalog tag (shared with the WAL's structure encoding).
    fn tag(self) -> u8 {
        match self {
            StructureId::Probe => 0,
            StructureId::Table => 1,
            StructureId::Index(_) => 2,
            StructureId::Hash(_) => 3,
            StructureId::Temp => 4,
            StructureId::Spatial(_) => 5,
            StructureId::Lsm(_) => 6,
        }
    }

    /// Attribute payload, if the variant carries one.
    fn attr(self) -> u16 {
        match self {
            StructureId::Index(a)
            | StructureId::Hash(a)
            | StructureId::Spatial(a)
            | StructureId::Lsm(a) => a,
            _ => 0,
        }
    }

    fn from_tag(tag: u8, attr: u16) -> Option<StructureId> {
        Some(match tag {
            0 => StructureId::Probe,
            1 => StructureId::Table,
            2 => StructureId::Index(attr),
            3 => StructureId::Hash(attr),
            4 => StructureId::Temp,
            5 => StructureId::Spatial(attr),
            6 => StructureId::Lsm(attr),
            _ => return None,
        })
    }

    /// Page-owner tag for table `table`'s B-tree index on `attr`.
    ///
    /// Owner tags are **table-scoped**: the `u16` payload packs the table
    /// id into the high byte and the attribute into the low byte, so two
    /// tables' indices on the same attribute never share a tag. Without
    /// the scope, media recovery's `free_owned(Index(attr))` would free
    /// *every* table's index pages on that attribute — a rebuild of one
    /// table's damaged index would silently condemn the others. Table 0's
    /// tags equal the plain attribute (the scope is zero), so single-table
    /// databases are unchanged. Panics in debug builds past 256 tables or
    /// 256 attributes.
    pub fn index_of(table: usize, attr: usize) -> StructureId {
        StructureId::Index(Self::scope(table, attr))
    }

    /// Page-owner tag for table `table`'s hash index on `attr` (same
    /// scoping as [`StructureId::index_of`]).
    pub fn hash_of(table: usize, attr: usize) -> StructureId {
        StructureId::Hash(Self::scope(table, attr))
    }

    /// Page-owner tag for table `table`'s LSM run pages (same scoping as
    /// [`StructureId::index_of`]; the attribute slot is zero — an LSM
    /// table owns one page set covering all its runs).
    pub fn lsm_of(table: usize) -> StructureId {
        StructureId::Lsm(Self::scope(table, 0))
    }

    fn scope(table: usize, attr: usize) -> u16 {
        debug_assert!(
            table < 256 && attr < 256,
            "table-scoped owner tag overflow: table {table}, attr {attr}"
        );
        ((table as u16) << 8) | attr as u16
    }

    /// `(table, attr)` of a table-scoped [`StructureId::Index`] or
    /// [`StructureId::Hash`] owner tag; `None` for every other variant.
    pub fn scoped_parts(self) -> Option<(usize, usize)> {
        match self {
            StructureId::Index(v) | StructureId::Hash(v) => {
                Some(((v >> 8) as usize, (v & 0xFF) as usize))
            }
            _ => None,
        }
    }
}

/// The persistent page → owner map, maintained on every allocate/free.
///
/// Invariants (checked by `bd-core::audit::audit_catalog`):
/// * every allocated page has exactly one owner slot;
/// * every page reachable from a structure (tree child pointers, hash
///   chains, heap page list) is owned by that structure;
/// * every *free* page is unreachable from every structure.
///
/// The converse — owned but unreachable — is allowed: leaf compaction and
/// base-node packing abandon whole page sets without freeing them, and a
/// collapsed root stays tagged. Such stale pages at worst trigger a rebuild
/// of the structure that really did own them, which is still
/// structure-precise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageCatalog {
    owners: Vec<Option<StructureId>>,
    free: usize,
}

impl PageCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        PageCatalog::default()
    }

    /// Record `n` pages starting at `first` as freshly allocated to `owner`.
    pub fn note_alloc(&mut self, first: PageId, n: usize, owner: StructureId) {
        let end = first as usize + n;
        if self.owners.len() < end {
            self.owners.resize(end, None);
        }
        for slot in &mut self.owners[first as usize..end] {
            debug_assert!(slot.is_none(), "page allocated twice");
            *slot = Some(owner);
        }
    }

    /// Move a page to the free set. Freeing a free page is a no-op.
    pub fn free(&mut self, pid: PageId) {
        if let Some(slot) = self.owners.get_mut(pid as usize) {
            if slot.take().is_some() {
                self.free += 1;
            }
        }
    }

    /// Force the owner of `pid`, reclaiming it from the free set if needed.
    ///
    /// Recovery uses this to reconcile the catalog with reality: a crash can
    /// lose the cached parent-patch write that detached a page while the
    /// catalog free (durable disk metadata) survived, leaving a page that is
    /// free by catalog but still reachable from its structure. Re-owning it
    /// restores the "free ⇒ unreachable" invariant.
    pub fn set_owner(&mut self, pid: PageId, owner: StructureId) {
        let idx = pid as usize;
        if self.owners.len() <= idx {
            self.owners.resize(idx + 1, None);
        } else if self.owners[idx].is_none() {
            self.free = self.free.saturating_sub(1);
        }
        self.owners[idx] = Some(owner);
    }

    /// The owner of `pid`, or `None` if the page is free (or was never
    /// allocated).
    pub fn owner(&self, pid: PageId) -> Option<StructureId> {
        self.owners.get(pid as usize).copied().flatten()
    }

    /// Every page currently owned by `owner`, ascending.
    pub fn pages_of(&self, owner: StructureId) -> Vec<PageId> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(owner))
            .map(|(pid, _)| pid as PageId)
            .collect()
    }

    /// Every explicitly freed page, ascending (pages past the allocation
    /// frontier are not listed).
    pub fn free_pages(&self) -> Vec<PageId> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_none())
            .map(|(pid, _)| pid as PageId)
            .collect()
    }

    /// Number of pages the catalog has seen allocated (the allocation
    /// frontier; includes since-freed pages).
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// True when no page was ever allocated.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Number of freed pages.
    pub fn n_free(&self) -> usize {
        self.free
    }

    /// Serialize for the WAL's checkpoint snapshot: page count, then one
    /// `(tag, attr)` pair per page (tag `0xFF` = free).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.owners.len() as u32).to_le_bytes());
        for owner in &self.owners {
            match owner {
                Some(o) => {
                    out.push(o.tag());
                    out.extend_from_slice(&o.attr().to_le_bytes());
                }
                None => {
                    out.push(TAG_FREE);
                    out.extend_from_slice(&0u16.to_le_bytes());
                }
            }
        }
    }

    /// Decode a snapshot produced by [`PageCatalog::encode`]. Returns `None`
    /// on a truncated buffer or an unknown owner tag (the caller maps this
    /// to its corrupt-log error).
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<PageCatalog> {
        let need = |pos: usize, n: usize| buf.len() >= pos + n;
        if !need(*pos, 4) {
            return None;
        }
        let n = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
        *pos += 4;
        let mut owners = Vec::with_capacity(n);
        let mut free = 0;
        for _ in 0..n {
            if !need(*pos, 3) {
                return None;
            }
            let tag = buf[*pos];
            let attr = u16::from_le_bytes(buf[*pos + 1..*pos + 3].try_into().unwrap());
            *pos += 3;
            if tag == TAG_FREE {
                owners.push(None);
                free += 1;
            } else {
                owners.push(Some(StructureId::from_tag(tag, attr)?));
            }
        }
        Some(PageCatalog { owners, free })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_owner_lookup() {
        let mut c = PageCatalog::new();
        c.note_alloc(0, 3, StructureId::Table);
        c.note_alloc(3, 2, StructureId::Index(7));
        assert_eq!(c.owner(0), Some(StructureId::Table));
        assert_eq!(c.owner(4), Some(StructureId::Index(7)));
        assert_eq!(c.owner(9), None);
        assert_eq!(c.len(), 5);
        c.free(1);
        assert_eq!(c.owner(1), None);
        assert_eq!(c.n_free(), 1);
        c.free(1); // double free is a no-op
        assert_eq!(c.n_free(), 1);
        assert_eq!(c.pages_of(StructureId::Table), vec![0, 2]);
        assert_eq!(c.free_pages(), vec![1]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut c = PageCatalog::new();
        c.note_alloc(0, 2, StructureId::Table);
        c.note_alloc(2, 1, StructureId::Hash(3));
        c.note_alloc(3, 1, StructureId::Temp);
        c.note_alloc(4, 1, StructureId::Spatial(9));
        c.note_alloc(5, 2, StructureId::lsm_of(1));
        c.free(0);
        let mut buf = Vec::new();
        c.encode(&mut buf);
        let mut pos = 0;
        let back = PageCatalog::decode(&buf, &mut pos).expect("roundtrip");
        assert_eq!(pos, buf.len());
        assert_eq!(back, c);
    }

    #[test]
    fn decode_rejects_truncation_and_unknown_tags() {
        let mut c = PageCatalog::new();
        c.note_alloc(0, 2, StructureId::Index(1));
        let mut buf = Vec::new();
        c.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                PageCatalog::decode(&buf[..cut], &mut pos).is_none(),
                "cut at {cut} must fail"
            );
        }
        let mut bad = buf.clone();
        bad[4] = 42; // unknown owner tag
        let mut pos = 0;
        assert!(PageCatalog::decode(&bad, &mut pos).is_none());
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(StructureId::Probe.to_string(), "probe");
        assert_eq!(StructureId::Index(5).to_string(), "index(5)");
        assert_eq!(StructureId::Hash(2).to_string(), "hash(2)");
        assert_eq!(StructureId::Spatial(1).to_string(), "spatial(1)");
        assert_eq!(StructureId::Lsm(4).to_string(), "lsm(4)");
        assert_eq!(StructureId::lsm_of(2).to_string(), "lsm(2.0)");
    }

    #[test]
    fn lsm_tag_is_pinned_and_scoped() {
        // Wire tag 6 is pinned: a catalog of one Lsm page encodes as
        // count=1, tag 6, attr little-endian.
        let mut c = PageCatalog::new();
        c.note_alloc(0, 1, StructureId::Lsm(0x0203));
        let mut buf = Vec::new();
        c.encode(&mut buf);
        assert_eq!(buf, vec![1, 0, 0, 0, 6, 0x03, 0x02]);
        // Truncation anywhere and unknown tags still fail after the new
        // variant (tag 7 stays unknown).
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(PageCatalog::decode(&buf[..cut], &mut pos).is_none());
        }
        let mut bad = buf.clone();
        bad[4] = 7;
        let mut pos = 0;
        assert!(PageCatalog::decode(&bad, &mut pos).is_none());
        // lsm_of packs the table id like index_of/hash_of, but Lsm owners
        // are not "scoped parts" structures for media recovery.
        assert_eq!(StructureId::lsm_of(3), StructureId::Lsm(3 << 8));
        assert_eq!(StructureId::lsm_of(3).scoped_parts(), None);
    }
}
