//! Row identifiers.

use std::fmt;

use crate::disk::PageId;

/// Physical row identifier: page number plus slot number within the page.
///
/// Matching the paper, a RID "is composed of a ... page number, and a slot
/// number". `Rid` orders by `(page, slot)`, so sorting a RID list puts it in
/// the physical scan order of the heap — the property the vertical
/// sort/merge plan exploits to turn random I/O into a sequential pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    /// Page id within the database.
    pub page: PageId,
    /// Slot number within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a RID.
    pub fn new(page: PageId, slot: u16) -> Self {
        Rid { page, slot }
    }

    /// Pack into a `u64` (page in the high 32 bits) preserving order.
    pub fn to_u64(self) -> u64 {
        ((self.page as u64) << 32) | self.slot as u64
    }

    /// Unpack from [`Rid::to_u64`] form.
    pub fn from_u64(v: u64) -> Self {
        Rid {
            page: (v >> 32) as PageId,
            slot: (v & 0xffff) as u16,
        }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper's notation: page X, slot Y printed as "X.Y".
        write!(f, "{}.{}", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let r = Rid::new(123_456, 7);
        assert_eq!(Rid::from_u64(r.to_u64()), r);
    }

    #[test]
    fn u64_order_matches_struct_order() {
        let a = Rid::new(1, 9);
        let b = Rid::new(2, 0);
        assert!(a < b);
        assert!(a.to_u64() < b.to_u64());
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(Rid::new(4, 2).to_string(), "4.2");
    }
}
