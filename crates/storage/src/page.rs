//! Raw page buffer plus little-endian field accessors.
//!
//! Higher layers (slotted pages, B-tree nodes) define their layouts in terms
//! of these helpers so that all on-page encoding lives in one place.

use crate::disk::PAGE_SIZE;

/// An owned page-sized byte buffer.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocate a zeroed page buffer.
pub fn zeroed() -> PageBuf {
    Box::new([0u8; PAGE_SIZE])
}

/// FNV-1a checksum of a page image — the end-to-end integrity check the
/// simulated disk keeps per page to catch torn writes. `const` so the
/// zero-page checksum is a compile-time constant.
pub const fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut i = 0;
    while i < data.len() {
        h ^= data[i] as u32;
        h = h.wrapping_mul(0x0100_0193);
        i += 1;
    }
    h
}

/// Read a `u16` at `off`.
#[inline]
pub fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Write a `u16` at `off`.
#[inline]
pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u32` at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Write a `u32` at `off`.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u64` at `off`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Write a `u64` at `off`.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_roundtrips() {
        let mut p = zeroed();
        put_u16(&mut p[..], 0, 0xBEEF);
        put_u32(&mut p[..], 2, 0xDEAD_BEEF);
        put_u64(&mut p[..], 6, u64::MAX - 3);
        assert_eq!(get_u16(&p[..], 0), 0xBEEF);
        assert_eq!(get_u32(&p[..], 2), 0xDEAD_BEEF);
        assert_eq!(get_u64(&p[..], 6), u64::MAX - 3);
    }

    #[test]
    fn fields_do_not_bleed() {
        let mut p = zeroed();
        put_u64(&mut p[..], 8, u64::MAX);
        put_u16(&mut p[..], 16, 0);
        assert_eq!(get_u64(&p[..], 8), u64::MAX);
        assert_eq!(get_u16(&p[..], 16), 0);
        assert_eq!(get_u64(&p[..], 0), 0);
    }
}
