//! Buffer pool: a bounded page cache over the simulated disk.
//!
//! The paper's prototype "uses only 10 MB of main memory" and varies this
//! between 2 and 10 MB (Experiment 4). A [`BufferPool`] is created with a
//! frame budget derived from those byte budgets. Pages are pinned for read
//! or write through RAII guards; unpinned frames are evicted LRU, writing
//! dirty pages back to disk. [`BufferPool::prefetch_run`] implements the
//! chained I/O the paper's traditional algorithm uses "to read chunks of
//! several pages from disk".

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Mutex, RawRwLock, RwLock};

use crate::disk::{DiskStats, PageId, SimDisk, PAGE_SIZE};
use crate::error::{StorageError, StorageResult};
use crate::owner::{PageCatalog, StructureId};
use crate::page::PageBuf;

type ReadGuard = ArcRwLockReadGuard<RawRwLock, PageBuf>;
type WriteGuard = ArcRwLockWriteGuard<RawRwLock, PageBuf>;

struct Frame {
    pid: PageId,
    data: Arc<RwLock<PageBuf>>,
    pin: AtomicUsize,
    dirty: AtomicBool,
    last_used: AtomicU64,
    /// Set when the frame was staged by [`BufferPool::prefetch_run`] and not
    /// yet pinned; the first pin consumes it into `PoolStats::prefetched`
    /// instead of `hits` (a prefetched page was paid for by the read-ahead
    /// chain, not found warm in the cache).
    prefetched: AtomicBool,
}

struct Inner {
    frames: HashMap<PageId, Arc<Frame>>,
    tick: u64,
}

/// Cache hit/miss counters for the pool itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pins served from a frame that was already warm in the cache.
    pub hits: u64,
    /// Pins that had to read the page from disk.
    pub misses: u64,
    /// First pins of pages staged by [`BufferPool::prefetch_run`]. These
    /// were paid for by a chained read-ahead, so counting them as `hits`
    /// would inflate the cache's apparent warmth.
    pub prefetched: u64,
    /// Dirty pages written back during eviction or flush.
    pub writebacks: u64,
}

impl PoolStats {
    /// Fraction of pins served without a new disk read at pin time.
    /// Prefetched pins are in the denominator but not the numerator: their
    /// I/O was merely moved earlier, not avoided.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.prefetched;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bounded retry-with-backoff for transient disk faults and torn pages.
///
/// [`StorageError::InjectedFault`] is retried as-is (a timeout that may
/// heal). [`StorageError::ChecksumMismatch`] is retried only when the disk
/// has per-page replicas enabled: the retry first repairs the torn primary
/// from its replica (one charged read), then re-issues the access.
/// Cancellation and crash points are final. Each retry charges its backoff
/// to the simulated clock (via [`SimDisk::charge_retry`]), so retried runs
/// are honestly slower and the retries show up in `DiskStats::retries` and
/// every active `IoScope`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Simulated backoff before the first retry, in milliseconds
    /// (doubles on each subsequent retry).
    pub backoff_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_ms: 1.0,
        }
    }
}

impl RetryPolicy {
    /// Fail fast on the first fault (pre-retry behaviour, for tests that
    /// count accesses exactly).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_ms: 0.0,
        }
    }
}

/// Run a disk operation under a retry policy. The caller already holds the
/// disk lock; backoff is simulated time only, never host sleep.
fn retry_disk<R>(
    policy: RetryPolicy,
    disk: &mut SimDisk,
    mut op: impl FnMut(&mut SimDisk) -> StorageResult<R>,
) -> StorageResult<R> {
    let mut attempt = 0u32;
    let mut backoff = policy.backoff_ms;
    loop {
        match op(disk) {
            Err(StorageError::InjectedFault(_)) if attempt < policy.max_retries => {
                attempt += 1;
                disk.charge_retry(backoff);
                backoff *= 2.0;
            }
            Err(StorageError::ChecksumMismatch(pid))
                if attempt < policy.max_retries && disk.replicas_enabled() =>
            {
                attempt += 1;
                disk.charge_retry(backoff);
                backoff *= 2.0;
                // Repair the torn primary from its mirror copy before the
                // re-issue; if the replica is damaged too, that mismatch is
                // final.
                disk.recover_from_replica(pid)?;
            }
            other => return other,
        }
    }
}

/// Bounded LRU page cache over a [`SimDisk`].
pub struct BufferPool {
    disk: Mutex<SimDisk>,
    capacity: usize,
    inner: Mutex<Inner>,
    retry: Mutex<RetryPolicy>,
    hits: AtomicU64,
    misses: AtomicU64,
    prefetched: AtomicU64,
    writebacks: AtomicU64,
}

impl BufferPool {
    /// Pool with room for `capacity` pages.
    pub fn new(disk: SimDisk, capacity: usize) -> Arc<Self> {
        assert!(capacity >= 2, "buffer pool needs at least 2 frames");
        Arc::new(BufferPool {
            disk: Mutex::new(disk),
            capacity,
            inner: Mutex::new(Inner {
                frames: HashMap::new(),
                tick: 0,
            }),
            retry: Mutex::new(RetryPolicy::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            prefetched: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        })
    }

    /// Pool sized from a byte budget (the paper's "5 MB memory" style
    /// figures), rounding down to whole frames.
    pub fn with_byte_budget(disk: SimDisk, bytes: usize) -> Arc<Self> {
        BufferPool::new(disk, (bytes / PAGE_SIZE).max(2))
    }

    /// Frame capacity of the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate one fresh page on disk to `owner` (not yet resident). The
    /// disk may recycle a reclaimed page, so any stale cached frame of the
    /// returned id is dropped — its bytes belong to the page's previous
    /// life.
    pub fn allocate(&self, owner: StructureId) -> PageId {
        let pid = self.disk.lock().allocate(owner);
        self.inner.lock().frames.remove(&pid);
        pid
    }

    /// Allocate `n` contiguous pages on disk to `owner`, returning the
    /// first id. Stale frames of recycled ids are dropped, as in
    /// [`BufferPool::allocate`].
    pub fn allocate_contiguous(&self, n: usize, owner: StructureId) -> PageId {
        let first = self.disk.lock().allocate_contiguous(n, owner);
        let mut inner = self.inner.lock();
        for pid in first..first + n as PageId {
            inner.frames.remove(&pid);
        }
        first
    }

    /// Move a page to the catalog's free set (see [`SimDisk::free_page`]).
    pub fn free_page(&self, pid: PageId) {
        self.disk.lock().free_page(pid);
    }

    /// Zero a quarantined free page and hand it to the allocator's reusable
    /// set (see [`SimDisk::reclaim_page`]), dropping any stale cached frame
    /// first. A still-pinned frame means some reader is walking the old
    /// image through a stale chain pointer — the page is left quarantined
    /// for a later maintenance pass.
    pub fn reclaim_page(&self, pid: PageId) -> StorageResult<bool> {
        {
            let mut inner = self.inner.lock();
            if let Some(f) = inner.frames.get(&pid) {
                if f.pin.load(Ordering::Acquire) > 0 {
                    return Ok(false);
                }
            }
            inner.frames.remove(&pid);
        }
        self.disk.lock().reclaim_page(pid)
    }

    /// Catalog-free pages not yet reclaimed (see
    /// [`SimDisk::reclaimable_pages`]).
    pub fn reclaimable_pages(&self) -> Vec<PageId> {
        self.disk.lock().reclaimable_pages()
    }

    /// Number of zeroed pages the allocator can recycle.
    pub fn n_reusable(&self) -> usize {
        self.disk.lock().n_reusable()
    }

    /// Free every page owned by `owner`, returning the freed ids (see
    /// [`SimDisk::free_owned`]).
    pub fn free_owned(&self, owner: StructureId) -> Vec<PageId> {
        self.disk.lock().free_owned(owner)
    }

    /// Snapshot of the disk's page → owner catalog.
    pub fn catalog(&self) -> PageCatalog {
        self.disk.lock().catalog().clone()
    }

    /// Run a closure against the raw disk (used by temp segments, which
    /// deliberately bypass the cache).
    pub fn with_disk<R>(&self, f: impl FnOnce(&mut SimDisk) -> R) -> R {
        f(&mut self.disk.lock())
    }

    /// Replace the pool's transient-fault retry policy.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// The pool's current transient-fault retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.lock()
    }

    /// Snapshot of the underlying disk's counters.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.lock().stats()
    }

    /// Reset the underlying disk's counters and the pool's hit counters.
    pub fn reset_stats(&self) {
        self.disk.lock().reset_stats();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.prefetched.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }

    /// Pool-level hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            prefetched: self.prefetched.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    fn touch(inner: &mut Inner, frame: &Frame) {
        inner.tick += 1;
        frame.last_used.store(inner.tick, Ordering::Relaxed);
    }

    /// Write back every dirty unpinned frame in ascending page order, using
    /// chained writes for contiguous runs (write clustering, as a real
    /// background writer would). Caller holds `inner`.
    fn write_cluster(&self, inner: &mut Inner) -> StorageResult<()> {
        let mut dirty: Vec<Arc<Frame>> = inner
            .frames
            .values()
            .filter(|f| f.dirty.load(Ordering::Acquire) && f.pin.load(Ordering::Acquire) == 0)
            .cloned()
            .collect();
        dirty.sort_by_key(|f| f.pid);
        let mut disk = self.disk.lock();
        let mut i = 0;
        while i < dirty.len() {
            let start = dirty[i].pid;
            let mut len = 1;
            while i + len < dirty.len() && dirty[i + len].pid == start + len as PageId {
                len += 1;
            }
            let run = &dirty[i..i + len];
            retry_disk(*self.retry.lock(), &mut disk, |d| {
                d.write_chain(start, len, |pid, page| {
                    let frame = &run[(pid - start) as usize];
                    page.copy_from_slice(&frame.data.read()[..]);
                    frame.dirty.store(false, Ordering::Release);
                })
            })?;
            self.writebacks.fetch_add(len as u64, Ordering::Relaxed);
            i += len;
        }
        Ok(())
    }

    /// Evict one unpinned frame (LRU). Caller holds `inner`.
    fn evict_one(&self, inner: &mut Inner) -> StorageResult<()> {
        let victim = inner
            .frames
            .values()
            .filter(|f| f.pin.load(Ordering::Acquire) == 0)
            .min_by_key(|f| f.last_used.load(Ordering::Relaxed))
            .map(|f| f.pid);
        let pid = victim.ok_or(StorageError::BufferExhausted)?;
        if inner.frames[&pid].dirty.load(Ordering::Acquire) {
            // Eviction hit a dirty page: clean the whole pool in one
            // clustered pass so scans do not interleave random writes.
            self.write_cluster(inner)?;
        }
        inner.frames.remove(&pid).expect("victim frame present");
        Ok(())
    }

    /// Get or load the frame for `pid`, pinned once.
    fn pin_frame(&self, pid: PageId) -> StorageResult<Arc<Frame>> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&pid).cloned() {
            frame.pin.fetch_add(1, Ordering::AcqRel);
            Self::touch(&mut inner, &frame);
            if frame.prefetched.swap(false, Ordering::AcqRel) {
                self.prefetched.fetch_add(1, Ordering::Relaxed);
            } else {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(frame);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        while inner.frames.len() >= self.capacity {
            self.evict_one(&mut inner)?;
        }
        let mut buf: PageBuf = Box::new([0u8; PAGE_SIZE]);
        retry_disk(*self.retry.lock(), &mut self.disk.lock(), |d| {
            d.read(pid, &mut buf)
        })?;
        let frame = Arc::new(Frame {
            pid,
            data: Arc::new(RwLock::new(buf)),
            pin: AtomicUsize::new(1),
            dirty: AtomicBool::new(false),
            last_used: AtomicU64::new(0),
            prefetched: AtomicBool::new(false),
        });
        Self::touch(&mut inner, &frame);
        inner.frames.insert(pid, frame.clone());
        Ok(frame)
    }

    /// Pin `pid` for reading.
    pub fn pin_read(&self, pid: PageId) -> StorageResult<PageRead> {
        let frame = self.pin_frame(pid)?;
        let guard = frame.data.read_arc();
        Ok(PageRead { frame, guard })
    }

    /// Pin `pid` for writing; the page is marked dirty.
    pub fn pin_write(&self, pid: PageId) -> StorageResult<PageWrite> {
        let frame = self.pin_frame(pid)?;
        frame.dirty.store(true, Ordering::Release);
        let guard = frame.data.write_arc();
        Ok(PageWrite { frame, guard })
    }

    /// Allocate a fresh page to `owner` and pin it for writing without a
    /// disk read.
    pub fn new_page(&self, owner: StructureId) -> StorageResult<(PageId, PageWrite)> {
        let pid = self.allocate(owner);
        let mut inner = self.inner.lock();
        while inner.frames.len() >= self.capacity {
            self.evict_one(&mut inner)?;
        }
        let frame = Arc::new(Frame {
            pid,
            data: Arc::new(RwLock::new(Box::new([0u8; PAGE_SIZE]))),
            pin: AtomicUsize::new(1),
            dirty: AtomicBool::new(true),
            last_used: AtomicU64::new(0),
            prefetched: AtomicBool::new(false),
        });
        Self::touch(&mut inner, &frame);
        inner.frames.insert(pid, frame.clone());
        drop(inner);
        let guard = frame.data.write_arc();
        Ok((pid, PageWrite { frame, guard }))
    }

    /// Largest run [`BufferPool::prefetch_run`] will stage at once: half the
    /// frames, so read-ahead never evicts the working set it feeds.
    pub fn max_prefetch(&self) -> usize {
        (self.capacity / 2).max(1)
    }

    /// Prefetch the contiguous run `first .. first + n` with chained reads.
    /// Missing stretches are read with one positioning cost each. Runs
    /// longer than [`BufferPool::max_prefetch`] are clamped rather than
    /// rejected. Returns how many pages of the (clamped) run are actually
    /// resident afterwards — pages whose read kept faulting past the retry
    /// budget are skipped, not fatal, and left to pin-time retry.
    pub fn prefetch_run(&self, first: PageId, n: usize) -> StorageResult<usize> {
        let n = n.min(self.max_prefetch());
        let mut staged = n;
        let mut inner = self.inner.lock();
        // Collect the missing stretch boundaries.
        let mut missing: Vec<PageId> = (0..n as PageId)
            .map(|i| first + i)
            .filter(|pid| !inner.frames.contains_key(pid))
            .collect();
        if missing.is_empty() {
            return Ok(n);
        }
        while inner.frames.len() + missing.len() > self.capacity {
            self.evict_one(&mut inner)?;
        }
        let mut disk = self.disk.lock();
        while !missing.is_empty() {
            // Longest contiguous prefix of the missing list.
            let start = missing[0];
            let mut len = 1;
            while len < missing.len() && missing[len] == start + len as PageId {
                len += 1;
            }
            let mut loaded: Vec<(PageId, PageBuf)> = Vec::with_capacity(len);
            let chain = retry_disk(*self.retry.lock(), &mut disk, |d| {
                loaded.clear();
                d.read_chain(start, len, |pid, bytes| {
                    loaded.push((pid, Box::new(*bytes)));
                })
            });
            if chain.is_err() {
                // A fault survived the chain-level retries. Prefetch is best
                // effort and must not abort the operation it serves: salvage
                // the stretch page by page, fail-fast, and leave any page
                // that still faults unstaged — its eventual pin re-reads it
                // under the full retry/replica policy.
                loaded.clear();
                for i in 0..len {
                    let pid = start + i as PageId;
                    let mut buf: PageBuf = Box::new([0u8; PAGE_SIZE]);
                    match disk.read(pid, &mut buf) {
                        Ok(()) => loaded.push((pid, buf)),
                        Err(_) => staged -= 1,
                    }
                }
            }
            for (pid, buf) in loaded {
                let frame = Arc::new(Frame {
                    pid,
                    data: Arc::new(RwLock::new(buf)),
                    pin: AtomicUsize::new(0),
                    dirty: AtomicBool::new(false),
                    last_used: AtomicU64::new(0),
                    prefetched: AtomicBool::new(true),
                });
                Self::touch(&mut inner, &frame);
                inner.frames.insert(pid, frame);
            }
            missing.drain(..len);
        }
        Ok(staged)
    }

    /// Whether `pid` is currently resident.
    pub fn contains(&self, pid: PageId) -> bool {
        self.inner.lock().frames.contains_key(&pid)
    }

    /// Number of frames currently pinned (by any thread). An aborted run
    /// must leave this at zero — asserted by the fault-injection tests.
    pub fn pinned_frames(&self) -> usize {
        self.inner
            .lock()
            .frames
            .values()
            .filter(|f| f.pin.load(Ordering::Acquire) > 0)
            .count()
    }

    /// Write all dirty unpinned frames back to disk (frames stay resident
    /// and clean). Pinned frames are skipped: a concurrent arm may hold a
    /// write pin, and flushing under it would both block on its page lock
    /// and persist a half-mutated image.
    pub fn flush_all(&self) -> StorageResult<()> {
        let inner = self.inner.lock();
        let mut dirty: Vec<Arc<Frame>> = inner
            .frames
            .values()
            .filter(|f| f.dirty.load(Ordering::Acquire) && f.pin.load(Ordering::Acquire) == 0)
            .cloned()
            .collect();
        // Flush in page order so write-back is as sequential as possible.
        dirty.sort_by_key(|f| f.pid);
        let mut disk = self.disk.lock();
        for frame in dirty {
            let data = frame.data.read();
            retry_disk(*self.retry.lock(), &mut disk, |d| d.write(frame.pid, &data))?;
            frame.dirty.store(false, Ordering::Release);
            self.writebacks.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Drop every unpinned frame (flushing dirty ones). Used by benchmarks
    /// to start strategies from a cold cache.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.flush_all()?;
        let mut inner = self.inner.lock();
        inner
            .frames
            .retain(|_, f| f.pin.load(Ordering::Acquire) > 0);
        Ok(())
    }

    /// Simulate a crash: discard every frame *without* writing dirty pages
    /// back. After this, reads observe exactly what had reached the disk
    /// (checkpoint flushes plus whatever eviction happened to write out).
    /// Panics if any frame is still pinned — a crash cannot be simulated
    /// mid-operation.
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        assert!(
            inner
                .frames
                .values()
                .all(|f| f.pin.load(Ordering::Acquire) == 0),
            "cannot simulate a crash with pinned pages"
        );
        inner.frames.clear();
    }
}

/// RAII read pin. Derefs to the page bytes.
pub struct PageRead {
    frame: Arc<Frame>,
    guard: ReadGuard,
}

impl std::ops::Deref for PageRead {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl Drop for PageRead {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::AcqRel);
    }
}

/// RAII write pin. Derefs mutably to the page bytes.
pub struct PageWrite {
    frame: Arc<Frame>,
    guard: WriteGuard,
}

impl PageWrite {
    /// Page id of the pinned page.
    pub fn page_id(&self) -> PageId {
        self.frame.pid
    }
}

impl std::ops::Deref for PageWrite {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl std::ops::DerefMut for PageWrite {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

impl Drop for PageWrite {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::CostModel;

    fn small_pool(frames: usize, pages: usize) -> (Arc<BufferPool>, PageId) {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(pages, StructureId::Table);
        let pool = BufferPool::new(disk, frames);
        (pool, first)
    }

    #[test]
    fn read_through_and_cache_hit() {
        let (pool, first) = small_pool(4, 4);
        {
            let mut w = pool.pin_write(first).unwrap();
            w[0] = 42;
        }
        let r = pool.pin_read(first).unwrap();
        assert_eq!(r[0], 42);
        drop(r);
        let s = pool.pool_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, first) = small_pool(2, 5);
        {
            let mut w = pool.pin_write(first).unwrap();
            w[7] = 9;
        }
        // Touch enough other pages to force eviction of `first`.
        for i in 1..5 {
            let _ = pool.pin_read(first + i).unwrap();
        }
        assert!(!pool.contains(first));
        let r = pool.pin_read(first).unwrap();
        assert_eq!(r[7], 9, "dirty page must survive eviction");
    }

    #[test]
    fn all_pinned_exhausts_pool() {
        let (pool, first) = small_pool(2, 3);
        let _a = pool.pin_read(first).unwrap();
        let _b = pool.pin_read(first + 1).unwrap();
        assert!(matches!(
            pool.pin_read(first + 2),
            Err(StorageError::BufferExhausted)
        ));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (pool, first) = small_pool(2, 3);
        let _ = pool.pin_read(first).unwrap();
        let _ = pool.pin_read(first + 1).unwrap();
        let _ = pool.pin_read(first).unwrap(); // page0 now most recent
        let _ = pool.pin_read(first + 2).unwrap(); // must evict page1
        assert!(pool.contains(first));
        assert!(!pool.contains(first + 1));
    }

    #[test]
    fn prefetch_run_is_one_chained_read() {
        let (pool, first) = small_pool(16, 8);
        pool.reset_stats();
        assert_eq!(pool.prefetch_run(first, 8).unwrap(), 8);
        let d = pool.disk_stats();
        assert_eq!(d.random_reads, 1);
        assert_eq!(d.pages_read, 8);
        // First pins consume the staged frames: charged to `prefetched`,
        // not mistaken for warm cache hits.
        for i in 0..8 {
            let _ = pool.pin_read(first + i).unwrap();
        }
        let s = pool.pool_stats();
        assert_eq!(s.prefetched, 8);
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 0);
        // A second round of pins finds the frames genuinely warm.
        for i in 0..8 {
            let _ = pool.pin_read(first + i).unwrap();
        }
        let s = pool.pool_stats();
        assert_eq!(s.prefetched, 8);
        assert_eq!(s.hits, 8);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prefetch_skips_resident_pages() {
        let (pool, first) = small_pool(16, 8);
        let _ = pool.pin_read(first + 3).unwrap();
        pool.reset_stats();
        pool.prefetch_run(first, 8).unwrap();
        let d = pool.disk_stats();
        // Two stretches: [0..3) and [4..8) => two positioned reads, 7 pages.
        assert_eq!(d.random_reads, 2);
        assert_eq!(d.pages_read, 7);
    }

    #[test]
    fn oversized_prefetch_is_clamped_not_a_panic() {
        let (pool, first) = small_pool(8, 8);
        pool.reset_stats();
        // Asking for more than the pool can hold stages only max_prefetch
        // pages (here 4) instead of asserting.
        let staged = pool.prefetch_run(first, 64).unwrap();
        assert_eq!(staged, pool.max_prefetch());
        assert_eq!(pool.disk_stats().pages_read, staged as u64);
        for i in 0..staged {
            assert!(pool.contains(first + i as PageId));
        }
        assert!(!pool.contains(first + staged as PageId));
    }

    #[test]
    fn new_page_needs_no_disk_read() {
        let (pool, _) = small_pool(4, 1);
        pool.reset_stats();
        let (pid, mut w) = pool.new_page(StructureId::Table).unwrap();
        w[0] = 1;
        drop(w);
        assert_eq!(pool.disk_stats().pages_read, 0);
        let r = pool.pin_read(pid).unwrap();
        assert_eq!(r[0], 1);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let (pool, first) = small_pool(4, 2);
        {
            let mut w = pool.pin_write(first).unwrap();
            w[0] = 5;
        }
        pool.flush_all().unwrap();
        // Read the raw disk directly: flushed bytes must be there.
        let byte = pool.with_disk(|d| {
            let mut buf = [0u8; PAGE_SIZE];
            d.read(first, &mut buf).unwrap();
            buf[0]
        });
        assert_eq!(byte, 5);
        assert!(pool.contains(first));
    }

    #[test]
    fn clear_cache_empties_unpinned() {
        let (pool, first) = small_pool(4, 3);
        let _ = pool.pin_read(first).unwrap();
        let held = pool.pin_read(first + 1).unwrap();
        pool.clear_cache().unwrap();
        assert!(!pool.contains(first));
        assert!(pool.contains(first + 1));
        drop(held);
    }

    #[test]
    fn transient_fault_is_ridden_out_by_bounded_retry() {
        use crate::fault::{FaultPlan, FaultSpec};
        let (pool, first) = small_pool(4, 4);
        {
            let mut w = pool.pin_write(first).unwrap();
            w[0] = 77;
        }
        pool.clear_cache().unwrap();
        pool.reset_stats();
        pool.with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(first).transient(2)))
        });
        let r = pool.pin_read(first).unwrap();
        assert_eq!(r[0], 77, "the retried read sees the real content");
        drop(r);
        let s = pool.disk_stats();
        assert_eq!(s.retries, 2, "two backoffs before the fault healed");
        // Backoff 1 ms + 2 ms on top of the one successful positioned read.
        let io = CostModel::default().positioning_ms() + CostModel::default().transfer_ms;
        assert!((s.sim_ms - (io + 3.0)).abs() < 1e-9, "sim_ms {}", s.sim_ms);
    }

    #[test]
    fn retry_exhaustion_surfaces_the_fault() {
        use crate::fault::{FaultPlan, FaultSpec};
        let (pool, first) = small_pool(4, 4);
        pool.with_disk(|d| {
            // One more failure than the default policy's 3 retries allows.
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::read_page(first).transient(4)))
        });
        assert_eq!(
            pool.pin_read(first).err(),
            Some(StorageError::InjectedFault(first))
        );
        assert_eq!(pool.disk_stats().retries, 3, "policy bound respected");
        // The fault healed during the failed attempt's countdown; a fresh
        // pin now succeeds.
        let _ = pool.pin_read(first).unwrap();
    }

    #[test]
    fn torn_write_is_ridden_out_via_the_replica() {
        use crate::fault::{FaultPlan, FaultSpec};
        let (pool, first) = small_pool(4, 4);
        pool.with_disk(|d| d.enable_replicas());
        {
            let mut w = pool.pin_write(first).unwrap();
            // Touch the tail half so the tear is observable: a tear that
            // only loses unchanged bytes is indistinguishable from a clean
            // write.
            w[0] = 42;
            w[PAGE_SIZE - 1] = 7;
        }
        pool.with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_page(first).torn()))
        });
        pool.flush_all().unwrap(); // acknowledged, primary copy torn
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let r = pool.pin_read(first).unwrap();
        assert_eq!(r[0], 42, "the replica repaired the torn page");
        assert_eq!(r[PAGE_SIZE - 1], 7, "tail half restored from replica");
        drop(r);
        let s = pool.disk_stats();
        assert_eq!(s.retries, 1, "one checksum-mismatch retry");
        assert_eq!(
            s.pages_read, 3,
            "failed read + replica read + re-issued read"
        );
        assert!(
            pool.with_disk(|d| d.corrupt_pages()).is_empty(),
            "the repair also fixed the on-disk primary"
        );
    }

    #[test]
    fn torn_write_without_replicas_stays_final() {
        use crate::fault::{FaultPlan, FaultSpec};
        let (pool, first) = small_pool(4, 4);
        {
            let mut w = pool.pin_write(first).unwrap();
            w[0] = 42;
            w[PAGE_SIZE - 1] = 7; // tail-half change: lost in the tear
        }
        pool.with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_page(first).torn()))
        });
        pool.flush_all().unwrap();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        assert_eq!(
            pool.pin_read(first).err(),
            Some(StorageError::ChecksumMismatch(first))
        );
        assert_eq!(pool.disk_stats().retries, 0, "no replica: fail fast");
    }

    #[test]
    fn flush_all_skips_pinned_frames() {
        let (pool, first) = small_pool(4, 2);
        {
            let mut w = pool.pin_write(first + 1).unwrap();
            w[0] = 9;
        }
        let held = pool.pin_write(first).unwrap();
        pool.flush_all().unwrap();
        let flushed = pool.with_disk(|d| {
            let mut buf = [0u8; PAGE_SIZE];
            d.read(first + 1, &mut buf).unwrap();
            buf[0]
        });
        assert_eq!(flushed, 9, "unpinned dirty page flushed");
        drop(held);
        // The pinned page stayed dirty and flushes once unpinned.
        pool.reset_stats();
        pool.flush_all().unwrap();
        assert_eq!(pool.disk_stats().pages_written, 1);
    }

    #[test]
    fn recycled_page_never_serves_a_stale_frame() {
        let (pool, first) = small_pool(8, 4);
        {
            let mut w = pool.pin_write(first + 1).unwrap();
            w[0] = 0xEE;
        }
        pool.flush_all().unwrap();
        assert!(pool.contains(first + 1), "frame still cached");
        pool.free_page(first + 1);
        assert!(pool.reclaim_page(first + 1).unwrap());
        let pid = pool.allocate(StructureId::Index(5));
        assert_eq!(pid, first + 1, "reclaimed page is recycled");
        let r = pool.pin_read(pid).unwrap();
        assert_eq!(r[0], 0, "the new owner sees the zeroed page, not 0xEE");
    }

    #[test]
    fn reclaim_skips_pinned_frames() {
        let (pool, first) = small_pool(8, 4);
        let held = pool.pin_read(first).unwrap();
        pool.free_page(first);
        assert!(
            !pool.reclaim_page(first).unwrap(),
            "pinned: left quarantined"
        );
        assert_eq!(pool.reclaimable_pages(), vec![first]);
        drop(held);
        assert!(pool.reclaim_page(first).unwrap());
        assert_eq!(pool.n_reusable(), 1);
        assert!(pool.reclaimable_pages().is_empty());
    }

    #[test]
    fn concurrent_pins_are_safe() {
        let (pool, first) = small_pool(8, 8);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..100u32 {
                        let pid = first + ((t + i) % 8);
                        let mut w = pool.pin_write(pid).unwrap();
                        w[0] = w[0].wrapping_add(1);
                    }
                });
            }
        });
        let total: u32 = (0..8)
            .map(|i| pool.pin_read(first + i).unwrap()[0] as u32)
            .sum();
        assert_eq!(total, 400); // 50 increments per page, no u8 wraparound
    }
}
