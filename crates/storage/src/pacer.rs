//! Cooperative pacing for long page-visit loops.
//!
//! A bulk delete visits tens of thousands of pages; at production scale it
//! must share the machine with foreground traffic. A [`Pacer`] is the
//! cooperative-scheduling handle threaded through every page-visit loop
//! (B-tree leaf walks, heap passes, hash-chain walks, sort/merge): the loop
//! calls [`checkpoint`] *between* page visits — never while it holds a page
//! pin — and the pacer decides whether the loop keeps running, parks on a
//! condvar until resumed, or aborts with
//! [`StorageError::Cancelled`](crate::StorageError::Cancelled).
//!
//! The contract mirrors VectorChord's `bulkdelete` `check()`/`delay()`
//! threading: the *caller* guarantees every checkpoint is a quiescent point
//! (no pinned frames, no half-rewritten page), and the pacer guarantees a
//! paused worker burns no CPU (parked wait, not a spin) and a cancelled
//! worker unwinds through the normal `Result` path.
//!
//! Pacers install like [`crate::IoScope`]s: [`Pacer::enter`] pushes the
//! handle onto a thread-local stack for the duration of a guard, and the
//! free function [`checkpoint`] consults every installed pacer. Deep loops
//! therefore need no extra parameters — the executor installs the pacer
//! around each task body and the storage/index/exec loops below it inherit
//! it, exactly like I/O attribution.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{StorageError, StorageResult};

const RUNNING: u8 = 0;
const PAUSED: u8 = 1;
const CANCELLED: u8 = 2;

#[derive(Default)]
struct Inner {
    /// RUNNING / PAUSED / CANCELLED. Transitions only under `lock`; read
    /// lock-free on the checkpoint fast path.
    state: AtomicU8,
    lock: Mutex<()>,
    cond: Condvar,
    /// Total checkpoints observed (all threads).
    checks: AtomicU64,
    /// Auto-pause trip: when non-zero and `checks` reaches it, the
    /// checkpoint that crossed the threshold pauses the pacer itself.
    /// Deterministic "pause mid-walk" for tests and fault campaigns.
    pause_at: AtomicU64,
    /// Workers currently parked inside a checkpoint.
    parked: AtomicUsize,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pacer")
            .field("state", &self.state)
            .field("checks", &self.checks)
            .field("parked", &self.parked)
            .finish_non_exhaustive()
    }
}

/// Shared pause/cancel handle for cooperative page-visit loops.
///
/// Clones share state: the controller keeps one clone and calls
/// [`Pacer::pause`] / [`Pacer::resume`] / [`Pacer::cancel`]; workers install
/// another via [`Pacer::enter`] and hit [`checkpoint`] between page visits.
#[derive(Debug, Clone, Default)]
pub struct Pacer {
    inner: Arc<Inner>,
}

impl Pacer {
    /// A fresh, running pacer.
    pub fn new() -> Self {
        Pacer::default()
    }

    fn state(&self) -> u8 {
        self.inner.state.load(Ordering::Acquire)
    }

    /// Ask every worker to park at its next checkpoint. No-op after
    /// [`Pacer::cancel`].
    pub fn pause(&self) {
        let _g = self.inner.lock.lock();
        let _ =
            self.inner
                .state
                .compare_exchange(RUNNING, PAUSED, Ordering::AcqRel, Ordering::Acquire);
        self.inner.cond.notify_all();
    }

    /// Wake every parked worker and let checkpoints pass again. Also clears
    /// a pending [`Pacer::pause_after`] trip. No-op after [`Pacer::cancel`].
    pub fn resume(&self) {
        let _g = self.inner.lock.lock();
        self.inner.pause_at.store(0, Ordering::Release);
        let _ =
            self.inner
                .state
                .compare_exchange(PAUSED, RUNNING, Ordering::AcqRel, Ordering::Acquire);
        self.inner.cond.notify_all();
    }

    /// Abort: every worker — parked or running — fails its next checkpoint
    /// with [`StorageError::Cancelled`]. Final: a cancelled pacer never
    /// runs again.
    pub fn cancel(&self) {
        let _g = self.inner.lock.lock();
        self.inner.state.store(CANCELLED, Ordering::Release);
        self.inner.cond.notify_all();
    }

    /// Arrange for the pacer to pause itself once `n` more checkpoints have
    /// been observed (the checkpoint that crosses the threshold parks).
    /// Deterministic mid-walk pausing for tests and fault campaigns.
    pub fn pause_after(&self, n: u64) {
        let target = self.inner.checks.load(Ordering::Acquire) + n.max(1);
        self.inner.pause_at.store(target, Ordering::Release);
    }

    /// Whether the pacer is currently paused.
    pub fn is_paused(&self) -> bool {
        self.state() == PAUSED
    }

    /// Whether the pacer has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.state() == CANCELLED
    }

    /// Total checkpoints observed across all workers.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Acquire)
    }

    /// Workers currently parked inside a checkpoint.
    pub fn parked(&self) -> usize {
        self.inner.parked.load(Ordering::Acquire)
    }

    /// Block (parked, not spinning) until at least `n` workers are parked,
    /// the pause request disappears, or `timeout` passes. Returns `true`
    /// when `n` workers were seen parked. A pending [`Pacer::pause_after`]
    /// trip counts as a pause request — the controller may call this right
    /// after arming the trip, before any worker has crossed it. The
    /// controller uses this to know a paused delete has actually reached a
    /// quiescent point (zero pinned frames) before inspecting or crashing
    /// the pool.
    pub fn wait_parked(&self, n: usize, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.inner.lock.lock();
        loop {
            if self.inner.parked.load(Ordering::Acquire) >= n {
                return true;
            }
            let trip_pending = self.inner.pause_at.load(Ordering::Acquire) != 0;
            if self.state() != PAUSED && !trip_pending {
                return false;
            }
            if self.inner.cond.wait_until(&mut guard, deadline).timed_out() {
                return self.inner.parked.load(Ordering::Acquire) >= n;
            }
        }
    }

    /// Install this pacer on the current thread; [`checkpoint`] consults it
    /// while the guard lives. Nested installs all get checked.
    pub fn enter(&self) -> PaceGuard {
        self.install(false)
    }

    /// Install with **deferred cancellation**: checkpoints in this scope
    /// still park on pause (page-granular), but a [`Pacer::cancel`] does
    /// not fail them — it reads as "keep running" (and wakes a parked
    /// checkpoint). A caller running a multi-structure critical section
    /// (e.g. one chunk of a chunked live delete: probe index + heap + hash
    /// indices must move together) installs this way so the section is
    /// pausable at page granularity yet atomic under cancellation; the
    /// caller observes the cancel itself at the next plain
    /// [`Pacer::check`] between sections. Scoped to this thread — the
    /// executor's [`installed`] snapshot re-installs in full mode.
    pub fn enter_defer_cancel(&self) -> PaceGuard {
        self.install(true)
    }

    fn install(&self, defer_cancel: bool) -> PaceGuard {
        CURRENT.with(|stack| {
            stack.borrow_mut().push(Installed {
                pacer: self.clone(),
                defer_cancel,
            })
        });
        PaceGuard { _priv: () }
    }

    /// One cooperative scheduling point. The caller must hold **no page
    /// pins**: a parked worker may stay parked indefinitely, and the pause
    /// contract is that a paused bulk operation leaves the buffer pool
    /// fully unpinned.
    pub fn check(&self) -> StorageResult<()> {
        self.check_inner(false)
    }

    fn check_inner(&self, defer_cancel: bool) -> StorageResult<()> {
        let n = self.inner.checks.fetch_add(1, Ordering::AcqRel) + 1;
        let trip = self.inner.pause_at.load(Ordering::Acquire);
        if trip != 0 && n >= trip {
            // Only the first crossing flips the state; later checkpoints
            // see PAUSED and park below. Pause first, clear the trip
            // second: `wait_parked` treats "trip pending" as a pause
            // request, so at no instant may both reads say "running, no
            // trip".
            self.pause();
            self.inner.pause_at.store(0, Ordering::Release);
        }
        if self.state() == RUNNING {
            return Ok(());
        }
        let mut guard = self.inner.lock.lock();
        loop {
            match self.state() {
                RUNNING => return Ok(()),
                CANCELLED => {
                    return if defer_cancel {
                        Ok(())
                    } else {
                        Err(StorageError::Cancelled)
                    };
                }
                _ => {
                    self.inner.parked.fetch_add(1, Ordering::AcqRel);
                    self.inner.cond.notify_all(); // wake wait_parked watchers
                    self.inner.cond.wait(&mut guard);
                    self.inner.parked.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }
}

#[derive(Clone)]
struct Installed {
    pacer: Pacer,
    defer_cancel: bool,
}

thread_local! {
    static CURRENT: RefCell<Vec<Installed>> = const { RefCell::new(Vec::new()) };
}

/// Clone of the pacers installed on the current thread, outermost first.
/// The phase-task executor snapshots this before dispatching arms to
/// worker threads and re-installs the snapshot (via [`Pacer::enter`]) on
/// each worker, so dispatched arms observe the same pause/cancel state as
/// the serial phases of the statement. Deferred-cancel installs
/// ([`Pacer::enter_defer_cancel`]) propagate in full mode: that install is
/// scoped to one serial critical section and never spans a fan-out.
pub fn installed() -> Vec<Pacer> {
    CURRENT.with(|stack| stack.borrow().iter().map(|e| e.pacer.clone()).collect())
}

/// RAII guard deactivating a [`Pacer::enter`] on drop.
#[must_use = "the pacer is only installed while the guard lives"]
pub struct PaceGuard {
    _priv: (),
}

impl Drop for PaceGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// The cooperative scheduling point every page-visit loop calls between
/// page visits (with no pins held). No-op when no pacer is installed on
/// this thread, or inside [`crate::io_scope::bypass_cancel`] — error-path
/// cleanup must neither park nor abort.
pub fn checkpoint() -> StorageResult<()> {
    if crate::io_scope::bypassing() {
        return Ok(());
    }
    CURRENT.with(|stack| {
        // The common case is an empty stack (no pacer installed): one
        // borrow, no allocation, no atomics.
        for e in stack.borrow().iter() {
            e.pacer.check_inner(e.defer_cancel)?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_is_a_noop_without_a_pacer() {
        checkpoint().unwrap();
    }

    #[test]
    fn pause_parks_and_resume_wakes() {
        let pacer = Pacer::new();
        pacer.pause();
        let worker = {
            let pacer = pacer.clone();
            std::thread::spawn(move || {
                let _g = pacer.enter();
                let mut rounds = 0u32;
                for _ in 0..8 {
                    checkpoint().unwrap();
                    rounds += 1;
                }
                rounds
            })
        };
        assert!(
            pacer.wait_parked(1, Duration::from_secs(5)),
            "worker must park at its first checkpoint"
        );
        assert_eq!(pacer.parked(), 1);
        pacer.resume();
        assert_eq!(worker.join().unwrap(), 8);
        assert_eq!(pacer.parked(), 0);
    }

    #[test]
    fn cancel_fails_running_and_parked_workers() {
        let pacer = Pacer::new();
        pacer.pause();
        let worker = {
            let pacer = pacer.clone();
            std::thread::spawn(move || {
                let _g = pacer.enter();
                checkpoint()
            })
        };
        assert!(pacer.wait_parked(1, Duration::from_secs(5)));
        pacer.cancel();
        assert_eq!(worker.join().unwrap(), Err(StorageError::Cancelled));
        // A cancelled pacer fails immediately, parked or not.
        let _g = pacer.enter();
        assert_eq!(checkpoint(), Err(StorageError::Cancelled));
    }

    #[test]
    fn pause_after_trips_mid_run() {
        let pacer = Pacer::new();
        pacer.pause_after(5);
        let worker = {
            let pacer = pacer.clone();
            std::thread::spawn(move || {
                let _g = pacer.enter();
                let mut done = 0u64;
                while done < 20 {
                    checkpoint().unwrap();
                    done += 1;
                }
                done
            })
        };
        assert!(pacer.wait_parked(1, Duration::from_secs(5)));
        assert!(pacer.is_paused());
        assert_eq!(pacer.checks(), 5, "parked exactly at the trip point");
        pacer.resume();
        assert_eq!(worker.join().unwrap(), 20);
    }

    #[test]
    fn bypass_cancel_skips_pacing() {
        let pacer = Pacer::new();
        pacer.cancel();
        let _g = pacer.enter();
        // Error-path cleanup must run to completion even under a cancelled
        // pacer.
        crate::io_scope::bypass_cancel(|| checkpoint().unwrap());
        assert_eq!(checkpoint(), Err(StorageError::Cancelled));
    }

    #[test]
    fn defer_cancel_scope_pauses_but_survives_cancel() {
        let pacer = Pacer::new();
        pacer.pause();
        let worker = {
            let pacer = pacer.clone();
            std::thread::spawn(move || {
                let _g = pacer.enter_defer_cancel();
                // Parks on the pause; the cancel below must wake it and
                // read as "keep running" rather than fail the section.
                for _ in 0..4 {
                    checkpoint().unwrap();
                }
            })
        };
        assert!(pacer.wait_parked(1, Duration::from_secs(5)));
        pacer.cancel();
        worker.join().unwrap();
        // Outside the deferred scope the cancel is fatal as usual.
        let _g = pacer.enter();
        assert_eq!(checkpoint(), Err(StorageError::Cancelled));
    }

    #[test]
    fn resume_clears_a_pending_trip() {
        let pacer = Pacer::new();
        pacer.pause_after(1);
        pacer.resume();
        let _g = pacer.enter();
        for _ in 0..10 {
            checkpoint().unwrap();
        }
        assert!(!pacer.is_paused());
    }
}
